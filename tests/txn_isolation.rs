//! Cross-engine isolation and durability tests: every engine must conserve
//! invariants under concurrency, and the WAL must reconstruct committed
//! state.

use backbone_txn::harness::{load_initial, run_workload, WorkloadConfig, INITIAL_BALANCE};
use backbone_txn::ops::execute_with_retry;
use backbone_txn::{
    FsyncPolicy, KvEngine, MvccEngine, SerialEngine, TwoPlEngine, TxnOp, Wal, WalConfig,
};
use std::sync::Arc;

fn engines_with_wal() -> Vec<(Arc<dyn KvEngine>, Arc<Wal>)> {
    let wal_cfg = WalConfig::with_policy(FsyncPolicy::Group);
    let w1 = Arc::new(Wal::new(wal_cfg));
    let w2 = Arc::new(Wal::new(wal_cfg));
    let w3 = Arc::new(Wal::new(wal_cfg));
    vec![
        (
            Arc::new(SerialEngine::new(Some(w1.clone()))) as Arc<dyn KvEngine>,
            w1,
        ),
        (
            Arc::new(TwoPlEngine::new(Some(w2.clone()))) as Arc<dyn KvEngine>,
            w2,
        ),
        (
            Arc::new(MvccEngine::new(Some(w3.clone()))) as Arc<dyn KvEngine>,
            w3,
        ),
    ]
}

#[test]
fn money_conservation_under_heavy_contention() {
    let config = WorkloadConfig {
        threads: 8,
        txns_per_thread: 300,
        keys: 16, // tiny key space = maximal contention
        skew: 0.9,
        read_ratio: 0.2,
        ops_per_txn: 4,
        seed: 77,
    };
    for (engine, _) in engines_with_wal() {
        load_initial_dyn(engine.as_ref(), config.keys);
        let report = run_workload(engine.clone(), &config);
        assert_eq!(
            report.committed,
            (config.threads * config.txns_per_thread) as u64,
            "{}",
            engine.name()
        );
        let total: u64 = (0..config.keys).map(|k| engine.read(k).unwrap_or(0)).sum();
        assert_eq!(
            total,
            config.keys * INITIAL_BALANCE,
            "{} lost money",
            engine.name()
        );
    }
}

fn load_initial_dyn(engine: &dyn KvEngine, keys: u64) {
    // Engines share no loading trait object-safely here; use transactions.
    for k in 0..keys {
        engine
            .execute(&[TxnOp::Write(k, INITIAL_BALANCE)])
            .expect("load");
    }
}

#[test]
fn wal_replay_reconstructs_committed_state() {
    // Run a workload against MVCC + WAL, then replay the log into a fresh
    // serial engine and compare every key.
    let wal = Arc::new(Wal::new(WalConfig::with_policy(FsyncPolicy::Group)));
    let engine = Arc::new(MvccEngine::new(Some(wal.clone())));
    load_initial(engine.as_ref(), 64);
    let config = WorkloadConfig {
        threads: 4,
        txns_per_thread: 200,
        keys: 64,
        skew: 0.5,
        read_ratio: 0.0, // all writers so the log is busy
        ops_per_txn: 4,
        seed: 99,
    };
    run_workload(engine.clone(), &config);

    // Recovery: fresh engine, initial state, replay records in log order.
    let recovered = SerialEngine::new(None);
    recovered.load((0..64).map(|k| (k, INITIAL_BALANCE)));
    let replay = wal.replay().expect("clean log replays");
    assert_eq!(replay.bytes_dropped, 0, "no torn tail on a clean shutdown");
    for record in &replay.records {
        apply_record(&recovered, &record.payload);
    }
    for k in 0..64 {
        assert_eq!(
            recovered.read(k),
            engine.read(k),
            "key {k} diverged after replay"
        );
    }
}

/// Decode the record format written by the engines (see `encode_record`).
fn apply_record(engine: &SerialEngine, record: &[u8]) {
    let mut ops = Vec::new();
    let mut pos = 0;
    while pos + 17 <= record.len() {
        let tag = record[pos];
        let k = u64::from_le_bytes(record[pos + 1..pos + 9].try_into().unwrap());
        match tag {
            b'W' => {
                let v = u64::from_le_bytes(record[pos + 9..pos + 17].try_into().unwrap());
                ops.push(TxnOp::Write(k, v));
            }
            b'A' => {
                let d = i64::from_le_bytes(record[pos + 9..pos + 17].try_into().unwrap());
                ops.push(TxnOp::Add(k, d));
            }
            other => panic!("unknown record tag {other}"),
        }
        pos += 17;
    }
    engine.execute(&ops).expect("replay op");
}

#[test]
fn wal_order_matches_commit_order_for_blind_writes() {
    // Non-commutative Writes: replay is only correct if the log order
    // equals the commit-timestamp order (the WAL appends inside the commit
    // critical section).
    let wal = Arc::new(Wal::new(WalConfig::with_policy(FsyncPolicy::Group)));
    let engine = Arc::new(MvccEngine::new(Some(wal.clone())));
    engine.load([(1, 0), (2, 0)]);
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let e = engine.clone();
            std::thread::spawn(move || {
                for i in 0..250u64 {
                    let v = t * 1000 + i;
                    let (res, _) = execute_with_retry(
                        e.as_ref(),
                        &[TxnOp::Write(1, v), TxnOp::Write(2, v + 7)],
                    );
                    res.expect("blind write");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let recovered = SerialEngine::new(None);
    recovered.load([(1, 0), (2, 0)]);
    for record in &wal.replay().expect("clean log").records {
        apply_record(&recovered, &record.payload);
    }
    assert_eq!(
        recovered.read(1),
        engine.read(1),
        "last-writer diverged on key 1"
    );
    assert_eq!(
        recovered.read(2),
        engine.read(2),
        "last-writer diverged on key 2"
    );
}

#[test]
fn snapshot_isolation_prevents_lost_updates() {
    // 4 threads x 500 increments on one key: the classic lost-update test.
    let engine = Arc::new(MvccEngine::new(None));
    engine.load([(1, 0)]);
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let e = engine.clone();
            std::thread::spawn(move || {
                for _ in 0..500 {
                    let (res, _) = execute_with_retry(e.as_ref(), &[TxnOp::Add(1, 1)]);
                    res.expect("increment");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(engine.read(1), Some(2000));
}

#[test]
fn readers_see_consistent_snapshots_during_writes() {
    // Writers keep two keys equal; readers must never observe inequality.
    let engine = Arc::new(MvccEngine::new(None));
    engine.load([(10, 100), (20, 100)]);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let e = engine.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let (res, _) =
                    execute_with_retry(e.as_ref(), &[TxnOp::Add(10, 1), TxnOp::Add(20, 1)]);
                res.expect("writer");
            }
        })
    };
    for _ in 0..2000 {
        let r = engine.execute(&[TxnOp::Read(10), TxnOp::Read(20)]).unwrap();
        assert_eq!(r[0], r[1], "reader saw a torn snapshot");
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    writer.join().unwrap();
}

#[test]
fn constraint_violations_abort_cleanly_under_concurrency() {
    // Draining an account below zero must abort without corrupting totals.
    let engine = Arc::new(TwoPlEngine::new(None));
    engine.load([(1, 10), (2, 0)]);
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let e = engine.clone();
            std::thread::spawn(move || {
                let mut violations = 0;
                for _ in 0..50 {
                    match e.execute(&[TxnOp::Add(1, -1), TxnOp::Add(2, 1)]) {
                        Ok(_) => {}
                        Err(backbone_txn::TxnError::ConstraintViolation) => violations += 1,
                        Err(e) => panic!("unexpected {e}"),
                    }
                }
                violations
            })
        })
        .collect();
    let total_violations: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    // Exactly 10 transfers could succeed; the rest violated the constraint.
    assert_eq!(engine.read(1), Some(0));
    assert_eq!(engine.read(2), Some(10));
    assert_eq!(total_violations, 4 * 50 - 10);
}
