//! SQL front-end robustness: the parser must never panic, and structured
//! random queries must round-trip through planning and execution.

use backbone_query::{parse_select, ExecOptions, MemCatalog};
use backbone_storage::{DataType, Field, Schema, Table, Value};
use proptest::prelude::*;

fn catalog() -> MemCatalog {
    let cat = MemCatalog::new();
    let schema = Schema::new(vec![
        Field::new("a", DataType::Int64),
        Field::new("b", DataType::Int64),
        Field::new("s", DataType::Utf8),
    ]);
    let mut t = Table::with_group_size(schema, 8);
    for i in 0..40i64 {
        t.append_row(vec![
            Value::Int(i),
            Value::Int(i % 7),
            Value::str(format!("tag{}", i % 3)),
        ])
        .unwrap();
    }
    cat.register("t", t);
    cat
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary input must produce Ok or Err — never a panic.
    #[test]
    fn parser_never_panics(input in ".{0,120}") {
        let cat = catalog();
        let _ = parse_select(&input, &cat);
    }

    /// SQL-ish token soup must also never panic (more likely to get deep
    /// into the parser than fully random bytes).
    #[test]
    fn token_soup_never_panics(words in proptest::collection::vec(
        prop_oneof![
            Just("SELECT"), Just("FROM"), Just("WHERE"), Just("GROUP"), Just("BY"),
            Just("ORDER"), Just("LIMIT"), Just("JOIN"), Just("ON"), Just("AND"),
            Just("OR"), Just("NOT"), Just("LIKE"), Just("BETWEEN"), Just("AS"),
            Just("t"), Just("a"), Just("b"), Just("s"), Just("*"), Just(","),
            Just("("), Just(")"), Just("="), Just("<"), Just("1"), Just("'x'"),
            Just("COUNT"), Just("SUM"), Just("HAVING"), Just("IS"), Just("NULL"),
        ],
        0..25,
    )) {
        let cat = catalog();
        let sql = words.join(" ");
        let _ = parse_select(&sql, &cat);
    }

    /// Structured random queries must parse AND execute.
    #[test]
    fn generated_queries_execute(
        threshold in 0i64..40,
        limit in 1usize..20,
        desc in any::<bool>(),
        use_group in any::<bool>(),
    ) {
        let cat = catalog();
        let sql = if use_group {
            format!(
                "SELECT s, COUNT(*) AS n, SUM(b) AS total FROM t WHERE a < {threshold} \
                 GROUP BY s ORDER BY n {} LIMIT {limit}",
                if desc { "DESC" } else { "ASC" }
            )
        } else {
            format!(
                "SELECT a, b, s FROM t WHERE a < {threshold} OR b = 3 \
                 ORDER BY a {} LIMIT {limit}",
                if desc { "DESC" } else { "ASC" }
            )
        };
        let plan = parse_select(&sql, &cat).expect("generated SQL must parse");
        let out = backbone_query::execute(plan, &cat, &ExecOptions::default())
            .expect("generated SQL must execute");
        prop_assert!(out.num_rows() <= limit.max(3));
    }

    /// SQL and the equivalent builder plan agree.
    #[test]
    fn sql_matches_builder(threshold in -5i64..45) {
        use backbone_query::{col, lit, LogicalPlan};
        let cat = catalog();
        let sql_plan = parse_select(
            &format!("SELECT a FROM t WHERE b >= {threshold} ORDER BY a"),
            &cat,
        ).unwrap();
        let builder_plan = LogicalPlan::scan("t", &cat)
            .unwrap()
            .filter(col("b").gt_eq(lit(threshold)))
            .project(vec![col("a")])
            .sort(vec![backbone_query::logical::asc(col("a"))]);
        let a = backbone_query::execute(sql_plan, &cat, &ExecOptions::default()).unwrap();
        let b = backbone_query::execute(builder_plan, &cat, &ExecOptions::default()).unwrap();
        prop_assert_eq!(a.to_rows(), b.to_rows());
    }
}

#[test]
fn sql_plan_shapes_differ_but_answers_match() {
    // Filters written in WHERE vs pushed into scans via the optimizer give
    // the same rows: parse once, run with and without optimization.
    let cat = catalog();
    let plan = parse_select(
        "SELECT s, SUM(a) AS total FROM t WHERE a BETWEEN 5 AND 30 AND s LIKE 'tag%' GROUP BY s ORDER BY s",
        &cat,
    )
    .unwrap();
    let opt = backbone_query::execute(plan.clone(), &cat, &ExecOptions::default()).unwrap();
    let raw = backbone_query::execute(plan, &cat, &ExecOptions::unoptimized()).unwrap();
    assert_eq!(opt.to_rows(), raw.to_rows());
    assert_eq!(opt.num_rows(), 3);
}
