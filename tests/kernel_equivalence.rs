//! Kernelized operators against naive row-at-a-time references.
//!
//! The selection-vector / typed-kernel execution path (filter views,
//! columnar aggregation, vectorized hash join, late-materializing top-k)
//! must be invisible in results: randomized tables — including NULL-heavy
//! ones — run through the engine and through a reference implementation
//! built on boxed `Value` rows, and every row must agree.

use backbone_query::logical::{asc, desc};
use backbone_query::{
    avg, col, count, count_star, execute, lit, max, min, sum, ExecOptions, JoinType, LogicalPlan,
    MemCatalog,
};
use backbone_storage::{DataType, Field, Schema, Table, Value};
use proptest::prelude::*;
use std::cmp::Ordering;

/// One generated row: nullable int key, nullable int value, nullable float.
type Row = (Option<i64>, Option<i64>, Option<f64>);

fn value_of_int(v: Option<i64>) -> Value {
    v.map(Value::Int).unwrap_or(Value::Null)
}

fn value_of_float(v: Option<f64>) -> Value {
    v.map(Value::Float).unwrap_or(Value::Null)
}

/// Register `rows` as table `name` with columns `k`, `v`, `f`.
fn register(catalog: &MemCatalog, name: &str, rows: &[Row]) {
    let schema = Schema::new(vec![
        Field::nullable("k", DataType::Int64),
        Field::nullable("v", DataType::Int64),
        Field::nullable("f", DataType::Float64),
    ]);
    let mut table = Table::new(schema);
    for (k, v, f) in rows {
        table
            .append_row(vec![value_of_int(*k), value_of_int(*v), value_of_float(*f)])
            .expect("schema matches");
    }
    table.flush().expect("in-memory flush");
    catalog.register(name, table);
}

/// Row lists match, with tolerance on floats (kernels may reassociate sums).
fn assert_rows_match(got: &[Vec<Value>], want: &[Vec<Value>], context: &str) {
    assert_eq!(got.len(), want.len(), "{context}: row count");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.len(), w.len(), "{context}: width of row {i}");
        for (a, b) in g.iter().zip(w) {
            match (a, b) {
                (Value::Float(x), Value::Float(y)) => {
                    let tol = 1e-9 * x.abs().max(y.abs()).max(1.0);
                    assert!((x - y).abs() <= tol, "{context}: row {i}: {x} vs {y}");
                }
                _ => assert_eq!(a, b, "{context}: row {i}"),
            }
        }
    }
}

/// `None` with weight `null_weight` against weight 10 for `Some(inner)`.
fn maybe<T: std::fmt::Debug>(
    null_weight: u32,
    inner: impl Strategy<Value = T>,
) -> impl Strategy<Value = Option<T>> {
    (0u32..(10 + null_weight), inner).prop_map(move |(sel, v)| (sel >= null_weight).then_some(v))
}

fn arbitrary_rows(max_len: usize, null_weight: u32) -> impl Strategy<Value = Vec<Row>> {
    let cell = (
        maybe(null_weight, -4i64..8),
        maybe(null_weight, -100i64..100),
        maybe(null_weight, -50.0f64..50.0),
    );
    proptest::collection::vec(cell, 0..max_len)
}

// ---- Filter --------------------------------------------------------------

fn check_filter(rows: &[Row], threshold: i64) {
    let catalog = MemCatalog::new();
    register(&catalog, "t", rows);
    let plan = LogicalPlan::scan("t", &catalog)
        .unwrap()
        .filter(col("v").gt_eq(lit(threshold)));
    let got = execute(plan, &catalog, &ExecOptions::default())
        .unwrap()
        .to_rows();
    let want: Vec<Vec<Value>> = rows
        .iter()
        .filter(|(_, v, _)| v.is_some_and(|v| v >= threshold))
        .map(|(k, v, f)| vec![value_of_int(*k), value_of_int(*v), value_of_float(*f)])
        .collect();
    assert_rows_match(&got, &want, "filter");
}

// ---- Aggregate -----------------------------------------------------------

fn check_aggregate(rows: &[Row]) {
    let catalog = MemCatalog::new();
    register(&catalog, "t", rows);
    let plan = LogicalPlan::scan("t", &catalog).unwrap().aggregate(
        vec![col("k")],
        vec![
            count_star().alias("n"),
            count(col("v")).alias("nv"),
            sum(col("v")).alias("sv"),
            min(col("v")).alias("minv"),
            max(col("v")).alias("maxv"),
            avg(col("f")).alias("af"),
        ],
    );
    let got = execute(plan, &catalog, &ExecOptions::default())
        .unwrap()
        .to_rows();

    // Reference: group in first-appearance order; NULL keys form one group.
    let mut keys: Vec<Option<i64>> = Vec::new();
    let mut groups: Vec<Vec<&Row>> = Vec::new();
    for row in rows {
        match keys.iter().position(|k| *k == row.0) {
            Some(i) => groups[i].push(row),
            None => {
                keys.push(row.0);
                groups.push(vec![row]);
            }
        }
    }
    let want: Vec<Vec<Value>> = keys
        .iter()
        .zip(&groups)
        .map(|(k, g)| {
            let vs: Vec<i64> = g.iter().filter_map(|r| r.1).collect();
            let fs: Vec<f64> = g.iter().filter_map(|r| r.2).collect();
            vec![
                value_of_int(*k),
                Value::Int(g.len() as i64),
                Value::Int(vs.len() as i64),
                value_of_int((!vs.is_empty()).then(|| vs.iter().sum())),
                value_of_int(vs.iter().copied().min()),
                value_of_int(vs.iter().copied().max()),
                value_of_float((!fs.is_empty()).then(|| fs.iter().sum::<f64>() / fs.len() as f64)),
            ]
        })
        .collect();
    assert_rows_match(&got, &want, "aggregate");
}

// ---- Join ----------------------------------------------------------------

fn join_key(row: &[Value]) -> String {
    row.iter()
        .map(|v| format!("{v:?}"))
        .collect::<Vec<_>>()
        .join("|")
}

fn check_join(left: &[Row], right: &[Row], join_type: JoinType) {
    let catalog = MemCatalog::new();
    register(&catalog, "l", left);
    let schema = Schema::new(vec![
        Field::nullable("rk", DataType::Int64),
        Field::nullable("rv", DataType::Int64),
    ]);
    let mut table = Table::new(schema);
    for (k, v, _) in right {
        table
            .append_row(vec![value_of_int(*k), value_of_int(*v)])
            .expect("schema matches");
    }
    table.flush().expect("in-memory flush");
    catalog.register("r", table);

    let plan = LogicalPlan::scan("l", &catalog).unwrap().join(
        LogicalPlan::scan("r", &catalog).unwrap(),
        vec![("k", "rk")],
        join_type,
    );
    let mut got = execute(plan, &catalog, &ExecOptions::default())
        .unwrap()
        .to_rows();

    // Reference nested loop; NULL keys never match. Compare order-insensitively
    // (the optimizer may swap build/probe sides).
    let mut want: Vec<Vec<Value>> = Vec::new();
    for (lk, lv, lf) in left {
        let mut matched = false;
        for (rk, rv, _) in right {
            if let (Some(a), Some(b)) = (lk, rk) {
                if a == b {
                    matched = true;
                    want.push(vec![
                        value_of_int(*lk),
                        value_of_int(*lv),
                        value_of_float(*lf),
                        value_of_int(*rk),
                        value_of_int(*rv),
                    ]);
                }
            }
        }
        if !matched && join_type == JoinType::Left {
            want.push(vec![
                value_of_int(*lk),
                value_of_int(*lv),
                value_of_float(*lf),
                Value::Null,
                Value::Null,
            ]);
        }
    }
    got.sort_by_key(|r| join_key(r));
    want.sort_by_key(|r| join_key(r));
    assert_rows_match(&got, &want, "join");
}

// ---- Top-K ---------------------------------------------------------------

fn check_topk(rows: &[Row], k: usize) {
    let catalog = MemCatalog::new();
    register(&catalog, "t", rows);
    let plan = LogicalPlan::scan("t", &catalog)
        .unwrap()
        .sort(vec![desc(col("v")), asc(col("k"))])
        .limit(k);
    let got = execute(plan, &catalog, &ExecOptions::default())
        .unwrap()
        .to_rows();
    let mut want: Vec<Vec<Value>> = rows
        .iter()
        .map(|(k, v, f)| vec![value_of_int(*k), value_of_int(*v), value_of_float(*f)])
        .collect();
    // Stable sort mirrors the engine's tie behavior (input order preserved).
    want.sort_by(|a, b| match b[1].sql_cmp(&a[1]) {
        Ordering::Equal => a[0].sql_cmp(&b[0]),
        ord => ord,
    });
    want.truncate(k);
    assert_rows_match(&got, &want, "topk");
}

// ---- Properties ----------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn filter_matches_reference(rows in arbitrary_rows(160, 3), t in -100i64..100) {
        check_filter(&rows, t);
    }

    #[test]
    fn aggregate_matches_reference(rows in arbitrary_rows(160, 3)) {
        check_aggregate(&rows);
    }

    #[test]
    fn aggregate_matches_reference_null_heavy(rows in arbitrary_rows(120, 30)) {
        check_aggregate(&rows);
    }

    #[test]
    fn inner_join_matches_reference(
        left in arbitrary_rows(60, 3),
        right in arbitrary_rows(60, 3),
    ) {
        check_join(&left, &right, JoinType::Inner);
    }

    #[test]
    fn left_join_matches_reference(
        left in arbitrary_rows(60, 8),
        right in arbitrary_rows(60, 8),
    ) {
        check_join(&left, &right, JoinType::Left);
    }

    #[test]
    fn topk_matches_reference(rows in arbitrary_rows(160, 3), k in 0usize..20) {
        check_topk(&rows, k);
    }
}

// ---- Deterministic edge cases -------------------------------------------

#[test]
fn empty_selection_flows_through_every_operator() {
    // A predicate nothing satisfies: downstream kernels see batches whose
    // selection is empty and must still produce correct (empty/default) rows.
    let rows: Vec<Row> = (0..50).map(|i| (Some(i % 5), Some(i), None)).collect();
    let catalog = MemCatalog::new();
    register(&catalog, "t", &rows);

    let filtered = || {
        LogicalPlan::scan("t", &catalog)
            .unwrap()
            .filter(col("v").gt(lit(10_000i64)))
    };
    let out = execute(filtered(), &catalog, &ExecOptions::default()).unwrap();
    assert_eq!(out.num_rows(), 0);

    // Global aggregate over zero rows: COUNT = 0, SUM = NULL.
    let plan = filtered().aggregate(
        vec![],
        vec![count_star().alias("n"), sum(col("v")).alias("s")],
    );
    let out = execute(plan, &catalog, &ExecOptions::default()).unwrap();
    assert_eq!(out.to_rows(), vec![vec![Value::Int(0), Value::Null]]);

    // Keyed aggregate over zero rows: no groups at all.
    let plan = filtered().aggregate(vec![col("k")], vec![count_star().alias("n")]);
    let out = execute(plan, &catalog, &ExecOptions::default()).unwrap();
    assert_eq!(out.num_rows(), 0);

    // Join against an empty side and top-k over nothing.
    let plan = filtered().join_on(LogicalPlan::scan("t", &catalog).unwrap(), vec![("v", "v")]);
    let out = execute(plan, &catalog, &ExecOptions::default()).unwrap();
    assert_eq!(out.num_rows(), 0);
    let plan = filtered().sort(vec![asc(col("v"))]).limit(5);
    let out = execute(plan, &catalog, &ExecOptions::default()).unwrap();
    assert_eq!(out.num_rows(), 0);
}

#[test]
fn all_null_keys_aggregate_to_one_group() {
    let rows: Vec<Row> = (0..40).map(|i| (None, Some(i), Some(i as f64))).collect();
    check_aggregate(&rows);
    let catalog = MemCatalog::new();
    register(&catalog, "t", &rows);
    let plan = LogicalPlan::scan("t", &catalog)
        .unwrap()
        .aggregate(vec![col("k")], vec![count_star().alias("n")]);
    let out = execute(plan, &catalog, &ExecOptions::default()).unwrap();
    assert_eq!(out.to_rows(), vec![vec![Value::Null, Value::Int(40)]]);
}
