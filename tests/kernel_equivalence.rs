//! Kernelized operators against naive row-at-a-time references.
//!
//! The selection-vector / typed-kernel execution path (filter views,
//! columnar aggregation, vectorized hash join, late-materializing top-k)
//! must be invisible in results: randomized tables — including NULL-heavy
//! ones — run through the engine and through a reference implementation
//! built on boxed `Value` rows, and every row must agree.

use backbone_query::logical::{asc, desc};
use backbone_query::{
    avg, col, count, count_star, execute, lit, max, min, sum, ExecOptions, JoinType, LogicalPlan,
    MemCatalog, Parallelism,
};
use backbone_storage::{Column, DataType, Field, RecordBatch, Schema, Table, Value};
use proptest::prelude::*;
use std::cmp::Ordering;
use std::sync::Arc;

/// One generated row: nullable int key, nullable int value, nullable float.
type Row = (Option<i64>, Option<i64>, Option<f64>);

fn value_of_int(v: Option<i64>) -> Value {
    v.map(Value::Int).unwrap_or(Value::Null)
}

fn value_of_float(v: Option<f64>) -> Value {
    v.map(Value::Float).unwrap_or(Value::Null)
}

/// Register `rows` as table `name` with columns `k`, `v`, `f`.
fn register(catalog: &MemCatalog, name: &str, rows: &[Row]) {
    let schema = Schema::new(vec![
        Field::nullable("k", DataType::Int64),
        Field::nullable("v", DataType::Int64),
        Field::nullable("f", DataType::Float64),
    ]);
    let mut table = Table::new(schema);
    for (k, v, f) in rows {
        table
            .append_row(vec![value_of_int(*k), value_of_int(*v), value_of_float(*f)])
            .expect("schema matches");
    }
    table.flush().expect("in-memory flush");
    catalog.register(name, table);
}

/// Row lists match, with tolerance on floats (kernels may reassociate sums).
fn assert_rows_match(got: &[Vec<Value>], want: &[Vec<Value>], context: &str) {
    assert_eq!(got.len(), want.len(), "{context}: row count");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.len(), w.len(), "{context}: width of row {i}");
        for (a, b) in g.iter().zip(w) {
            match (a, b) {
                (Value::Float(x), Value::Float(y)) => {
                    let tol = 1e-9 * x.abs().max(y.abs()).max(1.0);
                    assert!((x - y).abs() <= tol, "{context}: row {i}: {x} vs {y}");
                }
                _ => assert_eq!(a, b, "{context}: row {i}"),
            }
        }
    }
}

/// `None` with weight `null_weight` against weight 10 for `Some(inner)`.
fn maybe<T: std::fmt::Debug>(
    null_weight: u32,
    inner: impl Strategy<Value = T>,
) -> impl Strategy<Value = Option<T>> {
    (0u32..(10 + null_weight), inner).prop_map(move |(sel, v)| (sel >= null_weight).then_some(v))
}

fn arbitrary_rows(max_len: usize, null_weight: u32) -> impl Strategy<Value = Vec<Row>> {
    let cell = (
        maybe(null_weight, -4i64..8),
        maybe(null_weight, -100i64..100),
        maybe(null_weight, -50.0f64..50.0),
    );
    proptest::collection::vec(cell, 0..max_len)
}

// ---- Filter --------------------------------------------------------------

fn check_filter(rows: &[Row], threshold: i64) {
    let catalog = MemCatalog::new();
    register(&catalog, "t", rows);
    let plan = LogicalPlan::scan("t", &catalog)
        .unwrap()
        .filter(col("v").gt_eq(lit(threshold)));
    let got = execute(plan, &catalog, &ExecOptions::default())
        .unwrap()
        .to_rows();
    let want: Vec<Vec<Value>> = rows
        .iter()
        .filter(|(_, v, _)| v.is_some_and(|v| v >= threshold))
        .map(|(k, v, f)| vec![value_of_int(*k), value_of_int(*v), value_of_float(*f)])
        .collect();
    assert_rows_match(&got, &want, "filter");
}

// ---- Aggregate -----------------------------------------------------------

fn check_aggregate(rows: &[Row]) {
    let catalog = MemCatalog::new();
    register(&catalog, "t", rows);
    let plan = LogicalPlan::scan("t", &catalog).unwrap().aggregate(
        vec![col("k")],
        vec![
            count_star().alias("n"),
            count(col("v")).alias("nv"),
            sum(col("v")).alias("sv"),
            min(col("v")).alias("minv"),
            max(col("v")).alias("maxv"),
            avg(col("f")).alias("af"),
        ],
    );
    let got = execute(plan, &catalog, &ExecOptions::default())
        .unwrap()
        .to_rows();

    // Reference: group in first-appearance order; NULL keys form one group.
    let mut keys: Vec<Option<i64>> = Vec::new();
    let mut groups: Vec<Vec<&Row>> = Vec::new();
    for row in rows {
        match keys.iter().position(|k| *k == row.0) {
            Some(i) => groups[i].push(row),
            None => {
                keys.push(row.0);
                groups.push(vec![row]);
            }
        }
    }
    let want: Vec<Vec<Value>> = keys
        .iter()
        .zip(&groups)
        .map(|(k, g)| {
            let vs: Vec<i64> = g.iter().filter_map(|r| r.1).collect();
            let fs: Vec<f64> = g.iter().filter_map(|r| r.2).collect();
            vec![
                value_of_int(*k),
                Value::Int(g.len() as i64),
                Value::Int(vs.len() as i64),
                value_of_int((!vs.is_empty()).then(|| vs.iter().sum())),
                value_of_int(vs.iter().copied().min()),
                value_of_int(vs.iter().copied().max()),
                value_of_float((!fs.is_empty()).then(|| fs.iter().sum::<f64>() / fs.len() as f64)),
            ]
        })
        .collect();
    assert_rows_match(&got, &want, "aggregate");
}

// ---- Join ----------------------------------------------------------------

fn join_key(row: &[Value]) -> String {
    row.iter()
        .map(|v| format!("{v:?}"))
        .collect::<Vec<_>>()
        .join("|")
}

fn check_join(left: &[Row], right: &[Row], join_type: JoinType) {
    let catalog = MemCatalog::new();
    register(&catalog, "l", left);
    let schema = Schema::new(vec![
        Field::nullable("rk", DataType::Int64),
        Field::nullable("rv", DataType::Int64),
    ]);
    let mut table = Table::new(schema);
    for (k, v, _) in right {
        table
            .append_row(vec![value_of_int(*k), value_of_int(*v)])
            .expect("schema matches");
    }
    table.flush().expect("in-memory flush");
    catalog.register("r", table);

    let plan = LogicalPlan::scan("l", &catalog).unwrap().join(
        LogicalPlan::scan("r", &catalog).unwrap(),
        vec![("k", "rk")],
        join_type,
    );
    let mut got = execute(plan, &catalog, &ExecOptions::default())
        .unwrap()
        .to_rows();

    // Reference nested loop; NULL keys never match. Compare order-insensitively
    // (the optimizer may swap build/probe sides).
    let mut want: Vec<Vec<Value>> = Vec::new();
    for (lk, lv, lf) in left {
        let mut matched = false;
        for (rk, rv, _) in right {
            if let (Some(a), Some(b)) = (lk, rk) {
                if a == b {
                    matched = true;
                    want.push(vec![
                        value_of_int(*lk),
                        value_of_int(*lv),
                        value_of_float(*lf),
                        value_of_int(*rk),
                        value_of_int(*rv),
                    ]);
                }
            }
        }
        if !matched && join_type == JoinType::Left {
            want.push(vec![
                value_of_int(*lk),
                value_of_int(*lv),
                value_of_float(*lf),
                Value::Null,
                Value::Null,
            ]);
        }
    }
    got.sort_by_key(|r| join_key(r));
    want.sort_by_key(|r| join_key(r));
    assert_rows_match(&got, &want, "join");
}

// ---- Top-K ---------------------------------------------------------------

fn check_topk(rows: &[Row], k: usize) {
    let catalog = MemCatalog::new();
    register(&catalog, "t", rows);
    let plan = LogicalPlan::scan("t", &catalog)
        .unwrap()
        .sort(vec![desc(col("v")), asc(col("k"))])
        .limit(k);
    let got = execute(plan, &catalog, &ExecOptions::default())
        .unwrap()
        .to_rows();
    let mut want: Vec<Vec<Value>> = rows
        .iter()
        .map(|(k, v, f)| vec![value_of_int(*k), value_of_int(*v), value_of_float(*f)])
        .collect();
    // Stable sort mirrors the engine's tie behavior (input order preserved).
    want.sort_by(|a, b| match b[1].sql_cmp(&a[1]) {
        Ordering::Equal => a[0].sql_cmp(&b[0]),
        ord => ord,
    });
    want.truncate(k);
    assert_rows_match(&got, &want, "topk");
}

// ---- Properties ----------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn filter_matches_reference(rows in arbitrary_rows(160, 3), t in -100i64..100) {
        check_filter(&rows, t);
    }

    #[test]
    fn aggregate_matches_reference(rows in arbitrary_rows(160, 3)) {
        check_aggregate(&rows);
    }

    #[test]
    fn aggregate_matches_reference_null_heavy(rows in arbitrary_rows(120, 30)) {
        check_aggregate(&rows);
    }

    #[test]
    fn inner_join_matches_reference(
        left in arbitrary_rows(60, 3),
        right in arbitrary_rows(60, 3),
    ) {
        check_join(&left, &right, JoinType::Inner);
    }

    #[test]
    fn left_join_matches_reference(
        left in arbitrary_rows(60, 8),
        right in arbitrary_rows(60, 8),
    ) {
        check_join(&left, &right, JoinType::Left);
    }

    #[test]
    fn topk_matches_reference(rows in arbitrary_rows(160, 3), k in 0usize..20) {
        check_topk(&rows, k);
    }
}

// ---- Deterministic edge cases -------------------------------------------

#[test]
fn empty_selection_flows_through_every_operator() {
    // A predicate nothing satisfies: downstream kernels see batches whose
    // selection is empty and must still produce correct (empty/default) rows.
    let rows: Vec<Row> = (0..50).map(|i| (Some(i % 5), Some(i), None)).collect();
    let catalog = MemCatalog::new();
    register(&catalog, "t", &rows);

    let filtered = || {
        LogicalPlan::scan("t", &catalog)
            .unwrap()
            .filter(col("v").gt(lit(10_000i64)))
    };
    let out = execute(filtered(), &catalog, &ExecOptions::default()).unwrap();
    assert_eq!(out.num_rows(), 0);

    // Global aggregate over zero rows: COUNT = 0, SUM = NULL.
    let plan = filtered().aggregate(
        vec![],
        vec![count_star().alias("n"), sum(col("v")).alias("s")],
    );
    let out = execute(plan, &catalog, &ExecOptions::default()).unwrap();
    assert_eq!(out.to_rows(), vec![vec![Value::Int(0), Value::Null]]);

    // Keyed aggregate over zero rows: no groups at all.
    let plan = filtered().aggregate(vec![col("k")], vec![count_star().alias("n")]);
    let out = execute(plan, &catalog, &ExecOptions::default()).unwrap();
    assert_eq!(out.num_rows(), 0);

    // Join against an empty side and top-k over nothing.
    let plan = filtered().join_on(LogicalPlan::scan("t", &catalog).unwrap(), vec![("v", "v")]);
    let out = execute(plan, &catalog, &ExecOptions::default()).unwrap();
    assert_eq!(out.num_rows(), 0);
    let plan = filtered().sort(vec![asc(col("v"))]).limit(5);
    let out = execute(plan, &catalog, &ExecOptions::default()).unwrap();
    assert_eq!(out.num_rows(), 0);
}

// ---- Dictionary-encoded vs plain strings ---------------------------------

/// One generated string row: nullable low-cardinality tag, nullable int.
type SRow = (Option<String>, Option<i64>);

/// Register `rows` twice under `<stem>_plain` / `<stem>_dict`: identical
/// contents, but the dict twin's string column is dictionary-encoded. Any
/// plan must produce identical rows on both — encoding is purely physical.
fn register_string_pair(catalog: &MemCatalog, stem: &str, rows: &[SRow], sname: &str, vname: &str) {
    let schema = Schema::new(vec![
        Field::nullable(sname, DataType::Utf8),
        Field::nullable(vname, DataType::Int64),
    ]);
    let svals: Vec<Value> = rows
        .iter()
        .map(|(s, _)| s.clone().map(Value::str).unwrap_or(Value::Null))
        .collect();
    let vvals: Vec<Value> = rows.iter().map(|(_, v)| value_of_int(*v)).collect();
    let plain = Column::from_values(DataType::Utf8, &svals).expect("utf8 column");
    let dict = plain.dict_encode().expect("utf8 columns always encode");
    let ints = Column::from_values(DataType::Int64, &vvals).expect("int column");
    for (suffix, scol) in [("plain", plain), ("dict", dict)] {
        let mut table = Table::new(schema.clone());
        if !rows.is_empty() {
            let batch =
                RecordBatch::try_new(schema.clone(), vec![Arc::new(scol), Arc::new(ints.clone())])
                    .expect("columns match schema");
            table.push_sealed_batch(batch).expect("sealed batch");
        }
        catalog.register(format!("{stem}_{suffix}"), table);
    }
}

/// Run the same plan against the `_plain` twin and the `_{encoded_sfx}`
/// twin; encoded rows must match plain rows exactly (optionally
/// order-insensitively) — encoding is purely physical.
fn twins_match_sfx(
    catalog: &MemCatalog,
    stem: &str,
    encoded_sfx: &str,
    context: &str,
    sort: bool,
    make: &dyn Fn(&str) -> LogicalPlan,
) {
    let run = |sfx: &str| {
        let mut rows = execute(
            make(&format!("{stem}_{sfx}")),
            catalog,
            &ExecOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{context} on {stem}_{sfx}: {e}"))
        .to_rows();
        if sort {
            rows.sort_by_key(|r| join_key(r));
        }
        rows
    };
    let plain = run("plain");
    let encoded = run(encoded_sfx);
    assert_rows_match(&encoded, &plain, context);
}

/// Dict-twin shorthand for [`twins_match_sfx`].
fn twins_match(
    catalog: &MemCatalog,
    stem: &str,
    context: &str,
    sort: bool,
    make: &dyn Fn(&str) -> LogicalPlan,
) {
    twins_match_sfx(catalog, stem, "dict", context, sort, make);
}

/// Filters, aggregation, and top-k over a dict column vs its plain twin.
fn check_dict_vs_plain(rows: &[SRow]) {
    let catalog = MemCatalog::new();
    register_string_pair(&catalog, "t", rows, "s", "v");
    let scan = |name: &str| LogicalPlan::scan(name, &catalog).expect("table registered");

    // Accept-set comparison kernels: =, <>, range, LIKE, [NOT] IN.
    type PredFn = Box<dyn Fn() -> backbone_query::Expr>;
    let filters: Vec<(&str, PredFn)> = vec![
        ("s = lit", Box::new(|| col("s").eq(lit("birch")))),
        ("s <> lit", Box::new(|| col("s").not_eq(lit("cedar")))),
        ("s < lit", Box::new(|| col("s").lt(lit("birch")))),
        ("s LIKE prefix", Box::new(|| col("s").like("b%"))),
        ("s LIKE segmented", Box::new(|| col("s").like("%e%a%"))),
        (
            "s NOT LIKE underscore",
            Box::new(|| col("s").not_like("_sh")),
        ),
        (
            "s IN list",
            Box::new(|| col("s").in_list(vec![lit("ash"), lit("delta"), lit("absent")])),
        ),
        (
            "s NOT IN list",
            Box::new(|| col("s").not_in_list(vec![lit("birch"), lit("cedar")])),
        ),
    ];
    for (context, pred) in &filters {
        twins_match(&catalog, "t", context, false, &|n| scan(n).filter(pred()));
    }

    // Group-by on the dict key, with string min/max riding along.
    twins_match(&catalog, "t", "group by s", true, &|n| {
        scan(n).aggregate(
            vec![col("s")],
            vec![
                count_star().alias("n"),
                sum(col("v")).alias("sv"),
                min(col("s")).alias("mins"),
                max(col("s")).alias("maxs"),
            ],
        )
    });

    // Top-k gathers codes and late-materializes at the drain boundary.
    twins_match(&catalog, "t", "topk over dict", false, &|n| {
        scan(n).sort(vec![desc(col("v")), asc(col("s"))]).limit(7)
    });
}

/// Joins on string keys across every encoding combination: dict⋈dict (two
/// distinct dictionaries), dict⋈plain, plain⋈dict — all must equal plain⋈plain.
fn check_dict_join(left: &[SRow], right: &[SRow], join_type: JoinType) {
    let catalog = MemCatalog::new();
    register_string_pair(&catalog, "l", left, "s", "v");
    register_string_pair(&catalog, "r", right, "rs", "rv");
    let run = |ln: &str, rn: &str| {
        let plan = LogicalPlan::scan(ln, &catalog).unwrap().join(
            LogicalPlan::scan(rn, &catalog).unwrap(),
            vec![("s", "rs")],
            join_type,
        );
        let mut rows = execute(plan, &catalog, &ExecOptions::default())
            .unwrap_or_else(|e| panic!("join {ln} x {rn}: {e}"))
            .to_rows();
        rows.sort_by_key(|r| join_key(r));
        rows
    };
    let base = run("l_plain", "r_plain");
    for (ln, rn) in [
        ("l_dict", "r_dict"),
        ("l_dict", "r_plain"),
        ("l_plain", "r_dict"),
    ] {
        assert_rows_match(&run(ln, rn), &base, &format!("join {ln} x {rn}"));
    }
}

fn tag() -> impl Strategy<Value = String> {
    prop_oneof![Just("ash"), Just("birch"), Just("cedar"), Just("delta")].prop_map(str::to_owned)
}

fn arbitrary_srows(max_len: usize, null_weight: u32) -> impl Strategy<Value = Vec<SRow>> {
    let cell = (maybe(null_weight, tag()), maybe(3, -50i64..50));
    proptest::collection::vec(cell, 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dict_execution_matches_plain(rows in arbitrary_srows(120, 3)) {
        check_dict_vs_plain(&rows);
    }

    #[test]
    fn dict_execution_matches_plain_null_heavy(rows in arbitrary_srows(80, 30)) {
        check_dict_vs_plain(&rows);
    }

    #[test]
    fn dict_inner_join_matches_plain(
        left in arbitrary_srows(60, 3),
        right in arbitrary_srows(60, 3),
    ) {
        check_dict_join(&left, &right, JoinType::Inner);
    }

    #[test]
    fn dict_left_join_matches_plain(
        left in arbitrary_srows(50, 8),
        right in arbitrary_srows(50, 8),
    ) {
        check_dict_join(&left, &right, JoinType::Left);
    }
}

#[test]
fn all_duplicate_dict_batch_matches_plain() {
    // One distinct entry: every accept-set collapses to a single lane answer
    // and group-by produces exactly one (or two, with NULLs) groups.
    let rows: Vec<SRow> = (0..100)
        .map(|i| {
            let s = (i % 9 != 0).then(|| "same".to_string());
            (s, Some(i % 7))
        })
        .collect();
    check_dict_vs_plain(&rows);
    check_dict_join(&rows, &rows, JoinType::Inner);
}

#[test]
fn empty_selection_flows_through_dict_operators() {
    // A predicate no dictionary entry satisfies: the accept-set is all-false
    // and downstream operators see empty selections over encoded columns.
    let rows: Vec<SRow> = (0..64)
        .map(|i| (Some(format!("tag-{}", i % 4)), Some(i)))
        .collect();
    let catalog = MemCatalog::new();
    register_string_pair(&catalog, "t", &rows, "s", "v");
    let filtered = |n: &str| {
        LogicalPlan::scan(n, &catalog)
            .unwrap()
            .filter(col("s").eq(lit("absent")))
    };
    for plan in [
        filtered("t_dict"),
        filtered("t_dict").aggregate(vec![col("s")], vec![count_star().alias("n")]),
        filtered("t_dict").sort(vec![asc(col("s"))]).limit(5),
    ] {
        let out = execute(plan, &catalog, &ExecOptions::default()).unwrap();
        assert_eq!(out.num_rows(), 0);
    }
    twins_match(&catalog, "t", "empty selection aggregate", true, &|n| {
        filtered(n).aggregate(vec![col("s")], vec![count_star().alias("n")])
    });
}

// ---- Encoded integers vs plain -------------------------------------------

/// Register `rows` twice under `<stem>_plain` / `<stem>_enc`: identical
/// contents, but the enc twin's two integer columns are sealed as
/// [`Column::Int64Encoded`] (RLE or frame-of-reference bit-packing, chosen
/// per column by size). Any plan must produce identical rows on both.
fn register_encoded_pair(
    catalog: &MemCatalog,
    stem: &str,
    rows: &[Row],
    names: (&str, &str, &str),
) {
    let schema = Schema::new(vec![
        Field::nullable(names.0, DataType::Int64),
        Field::nullable(names.1, DataType::Int64),
        Field::nullable(names.2, DataType::Float64),
    ]);
    let kvals: Vec<Value> = rows.iter().map(|(k, _, _)| value_of_int(*k)).collect();
    let vvals: Vec<Value> = rows.iter().map(|(_, v, _)| value_of_int(*v)).collect();
    let fvals: Vec<Value> = rows.iter().map(|(_, _, f)| value_of_float(*f)).collect();
    let kcol = Column::from_values(DataType::Int64, &kvals).expect("int column");
    let vcol = Column::from_values(DataType::Int64, &vvals).expect("int column");
    let fcol = Column::from_values(DataType::Float64, &fvals).expect("float column");
    let kenc = kcol.int64_encode().expect("plain int columns encode");
    let venc = vcol.int64_encode().expect("plain int columns encode");
    for (suffix, kc, vc) in [("plain", kcol, vcol), ("enc", kenc, venc)] {
        let mut table = Table::new(schema.clone());
        if !rows.is_empty() {
            let batch = RecordBatch::try_new(
                schema.clone(),
                vec![Arc::new(kc), Arc::new(vc), Arc::new(fcol.clone())],
            )
            .expect("columns match schema");
            table.push_sealed_batch(batch).expect("sealed batch");
        }
        catalog.register(format!("{stem}_{suffix}"), table);
    }
}

/// Filters, aggregation, and top-k over encoded int columns vs plain twins.
fn check_encoded_vs_plain(rows: &[Row]) {
    let catalog = MemCatalog::new();
    register_encoded_pair(&catalog, "t", rows, ("k", "v", "f"));
    let scan = |name: &str| LogicalPlan::scan(name, &catalog).expect("table registered");

    type PredFn = Box<dyn Fn() -> backbone_query::Expr>;
    let filters: Vec<(&str, PredFn)> = vec![
        ("v >= lit", Box::new(|| col("v").gt_eq(lit(0i64)))),
        ("v = lit", Box::new(|| col("v").eq(lit(7i64)))),
        ("v <> lit", Box::new(|| col("v").not_eq(lit(3i64)))),
        ("k < lit", Box::new(|| col("k").lt(lit(2i64)))),
        (
            "v IN list",
            Box::new(|| col("v").in_list(vec![lit(1i64), lit(-4i64), lit(99i64)])),
        ),
        (
            "conjunction over both encoded columns",
            Box::new(|| col("k").gt_eq(lit(-2i64)).and(col("v").lt(lit(50i64)))),
        ),
    ];
    for (context, pred) in &filters {
        twins_match_sfx(&catalog, "t", "enc", context, false, &|n| {
            scan(n).filter(pred())
        });
    }

    // Group by the encoded key with the full accumulator set riding along.
    twins_match_sfx(&catalog, "t", "enc", "group by encoded k", true, &|n| {
        scan(n).aggregate(
            vec![col("k")],
            vec![
                count_star().alias("n"),
                count(col("v")).alias("nv"),
                sum(col("v")).alias("sv"),
                min(col("v")).alias("minv"),
                max(col("v")).alias("maxv"),
                avg(col("f")).alias("af"),
            ],
        )
    });

    // Top-k orders on the encoded value column.
    twins_match_sfx(&catalog, "t", "enc", "topk over encoded v", false, &|n| {
        scan(n).sort(vec![desc(col("v")), asc(col("k"))]).limit(7)
    });
}

/// Joins on encoded int keys across every encoding combination: enc⋈enc,
/// enc⋈plain, plain⋈enc — all must equal plain⋈plain.
fn check_encoded_join(left: &[Row], right: &[Row], join_type: JoinType) {
    let catalog = MemCatalog::new();
    register_encoded_pair(&catalog, "l", left, ("k", "v", "f"));
    register_encoded_pair(&catalog, "r", right, ("rk", "rv", "rf"));
    let run = |ln: &str, rn: &str| {
        let plan = LogicalPlan::scan(ln, &catalog).unwrap().join(
            LogicalPlan::scan(rn, &catalog).unwrap(),
            vec![("k", "rk")],
            join_type,
        );
        let mut rows = execute(plan, &catalog, &ExecOptions::default())
            .unwrap_or_else(|e| panic!("join {ln} x {rn}: {e}"))
            .to_rows();
        rows.sort_by_key(|r| join_key(r));
        rows
    };
    let base = run("l_plain", "r_plain");
    for (ln, rn) in [
        ("l_enc", "r_enc"),
        ("l_enc", "r_plain"),
        ("l_plain", "r_enc"),
    ] {
        assert_rows_match(&run(ln, rn), &base, &format!("join {ln} x {rn}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn encoded_execution_matches_plain(rows in arbitrary_rows(120, 3)) {
        check_encoded_vs_plain(&rows);
    }

    #[test]
    fn encoded_execution_matches_plain_null_heavy(rows in arbitrary_rows(80, 30)) {
        check_encoded_vs_plain(&rows);
    }

    #[test]
    fn encoded_inner_join_matches_plain(
        left in arbitrary_rows(60, 3),
        right in arbitrary_rows(60, 3),
    ) {
        check_encoded_join(&left, &right, JoinType::Inner);
    }

    #[test]
    fn encoded_left_join_matches_plain(
        left in arbitrary_rows(50, 8),
        right in arbitrary_rows(50, 8),
    ) {
        check_encoded_join(&left, &right, JoinType::Left);
    }
}

#[test]
fn run_heavy_and_churn_encodings_match_plain() {
    // Long runs pick RLE (kernels then evaluate per run); high churn over a
    // small range picks bit-packing. Both must be invisible in results.
    let runs: Vec<Row> = (0..200)
        .map(|i| (Some(i / 40), Some(i / 25), Some(i as f64)))
        .collect();
    check_encoded_vs_plain(&runs);
    let churn: Vec<Row> = (0..200)
        .map(|i| (Some(i % 7), Some(i * 31 % 64), None))
        .collect();
    check_encoded_vs_plain(&churn);
    check_encoded_join(&runs, &churn, JoinType::Inner);
}

#[test]
fn empty_selection_flows_through_encoded_operators() {
    // A predicate nothing satisfies: downstream operators see empty
    // selections over encoded columns.
    let rows: Vec<Row> = (0..64).map(|i| (Some(i % 4), Some(i), None)).collect();
    let catalog = MemCatalog::new();
    register_encoded_pair(&catalog, "t", &rows, ("k", "v", "f"));
    let filtered = |n: &str| {
        LogicalPlan::scan(n, &catalog)
            .unwrap()
            .filter(col("v").gt(lit(10_000i64)))
    };
    for plan in [
        filtered("t_enc"),
        filtered("t_enc").aggregate(vec![col("k")], vec![count_star().alias("n")]),
        filtered("t_enc").sort(vec![asc(col("v"))]).limit(5),
    ] {
        let out = execute(plan, &catalog, &ExecOptions::default()).unwrap();
        assert_eq!(out.num_rows(), 0);
    }
    twins_match_sfx(
        &catalog,
        "t",
        "enc",
        "empty selection aggregate",
        true,
        &|n| filtered(n).aggregate(vec![col("k")], vec![count_star().alias("n")]),
    );
}

// ---- Parallel vs serial --------------------------------------------------
//
// Morsel-driven execution must be invisible in results: the same plan runs
// serially and at parallelism 1/2/8, and the (sorted) rows must be
// identical. Row groups are kept small so parallel scans see many morsels.

fn register_small_groups(catalog: &MemCatalog, name: &str, rows: &[Row]) {
    let schema = Schema::new(vec![
        Field::nullable("k", DataType::Int64),
        Field::nullable("v", DataType::Int64),
        Field::nullable("f", DataType::Float64),
    ]);
    let mut table = Table::with_group_size(schema, 32);
    for (k, v, f) in rows {
        table
            .append_row(vec![value_of_int(*k), value_of_int(*v), value_of_float(*f)])
            .expect("schema matches");
    }
    table.flush().expect("in-memory flush");
    catalog.register(name, table);
}

/// Execute `make()` serially and at worker counts 1/2/8; all runs must
/// produce the same sorted rows.
fn parallel_matches_serial(catalog: &MemCatalog, context: &str, make: &dyn Fn() -> LogicalPlan) {
    let run = |p: Parallelism| {
        let mut rows = execute(make(), catalog, &ExecOptions::serial().parallel(p))
            .unwrap_or_else(|e| panic!("{context} at {p:?}: {e}"))
            .to_rows();
        rows.sort_by_key(|r| join_key(r));
        rows
    };
    let serial = run(Parallelism::Serial);
    for p in [
        Parallelism::Fixed(1),
        Parallelism::Fixed(2),
        Parallelism::Fixed(8),
    ] {
        assert_rows_match(&run(p), &serial, &format!("{context} at {p:?}"));
    }
}

fn check_parallel(rows: &[Row], threshold: i64, k: usize) {
    let catalog = MemCatalog::new();
    register_small_groups(&catalog, "t", rows);
    let scan = || LogicalPlan::scan("t", &catalog).expect("registered");

    parallel_matches_serial(&catalog, "parallel filter", &|| {
        scan().filter(col("v").gt_eq(lit(threshold)))
    });
    parallel_matches_serial(&catalog, "parallel group-by", &|| {
        scan().aggregate(
            vec![col("k")],
            vec![
                count_star().alias("n"),
                count(col("v")).alias("nv"),
                sum(col("v")).alias("sv"),
                min(col("v")).alias("minv"),
                max(col("v")).alias("maxv"),
                avg(col("f")).alias("af"),
            ],
        )
    });
    parallel_matches_serial(&catalog, "parallel global agg", &|| {
        scan().aggregate(
            vec![],
            vec![count_star().alias("n"), sum(col("v")).alias("sv")],
        )
    });
    // Sort keys cover every column so the k-boundary is total-ordered and
    // serial/parallel keep the identical row set.
    parallel_matches_serial(&catalog, "parallel topk", &|| {
        scan()
            .sort(vec![desc(col("v")), asc(col("k")), asc(col("f"))])
            .limit(k)
    });
}

fn check_parallel_join(left: &[Row], right: &[Row], join_type: JoinType) {
    let catalog = MemCatalog::new();
    register_small_groups(&catalog, "l", left);
    let schema = Schema::new(vec![
        Field::nullable("rk", DataType::Int64),
        Field::nullable("rv", DataType::Int64),
    ]);
    let mut table = Table::with_group_size(schema, 32);
    for (k, v, _) in right {
        table
            .append_row(vec![value_of_int(*k), value_of_int(*v)])
            .expect("schema matches");
    }
    table.flush().expect("in-memory flush");
    catalog.register("r", table);
    parallel_matches_serial(&catalog, "parallel join", &|| {
        LogicalPlan::scan("l", &catalog).unwrap().join(
            LogicalPlan::scan("r", &catalog).unwrap(),
            vec![("k", "rk")],
            join_type,
        )
    });
}

/// Dict-encoded pipelines under parallel execution: group-by, filter, join
/// on the dictionary twin at every worker count.
fn check_parallel_dict(rows: &[SRow]) {
    let catalog = MemCatalog::new();
    register_string_pair(&catalog, "t", rows, "s", "v");
    register_string_pair(&catalog, "r", rows, "rs", "rv");
    let scan = |n: &str| LogicalPlan::scan(n, &catalog).expect("registered");
    parallel_matches_serial(&catalog, "parallel dict filter", &|| {
        scan("t_dict").filter(col("s").like("b%"))
    });
    parallel_matches_serial(&catalog, "parallel dict group-by", &|| {
        scan("t_dict").aggregate(
            vec![col("s")],
            vec![
                count_star().alias("n"),
                sum(col("v")).alias("sv"),
                min(col("s")).alias("mins"),
                max(col("s")).alias("maxs"),
            ],
        )
    });
    parallel_matches_serial(&catalog, "parallel dict join", &|| {
        scan("t_dict").join(scan("r_dict"), vec![("s", "rs")], JoinType::Inner)
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_execution_matches_serial(
        rows in arbitrary_rows(160, 3),
        t in -100i64..100,
        k in 0usize..20,
    ) {
        check_parallel(&rows, t, k);
    }

    #[test]
    fn parallel_execution_matches_serial_null_heavy(
        rows in arbitrary_rows(120, 30),
        t in -100i64..100,
        k in 0usize..20,
    ) {
        check_parallel(&rows, t, k);
    }

    #[test]
    fn parallel_inner_join_matches_serial(
        left in arbitrary_rows(60, 3),
        right in arbitrary_rows(60, 3),
    ) {
        check_parallel_join(&left, &right, JoinType::Inner);
    }

    #[test]
    fn parallel_left_join_matches_serial(
        left in arbitrary_rows(60, 8),
        right in arbitrary_rows(60, 8),
    ) {
        check_parallel_join(&left, &right, JoinType::Left);
    }

    #[test]
    fn parallel_dict_execution_matches_serial(rows in arbitrary_srows(100, 6)) {
        check_parallel_dict(&rows);
    }
}

#[test]
fn parallel_empty_selection_flows_through_every_operator() {
    // A predicate nothing satisfies, at every worker count: downstream
    // parallel operators see batches with empty selections (or none at all).
    let rows: Vec<Row> = (0..120).map(|i| (Some(i % 5), Some(i), None)).collect();
    let catalog = MemCatalog::new();
    register_small_groups(&catalog, "t", &rows);
    let filtered = || {
        LogicalPlan::scan("t", &catalog)
            .unwrap()
            .filter(col("v").gt(lit(10_000i64)))
    };
    parallel_matches_serial(&catalog, "parallel empty filter", &filtered);
    parallel_matches_serial(&catalog, "parallel empty global agg", &|| {
        filtered().aggregate(
            vec![],
            vec![count_star().alias("n"), sum(col("v")).alias("s")],
        )
    });
    parallel_matches_serial(&catalog, "parallel empty group-by", &|| {
        filtered().aggregate(vec![col("k")], vec![count_star().alias("n")])
    });
    parallel_matches_serial(&catalog, "parallel empty topk", &|| {
        filtered().sort(vec![asc(col("v"))]).limit(5)
    });
}

#[test]
fn parallel_auto_runs_and_matches_serial() {
    // Auto resolves to the machine's core count (serial on 1 vCPU); either
    // way results must be identical to the serial plan.
    let rows: Vec<Row> = (0..200)
        .map(|i| (Some(i % 7), Some(i * 3 % 101), Some(i as f64 / 3.0)))
        .collect();
    let catalog = MemCatalog::new();
    register_small_groups(&catalog, "t", &rows);
    let plan = || {
        LogicalPlan::scan("t", &catalog)
            .unwrap()
            .aggregate(vec![col("k")], vec![sum(col("v")).alias("sv")])
    };
    let sorted = |opts: &ExecOptions| {
        let mut rows = execute(plan(), &catalog, opts).unwrap().to_rows();
        rows.sort_by_key(|r| join_key(r));
        rows
    };
    let serial = sorted(&ExecOptions::serial());
    let auto = sorted(&ExecOptions::serial().parallel(Parallelism::Auto));
    assert_rows_match(&auto, &serial, "parallel auto");
}

#[test]
fn all_null_keys_aggregate_to_one_group() {
    let rows: Vec<Row> = (0..40).map(|i| (None, Some(i), Some(i as f64))).collect();
    check_aggregate(&rows);
    let catalog = MemCatalog::new();
    register(&catalog, "t", &rows);
    let plan = LogicalPlan::scan("t", &catalog)
        .unwrap()
        .aggregate(vec![col("k")], vec![count_star().alias("n")]);
    let out = execute(plan, &catalog, &ExecOptions::default()).unwrap();
    assert_eq!(out.to_rows(), vec![vec![Value::Null, Value::Int(40)]]);
}

// ---- Out-of-core: tiny memory budgets force spills ------------------------
//
// The same plans run unbudgeted (serial), budget-capped serial, and
// budget-capped Fixed(4); all three must produce identical sorted rows, and
// the capped runs must actually go through the spill path.

/// Run `make()` under each option set and compare sorted rows to the first.
fn budget_matches_unbudgeted(
    catalog: &MemCatalog,
    context: &str,
    budget: usize,
    make: &dyn Fn() -> LogicalPlan,
) -> backbone_storage::Metrics {
    let spill_metrics = backbone_storage::Metrics::new();
    let run = |opts: &ExecOptions| {
        let mut rows = execute(make(), catalog, opts)
            .unwrap_or_else(|e| panic!("{context}: {e}"))
            .to_rows();
        rows.sort_by_key(|r| join_key(r));
        rows
    };
    let base = run(&ExecOptions::serial());
    let serial_capped = run(&ExecOptions::serial()
        .with_mem_budget(budget)
        .with_metrics(spill_metrics.clone()));
    assert_rows_match(
        &serial_capped,
        &base,
        &format!("{context} (serial, capped)"),
    );
    let parallel_capped = run(&ExecOptions::serial()
        .parallel(Parallelism::Fixed(4))
        .with_mem_budget(budget)
        .with_metrics(spill_metrics.clone()));
    assert_rows_match(
        &parallel_capped,
        &base,
        &format!("{context} (Fixed(4), capped)"),
    );
    spill_metrics
}

fn check_spill_equivalence(rows: &[Row], right: &[Row]) {
    let catalog = MemCatalog::new();
    register_small_groups(&catalog, "t", rows);
    let schema = Schema::new(vec![
        Field::nullable("rk", DataType::Int64),
        Field::nullable("rv", DataType::Int64),
    ]);
    let mut table = Table::with_group_size(schema, 32);
    for (k, v, _) in right {
        table
            .append_row(vec![value_of_int(*k), value_of_int(*v)])
            .expect("schema matches");
    }
    table.flush().expect("in-memory flush");
    catalog.register("r", table);
    let scan = |n: &str| LogicalPlan::scan(n, &catalog).expect("registered");

    budget_matches_unbudgeted(&catalog, "spilling group-by", 2048, &|| {
        scan("t").aggregate(
            vec![col("k")],
            vec![
                count_star().alias("n"),
                sum(col("v")).alias("sv"),
                min(col("v")).alias("minv"),
                max(col("v")).alias("maxv"),
            ],
        )
    });
    budget_matches_unbudgeted(&catalog, "spilling join", 2048, &|| {
        scan("t").join(scan("r"), vec![("k", "rk")], JoinType::Inner)
    });
    budget_matches_unbudgeted(&catalog, "spilling left join", 2048, &|| {
        scan("t").join(scan("r"), vec![("k", "rk")], JoinType::Left)
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn budgeted_execution_matches_unbudgeted(
        rows in arbitrary_rows(160, 3),
        right in arbitrary_rows(80, 3),
    ) {
        check_spill_equivalence(&rows, &right);
    }

    #[test]
    fn budgeted_execution_matches_unbudgeted_null_heavy(
        rows in arbitrary_rows(120, 30),
        right in arbitrary_rows(60, 30),
    ) {
        check_spill_equivalence(&rows, &right);
    }
}

#[test]
fn tiny_budget_actually_spills_and_stays_correct() {
    // Deterministic shape big enough that a 2 KiB ceiling must spill both
    // the aggregate and the join build side.
    let rows: Vec<Row> = (0..600)
        .map(|i| (Some(i % 151), Some(i * 7 % 509), Some(i as f64 / 3.0)))
        .collect();
    let right: Vec<Row> = (0..300).map(|i| (Some(i % 173), Some(i), None)).collect();
    let catalog = MemCatalog::new();
    register_small_groups(&catalog, "t", &rows);
    let rschema = Schema::new(vec![
        Field::nullable("rk", DataType::Int64),
        Field::nullable("rv", DataType::Int64),
    ]);
    let mut rtable = Table::with_group_size(rschema, 32);
    for (k, v, _) in &right {
        rtable
            .append_row(vec![value_of_int(*k), value_of_int(*v)])
            .expect("schema matches");
    }
    rtable.flush().expect("in-memory flush");
    catalog.register("r2", rtable);
    let scan = |n: &str| LogicalPlan::scan(n, &catalog).expect("registered");

    let m = budget_matches_unbudgeted(&catalog, "forced spill group-by", 2048, &|| {
        scan("t").aggregate(
            vec![col("k")],
            vec![count_star().alias("n"), sum(col("v")).alias("sv")],
        )
    });
    assert!(
        m.value("storage.spill.partitions") > 0,
        "600 rows over 151 groups under 2 KiB must spill"
    );
    assert!(m.value("storage.spill.bytes_read") > 0);

    let m = budget_matches_unbudgeted(&catalog, "forced spill join", 2048, &|| {
        scan("t").join(scan("r2"), vec![("k", "rk")], JoinType::Inner)
    });
    assert!(
        m.value("storage.spill.partitions") > 0,
        "a 600-row build side under 2 KiB must grace-partition"
    );
}
