//! Concurrent multi-session property tests: M writer sessions and N reader
//! sessions share one database, and every reader observation must be a
//! consistent snapshot.
//!
//! The invariants, checked continuously while writers churn:
//!
//! - **prefix consistency**: each writer appends an ordered stream of rows;
//!   any reader query sees a contiguous prefix of every writer's stream —
//!   never a hole, never a reordering;
//! - **no torn inserts**: writers insert in multi-row batches; a reader
//!   sees a batch entirely or not at all;
//! - **snapshot stability**: a query pinned to an explicit epoch returns
//!   the identical answer no matter how much commits after the pin;
//! - **freshness**: once every writer has finished, a new snapshot sees
//!   everything.

use backbone_core::Database;
use backbone_query::ExecOptions;
use backbone_storage::{DataType, Field, Schema, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const BATCH: usize = 3;

fn stream_schema() -> Arc<Schema> {
    Schema::new(vec![
        Field::new("writer", DataType::Int64),
        Field::new("seq", DataType::Int64),
    ])
}

/// The `seq` values reader saw, grouped per writer.
fn observed_seqs(rows: &[Vec<Value>], writers: usize) -> Vec<Vec<i64>> {
    let mut per_writer = vec![Vec::new(); writers];
    for row in rows {
        let (Value::Int(w), Value::Int(s)) = (&row[0], &row[1]) else {
            panic!("non-int cells in stream row: {row:?}");
        };
        per_writer[*w as usize].push(*s);
    }
    per_writer
}

/// Assert one observation is snapshot-consistent: every writer's stream is
/// a contiguous, batch-aligned prefix.
fn assert_consistent(rows: &[Vec<Value>], writers: usize, label: &str) {
    for (w, mut seqs) in observed_seqs(rows, writers).into_iter().enumerate() {
        // Scans may interleave row groups from different commits, but the
        // *set* of visible seqs is what snapshot semantics promise.
        seqs.sort_unstable();
        let expect: Vec<i64> = (0..seqs.len() as i64).collect();
        assert_eq!(
            seqs, expect,
            "{label}: writer {w} stream has a hole or duplicate"
        );
        assert_eq!(
            seqs.len() % BATCH,
            0,
            "{label}: writer {w} shows a torn {BATCH}-row batch ({} rows)",
            seqs.len()
        );
    }
}

#[test]
fn readers_see_prefix_consistent_snapshots_while_writers_churn() {
    let writers = 4;
    let readers = 3;
    let batches_per_writer = 30;

    let db = Database::new();
    db.create_table("stream", stream_schema()).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let reader_handles: Vec<_> = (0..readers)
        .map(|_| {
            let session = db.session();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut observations = 0usize;
                let mut max_seen = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let rows = session
                        .sql("SELECT writer, seq FROM stream")
                        .unwrap()
                        .to_rows();
                    assert_consistent(&rows, writers, "live reader");
                    max_seen = max_seen.max(rows.len());
                    observations += 1;
                }
                (observations, max_seen)
            })
        })
        .collect();

    let writer_handles: Vec<_> = (0..writers)
        .map(|w| {
            let session = db.session();
            std::thread::spawn(move || {
                for b in 0..batches_per_writer {
                    let rows = (0..BATCH)
                        .map(|i| vec![Value::Int(w as i64), Value::Int((b * BATCH + i) as i64)])
                        .collect();
                    session.insert("stream", rows).unwrap();
                }
            })
        })
        .collect();
    for h in writer_handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for h in reader_handles {
        let (observations, max_seen) = h.join().unwrap();
        assert!(observations > 0, "reader thread never got a query in");
        assert!(max_seen <= writers * batches_per_writer * BATCH);
    }

    // Freshness: with all writers done, a new snapshot sees every row.
    let rows = db.sql("SELECT writer, seq FROM stream").unwrap().to_rows();
    assert_eq!(rows.len(), writers * batches_per_writer * BATCH);
    assert_consistent(&rows, writers, "final read");
}

#[test]
fn pinned_snapshot_is_immune_to_later_commits() {
    let db = Database::new();
    db.create_table("stream", stream_schema()).unwrap();
    db.insert(
        "stream",
        (0..BATCH)
            .map(|i| vec![Value::Int(0), Value::Int(i as i64)])
            .collect(),
    )
    .unwrap();

    let session = db.session();
    let pin = session.pin_snapshot();
    let at_pin = ExecOptions::serial().at_snapshot(pin.epoch());
    let before = db
        .execute_with(db.query("stream").unwrap(), &at_pin)
        .unwrap()
        .to_rows();
    assert_eq!(before.len(), BATCH);

    // Concurrent churn after the pin.
    let handles: Vec<_> = (1..4)
        .map(|w| {
            let session = db.session();
            std::thread::spawn(move || {
                for b in 0..10 {
                    let rows = (0..BATCH)
                        .map(|i| vec![Value::Int(w as i64), Value::Int((b * BATCH + i) as i64)])
                        .collect();
                    session.insert("stream", rows).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // The pinned epoch still answers exactly as before the churn...
    let after = db
        .execute_with(db.query("stream").unwrap(), &at_pin)
        .unwrap()
        .to_rows();
    assert_eq!(before, after, "pinned snapshot drifted under churn");
    drop(pin);
    // ...while an unpinned query sees all of it.
    assert_eq!(db.row_count("stream"), Some(BATCH + 3 * 10 * BATCH));
    let fresh = db.sql("SELECT writer, seq FROM stream").unwrap();
    assert_eq!(fresh.num_rows(), BATCH + 3 * 10 * BATCH);
}

#[test]
fn session_snapshots_compose_with_aggregates_and_filters() {
    // A reader aggregating under churn must count whole batches: COUNT(*)
    // runs over the same clamped scan as a plain select.
    let writers = 3;
    let db = Database::new();
    db.create_table("stream", stream_schema()).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let agg_reader = {
        let session = db.session();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let out = session.sql("SELECT COUNT(*) AS n FROM stream").unwrap();
                let n = match out.row(0)[0] {
                    Value::Int(n) => n as usize,
                    ref v => panic!("count returned {v:?}"),
                };
                assert_eq!(n % BATCH, 0, "aggregate saw a torn batch: {n} rows");
            }
        })
    };
    let writer_handles: Vec<_> = (0..writers)
        .map(|w| {
            let session = db.session();
            std::thread::spawn(move || {
                for b in 0..25 {
                    let rows = (0..BATCH)
                        .map(|i| vec![Value::Int(w as i64), Value::Int((b * BATCH + i) as i64)])
                        .collect();
                    session.insert("stream", rows).unwrap();
                }
            })
        })
        .collect();
    for h in writer_handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    agg_reader.join().unwrap();

    let out = db
        .sql("SELECT writer, COUNT(*) AS n FROM stream GROUP BY writer ORDER BY writer")
        .unwrap();
    assert_eq!(out.num_rows(), writers);
    for i in 0..writers {
        assert_eq!(out.row(i)[1], Value::Int((25 * BATCH) as i64));
    }
}
