//! Concurrent multi-session property tests: M writer sessions and N reader
//! sessions share one database, and every reader observation must be a
//! consistent snapshot.
//!
//! The invariants, checked continuously while writers churn:
//!
//! - **prefix consistency**: each writer appends an ordered stream of rows;
//!   any reader query sees a contiguous prefix of every writer's stream —
//!   never a hole, never a reordering;
//! - **no torn inserts**: writers insert in multi-row batches; a reader
//!   sees a batch entirely or not at all;
//! - **snapshot stability**: a query pinned to an explicit epoch returns
//!   the identical answer no matter how much commits after the pin;
//! - **freshness**: once every writer has finished, a new snapshot sees
//!   everything.

use backbone_core::Database;
use backbone_query::ExecOptions;
use backbone_storage::{DataType, Field, Schema, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const BATCH: usize = 3;

fn stream_schema() -> Arc<Schema> {
    Schema::new(vec![
        Field::new("writer", DataType::Int64),
        Field::new("seq", DataType::Int64),
    ])
}

/// The `seq` values reader saw, grouped per writer.
fn observed_seqs(rows: &[Vec<Value>], writers: usize) -> Vec<Vec<i64>> {
    let mut per_writer = vec![Vec::new(); writers];
    for row in rows {
        let (Value::Int(w), Value::Int(s)) = (&row[0], &row[1]) else {
            panic!("non-int cells in stream row: {row:?}");
        };
        per_writer[*w as usize].push(*s);
    }
    per_writer
}

/// Assert one observation is snapshot-consistent: every writer's stream is
/// a contiguous, batch-aligned prefix.
fn assert_consistent(rows: &[Vec<Value>], writers: usize, label: &str) {
    for (w, mut seqs) in observed_seqs(rows, writers).into_iter().enumerate() {
        // Scans may interleave row groups from different commits, but the
        // *set* of visible seqs is what snapshot semantics promise.
        seqs.sort_unstable();
        let expect: Vec<i64> = (0..seqs.len() as i64).collect();
        assert_eq!(
            seqs, expect,
            "{label}: writer {w} stream has a hole or duplicate"
        );
        assert_eq!(
            seqs.len() % BATCH,
            0,
            "{label}: writer {w} shows a torn {BATCH}-row batch ({} rows)",
            seqs.len()
        );
    }
}

#[test]
fn readers_see_prefix_consistent_snapshots_while_writers_churn() {
    let writers = 4;
    let readers = 3;
    let batches_per_writer = 30;

    let db = Database::new();
    db.create_table("stream", stream_schema()).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let reader_handles: Vec<_> = (0..readers)
        .map(|_| {
            let session = db.session();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut observations = 0usize;
                let mut max_seen = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let rows = session
                        .sql("SELECT writer, seq FROM stream")
                        .unwrap()
                        .to_rows();
                    assert_consistent(&rows, writers, "live reader");
                    max_seen = max_seen.max(rows.len());
                    observations += 1;
                }
                (observations, max_seen)
            })
        })
        .collect();

    let writer_handles: Vec<_> = (0..writers)
        .map(|w| {
            let session = db.session();
            std::thread::spawn(move || {
                for b in 0..batches_per_writer {
                    let rows = (0..BATCH)
                        .map(|i| vec![Value::Int(w as i64), Value::Int((b * BATCH + i) as i64)])
                        .collect();
                    session.insert("stream", rows).unwrap();
                }
            })
        })
        .collect();
    for h in writer_handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for h in reader_handles {
        let (observations, max_seen) = h.join().unwrap();
        assert!(observations > 0, "reader thread never got a query in");
        assert!(max_seen <= writers * batches_per_writer * BATCH);
    }

    // Freshness: with all writers done, a new snapshot sees every row.
    let rows = db.sql("SELECT writer, seq FROM stream").unwrap().to_rows();
    assert_eq!(rows.len(), writers * batches_per_writer * BATCH);
    assert_consistent(&rows, writers, "final read");
}

#[test]
fn pinned_snapshot_is_immune_to_later_commits() {
    let db = Database::new();
    db.create_table("stream", stream_schema()).unwrap();
    db.insert(
        "stream",
        (0..BATCH)
            .map(|i| vec![Value::Int(0), Value::Int(i as i64)])
            .collect(),
    )
    .unwrap();

    let session = db.session();
    let pin = session.pin_snapshot();
    let at_pin = ExecOptions::serial().at_snapshot(pin.epoch());
    let before = db
        .execute_with(db.query("stream").unwrap(), &at_pin)
        .unwrap()
        .to_rows();
    assert_eq!(before.len(), BATCH);

    // Concurrent churn after the pin.
    let handles: Vec<_> = (1..4)
        .map(|w| {
            let session = db.session();
            std::thread::spawn(move || {
                for b in 0..10 {
                    let rows = (0..BATCH)
                        .map(|i| vec![Value::Int(w as i64), Value::Int((b * BATCH + i) as i64)])
                        .collect();
                    session.insert("stream", rows).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // The pinned epoch still answers exactly as before the churn...
    let after = db
        .execute_with(db.query("stream").unwrap(), &at_pin)
        .unwrap()
        .to_rows();
    assert_eq!(before, after, "pinned snapshot drifted under churn");
    drop(pin);
    // ...while an unpinned query sees all of it.
    assert_eq!(db.row_count("stream"), Some(BATCH + 3 * 10 * BATCH));
    let fresh = db.sql("SELECT writer, seq FROM stream").unwrap();
    assert_eq!(fresh.num_rows(), BATCH + 3 * 10 * BATCH);
}

#[test]
fn session_snapshots_compose_with_aggregates_and_filters() {
    // A reader aggregating under churn must count whole batches: COUNT(*)
    // runs over the same clamped scan as a plain select.
    let writers = 3;
    let db = Database::new();
    db.create_table("stream", stream_schema()).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let agg_reader = {
        let session = db.session();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let out = session.sql("SELECT COUNT(*) AS n FROM stream").unwrap();
                let n = match out.row(0)[0] {
                    Value::Int(n) => n as usize,
                    ref v => panic!("count returned {v:?}"),
                };
                assert_eq!(n % BATCH, 0, "aggregate saw a torn batch: {n} rows");
            }
        })
    };
    let writer_handles: Vec<_> = (0..writers)
        .map(|w| {
            let session = db.session();
            std::thread::spawn(move || {
                for b in 0..25 {
                    let rows = (0..BATCH)
                        .map(|i| vec![Value::Int(w as i64), Value::Int((b * BATCH + i) as i64)])
                        .collect();
                    session.insert("stream", rows).unwrap();
                }
            })
        })
        .collect();
    for h in writer_handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    agg_reader.join().unwrap();

    let out = db
        .sql("SELECT writer, COUNT(*) AS n FROM stream GROUP BY writer ORDER BY writer")
        .unwrap();
    assert_eq!(out.num_rows(), writers);
    for i in 0..writers {
        assert_eq!(out.row(i)[1], Value::Int((25 * BATCH) as i64));
    }
}

// ---------------------------------------------------------------------------
// Serving-path cache properties: the epoch-tagged result cache must be
// invisible except for speed. Cached hits are byte-identical to cold
// execution pinned at the same epoch, and commits are never masked by a
// stale hit — all checked while writers churn.
// ---------------------------------------------------------------------------

#[test]
fn cached_hits_equal_cold_execution_at_same_epoch() {
    let writers = 3;
    let batches_per_writer = 30;
    let db = Database::new();
    db.create_table("stream", stream_schema()).unwrap();
    let q = "SELECT writer, seq FROM stream";

    let stop = Arc::new(AtomicBool::new(false));
    let checkers: Vec<_> = (0..2)
        .map(|_| {
            let db = db.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let pin = db.pin_snapshot();
                    let hot = ExecOptions::serial().at_snapshot(pin.epoch());
                    let cold = hot.clone().without_caches();
                    // Twice through the caching path (the second is a result
                    // hit whenever no commit raced the first), once cold.
                    let a = db.sql_with(q, &hot).unwrap().to_rows();
                    let b = db.sql_with(q, &hot).unwrap().to_rows();
                    let c = db.sql_with(q, &cold).unwrap().to_rows();
                    assert_eq!(a, b, "same epoch, same statement, same rows");
                    assert_eq!(a, c, "cached path diverged from cold execution");
                    assert_consistent(&a, writers, "cached read");
                }
            })
        })
        .collect();

    let writer_handles: Vec<_> = (0..writers)
        .map(|w| {
            let session = db.session();
            std::thread::spawn(move || {
                for b in 0..batches_per_writer {
                    let rows = (0..BATCH)
                        .map(|i| vec![Value::Int(w as i64), Value::Int((b * BATCH + i) as i64)])
                        .collect();
                    session.insert("stream", rows).unwrap();
                }
            })
        })
        .collect();
    for h in writer_handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for h in checkers {
        h.join().unwrap();
    }

    // Quiesced: a repeat at one epoch is a deterministic result-cache hit,
    // still byte-identical to a cold run at that epoch.
    let pin = db.pin_snapshot();
    let hot = ExecOptions::serial().at_snapshot(pin.epoch());
    let warmup = db.sql_with(q, &hot).unwrap().to_rows();
    let hits_before = db.metrics().value("cache.result.hits");
    let hit = db.sql_with(q, &hot).unwrap().to_rows();
    assert_eq!(db.metrics().value("cache.result.hits"), hits_before + 1);
    let cold = db
        .sql_with(q, &hot.clone().without_caches())
        .unwrap()
        .to_rows();
    assert_eq!(warmup, hit);
    assert_eq!(hit, cold, "quiesced hit differs from cold execution");
    assert_eq!(hit.len(), writers * batches_per_writer * BATCH);
}

#[test]
fn post_commit_reads_never_serve_stale_hits() {
    let db = Database::new();
    db.create_table("stream", stream_schema()).unwrap();
    let q = "SELECT COUNT(*) AS n FROM stream";
    let count = |db: &Database| match db.sql(q).unwrap().row(0)[0] {
        Value::Int(n) => n as usize,
        ref v => panic!("count returned {v:?}"),
    };

    // Interleave commits with fully-cached reads: every read after a commit
    // must see it, no matter how hot the statement is.
    let mut expected = 0usize;
    for round in 0..20 {
        assert_eq!(count(&db), expected, "round {round}: stale hit");
        assert_eq!(count(&db), expected, "round {round}: repeat drifted");
        let rows = (0..BATCH)
            .map(|i| vec![Value::Int(0), Value::Int((expected + i) as i64)])
            .collect();
        db.insert("stream", rows).unwrap();
        expected += BATCH;
    }
    assert_eq!(count(&db), expected);
    // The loop above must have been served from the cache at least once per
    // repeated read — otherwise this test exercised nothing.
    assert!(db.metrics().value("cache.result.hits") >= 20);

    // Same law under concurrency: after every writer joins, one fresh read
    // sees everything, even though the statement stayed cache-hot throughout.
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let db = db.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut last = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let n = match db.sql(q).unwrap().row(0)[0] {
                    Value::Int(n) => n as usize,
                    ref v => panic!("count returned {v:?}"),
                };
                assert!(n >= last, "count regressed under churn: {n} < {last}");
                last = n;
            }
        })
    };
    let writer_handles: Vec<_> = (0..3)
        .map(|w| {
            let db = db.clone();
            std::thread::spawn(move || {
                for b in 0..20 {
                    let rows = (0..BATCH)
                        .map(|i| vec![Value::Int(w + 1), Value::Int((b * BATCH + i) as i64)])
                        .collect();
                    db.insert("stream", rows).unwrap();
                }
            })
        })
        .collect();
    for h in writer_handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    reader.join().unwrap();
    assert_eq!(count(&db), expected + 3 * 20 * BATCH);
}

/// Regression for the plan-cache key: execution knobs that only steer
/// *physical* planning (memory budget, parallelism, batch size) are not part
/// of the fingerprint, so a budget-capped session reuses the logical plan a
/// comfortable session cached — and still makes its own physical decision
/// (it spills; the uncapped run did not). Identical results prove the shared
/// entry never leaks a physical choice.
#[test]
fn plan_cache_shares_logical_plans_across_physical_budgets() {
    let db = Database::new();
    db.create_table("stream", stream_schema()).unwrap();
    // Enough distinct groups that a few-KB budget cannot hold the hash table.
    let rows: Vec<Vec<Value>> = (0..6000)
        .map(|i| vec![Value::Int(i % 2000), Value::Int(i)])
        .collect();
    db.insert("stream", rows).unwrap();
    let q = "SELECT writer, COUNT(*) AS n FROM stream GROUP BY writer";
    let sorted = |mut rows: Vec<Vec<Value>>| {
        rows.sort_by_key(|r| match r[0] {
            Value::Int(w) => w,
            _ => unreachable!(),
        });
        rows
    };

    let uncapped = db.session();
    let comfortable = sorted(uncapped.sql(q).unwrap().to_rows());
    assert_eq!(db.metrics().value("storage.spill.partitions"), 0);
    let hits_before = db.metrics().value("cache.plan.hits");

    // Result cache off so the capped run really executes; plan cache on so
    // it reuses the logical plan cached by the uncapped session.
    let capped = db.session().with_options(
        ExecOptions::serial()
            .with_mem_budget(4 * 1024)
            .without_result_cache(),
    );
    let tight = sorted(capped.sql(q).unwrap().to_rows());

    assert_eq!(comfortable, tight, "budget changed the answer");
    assert!(
        db.metrics().value("cache.plan.hits") > hits_before,
        "capped session did not reuse the cached logical plan"
    );
    assert!(
        db.metrics().value("storage.spill.partitions") > 0,
        "capped run should have spilled — physical planning must stay per-execution"
    );
}

#[test]
fn prepare_execute_roundtrip_over_the_wire() {
    use backbone_server::{Client, Server, ServerOptions};

    let db = Database::new();
    db.create_table("stream", stream_schema()).unwrap();
    db.insert(
        "stream",
        (0..10)
            .map(|i| vec![Value::Int(i % 2), Value::Int(i)])
            .collect(),
    )
    .unwrap();
    let server = Server::start(db, "127.0.0.1:0", ServerOptions::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let stmt = client
        .prepare("SELECT seq FROM stream WHERE writer = $1 AND seq >= $2")
        .unwrap();
    let a = client
        .execute(stmt, vec![Value::Int(0), Value::Int(0)])
        .unwrap();
    assert_eq!(a.rows.len(), 5);
    let b = client
        .execute(stmt, vec![Value::Int(1), Value::Int(5)])
        .unwrap();
    assert_eq!(b.rows.len(), 3);
    // Re-executing the same binding replays the identical rows (served from
    // the result cache server-side; the wire can't tell — that's the point).
    let a2 = client
        .execute(stmt, vec![Value::Int(0), Value::Int(0)])
        .unwrap();
    assert_eq!(a, a2);
    // Unknown handles and handles from other connections are typed errors.
    assert!(client.execute(stmt + 99, vec![]).is_err());
    let mut other = Client::connect(server.addr()).unwrap();
    assert!(other
        .execute(stmt, vec![Value::Int(0), Value::Int(0)])
        .is_err());
    server.shutdown();
}
