use backbone_vector::{ExactIndex, Metric, Parallelism, VectorIndex};

#[test]
fn search_many_odd_split() {
    let mut ix = ExactIndex::new(2, Metric::L2);
    for i in 0..100u64 {
        ix.insert(i, &[i as f32, 1.0]);
    }
    let queries: Vec<Vec<f32>> = (0..7).map(|i| vec![i as f32, 0.5]).collect();
    let hits = ix.search_many(&queries, 3, Parallelism::Fixed(5));
    assert_eq!(hits.len(), 7);
}
