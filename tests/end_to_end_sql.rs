//! End-to-end correctness: the whole declarative stack against
//! hand-computed truths on generated data.

use backbone_query::logical::{asc, desc};
use backbone_query::{
    avg, col, count_star, execute, lit, max, min, sum, Catalog, ExecOptions, LogicalPlan,
};
use backbone_storage::Value;
use backbone_workloads::tpch;

fn catalog() -> backbone_query::MemCatalog {
    tpch::generate(0.003, 99)
}

#[test]
fn count_star_matches_table_size() {
    let cat = catalog();
    for table in ["customer", "orders", "lineitem", "nation"] {
        let plan = LogicalPlan::scan(table, &cat)
            .unwrap()
            .aggregate(vec![], vec![count_star().alias("n")]);
        let out = execute(plan, &cat, &ExecOptions::default()).unwrap();
        assert_eq!(
            out.row(0)[0],
            Value::Int(cat.table(table).unwrap().num_rows() as i64),
            "table {table}"
        );
    }
}

#[test]
fn filter_count_matches_manual_scan() {
    let cat = catalog();
    let date = 1200i64;
    let plan = LogicalPlan::scan("orders", &cat)
        .unwrap()
        .filter(col("o_orderdate").lt(lit(date)))
        .aggregate(vec![], vec![count_star().alias("n")]);
    let out = execute(plan, &cat, &ExecOptions::default()).unwrap();

    let orders = cat.table("orders").unwrap().to_batch().unwrap();
    let col_date = orders.column_by_name("o_orderdate").unwrap();
    let manual = (0..orders.num_rows())
        .filter(|&i| col_date.value(i).as_int().unwrap() < date)
        .count();
    assert_eq!(out.row(0)[0], Value::Int(manual as i64));
}

#[test]
fn join_fanout_matches_manual() {
    let cat = catalog();
    // customer ⋈ orders: one row per order (every o_custkey exists).
    let plan = LogicalPlan::scan("customer", &cat)
        .unwrap()
        .join_on(
            LogicalPlan::scan("orders", &cat).unwrap(),
            vec![("c_custkey", "o_custkey")],
        )
        .aggregate(vec![], vec![count_star().alias("n")]);
    let out = execute(plan, &cat, &ExecOptions::default()).unwrap();
    assert_eq!(
        out.row(0)[0],
        Value::Int(cat.table("orders").unwrap().num_rows() as i64)
    );
}

#[test]
fn group_by_nation_balances() {
    let cat = catalog();
    // Counting customers per nation must sum to all customers.
    let plan = LogicalPlan::scan("customer", &cat)
        .unwrap()
        .aggregate(vec![col("c_nationkey")], vec![count_star().alias("n")]);
    let out = execute(plan, &cat, &ExecOptions::default()).unwrap();
    let total: i64 = (0..out.num_rows())
        .map(|i| out.row(i)[1].as_int().unwrap())
        .sum();
    assert_eq!(total, cat.table("customer").unwrap().num_rows() as i64);
    assert!(out.num_rows() <= 25);
}

#[test]
fn aggregates_agree_with_manual_math() {
    let cat = catalog();
    let plan = LogicalPlan::scan("lineitem", &cat).unwrap().aggregate(
        vec![],
        vec![
            sum(col("l_quantity")).alias("s"),
            avg(col("l_quantity")).alias("a"),
            min(col("l_quantity")).alias("lo"),
            max(col("l_quantity")).alias("hi"),
            count_star().alias("n"),
        ],
    );
    let out = execute(plan, &cat, &ExecOptions::default()).unwrap();
    let li = cat.table("lineitem").unwrap().to_batch().unwrap();
    let q = li.column_by_name("l_quantity").unwrap();
    let vals: Vec<f64> = (0..li.num_rows())
        .map(|i| q.value(i).as_float().unwrap())
        .collect();
    let s: f64 = vals.iter().sum();
    let row = out.row(0);
    assert!((row[0].as_float().unwrap() - s).abs() < 1e-6);
    assert!((row[1].as_float().unwrap() - s / vals.len() as f64).abs() < 1e-9);
    assert_eq!(
        row[2].as_float().unwrap(),
        vals.iter().cloned().fold(f64::MAX, f64::min)
    );
    assert_eq!(
        row[3].as_float().unwrap(),
        vals.iter().cloned().fold(f64::MIN, f64::max)
    );
    assert_eq!(row[4], Value::Int(vals.len() as i64));
}

#[test]
fn sort_limit_topk_consistency() {
    let cat = catalog();
    let make = || {
        LogicalPlan::scan("orders", &cat)
            .unwrap()
            .sort(vec![desc(col("o_totalprice")), asc(col("o_orderkey"))])
    };
    // TopK (fused) against the prefix of the full sort.
    let top5 = execute(make().limit(5), &cat, &ExecOptions::default()).unwrap();
    let full = execute(make(), &cat, &ExecOptions::default()).unwrap();
    assert_eq!(top5.to_rows(), full.slice(0, 5).unwrap().to_rows());
}

#[test]
fn parallel_scans_agree_with_serial_across_queries() {
    let cat = catalog();
    for (name, plan) in backbone_workloads::queries::all_queries(&cat).unwrap() {
        let a = execute(plan.clone(), &cat, &ExecOptions::default()).unwrap();
        let b = execute(plan, &cat, &ExecOptions::with_parallelism(4)).unwrap();
        // Aggregated outputs are order-stable for Q1/Q3/Q5 (sorted) and a
        // single row for Q6; compare with float tolerance.
        let ra = a.to_rows();
        let rb = b.to_rows();
        assert_eq!(ra.len(), rb.len(), "{name}");
        for (x, y) in ra.iter().zip(&rb) {
            for (vx, vy) in x.iter().zip(y) {
                match (vx.as_float(), vy.as_float()) {
                    (Some(fx), Some(fy)) => {
                        assert!(
                            (fx - fy).abs() < 1e-6 * fx.abs().max(1.0),
                            "{name}: {fx} vs {fy}"
                        )
                    }
                    _ => assert_eq!(vx, vy, "{name}"),
                }
            }
        }
    }
}

#[test]
fn left_join_preserves_unmatched_probe_rows() {
    let cat = catalog();
    // nation LEFT JOIN region on a key we offset so nothing matches.
    let plan = LogicalPlan::scan("nation", &cat)
        .unwrap()
        .project(vec![
            col("n_nationkey"),
            col("n_regionkey").add(lit(100i64)).alias("shifted"),
        ])
        .join(
            LogicalPlan::scan("region", &cat).unwrap(),
            vec![("shifted", "r_regionkey")],
            backbone_query::JoinType::Left,
        );
    let out = execute(plan, &cat, &ExecOptions::default()).unwrap();
    assert_eq!(out.num_rows(), 25);
    let rname = out.column_by_name("r_name").unwrap();
    for i in 0..out.num_rows() {
        assert!(rname.value(i).is_null());
    }
}

#[test]
fn explain_is_stable_and_informative() {
    let cat = catalog();
    let plan = backbone_workloads::queries::q5(&cat, "ASIA", 730, 1095).unwrap();
    let text = backbone_query::executor::explain(&plan, &cat, &ExecOptions::default()).unwrap();
    assert!(text.contains("Scan: region"));
    assert!(text.contains("Join"));
    // Pushdown happened: at least one scan carries a filter.
    assert!(text.contains("filters="), "no pushdown in:\n{text}");
}

#[test]
fn explain_analyze_q3_reports_per_operator_truth() {
    let cat = catalog();
    let plan = backbone_workloads::queries::q3(&cat, "BUILDING", 1100).unwrap();
    let (report, result) =
        backbone_query::explain_analyze(&plan, &cat, &ExecOptions::default()).unwrap();

    // The header carries the measured total: actual row count and wall time.
    assert!(result.num_rows() <= 10);
    assert!(
        report.contains(&format!("actual {} rows", result.num_rows())),
        "header disagrees with result:\n{report}"
    );

    // Q3's shape survives into the physical plan: three scans, two hash
    // joins, one aggregation.
    for op in ["TableScan", "HashJoin", "HashAggregate"] {
        assert!(report.contains(op), "missing {op} in:\n{report}");
    }

    // Every operator line is annotated with measured rows and elapsed time.
    let annotated: Vec<&str> = report.lines().filter(|l| l.contains("rows_out=")).collect();
    assert!(
        annotated.len() >= 6,
        "expected >= 6 annotated operators:\n{report}"
    );
    for line in &annotated {
        assert!(line.contains("time="), "untimed operator line: {line}");
        // Leaves (scans) have no plan inputs; everything else reports
        // consumed rows too.
        assert!(
            line.contains("rows_in=") || line.contains("TableScan"),
            "unannotated operator line: {line}"
        );
    }
    assert!(
        report.contains("rows_in="),
        "no operator reported rows_in:\n{report}"
    );

    // Engine truth: the root operator's measured output is the result size.
    let rows_out = |line: &str| -> u64 {
        let tail = &line[line.find("rows_out=").unwrap() + "rows_out=".len()..];
        tail.chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .unwrap()
    };
    assert_eq!(rows_out(annotated[0]), result.num_rows() as u64);
}

#[test]
fn fifty_random_filter_queries_match_model() {
    // Randomized differential test: engine vs a naive row-loop model.
    use rand::prelude::*;
    let cat = catalog();
    let orders = cat.table("orders").unwrap().to_batch().unwrap();
    let dates: Vec<i64> = {
        let c = orders.column_by_name("o_orderdate").unwrap();
        (0..orders.num_rows())
            .map(|i| c.value(i).as_int().unwrap())
            .collect()
    };
    let prices: Vec<f64> = {
        let c = orders.column_by_name("o_totalprice").unwrap();
        (0..orders.num_rows())
            .map(|i| c.value(i).as_float().unwrap())
            .collect()
    };
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..50 {
        let d = rng.gen_range(0..2400i64);
        let p = rng.gen_range(0.0..300_000.0f64);
        let plan = LogicalPlan::scan("orders", &cat)
            .unwrap()
            .filter(
                col("o_orderdate")
                    .gt_eq(lit(d))
                    .and(col("o_totalprice").lt(lit(p))),
            )
            .aggregate(vec![], vec![count_star().alias("n")]);
        let out = execute(plan, &cat, &ExecOptions::default()).unwrap();
        let expected = dates
            .iter()
            .zip(&prices)
            .filter(|&(&dd, &pp)| dd >= d && pp < p)
            .count();
        assert_eq!(out.row(0)[0], Value::Int(expected as i64), "d={d} p={p}");
    }
}
