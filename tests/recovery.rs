//! Crash-recovery integration tests for the durable `Database` backbone.
//!
//! The core matrix: kill point × fault kind × fsync policy. A faulty log
//! device ([`FaultFile`]) crashes the WAL deterministically mid-run; the
//! directory is then reopened with [`Database::open`] exactly as a restart
//! would. Invariants, by fault honesty class:
//!
//! - every kind, every policy: recovery never panics, and the recovered
//!   table is a contiguous prefix of the attempted insert sequence — no
//!   holes, no reordering, no garbage rows;
//! - honest kinds (clean crash, torn write, partial tail): every
//!   acknowledged insert survives — committed data is never lost;
//! - lying kinds (dropped fsync, bit flip): loss is unavoidable by
//!   construction, but recovery still lands on a clean acknowledged prefix
//!   (or an explicit corrupt-log error — never a panic).

use backbone_core::durability::WAL_FILE;
use backbone_core::{Database, DurabilityOptions, FsyncPolicy};
use backbone_storage::{DataType, Field, Schema, Value};
use backbone_txn::{FaultFile, FaultKind, FaultPlan};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("backbone-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn events_schema() -> Arc<Schema> {
    Schema::new(vec![
        Field::new("id", DataType::Int64),
        Field::new("note", DataType::Utf8),
    ])
}

fn event_row(i: usize) -> Vec<Value> {
    vec![Value::Int(i as i64), Value::str(format!("event-{i}"))]
}

/// Ids currently in the events table, in row order (`None` if the table
/// does not exist).
fn recovered_ids(db: &Database) -> Option<Vec<i64>> {
    let batch = db.table_batch("events").ok()?;
    Some(
        (0..batch.num_rows())
            .map(|i| match batch.row(i)[0] {
                Value::Int(v) => v,
                ref other => panic!("non-int id in recovered row: {other:?}"),
            })
            .collect(),
    )
}

/// Create the table and insert rows one committed transaction at a time
/// until the injected fault kills the device. Returns the number of
/// *acknowledged* inserts, or `None` if not even `create_table` was acked.
/// The `Database` is leaked, not dropped — a crash runs no destructors.
fn drive_until_crash(
    dir: &Path,
    policy: FsyncPolicy,
    plan: FaultPlan,
    attempts: usize,
) -> Option<usize> {
    std::fs::create_dir_all(dir).unwrap();
    let device = FaultFile::open(dir.join(WAL_FILE), plan).unwrap();
    let opts = DurabilityOptions::default().fsync(policy);
    let db = match Database::open_with_device(dir, Box::new(device), opts) {
        Ok(db) => db,
        Err(_) => return None, // fault fired while writing the log header
    };
    let acked = (|| {
        db.create_table("events", events_schema()).ok()?;
        let mut acked = 0;
        for i in 0..attempts {
            if db.insert("events", vec![event_row(i)]).is_err() {
                break;
            }
            acked += 1;
        }
        Some(acked)
    })();
    std::mem::forget(db);
    acked
}

/// Reopen after a crash and check the universal invariants; returns the
/// recovered row count (`None` when recovery refused a corrupt log, which
/// only lying faults may cause).
fn check_recovery(dir: &Path, honest: bool, acked: Option<usize>, label: &str) -> Option<usize> {
    let db = match Database::open(dir) {
        Ok(db) => db,
        Err(e) => {
            assert!(
                !honest,
                "{label}: recovery errored after an honest fault: {e}"
            );
            return None;
        }
    };
    let ids = recovered_ids(&db);
    match (&ids, acked) {
        (None, None) => {} // nothing acked, nothing recovered: fine
        (None, Some(_)) => {
            assert!(!honest, "{label}: table vanished after acked create");
        }
        (Some(got), _) => {
            // Contiguous prefix of the attempted sequence, always.
            let expect: Vec<i64> = (0..got.len() as i64).collect();
            assert_eq!(got, &expect, "{label}: holes or reordering in recovery");
            if honest {
                let acked = acked.unwrap_or(0);
                assert!(
                    got.len() >= acked,
                    "{label}: lost acked inserts ({} < {acked})",
                    got.len()
                );
            }
        }
    }
    ids.map(|v| v.len())
}

#[test]
fn crash_matrix_kill_point_by_fault_kind_by_policy() {
    for policy in [FsyncPolicy::Always, FsyncPolicy::Group] {
        for kind in FaultKind::ALL {
            // Trigger 1 hits the log header write/sync; later triggers hit
            // the create and the first few inserts.
            for trigger in 1..=6u64 {
                let label = format!("{policy:?}/{kind:?}@{trigger}");
                let dir = scratch_dir(&format!("matrix-{policy:?}-{kind:?}-{trigger}"));
                let acked = drive_until_crash(
                    &dir,
                    policy,
                    FaultPlan::new(kind, trigger, trigger.wrapping_mul(7919)),
                    12,
                );
                check_recovery(&dir, kind.is_honest(), acked, &label);
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}

#[test]
fn kill_and_reopen_loses_no_committed_rows() {
    // The acceptance path: no injected fault, just a hard kill (no Drop).
    let dir = scratch_dir("kill-reopen");
    {
        let db = Database::open_with(
            &dir,
            DurabilityOptions::default().fsync(FsyncPolicy::Always),
        )
        .unwrap();
        db.create_table("events", events_schema()).unwrap();
        for i in 0..50 {
            db.insert("events", vec![event_row(i)]).unwrap();
        }
        std::mem::forget(db);
    }
    let db = Database::open(&dir).unwrap();
    assert_eq!(recovered_ids(&db).unwrap(), (0..50).collect::<Vec<i64>>());
    // The recovered database keeps working and keeps committing.
    db.insert("events", vec![event_row(50)]).unwrap();
    assert_eq!(db.row_count("events"), Some(51));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_is_idempotent_across_reopens() {
    let dir = scratch_dir("idempotent");
    {
        let db = Database::open(&dir).unwrap();
        db.create_table("events", events_schema()).unwrap();
        for i in 0..10 {
            db.insert("events", vec![event_row(i)]).unwrap();
        }
        std::mem::forget(db);
    }
    let first = {
        let db = Database::open(&dir).unwrap();
        recovered_ids(&db).unwrap()
    };
    let second = {
        let db = Database::open(&dir).unwrap();
        recovered_ids(&db).unwrap()
    };
    assert_eq!(first, second, "reopening must not duplicate or drop rows");
    assert_eq!(first.len(), 10);
    // A checkpoint between reopens must not change the recovered state
    // either — records at or below its LSN are skipped on replay.
    {
        let db = Database::open(&dir).unwrap();
        db.checkpoint().unwrap();
    }
    let third = {
        let db = Database::open(&dir).unwrap();
        let report = *db.recovery_report().unwrap();
        assert_eq!(report.replayed_records, 0, "checkpoint should cover all");
        assert_eq!(report.checkpoint_tables, 1);
        recovered_ids(&db).unwrap()
    };
    assert_eq!(first, third);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_record_is_rejected_by_checksum() {
    let dir = scratch_dir("checksum");
    {
        let db = Database::open(&dir).unwrap();
        db.create_table("events", events_schema()).unwrap();
        for i in 0..8 {
            db.insert("events", vec![event_row(i)]).unwrap();
        }
        std::mem::forget(db);
    }
    // Flip one bit in the middle of the log body (past the 16-byte header).
    let wal_path = dir.join(WAL_FILE);
    let mut bytes = std::fs::read(&wal_path).unwrap();
    let mid = 16 + (bytes.len() - 16) / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&wal_path, &bytes).unwrap();

    let db = Database::open(&dir).unwrap();
    let report = *db.recovery_report().unwrap();
    assert!(
        report.wal_bytes_dropped > 0,
        "checksum rejection must report dropped bytes"
    );
    let ids = recovered_ids(&db).unwrap();
    // Everything before the flipped record survives, in order.
    assert!(ids.len() < 8);
    assert_eq!(ids, (0..ids.len() as i64).collect::<Vec<i64>>());
    assert_eq!(
        db.metrics().value("wal.bytes_dropped"),
        report.wal_bytes_dropped
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_truncates_cleanly_and_log_stays_writable() {
    let dir = scratch_dir("torn-tail");
    {
        let db = Database::open(&dir).unwrap();
        db.create_table("events", events_schema()).unwrap();
        for i in 0..5 {
            db.insert("events", vec![event_row(i)]).unwrap();
        }
        std::mem::forget(db);
    }
    // A torn append: half a record frame at the tail.
    let wal_path = dir.join(WAL_FILE);
    use std::io::Write;
    let garbage = [0xFFu8, 0x03, 0x02];
    std::fs::OpenOptions::new()
        .append(true)
        .open(&wal_path)
        .unwrap()
        .write_all(&garbage)
        .unwrap();

    let db = Database::open(&dir).unwrap();
    let report = *db.recovery_report().unwrap();
    assert_eq!(report.wal_bytes_dropped, garbage.len() as u64);
    assert_eq!(
        recovered_ids(&db).unwrap().len(),
        5,
        "no committed row lost"
    );
    // The repaired log accepts new commits, and they survive the next
    // reopen.
    for i in 5..9 {
        db.insert("events", vec![event_row(i)]).unwrap();
    }
    std::mem::forget(db);
    let db = Database::open(&dir).unwrap();
    assert_eq!(recovered_ids(&db).unwrap(), (0..9).collect::<Vec<i64>>());
    assert_eq!(db.recovery_report().unwrap().wal_bytes_dropped, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_truncates_log_and_recovery_starts_from_it() {
    let dir = scratch_dir("checkpoint");
    {
        // Manual checkpoints only.
        let db =
            Database::open_with(&dir, DurabilityOptions::default().checkpoint_every(0)).unwrap();
        db.create_table("events", events_schema()).unwrap();
        for i in 0..20 {
            db.insert("events", vec![event_row(i)]).unwrap();
        }
        let before = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
        db.checkpoint().unwrap();
        let after = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
        assert!(
            after < before,
            "checkpoint must shrink the log ({after} >= {before})"
        );
        // Post-checkpoint writes land in the truncated log.
        for i in 20..25 {
            db.insert("events", vec![event_row(i)]).unwrap();
        }
        std::mem::forget(db);
    }
    let db = Database::open(&dir).unwrap();
    let report = *db.recovery_report().unwrap();
    assert!(report.checkpoint_lsn > 0);
    assert_eq!(report.checkpoint_tables, 1);
    assert_eq!(
        report.replayed_records, 5,
        "only the post-checkpoint tail replays"
    );
    assert_eq!(recovered_ids(&db).unwrap(), (0..25).collect::<Vec<i64>>());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn automatic_checkpoints_fire_on_cadence() {
    let dir = scratch_dir("cadence");
    {
        let db =
            Database::open_with(&dir, DurabilityOptions::default().checkpoint_every(8)).unwrap();
        db.create_table("events", events_schema()).unwrap();
        for i in 0..20 {
            db.insert("events", vec![event_row(i)]).unwrap();
        }
        assert!(
            db.metrics().value("wal.checkpoints") >= 2,
            "21 ops at cadence 8 should checkpoint at least twice"
        );
        std::mem::forget(db);
    }
    let db = Database::open(&dir).unwrap();
    assert_eq!(recovered_ids(&db).unwrap(), (0..20).collect::<Vec<i64>>());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn group_commit_shares_fsyncs_across_concurrent_inserters() {
    let dir = scratch_dir("group-commit");
    let db = Arc::new(
        Database::open_with(
            &dir,
            DurabilityOptions::default()
                .fsync(FsyncPolicy::Group)
                .fsync_latency(Duration::from_millis(2)),
        )
        .unwrap(),
    );
    db.create_table("events", events_schema()).unwrap();
    let threads = 4;
    let per_thread = 20;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let db = db.clone();
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    db.insert("events", vec![event_row(t * per_thread + i)])
                        .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let commits = (threads * per_thread) as u64 + 1; // + create_table
    let fsyncs = db.wal_fsyncs().unwrap();
    assert!(
        fsyncs < commits,
        "group commit should batch: {fsyncs} fsyncs for {commits} commits"
    );
    assert_eq!(db.row_count("events"), Some(threads * per_thread));
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn no_acked_write_from_batched_group_commit_is_lost_on_crash() {
    // Concurrent writers push acked ids into a shared ledger the instant
    // insert() returns; then the process "crashes" (no Drop, no final
    // flush). Group commit may batch many commits into one fsync, but an
    // ack means *this* commit's fsync happened — every ledgered id must
    // survive recovery.
    let dir = scratch_dir("group-commit-crash");
    let acked = Arc::new(std::sync::Mutex::new(Vec::<i64>::new()));
    {
        let db = Database::open_with(
            &dir,
            DurabilityOptions::default()
                .fsync(FsyncPolicy::Group)
                .fsync_latency(Duration::from_millis(1)),
        )
        .unwrap();
        db.create_table("events", events_schema()).unwrap();
        let threads = 4;
        let per_thread = 15;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let db = db.clone();
                let acked = Arc::clone(&acked);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let id = (t * per_thread + i) as i64;
                        db.insert("events", vec![event_row(id as usize)]).unwrap();
                        acked.lock().unwrap().push(id);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let commits = (threads * per_thread) as u64 + 1;
        assert!(
            db.wal_fsyncs().unwrap() < commits,
            "run must actually batch fsyncs to test the batched-ack path"
        );
        std::mem::forget(db); // crash: no destructors, no deferred flush
    }
    let db = Database::open(&dir).unwrap();
    let recovered = recovered_ids(&db).unwrap();
    let mut expected = acked.lock().unwrap().clone();
    expected.sort_unstable();
    let mut got = recovered.clone();
    got.sort_unstable();
    assert_eq!(
        got, expected,
        "batched group commit lost or invented an acked write"
    );
    // Recovered rows are visible to snapshot reads immediately.
    assert_eq!(
        db.sql("SELECT id FROM events").unwrap().num_rows(),
        expected.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fsync_never_policy_is_durable_after_explicit_sync() {
    let dir = scratch_dir("never-sync");
    {
        let db = Database::open_with(&dir, DurabilityOptions::default().fsync(FsyncPolicy::Never))
            .unwrap();
        db.create_table("events", events_schema()).unwrap();
        for i in 0..7 {
            db.insert("events", vec![event_row(i)]).unwrap();
        }
        db.wal_sync().unwrap(); // the explicit durability point
        std::mem::forget(db);
    }
    let db = Database::open(&dir).unwrap();
    assert_eq!(recovered_ids(&db).unwrap(), (0..7).collect::<Vec<i64>>());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn paged_reopen_streams_groups_through_the_pool() {
    let dir = scratch_dir("paged-reopen");
    {
        let db =
            Database::open_with(&dir, DurabilityOptions::default().checkpoint_every(0)).unwrap();
        db.create_table("events", events_schema()).unwrap();
        let rows: Vec<Vec<Value>> = (0..2000).map(event_row).collect();
        db.insert("events", rows).unwrap();
        db.checkpoint().unwrap();
        // A few post-checkpoint rows exercise WAL replay on top of paged
        // groups.
        for i in 2000..2010 {
            db.insert("events", vec![event_row(i)]).unwrap();
        }
        std::mem::forget(db);
    }
    // Reopen out-of-core: a 16-page (64 KiB) pool, far below the table.
    let db = Database::open_with(&dir, DurabilityOptions::default().paged(16)).unwrap();
    assert_eq!(recovered_ids(&db).unwrap(), (0..2010).collect::<Vec<i64>>());
    assert!(
        db.metrics().value("storage.pager.paged_groups") > 0,
        "checkpointed groups must stay on disk"
    );
    assert!(
        db.metrics().value("bufferpool.misses") > 0,
        "recovery reads must go through the pool"
    );
    // Queries work against paged groups, and repeated scans keep working
    // (payloads are re-read, not consumed).
    let out = db
        .session()
        .sql("SELECT id FROM events WHERE id >= 1995")
        .unwrap();
    assert_eq!(out.num_rows(), 15);
    let out = db
        .session()
        .sql("SELECT id FROM events WHERE id >= 1995")
        .unwrap();
    assert_eq!(out.num_rows(), 15);
    // Checkpointing a paged database round-trips: the next plain open sees
    // every row.
    db.insert("events", vec![event_row(2010)]).unwrap();
    db.checkpoint().unwrap();
    drop(db);
    let db = Database::open(&dir).unwrap();
    assert_eq!(recovered_ids(&db).unwrap(), (0..2011).collect::<Vec<i64>>());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sql_sees_recovered_state() {
    let dir = scratch_dir("sql-after-recovery");
    {
        let db = Database::open(&dir).unwrap();
        db.create_table("events", events_schema()).unwrap();
        for i in 0..12 {
            db.insert("events", vec![event_row(i)]).unwrap();
        }
        std::mem::forget(db);
    }
    let db = Database::open(&dir).unwrap();
    let session = db.session();
    let out = session.sql("SELECT id FROM events WHERE id > 7").unwrap();
    assert_eq!(out.num_rows(), 4);
    let _ = std::fs::remove_dir_all(&dir);
}
