//! Property tests for the replacement-policy family.

use backbone_storage::bufferpool::BufferPool;
use backbone_storage::cache::CacheSim;
use backbone_storage::disk::DiskManager;
use backbone_storage::eviction::PolicyKind;
use backbone_storage::Metrics;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No policy may ever exceed capacity or miscount hits+misses.
    #[test]
    fn capacity_and_accounting_invariants(
        trace in proptest::collection::vec(0u64..40, 1..400),
        capacity in 1usize..24,
    ) {
        for kind in PolicyKind::online() {
            let mut sim = CacheSim::new(capacity, kind.build(capacity, None));
            for &k in &trace {
                sim.access(k);
                prop_assert!(sim.len() <= capacity, "{} overflowed", kind.name());
            }
            let s = sim.stats();
            prop_assert_eq!(s.hits + s.misses, trace.len() as u64);
            // Evictions = misses - residents at the end.
            prop_assert_eq!(s.evictions, s.misses - sim.len() as u64);
        }
    }

    /// Belady's MIN is optimal: no online policy beats its hit count.
    #[test]
    fn belady_dominates(
        trace in proptest::collection::vec(0u64..30, 1..300),
        capacity in 1usize..16,
    ) {
        let min_hits = {
            let mut sim = CacheSim::new(capacity, PolicyKind::Belady.build(capacity, Some(&trace)));
            sim.run(&trace).hits
        };
        for kind in PolicyKind::online() {
            let mut sim = CacheSim::new(capacity, kind.build(capacity, None));
            let hits = sim.run(&trace).hits;
            prop_assert!(
                hits <= min_hits,
                "{} got {hits} hits > Belady's {min_hits}",
                kind.name()
            );
        }
    }

    /// LRU has the inclusion (stack) property: more capacity never hurts.
    #[test]
    fn lru_inclusion_property(
        trace in proptest::collection::vec(0u64..50, 1..300),
        small in 1usize..10,
        extra in 1usize..10,
    ) {
        let hits_small = CacheSim::new(small, PolicyKind::Lru.build(small, None)).run(&trace).hits;
        let big = small + extra;
        let hits_big = CacheSim::new(big, PolicyKind::Lru.build(big, None)).run(&trace).hits;
        prop_assert!(hits_big >= hits_small, "LRU lost hits with more capacity");
    }

    /// A trace whose working set fits sees only cold misses, any policy.
    #[test]
    fn fitting_working_set_never_evicts(
        keys in 1u64..12,
        rounds in 1usize..30,
    ) {
        let trace: Vec<u64> = (0..rounds).flat_map(|_| 0..keys).collect();
        for kind in PolicyKind::online() {
            let capacity = keys as usize;
            let mut sim = CacheSim::new(capacity, kind.build(capacity, None));
            let s = sim.run(&trace);
            prop_assert_eq!(s.evictions, 0, "{} evicted needlessly", kind.name());
            prop_assert_eq!(s.misses, keys);
        }
    }

    /// A cache mirrored into the shared [`Metrics`] registry holds
    /// `hits + misses == lookups` there, and the registry agrees with the
    /// local stats — for every policy.
    #[test]
    fn registry_counters_hold_invariant(
        trace in proptest::collection::vec(0u64..40, 1..300),
        capacity in 1usize..16,
    ) {
        for kind in PolicyKind::online() {
            let metrics = Metrics::new();
            let mut sim = CacheSim::new(capacity, kind.build(capacity, None))
                .with_metrics(&metrics, "cache");
            let s = sim.run(&trace);
            let v = |c: &str| metrics.value(&format!("cache.{c}"));
            prop_assert_eq!(v("hits") + v("misses"), v("lookups"), "{}", kind.name());
            prop_assert_eq!(v("lookups"), trace.len() as u64);
            prop_assert_eq!(
                (v("hits"), v("misses"), v("evictions")),
                (s.hits, s.misses, s.evictions)
            );
        }
    }

    /// The buffer pool's `bufferpool.*` counters obey the same invariant
    /// under random page traffic, and match [`BufferPool::stats`].
    #[test]
    fn bufferpool_registry_counters_hold_invariant(
        accesses in proptest::collection::vec(0usize..24, 1..200),
        capacity in 1usize..8,
    ) {
        let metrics = Metrics::new();
        let disk = Arc::new(DiskManager::new());
        let pages: Vec<_> = (0..24).map(|_| disk.allocate()).collect();
        let pool = BufferPool::with_metrics(disk, capacity, PolicyKind::Lru, &metrics);
        for &a in &accesses {
            pool.fetch(pages[a]).unwrap();
        }
        let v = |c: &str| metrics.value(&format!("bufferpool.{c}"));
        prop_assert_eq!(v("hits") + v("misses"), v("lookups"));
        prop_assert_eq!(v("lookups"), accesses.len() as u64);
        let stats = pool.stats();
        prop_assert_eq!((v("hits"), v("misses")), (stats.hits, stats.misses));
        prop_assert_eq!(v("evictions"), stats.evictions);
    }

    /// Policies must stay correct when the same key is accessed repeatedly
    /// between inserts (regression guard for bookkeeping bugs).
    #[test]
    fn repeated_access_bookkeeping(
        key in 0u64..5,
        repeats in 1usize..50,
    ) {
        for kind in PolicyKind::online() {
            let mut sim = CacheSim::new(2, kind.build(2, None));
            sim.access(key);
            for _ in 0..repeats {
                prop_assert!(sim.access(key), "{} lost a resident key", kind.name());
            }
        }
    }
}

#[test]
fn belady_matches_hand_computed_optimum() {
    // Textbook example: capacity 3, trace from the OS course slides.
    let trace = [
        7u64, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2, 1, 2, 0, 1, 7, 0, 1,
    ];
    let mut sim = CacheSim::new(3, PolicyKind::Belady.build(3, Some(&trace)));
    let stats = sim.run(&trace);
    // Known MIN result for this trace: 9 faults (with 3 cold) -> 11 hits.
    assert_eq!(stats.misses, 9, "{stats:?}");
    assert_eq!(stats.hits, 11);
}
