//! Property: the optimizer never changes query results.
//!
//! Random plans over random data, executed with every rule enabled, each
//! rule alone, and no rules — all answers must agree.

use backbone_query::optimizer::Rule;
use backbone_query::{col, count_star, execute, lit, sum, ExecOptions, LogicalPlan, MemCatalog};
use backbone_storage::{DataType, Field, Schema, Table, Value};
use proptest::prelude::*;

/// A small random table of ints/strings driven by proptest input.
fn build_catalog(rows: &[(i64, i64, u8)]) -> MemCatalog {
    let cat = MemCatalog::new();
    let schema = Schema::new(vec![
        Field::new("a", DataType::Int64),
        Field::new("b", DataType::Int64),
        Field::new("tag", DataType::Utf8),
    ]);
    let mut t = Table::with_group_size(schema, 16);
    for (a, b, tag) in rows {
        t.append_row(vec![
            Value::Int(*a),
            Value::Int(*b),
            Value::str(format!("t{}", tag % 4)),
        ])
        .unwrap();
    }
    cat.register("t", t);
    // A second table for joins, keyed on b % 8.
    let schema2 = Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("w", DataType::Int64),
    ]);
    let mut t2 = Table::with_group_size(schema2, 16);
    for k in 0..8i64 {
        t2.append_row(vec![Value::Int(k), Value::Int(k * 100)])
            .unwrap();
    }
    cat.register("dim", t2);
    cat
}

/// One of several plan shapes chosen by `shape`.
fn build_plan(cat: &MemCatalog, shape: u8, threshold: i64) -> LogicalPlan {
    let scan = LogicalPlan::scan("t", cat).unwrap();
    match shape % 5 {
        0 => scan
            .filter(col("a").lt(lit(threshold)))
            .project(vec![col("a"), col("b").add(lit(1i64)).alias("b1")]),
        1 => scan
            .filter(col("a").lt(lit(threshold)).and(lit(true)))
            .aggregate(
                vec![col("tag")],
                vec![sum(col("b")).alias("s"), count_star().alias("n")],
            )
            .sort(vec![backbone_query::logical::asc(col("tag"))]),
        2 => scan
            .project(vec![
                col("a"),
                col("b").modulo(lit(8i64)).alias("bk"),
                col("tag"),
            ])
            .join_on(LogicalPlan::scan("dim", cat).unwrap(), vec![("bk", "k")])
            .filter(col("a").gt_eq(lit(threshold)).or(col("w").gt(lit(300i64))))
            .aggregate(vec![], vec![count_star().alias("n")]),
        3 => scan
            .filter(col("a").gt(lit(threshold)))
            .sort(vec![
                backbone_query::logical::desc(col("a")),
                backbone_query::logical::asc(col("b")),
                // Total order over all visible columns so top-k ties cannot
                // differ between serial and parallel scans.
                backbone_query::logical::asc(col("tag")),
            ])
            .limit(7),
        _ => scan
            .filter(col("tag").eq(lit("t1")).and(col("b").lt(lit(threshold))))
            .project(vec![col("b")]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimizer_preserves_results(
        rows in proptest::collection::vec((-50i64..50, -50i64..50, 0u8..8), 0..120),
        shape in 0u8..5,
        threshold in -60i64..60,
    ) {
        let cat = build_catalog(&rows);
        let plan = build_plan(&cat, shape, threshold);

        let reference = execute(plan.clone(), &cat, &ExecOptions::unoptimized()).unwrap().to_rows();

        // Every rule alone, and all together.
        let mut rule_sets: Vec<Vec<Rule>> = Rule::all().into_iter().map(|r| vec![r]).collect();
        rule_sets.push(Rule::all());
        for rules in rule_sets {
            let opts = ExecOptions {
                rules: Some(rules.clone()),
                ..ExecOptions::serial()
            };
            let got = execute(plan.clone(), &cat, &opts).unwrap().to_rows();
            prop_assert_eq!(&got, &reference, "rules {:?} changed the answer", rules);
        }

        // And the optimized plan under parallel scans.
        let got = execute(plan, &cat, &ExecOptions::with_parallelism(3)).unwrap().to_rows();
        // Shapes 0 and 4 are unordered projections: compare as multisets.
        let sorted = |mut v: Vec<Vec<Value>>| { v.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}"))); v };
        prop_assert_eq!(sorted(got), sorted(reference));
    }
}
