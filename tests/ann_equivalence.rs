//! Vector kernels and parallel ANN paths against their references.
//!
//! The blocked distance kernels must agree with the scalar reference loops
//! (up to float reassociation) on arbitrary inputs — odd lengths, zero
//! vectors, NaN — and every parallel search path must return the identical
//! answer to its serial twin. Incremental inserts (no rebuild) must keep
//! recall above a pinned floor, so index maintenance can't silently rot.

use backbone_vector::hnsw::{HnswIndex, HnswParams};
use backbone_vector::ivf::{IvfIndex, IvfParams};
use backbone_vector::recall::recall_at_k;
use backbone_vector::{distance, Dataset, ExactIndex, Metric, Parallelism, VectorIndex};
use proptest::prelude::*;
use rand::prelude::*;

/// Blocked and scalar results agree: both NaN, or within reassociation
/// tolerance (the blocked kernel sums in 8 independent accumulators).
fn assert_kernel_eq(blocked: f32, scalar: f32, context: &str) {
    if scalar.is_nan() {
        assert!(
            blocked.is_nan(),
            "{context}: scalar NaN but blocked {blocked}"
        );
        return;
    }
    let tol = 1e-4 * scalar.abs().max(1.0);
    assert!(
        (blocked - scalar).abs() <= tol,
        "{context}: blocked {blocked} vs scalar {scalar}"
    );
}

/// Finite-or-NaN coordinates, weighted towards exact zeros so zero-norm
/// edge cases (cosine's guard) actually occur.
fn coord() -> impl Strategy<Value = f32> {
    (0u32..11, -100.0f32..100.0).prop_map(|(sel, v)| match sel {
        0 => f32::NAN,
        1 | 2 => 0.0,
        _ => v,
    })
}

/// A pair of same-length vectors of arbitrary (including odd) length: two
/// independently sized draws truncated to the shorter one.
fn vector_pair() -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    (
        proptest::collection::vec(coord(), 0..67),
        proptest::collection::vec(coord(), 0..67),
    )
        .prop_map(|(mut a, mut b)| {
            let len = a.len().min(b.len());
            a.truncate(len);
            b.truncate(len);
            (a, b)
        })
}

proptest! {
    #[test]
    fn blocked_kernels_match_scalar(pair in vector_pair()) {
        let (a, b) = pair;
        assert_kernel_eq(distance::l2_sq(&a, &b), distance::scalar::l2_sq(&a, &b), "l2_sq");
        assert_kernel_eq(distance::dot(&a, &b), distance::scalar::dot(&a, &b), "dot");
        assert_kernel_eq(
            distance::cosine_distance(&a, &b),
            distance::scalar::cosine_distance(&a, &b),
            "cosine",
        );
    }

    #[test]
    fn score_block_matches_per_pair_distance(
        input in (1usize..17, proptest::collection::vec(-50.0f32..50.0, 0..640)),
    ) {
        let (dim, rows) = input;
        let nrows = rows.len() / dim;
        let rows = &rows[..nrows * dim];
        let query: Vec<f32> = (0..dim).map(|i| i as f32 - 3.0).collect();
        for metric in [Metric::L2, Metric::Dot, Metric::Cosine] {
            let norms: Vec<f32> = rows.chunks_exact(dim).map(distance::norm).collect();
            let query_norm = distance::norm(&query);
            let mut out = vec![0.0f32; nrows];
            distance::score_block(metric, &query, rows, dim, Some(&norms), query_norm, &mut out);
            for (i, row) in rows.chunks_exact(dim).enumerate() {
                assert_kernel_eq(out[i], metric.distance(&query, row), "score_block");
            }
        }
    }
}

/// Clustered dataset shared by the parallel-identity and recall tests.
fn dataset(n: usize, dim: usize, seed: u64) -> (Dataset, Vec<Vec<f32>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f32>> = (0..16)
        .map(|_| (0..dim).map(|_| rng.gen::<f32>() * 10.0).collect())
        .collect();
    let mut d = Dataset::new(dim);
    for i in 0..n {
        let c = &centers[i % centers.len()];
        let v: Vec<f32> = c.iter().map(|x| x + rng.gen::<f32>()).collect();
        d.push(i as u64, &v);
    }
    let queries = (0..20)
        .map(|i| {
            let c = &centers[(i * 5) % centers.len()];
            c.iter().map(|x| x + rng.gen::<f32>()).collect()
        })
        .collect();
    (d, queries)
}

#[test]
fn parallel_paths_identical_to_serial() {
    let (data, queries) = dataset(3000, 16, 7);
    let k = 10;
    let exact = ExactIndex::from_dataset(data.clone(), Metric::L2);
    let ivf = IvfIndex::build(
        data.clone(),
        Metric::L2,
        IvfParams {
            nlist: 32,
            nprobe: 8,
            train_iters: 5,
            seed: 7,
        },
    );
    let hnsw = HnswIndex::build(
        data,
        Metric::Cosine,
        HnswParams {
            ef_search: 48,
            ..Default::default()
        },
    );
    let indexes: [(&str, &dyn VectorIndex); 3] =
        [("exact", &exact), ("ivf", &ivf), ("hnsw", &hnsw)];
    for (name, ix) in indexes {
        for q in &queries {
            let serial = ix.search_with(q, k, Parallelism::Serial);
            let fixed = ix.search_with(q, k, Parallelism::Fixed(4));
            assert_eq!(serial, fixed, "{name}: search_with Fixed(4) diverged");
        }
        let serial = ix.search_many(&queries, k, Parallelism::Serial);
        for parallel in [Parallelism::Fixed(4), Parallelism::Auto] {
            let many = ix.search_many(&queries, k, parallel);
            assert_eq!(serial, many, "{name}: search_many {parallel:?} diverged");
        }
    }
}

#[test]
fn ivf_recall_survives_incremental_inserts() {
    let (data, queries) = dataset(4000, 16, 11);
    let k = 10;
    // Train on the first half only; the second half arrives by insert,
    // assigned to the nearest existing centroid without retraining.
    let mut first = Dataset::new(16);
    for i in 0..2000 {
        first.push(data.id(i), data.vector(i));
    }
    let mut ivf = IvfIndex::build(
        first,
        Metric::L2,
        IvfParams {
            nlist: 32,
            nprobe: 16,
            train_iters: 5,
            seed: 11,
        },
    );
    for i in 2000..4000 {
        ivf.insert(data.id(i), data.vector(i));
    }
    assert_eq!(ivf.len(), 4000);
    let exact = ExactIndex::from_dataset(data, Metric::L2);
    let recall = recall_at_k(&ivf, &exact, &queries, k);
    assert!(
        recall >= 0.85,
        "ivf recall after 50% incremental growth: {recall}"
    );
}

#[test]
fn hnsw_recall_survives_incremental_inserts() {
    let (data, queries) = dataset(3000, 16, 13);
    let k = 10;
    let mut first = Dataset::new(16);
    for i in 0..1500 {
        first.push(data.id(i), data.vector(i));
    }
    let mut hnsw = HnswIndex::build(
        first,
        Metric::L2,
        HnswParams {
            ef_search: 64,
            ..Default::default()
        },
    );
    for i in 1500..3000 {
        hnsw.insert(data.id(i), data.vector(i));
    }
    assert_eq!(hnsw.len(), 3000);
    let exact = ExactIndex::from_dataset(data, Metric::L2);
    let recall = recall_at_k(&hnsw, &exact, &queries, k);
    assert!(
        recall >= 0.90,
        "hnsw recall after 50% incremental growth: {recall}"
    );
}

#[test]
fn dimension_mismatch_is_typed_at_every_boundary() {
    let (data, _) = dataset(200, 16, 17);
    let mut ivf = IvfIndex::build(
        data.clone(),
        Metric::L2,
        IvfParams {
            nlist: 8,
            nprobe: 8,
            train_iters: 3,
            seed: 17,
        },
    );
    let mut hnsw = HnswIndex::build(data.clone(), Metric::L2, HnswParams::default());
    let exact = ExactIndex::from_dataset(data, Metric::L2);
    let wrong = vec![1.0f32; 9];
    for ix in [&exact as &dyn VectorIndex, &ivf, &hnsw] {
        let err = ix.try_search(&wrong, 5).expect_err("wrong dimension");
        assert_eq!((err.expected, err.got), (16, 9));
    }
    assert!(ivf.try_insert(999_999, &wrong).is_err());
    assert!(hnsw.try_insert(999_999, &wrong).is_err());
    // Failed inserts must leave the index untouched.
    assert_eq!(ivf.len(), 200);
    assert_eq!(hnsw.len(), 200);
}

#[test]
fn search_many_handles_odd_query_thread_splits() {
    // 7 queries over 5 fixed threads: the parallel fan-out must cover every
    // query exactly once even when the split is uneven.
    let mut ix = ExactIndex::new(2, Metric::L2);
    for i in 0..100u64 {
        ix.insert(i, &[i as f32, 1.0]);
    }
    let queries: Vec<Vec<f32>> = (0..7).map(|i| vec![i as f32, 0.5]).collect();
    let many = ix.search_many(&queries, 3, Parallelism::Fixed(5));
    assert_eq!(many.len(), 7);
    // Each slot must equal the corresponding serial search, in order.
    for (q, hits) in queries.iter().zip(&many) {
        assert_eq!(hits, &ix.search(q, 3), "parallel result diverges");
    }
}
