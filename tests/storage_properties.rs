//! Property tests for the storage layer: encodings are lossless, batch
//! operators agree with a naive row model, and zone maps never lie.

use backbone_storage::compress::{BitPackedI64, RleI64};
use backbone_storage::table::ZoneMap;
use backbone_storage::{Column, DataType, Field, RecordBatch, Schema, Table, Value};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn rle_roundtrip(values in proptest::collection::vec(any::<i64>(), 0..300)) {
        let enc = RleI64::encode(&values);
        prop_assert_eq!(enc.decode(), values.clone());
        // Random access agrees with decode.
        for (i, &v) in values.iter().enumerate().step_by(7) {
            prop_assert_eq!(enc.get(i).unwrap(), v);
        }
    }

    #[test]
    fn bitpack_roundtrip(values in proptest::collection::vec(any::<i64>(), 1..300)) {
        let enc = BitPackedI64::encode(&values);
        prop_assert_eq!(enc.decode(), values.clone());
        for (i, &v) in values.iter().enumerate().step_by(5) {
            prop_assert_eq!(enc.get(i).unwrap(), v);
        }
    }

    #[test]
    fn bitpack_small_domain_compresses(values in proptest::collection::vec(0i64..16, 64..256)) {
        let enc = BitPackedI64::encode(&values);
        prop_assert!(enc.byte_size() < values.len() * 8 / 2,
            "expected >2x compression on 4-bit data: {} vs {}", enc.byte_size(), values.len() * 8);
    }

    #[test]
    fn dict_roundtrip(values in proptest::collection::vec("[a-d]{0,3}", 0..200)) {
        let plain = Column::from_strings(values.clone());
        let dict = plain.dict_encode().unwrap();
        prop_assert_eq!(dict.decoded().unwrap(), plain);
        prop_assert!(dict.utf8_distinct().unwrap() <= values.len().max(1));
    }

    /// filter ∘ take ∘ slice agree with a naive Vec<Vec<Value>> model.
    #[test]
    fn batch_ops_match_model(
        rows in proptest::collection::vec((any::<i64>(), proptest::option::of(-100i64..100)), 0..80),
        mask_seed in any::<u64>(),
    ) {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::nullable("b", DataType::Int64),
        ]);
        let model: Vec<Vec<Value>> = rows
            .iter()
            .map(|(a, b)| vec![Value::Int(*a), b.map(Value::Int).unwrap_or(Value::Null)])
            .collect();
        let batch = RecordBatch::from_rows(schema, &model).unwrap();

        // filter
        let mask: Vec<bool> = (0..rows.len()).map(|i| (mask_seed >> (i % 64)) & 1 == 1).collect();
        let filtered = batch.filter(&mask).unwrap();
        let model_filtered: Vec<&Vec<Value>> =
            model.iter().zip(&mask).filter(|(_, &m)| m).map(|(r, _)| r).collect();
        prop_assert_eq!(filtered.num_rows(), model_filtered.len());
        for (i, want) in model_filtered.iter().enumerate() {
            prop_assert_eq!(&filtered.row(i), *want);
        }

        // take of reversed indices
        if !rows.is_empty() {
            let idx: Vec<usize> = (0..rows.len()).rev().collect();
            let taken = batch.take(&idx).unwrap();
            for (i, &j) in idx.iter().enumerate() {
                prop_assert_eq!(taken.row(i), model[j].clone());
            }
        }

        // slice halves
        let half = rows.len() / 2;
        let sliced = batch.slice(half, rows.len() - half).unwrap();
        for i in 0..sliced.num_rows() {
            prop_assert_eq!(sliced.row(i), model[half + i].clone());
        }
    }

    /// Zone maps never refute a value that is actually present.
    #[test]
    fn zone_maps_are_sound(values in proptest::collection::vec(proptest::option::of(-50i64..50), 1..100)) {
        let col = Column::from_opt_i64(values.clone());
        let z = ZoneMap::from_column(&col);
        for v in values.iter().flatten() {
            prop_assert!(z.may_contain_eq(&Value::Int(*v)), "zone refuted existing value {v}");
            prop_assert!(z.may_contain_lt(&Value::Int(v + 1), false));
            prop_assert!(z.may_contain_gt(&Value::Int(v - 1), false));
        }
        prop_assert_eq!(z.null_count, values.iter().filter(|v| v.is_none()).count());
    }

    /// Tables reassemble exactly regardless of row-group size.
    #[test]
    fn table_grouping_is_transparent(
        rows in proptest::collection::vec(any::<i64>(), 0..120),
        group_size in 1usize..40,
    ) {
        let schema = Schema::new(vec![Field::new("x", DataType::Int64)]);
        let mut t = Table::with_group_size(schema, group_size);
        for &x in &rows {
            t.append_row(vec![Value::Int(x)]).unwrap();
        }
        let batch = t.to_batch().unwrap();
        prop_assert_eq!(batch.num_rows(), rows.len());
        let got: Vec<i64> = (0..batch.num_rows())
            .map(|i| batch.row(i)[0].as_int().unwrap())
            .collect();
        prop_assert_eq!(got, rows);
    }

    /// An all-pinned pool fails `fetch` with the typed
    /// [`StorageError::PoolExhausted`] — never a panic or a busy loop — and
    /// recovers as soon as any single pin drops, under every online policy.
    #[test]
    fn pool_exhaustion_is_typed_and_recoverable(
        cap in 1usize..6,
        extra in 1usize..4,
        policy_idx in 0usize..7,
    ) {
        use backbone_storage::bufferpool::BufferPool;
        use backbone_storage::disk::DiskManager;
        use backbone_storage::eviction::PolicyKind;
        use backbone_storage::StorageError;

        let policy = [
            PolicyKind::Fifo,
            PolicyKind::Lru,
            PolicyKind::LruK,
            PolicyKind::Clock,
            PolicyKind::Lfu,
            PolicyKind::TwoQ,
            PolicyKind::Arc,
        ][policy_idx];
        let disk = Arc::new(DiskManager::new());
        let ids: Vec<_> = (0..cap + extra).map(|_| disk.allocate()).collect();
        let pool = BufferPool::new(disk, cap, policy);

        // Pin every frame.
        let mut guards: Vec<_> = ids[..cap].iter().map(|&id| pool.fetch(id).unwrap()).collect();
        // Any further page faults must fail with the typed error, repeatably.
        for &id in &ids[cap..] {
            for _ in 0..2 {
                prop_assert_eq!(pool.fetch(id).unwrap_err(), StorageError::PoolExhausted);
            }
        }
        // Re-fetching an already-resident (pinned) page is still a hit.
        prop_assert!(pool.fetch(ids[0]).is_ok());
        // Releasing one pin frees exactly one frame's worth of progress.
        drop(guards.pop());
        prop_assert!(pool.fetch(ids[cap]).is_ok());
        prop_assert_eq!(pool.resident(), cap);
    }

    /// Column concat is associative with respect to content.
    #[test]
    fn concat_associativity(
        a in proptest::collection::vec(any::<i64>(), 0..40),
        b in proptest::collection::vec(any::<i64>(), 0..40),
        c in proptest::collection::vec(any::<i64>(), 0..40),
    ) {
        let ca = Column::from_i64(a.clone());
        let cb = Column::from_i64(b.clone());
        let cc = Column::from_i64(c.clone());
        let left = Column::concat(&[&Column::concat(&[&ca, &cb]).unwrap(), &cc]).unwrap();
        let right = Column::concat(&[&ca, &Column::concat(&[&cb, &cc]).unwrap()]).unwrap();
        prop_assert_eq!(left.i64_data().unwrap(), right.i64_data().unwrap());
        let expected: Vec<i64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(left.i64_data().unwrap(), &expected[..]);
    }
}

#[test]
fn buffer_pool_hit_rate_monotone_in_capacity() {
    use backbone_storage::bufferpool::BufferPool;
    use backbone_storage::disk::DiskManager;
    use backbone_storage::eviction::PolicyKind;

    let trace: Vec<usize> = (0..500).map(|i| (i * i) % 16).collect();
    let mut previous = -1.0f64;
    for cap in [2usize, 4, 8, 16] {
        let disk = Arc::new(DiskManager::new());
        let ids: Vec<_> = (0..16).map(|_| disk.allocate()).collect();
        let pool = BufferPool::new(disk, cap, PolicyKind::Lru);
        for &i in &trace {
            drop(pool.fetch(ids[i]).unwrap());
        }
        let rate = pool.stats().hit_rate();
        assert!(rate >= previous, "hit rate dropped with capacity {cap}");
        previous = rate;
    }
}
