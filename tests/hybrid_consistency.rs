//! Cross-crate consistency of hybrid search: the unified engine and the
//! bolt-on composition must agree on answers whenever the bolt-on has
//! enough information, and both must honor the relational filter exactly.

use backbone_core::{
    bolton_search, unified_search, Database, FusionWeights, HybridSpec, VectorIndexSpec,
};
use backbone_query::{col, lit};
use backbone_storage::{DataType, Field, Schema, Value};
use backbone_vector::{Dataset, Metric};
use backbone_workloads::hybrid;
use proptest::prelude::*;

fn build_db(products: usize, seed: u64) -> Database {
    let catalog = hybrid::generate(products, 8, seed);
    let db = Database::new();
    db.create_table(
        "products",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("category", DataType::Utf8),
            Field::new("price", DataType::Float64),
            Field::new("rating", DataType::Float64),
            Field::new("in_stock", DataType::Bool),
        ]),
    )
    .unwrap();
    db.insert(
        "products",
        catalog
            .products
            .iter()
            .map(|p| {
                vec![
                    Value::Int(p.id as i64),
                    Value::str(p.category),
                    Value::Float(p.price),
                    Value::Float(p.rating),
                    Value::Bool(p.in_stock),
                ]
            })
            .collect(),
    )
    .unwrap();
    db.create_text_index_from(
        "products",
        catalog.products.iter().map(|p| p.description.as_str()),
    )
    .unwrap();
    let mut ds = Dataset::new(8);
    for p in &catalog.products {
        ds.push(p.id, &p.embedding);
    }
    db.create_vector_index("products", ds, VectorIndexSpec::exact(Metric::L2))
        .unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn filter_is_always_respected(
        cutoff in 10.0f64..400.0,
        cat_axis in 0usize..6,
        k in 1usize..15,
    ) {
        let db = build_db(600, 21);
        let mut v = vec![0.1f32; 8];
        v[cat_axis] = 1.0;
        let spec = HybridSpec {
            table: "products".into(),
            filter: Some(col("price").lt(lit(cutoff))),
            keyword: Some("premium".into()),
            vector: Some(v),
            k,
            weights: FusionWeights::default(),
        };
        let batch = db.table_batch("products").unwrap();
        let price_of = |row: u64| batch.column_by_name("price").unwrap().value(row as usize).as_float().unwrap();

        let (u, cu) = unified_search(&db, &spec).unwrap();
        let (b, cb) = bolton_search(&db, &spec).unwrap();
        for h in u.iter().chain(&b) {
            prop_assert!(price_of(h.row) < cutoff, "row {} price {} >= {}", h.row, price_of(h.row), cutoff);
        }
        prop_assert!(u.len() <= k && b.len() <= k);
        prop_assert!(cu.round_trips <= cb.round_trips);
    }

    #[test]
    fn unfiltered_answers_agree(
        cat_axis in 0usize..6,
        k in 1usize..12,
    ) {
        let db = build_db(400, 22);
        let mut v = vec![0.1f32; 8];
        v[cat_axis] = 1.0;
        let spec = HybridSpec {
            table: "products".into(),
            filter: None,
            keyword: Some("premium quality".into()),
            vector: Some(v),
            k,
            weights: FusionWeights::default(),
        };
        let (u, _) = unified_search(&db, &spec).unwrap();
        let (b, _) = bolton_search(&db, &spec).unwrap();
        // The unified engine completes missing vector distances for
        // keyword-only candidates, so it can only improve on the bolt-on's
        // fused score — never regress.
        let score = |v: &[backbone_core::HybridHit]| v.iter().map(|h| h.score).sum::<f64>();
        prop_assert!(
            score(&u) >= score(&b) - 1e-9,
            "unified {} < bolton {}",
            score(&u),
            score(&b)
        );
    }

    #[test]
    fn scores_are_monotone(
        k in 2usize..10,
    ) {
        let db = build_db(300, 23);
        let spec = HybridSpec {
            table: "products".into(),
            filter: None,
            keyword: Some("bass speaker".into()),
            vector: Some(vec![1.0, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1]),
            k,
            weights: FusionWeights { vector: 2.0, text: 1.0 },
        };
        let (hits, _) = unified_search(&db, &spec).unwrap();
        for w in hits.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
    }
}

#[test]
fn search_request_builder_matches_direct_calls() {
    // The `Session`/`SearchRequest` facade is plumbing, not policy: for the
    // same spec it must return byte-identical hits and costs for both the
    // unified engine and the bolt-on baseline.
    let db = build_db(500, 27);
    let mut v = vec![0.1f32; 8];
    v[2] = 1.0;
    let spec = HybridSpec {
        table: "products".into(),
        filter: Some(col("rating").gt(lit(2.5))),
        keyword: Some("premium bass".into()),
        vector: Some(v.clone()),
        k: 7,
        weights: FusionWeights {
            vector: 1.5,
            text: 0.5,
        },
    };
    let session = db.session();
    let built = session
        .search("products")
        .filter(col("rating").gt(lit(2.5)))
        .keyword("premium bass")
        .vector(v.clone())
        .k(7)
        .vector_weight(1.5)
        .text_weight(0.5)
        .run()
        .unwrap();
    let (direct, direct_cost) = unified_search(&db, &spec).unwrap();
    assert_eq!(built.hits, direct);
    assert_eq!(built.cost.round_trips, direct_cost.round_trips);
    assert_eq!(
        built.cost.candidates_fetched,
        direct_cost.candidates_fetched
    );

    let built_bolton = session
        .search("products")
        .filter(col("rating").gt(lit(2.5)))
        .keyword("premium bass")
        .vector(v)
        .k(7)
        .vector_weight(1.5)
        .text_weight(0.5)
        .via_bolton()
        .run()
        .unwrap();
    let (direct_bolton, _) = bolton_search(&db, &spec).unwrap();
    assert_eq!(built_bolton.hits, direct_bolton);
}

#[test]
fn hnsw_backed_unified_search_mostly_matches_exact() {
    let db_exact = build_db(1500, 30);
    let catalog = hybrid::generate(1500, 8, 30);
    let db_hnsw = {
        let db = build_db(1500, 30);
        let mut ds = Dataset::new(8);
        for p in &catalog.products {
            ds.push(p.id, &p.embedding);
        }
        db.create_vector_index("products", ds, VectorIndexSpec::hnsw(Metric::L2))
            .unwrap();
        db
    };
    // The synthetic catalog clusters embeddings tightly per category, so
    // top-k membership is dominated by near-ties; the meaningful quality
    // metric is the achieved fused score, not id overlap.
    let mut exact_score = 0.0;
    let mut hnsw_score = 0.0;
    for q in hybrid::generate_queries(10, 8, 0.0, 10, 31) {
        let spec = HybridSpec {
            table: "products".into(),
            filter: Some(col("in_stock").eq(lit(true))),
            keyword: Some(q.keyword.clone()),
            vector: Some(q.embedding.clone()),
            k: 10,
            weights: FusionWeights::default(),
        };
        let (a, _) = unified_search(&db_exact, &spec).unwrap();
        let (b, _) = unified_search(&db_hnsw, &spec).unwrap();
        exact_score += a.iter().map(|h| h.score).sum::<f64>();
        hnsw_score += b.iter().map(|h| h.score).sum::<f64>();
    }
    assert!(
        hnsw_score >= exact_score * 0.9,
        "HNSW-backed hybrid quality too low: {hnsw_score:.2} vs exact {exact_score:.2}"
    );
}
