//! The vectorized expression evaluator against a row-at-a-time reference
//! interpreter: random expression trees over random data must agree on
//! every row, including NULL propagation and three-valued logic.

use backbone_query::eval::eval;
use backbone_query::{col, lit, BinOp, Expr};
use backbone_storage::{Column, DataType, Field, RecordBatch, Schema, Value};
use proptest::prelude::*;
use std::sync::Arc;

/// The reference semantics: evaluate per row with Option-based NULLs.
#[derive(Debug, Clone, PartialEq)]
enum Cell {
    Null,
    Int(i64),
    Bool(bool),
}

fn model_eval(expr: &Expr, a: Option<i64>, b: Option<i64>) -> Cell {
    match expr {
        Expr::Column(n) if n == "a" => a.map(Cell::Int).unwrap_or(Cell::Null),
        Expr::Column(n) if n == "b" => b.map(Cell::Int).unwrap_or(Cell::Null),
        Expr::Column(_) => panic!("unknown column in model"),
        Expr::Literal(Value::Int(v)) => Cell::Int(*v),
        Expr::Literal(Value::Bool(v)) => Cell::Bool(*v),
        Expr::Literal(_) => panic!("unsupported literal in model"),
        Expr::Alias(inner, _) => model_eval(inner, a, b),
        Expr::Unary { op, expr } => {
            let v = model_eval(expr, a, b);
            match op {
                backbone_query::UnOp::Not => match v {
                    Cell::Bool(x) => Cell::Bool(!x),
                    Cell::Null => Cell::Null,
                    _ => panic!("NOT over int"),
                },
                backbone_query::UnOp::Neg => match v {
                    Cell::Int(x) => Cell::Int(x.wrapping_neg()),
                    Cell::Null => Cell::Null,
                    _ => panic!("neg over bool"),
                },
                backbone_query::UnOp::IsNull => Cell::Bool(v == Cell::Null),
                backbone_query::UnOp::IsNotNull => Cell::Bool(v != Cell::Null),
            }
        }
        Expr::Binary { left, op, right } => {
            let l = model_eval(left, a, b);
            let r = model_eval(right, a, b);
            match op {
                BinOp::And => match (l, r) {
                    (Cell::Bool(false), _) | (_, Cell::Bool(false)) => Cell::Bool(false),
                    (Cell::Bool(true), Cell::Bool(true)) => Cell::Bool(true),
                    _ => Cell::Null,
                },
                BinOp::Or => match (l, r) {
                    (Cell::Bool(true), _) | (_, Cell::Bool(true)) => Cell::Bool(true),
                    (Cell::Bool(false), Cell::Bool(false)) => Cell::Bool(false),
                    _ => Cell::Null,
                },
                BinOp::Add | BinOp::Sub | BinOp::Mul => match (l, r) {
                    (Cell::Int(x), Cell::Int(y)) => Cell::Int(match op {
                        BinOp::Add => x.wrapping_add(y),
                        BinOp::Sub => x.wrapping_sub(y),
                        _ => x.wrapping_mul(y),
                    }),
                    _ => Cell::Null,
                },
                BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                    match (l, r) {
                        (Cell::Int(x), Cell::Int(y)) => Cell::Bool(match op {
                            BinOp::Eq => x == y,
                            BinOp::NotEq => x != y,
                            BinOp::Lt => x < y,
                            BinOp::LtEq => x <= y,
                            BinOp::Gt => x > y,
                            _ => x >= y,
                        }),
                        _ => Cell::Null,
                    }
                }
                _ => panic!("unsupported op in model"),
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            // Three-valued OR over per-item equalities, starting from the
            // definite FALSE of `x IN ()`.
            let probe = model_eval(expr, a, b);
            let mut acc = Cell::Bool(false);
            for item in list {
                let item_v = model_eval(item, a, b);
                let eq = match (&probe, &item_v) {
                    (Cell::Int(x), Cell::Int(y)) => Cell::Bool(x == y),
                    _ => Cell::Null,
                };
                acc = match (acc, eq) {
                    (Cell::Bool(true), _) | (_, Cell::Bool(true)) => Cell::Bool(true),
                    (Cell::Bool(false), Cell::Bool(false)) => Cell::Bool(false),
                    _ => Cell::Null,
                };
            }
            match (acc, negated) {
                (Cell::Bool(v), true) => Cell::Bool(!v),
                (acc, _) => acc,
            }
        }
        Expr::Like { .. } => panic!("LIKE not in model space"),
        Expr::Param(_) => panic!("params are bound before evaluation"),
    }
}

/// Random integer-valued expressions (depth-bounded).
fn int_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![Just(col("a")), Just(col("b")), (-20i64..20).prop_map(lit),];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.add(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.sub(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.mul(r)),
            inner.prop_map(|e| e.neg()),
        ]
    })
}

/// Random boolean expressions built on integer comparisons.
fn bool_expr() -> impl Strategy<Value = Expr> {
    let cmp = (int_expr(), int_expr(), 0u8..6).prop_map(|(l, r, op)| match op {
        0 => l.eq(r),
        1 => l.not_eq(r),
        2 => l.lt(r),
        3 => l.lt_eq(r),
        4 => l.gt(r),
        _ => l.gt_eq(r),
    });
    let null_check = prop_oneof![Just(col("a").is_null()), Just(col("b").is_not_null()),];
    let in_list = (
        int_expr(),
        proptest::collection::vec(int_expr(), 0..4),
        any::<bool>(),
    )
        .prop_map(|(probe, items, negated)| {
            if negated {
                probe.not_in_list(items)
            } else {
                probe.in_list(items)
            }
        });
    let leaf = prop_oneof![cmp, null_check, in_list];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.and(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.or(r)),
            inner.prop_map(|e| e.not()),
        ]
    })
}

fn batch(rows: &[(Option<i64>, Option<i64>)]) -> RecordBatch {
    let schema = Schema::new(vec![
        Field::nullable("a", DataType::Int64),
        Field::nullable("b", DataType::Int64),
    ]);
    let a = Column::from_opt_i64(rows.iter().map(|r| r.0).collect());
    let b = Column::from_opt_i64(rows.iter().map(|r| r.1).collect());
    RecordBatch::try_new(schema, vec![Arc::new(a), Arc::new(b)]).unwrap()
}

fn check(expr: Expr, rows: Vec<(Option<i64>, Option<i64>)>) -> Result<(), TestCaseError> {
    let batch = batch(&rows);
    let out = match eval(&expr, &batch) {
        Ok(c) => c,
        // Overflow errors are legal engine behaviour; the model wraps, so
        // just skip such cases.
        Err(_) => return Ok(()),
    };
    for (i, (a, b)) in rows.iter().enumerate() {
        let want = model_eval(&expr, *a, *b);
        let got = out.value(i);
        let matches = match (&want, &got) {
            (Cell::Null, Value::Null) => true,
            (Cell::Int(x), Value::Int(y)) => x == y,
            (Cell::Bool(x), Value::Bool(y)) => x == y,
            _ => false,
        };
        prop_assert!(
            matches,
            "row {i}: model {want:?} vs engine {got:?} for {expr}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn int_expressions_match_model(
        expr in int_expr(),
        rows in proptest::collection::vec(
            (proptest::option::of(-50i64..50), proptest::option::of(-50i64..50)),
            1..30,
        ),
    ) {
        check(expr, rows)?;
    }

    #[test]
    fn bool_expressions_match_model(
        expr in bool_expr(),
        rows in proptest::collection::vec(
            (proptest::option::of(-50i64..50), proptest::option::of(-50i64..50)),
            1..30,
        ),
    ) {
        check(expr, rows)?;
    }

    /// Constant folding must agree with the evaluator on the same batch.
    #[test]
    fn folding_preserves_semantics(
        expr in bool_expr(),
        rows in proptest::collection::vec(
            (proptest::option::of(-10i64..10), proptest::option::of(-10i64..10)),
            1..10,
        ),
    ) {
        // Run the expression through the optimizer's constant folding.
        let folded = backbone_query::optimizer::fold_expr(expr.clone());
        let b = batch(&rows);
        let raw = eval(&expr, &b);
        let cooked = eval(&folded, &b);
        // If the raw expression errors (overflow), folding may or may not;
        // both are acceptable as long as folding doesn't produce a wrong
        // value, so only the Ok/Ok case is checked.
        if let (Ok(x), Ok(y)) = (raw, cooked) {
            for i in 0..b.num_rows() {
                prop_assert_eq!(x.value(i), y.value(i), "row {} for {}", i, expr);
            }
        }
    }
}
