//! The ORM N+1 anti-pattern, measured.
//!
//! "Many performance problems are due to the ORM and never arise at the
//! DBMS" — this example fetches orders with their customer names both ways
//! and prints the damage.
//!
//! ```sh
//! cargo run --release --example orm_antipattern
//! ```

use backbone_workloads::{orm, tpch};
use std::time::Instant;

fn main() {
    println!("generating TPC-H-like data (SF 0.01)...");
    let catalog = tpch::generate(0.01, 42);

    for orders in [10usize, 100, 1000] {
        let t = Instant::now();
        let (rows_a, queries) = orm::n_plus_one(&catalog, orders).expect("n+1");
        let orm_time = t.elapsed();

        let t = Instant::now();
        let (rows_b, _) = orm::set_oriented(&catalog, orders).expect("join");
        let join_time = t.elapsed();

        assert_eq!(rows_a.len(), rows_b.len());
        println!(
            "{orders:>5} orders | ORM: {queries:>5} queries, {:>9.2?} | join: 1 query, {:>9.2?} | {:>6.1}x",
            orm_time,
            join_time,
            orm_time.as_secs_f64() / join_time.as_secs_f64().max(1e-9),
        );
    }
    println!("\nsame rows, same engine — the slowdown never touched the DBMS.");
}
