//! From CSV to SQL in three calls — the commodity experience Naumann (§4.6)
//! says databases still lack ("whoever has recently tried to ... load a few
//! simple CSV files into it knows firsthand").
//!
//! ```sh
//! cargo run --release --example csv_to_sql
//! ```

use backbone_core::Database;

const CITIES: &str = "\
city,country,population,area_km2,coastal
Tokyo,Japan,37400068,2194,true
Delhi,India,29399141,1484,false
Shanghai,China,26317104,6341,true
\"São Paulo\",Brazil,21846507,1521,false
Mexico City,Mexico,21671908,1485,false
Cairo,Egypt,20484965,3085,false
Mumbai,India,20185064,603,true
Beijing,China,20035455,16411,false
Dhaka,Bangladesh,20283552,306,false
Osaka,Japan,19222665,225,true
";

fn main() {
    let db = Database::new();

    // 1. Load: schema inferred (Utf8, Utf8, Int64, Int64, Bool).
    let rows = db.load_csv("cities", CITIES).expect("load");
    let batch = db.table_batch("cities").expect("batch");
    println!("loaded {rows} rows; inferred schema:");
    for f in batch.schema().fields() {
        println!("  {:<12} {}", f.name, f.data_type);
    }

    // 2. Query it with SQL immediately.
    println!("\nsql> densest coastal cities");
    let out = db
        .sql(
            "SELECT city, population / area_km2 AS density \
             FROM cities WHERE coastal = TRUE ORDER BY density DESC LIMIT 3",
        )
        .expect("query");
    for i in 0..out.num_rows() {
        let row = out.row(i);
        println!(
            "  {:<12} {:>10.0} people/km2",
            row[0],
            row[1].as_float().unwrap_or(0.0)
        );
    }

    println!("\nsql> population by country");
    let out = db
        .sql(
            "SELECT country, SUM(population) AS total, COUNT(*) AS cities \
             FROM cities GROUP BY country ORDER BY total DESC",
        )
        .expect("query");
    for i in 0..out.num_rows() {
        let row = out.row(i);
        println!("  {:<12} {:>12} ({} cities)", row[0], row[1], row[2]);
    }

    // 3. Round-trip back out.
    let exported = db.to_csv("cities").expect("export");
    println!(
        "\nexported {} bytes of CSV (unicode preserved: {})",
        exported.len(),
        exported.contains("São Paulo")
    );
}
