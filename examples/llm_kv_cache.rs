//! LLM KV-cache management with database eviction policies.
//!
//! The paper (§4.7) points at "the key-value cache of LLMs and its
//! connection to buffering to reduce inference time and cost". This example
//! simulates a multi-tenant chat serving workload and shows how much
//! inference cost each classic buffer-replacement policy saves.
//!
//! ```sh
//! cargo run --example llm_kv_cache
//! ```

use backbone_kvcache::{evaluate_policies, generate_llm_trace, CostModel, LlmTraceConfig};

fn main() {
    let config = LlmTraceConfig {
        sessions: 64,
        turns_per_session: 8,
        shared_prefix_blocks: 24,
        templates: 6,
        blocks_per_turn: 4,
        skew: 0.7,
        seed: 42,
    };
    let trace = generate_llm_trace(&config);
    println!(
        "serving trace: {} ({} block accesses, {} distinct blocks)\n",
        trace.label,
        trace.len(),
        trace.unique_blocks
    );

    let cost = CostModel {
        hit_cost: 1.0,   // read a cached KV block
        miss_cost: 10.0, // recompute attention K/V for the block
    };

    for capacity in [64usize, 128, 256] {
        println!("GPU cache capacity: {capacity} blocks");
        println!(
            "  {:>8} {:>9} {:>12} {:>11}",
            "policy", "hit-rate", "cost", "vs-optimal"
        );
        for r in evaluate_policies(&trace, capacity, cost) {
            println!(
                "  {:>8} {:>8.1}% {:>12.0} {:>10.2}x",
                r.policy,
                r.hit_rate * 100.0,
                r.cost,
                r.cost_vs_optimal.unwrap_or(f64::NAN)
            );
        }
        println!();
    }
    println!("reading: the same scan-resistance that made LRU-K/2Q matter for");
    println!("database buffer pools decides LLM serving cost — policy choice is");
    println!("worth tens of percent, and Belady bounds what smarter admission");
    println!("(prefix-aware pinning) could still win.");
}
