//! The paper's Figure 1, executable: generate collaboration projects under
//! the four disciplinarity definitions and recover the mode from structure.
//!
//! ```sh
//! cargo run --example disciplinarity
//! ```

use backbone_workloads::disciplines::{classify, generate_corpus, Confusion, Member, Mode};

fn main() {
    let corpus = generate_corpus(100, 6, 42);
    println!(
        "generated {} projects (100 per mode, 6 disciplines)\n",
        corpus.len()
    );

    // A few concrete projects with their structural signals.
    for mode in Mode::all() {
        let p = corpus.iter().find(|p| p.label == mode).unwrap();
        let practitioners = p
            .members
            .iter()
            .filter(|m| matches!(m, Member::Practitioner))
            .count();
        let crossing = p
            .collaborations
            .iter()
            .filter(|&&(a, b)| match (p.members[a], p.members[b]) {
                (Member::Academic(x), Member::Academic(y)) => x != y,
                _ => true,
            })
            .count();
        println!(
            "{:>5}: {} members ({} practitioners), {} collaborations ({} boundary-crossing), {} borrowed methods -> classified {}",
            mode.name(),
            p.members.len(),
            practitioners,
            p.collaborations.len(),
            crossing,
            p.borrowed_methods.len(),
            classify(p).name()
        );
    }

    let confusion = Confusion::evaluate(&corpus);
    println!("\nconfusion matrix (rows = truth, cols = classified):");
    print!("{:>8}", "");
    for m in Mode::all() {
        print!("{:>8}", m.name());
    }
    println!();
    for (i, m) in Mode::all().iter().enumerate() {
        print!("{:>8}", m.name());
        for j in 0..4 {
            print!("{:>8}", confusion.matrix[i][j]);
        }
        println!();
    }
    println!("\naccuracy: {:.1}%", confusion.accuracy() * 100.0);
}
