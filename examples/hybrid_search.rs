//! Hybrid search over a product catalog: one declarative query combining a
//! relational filter, a keyword, and an embedding — the paper's "data
//! backbone" for mixed workloads — next to the bolt-on three-service
//! composition it replaces.
//!
//! ```sh
//! cargo run --example hybrid_search
//! ```

use backbone_core::Database;
use backbone_core::{HybridSpec, VectorIndexSpec};
use backbone_query::{col, lit};
use backbone_storage::{DataType, Field, Schema, Value};
use backbone_vector::{Dataset, Metric};
use backbone_workloads::hybrid;

fn main() {
    // A 10k-product catalog with embeddings and descriptions.
    let catalog = hybrid::generate(10_000, 8, 7);
    let db = Database::new();
    db.create_table(
        "products",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("category", DataType::Utf8),
            Field::new("price", DataType::Float64),
            Field::new("rating", DataType::Float64),
            Field::new("in_stock", DataType::Bool),
        ]),
    )
    .expect("create");
    db.insert(
        "products",
        catalog
            .products
            .iter()
            .map(|p| {
                vec![
                    Value::Int(p.id as i64),
                    Value::str(p.category),
                    Value::Float(p.price),
                    Value::Float(p.rating),
                    Value::Bool(p.in_stock),
                ]
            })
            .collect(),
    )
    .expect("insert");
    db.create_text_index_from(
        "products",
        catalog.products.iter().map(|p| p.description.as_str()),
    )
    .expect("text index");
    let mut ds = Dataset::new(catalog.dim);
    for p in &catalog.products {
        ds.push(p.id, &p.embedding);
    }
    db.create_vector_index(
        "products",
        ds,
        VectorIndexSpec::hnsw(Metric::L2).ef_search(96),
    )
    .expect("vector index");

    // "Find 5 audio products like this one, about bass, under $100" — one
    // declarative request assembled with the `SearchRequest` builder.
    let mut query_vec = vec![0.1f32; 8];
    query_vec[0] = 1.0; // the "audio" direction
    let unified = db
        .search("products")
        .filter(
            col("price")
                .lt(lit(100.0))
                .and(col("in_stock").eq(lit(true))),
        )
        .keyword("bass wireless")
        .vector(query_vec.clone())
        .k(5)
        .run()
        .expect("unified");
    println!(
        "unified engine: {} round trip(s), {} candidates shipped",
        unified.cost.round_trips, unified.cost.candidates_fetched
    );
    let batch = db.table_batch("products").expect("batch");
    for h in &unified.hits {
        let row = batch.row(h.row as usize);
        println!(
            "  #{:<6} {:<8} ${:<8.2} score {:.3} (vec {:?}, text {:?})",
            row[0],
            row[1],
            row[2].as_float().unwrap_or(0.0),
            h.score,
            h.vector_distance,
            h.text_score
        );
    }

    // Same request, routed through the bolt-on three-service composition
    // (the measured baseline the unified engine replaces).
    let bolton = db
        .search("products")
        .filter(
            col("price")
                .lt(lit(100.0))
                .and(col("in_stock").eq(lit(true))),
        )
        .keyword("bass wireless")
        .vector(query_vec.clone())
        .k(5)
        .via_bolton()
        .run()
        .expect("bolton");
    println!(
        "\nbolt-on composition: {} round trips, {} candidates shipped ({}x more)",
        bolton.cost.round_trips,
        bolton.cost.candidates_fetched,
        bolton.cost.candidates_fetched / unified.cost.candidates_fetched.max(1)
    );

    // Bonus: the paper's cross-disciplinary exhibit — Fagin's Threshold
    // Algorithm terminates the fused top-k early on the unfiltered query.
    let unfiltered = HybridSpec {
        table: "products".into(),
        filter: None,
        keyword: Some("bass wireless".into()),
        vector: Some(query_vec),
        k: 5,
        weights: Default::default(),
    };
    let ta = backbone_core::ta_search(&db, &unfiltered).expect("ta");
    println!(
        "\nthreshold algorithm (no filter): top-{} found at sorted depth {} of {} products ({} random accesses)",
        unfiltered.k,
        ta.depth,
        db.row_count("products").unwrap(),
        ta.random_accesses
    );
}
