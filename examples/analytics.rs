//! Laptop-scale analytics: TPC-H-like queries with EXPLAIN and morsel-driven
//! parallelism selected through the typed `Parallelism` knob.
//!
//! ```sh
//! cargo run --release --example analytics
//! ```

use backbone_query::{execute, executor::explain, Catalog, ExecOptions, Parallelism};
use backbone_workloads::{queries, tpch};
use std::time::Instant;

fn main() {
    let sf = 0.01;
    println!("generating TPC-H-like data at SF {sf}...");
    let catalog = tpch::generate(sf, 42);
    println!(
        "lineitem: {} rows, orders: {} rows\n",
        catalog.table("lineitem").unwrap().num_rows(),
        catalog.table("orders").unwrap().num_rows()
    );

    // Show the optimizer at work on the join-heavy Q3.
    let q3 = queries::q3(&catalog, "BUILDING", 1200).expect("q3");
    println!(
        "{}",
        explain(&q3, &catalog, &ExecOptions::default()).expect("explain")
    );

    // Run everything across the parallelism ladder — same queries, no code
    // change: Serial pins everything to the caller, Fixed(n) forces a worker
    // count, Auto sizes to the machine. "Automatic scalability".
    let rungs = [
        ("serial", Parallelism::Serial),
        ("fixed-4", Parallelism::Fixed(4)),
        ("auto", Parallelism::Auto),
    ];
    for (label, plan) in queries::all_queries(&catalog).expect("queries") {
        for (rung, parallelism) in rungs {
            let opts = ExecOptions::default().parallel(parallelism);
            let t = Instant::now();
            let out = execute(plan.clone(), &catalog, &opts).expect("run");
            println!(
                "{label} ({rung:>7}): {:>8.2?} -> {} rows",
                t.elapsed(),
                out.num_rows()
            );
        }
    }
}
