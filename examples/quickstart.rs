//! Quickstart: create a database, load rows, run declarative queries.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use backbone_core::Database;
use backbone_query::logical::desc;
use backbone_query::{avg, col, count_star, lit, sum};
use backbone_storage::{DataType, Field, Schema, Value};

fn main() {
    // 1. A database and a table.
    let db = Database::new();
    db.create_table(
        "sales",
        Schema::new(vec![
            Field::new("region", DataType::Utf8),
            Field::new("product", DataType::Utf8),
            Field::new("units", DataType::Int64),
            Field::new("price", DataType::Float64),
        ]),
    )
    .expect("create table");

    // 2. Some rows.
    let regions = ["north", "south", "east", "west"];
    let products = ["widget", "gadget", "gizmo"];
    let mut rows = Vec::new();
    for i in 0..1000i64 {
        rows.push(vec![
            Value::str(regions[(i % 4) as usize]),
            Value::str(products[(i % 3) as usize]),
            Value::Int(1 + i % 17),
            Value::Float(9.99 + (i % 50) as f64),
        ]);
    }
    db.insert("sales", rows).expect("insert");

    // 3. A declarative query: revenue per region for widgets, best first.
    let plan = db
        .query("sales")
        .expect("scan")
        .filter(col("product").eq(lit("widget")))
        .aggregate(
            vec![col("region")],
            vec![
                sum(col("units").mul(col("price"))).alias("revenue"),
                avg(col("units")).alias("avg_units"),
                count_star().alias("orders"),
            ],
        )
        .sort(vec![desc(col("revenue"))]);

    // 4. EXPLAIN ANALYZE runs the plan instrumented: the optimized tree
    //    annotated with measured per-operator rows and elapsed time.
    let (report, out) = db.explain_analyze(&plan).expect("explain analyze");
    println!("{report}");

    // 5. Print the result.
    println!(
        "{:>8} {:>12} {:>10} {:>8}",
        "region", "revenue", "avg_units", "orders"
    );
    for i in 0..out.num_rows() {
        let row = out.row(i);
        println!(
            "{:>8} {:>12.2} {:>10.2} {:>8}",
            row[0],
            row[1].as_float().unwrap_or(0.0),
            row[2].as_float().unwrap_or(0.0),
            row[3]
        );
    }

    // 6. The database's shared metrics registry accumulated the operator
    //    totals along the way (`op.*` counters survive across queries).
    println!("\nmetrics:");
    print!("{}", db.metrics().render());
}
