//! SQL over the TPC-H-like catalog: the same declarative algebra as the
//! builder API, in text form.
//!
//! ```sh
//! cargo run --release --example sql
//! ```

use backbone_core::Database;
use backbone_workloads::tpch;

fn main() {
    // Load a generated TPC-H-like catalog into a Database.
    println!("generating TPC-H-like data (SF 0.005)...");
    let generated = tpch::generate(0.005, 42);
    let db = Database::new();
    for name in [
        "region", "nation", "supplier", "part", "customer", "orders", "lineitem",
    ] {
        use backbone_query::Catalog;
        let table = generated.table(name).unwrap();
        db.register_table(name, (*table).clone()).unwrap();
    }

    let queries = [
        "SELECT COUNT(*) AS orders, AVG(o_totalprice) AS avg_price FROM orders",
        "SELECT c_mktsegment, COUNT(*) AS customers \
         FROM customer GROUP BY c_mktsegment ORDER BY customers DESC",
        "SELECT n_name, COUNT(*) AS suppliers \
         FROM supplier JOIN nation ON s_nationkey = n_nationkey \
         GROUP BY n_name ORDER BY suppliers DESC LIMIT 5",
        "SELECT o_orderkey, o_totalprice \
         FROM orders WHERE o_totalprice > 20000 AND o_orderdate BETWEEN 100 AND 400 \
         ORDER BY o_totalprice DESC LIMIT 5",
        "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, COUNT(*) AS n \
         FROM lineitem WHERE l_shipdate <= 2286 \
         GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus",
    ];

    for q in queries {
        println!("\nsql> {q}");
        match db.sql(q) {
            Ok(batch) => {
                let names: Vec<&str> = batch
                    .schema()
                    .fields()
                    .iter()
                    .map(|f| f.name.as_str())
                    .collect();
                println!("{}", names.join(" | "));
                for i in 0..batch.num_rows().min(10) {
                    let row: Vec<String> = batch.row(i).iter().map(|v| v.to_string()).collect();
                    println!("{}", row.join(" | "));
                }
            }
            Err(e) => println!("error: {e}"),
        }
    }

    // EXPLAIN ANALYZE is SQL too: the optimized plan comes back as rows,
    // annotated with measured per-operator row counts and timings.
    let q = "EXPLAIN ANALYZE SELECT n_name, COUNT(*) AS suppliers \
             FROM supplier JOIN nation ON s_nationkey = n_nationkey \
             GROUP BY n_name ORDER BY suppliers DESC LIMIT 5";
    println!("\nsql> {q}");
    let plan = db.sql(q).expect("explain analyze");
    for i in 0..plan.num_rows() {
        println!("{}", plan.row(i)[0]);
    }
}
