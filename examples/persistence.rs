//! Persistence quickstart: open a database directory, commit rows, "crash",
//! and reopen — the WAL + checkpoint backbone brings everything back.
//!
//! Run with: `cargo run --example persistence`

use backbone_core::{Database, DurabilityOptions, FsyncPolicy};
use backbone_storage::{DataType, Field, Schema, Value};

fn main() -> backbone_core::Result<()> {
    let dir = std::env::temp_dir().join(format!("backbone-persistence-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // First life: a durable database. Every create/insert is WAL-logged
    // before it is acknowledged; `FsyncPolicy::Group` batches concurrent
    // commits into shared fsyncs.
    {
        let db = Database::open_with(
            &dir,
            DurabilityOptions::default()
                .fsync(FsyncPolicy::Group)
                .checkpoint_every(1024),
        )?;
        db.create_table(
            "readings",
            Schema::new(vec![
                Field::new("sensor", DataType::Utf8),
                Field::new("celsius", DataType::Float64),
            ]),
        )?;
        for i in 0..100 {
            db.insert(
                "readings",
                vec![vec![
                    Value::str(format!("sensor-{}", i % 4)),
                    Value::Float(18.0 + (i as f64) * 0.1),
                ]],
            )?;
        }
        println!(
            "first life: committed 100 rows, {:?} fsyncs",
            db.wal_fsyncs()
        );
        // Simulate a hard crash: no graceful shutdown, no final flush.
        std::mem::forget(db);
    }

    // Second life: reopen the same directory. Startup loads the latest
    // checkpoint (if any) and replays the WAL tail past it.
    let db = Database::open(&dir)?;
    let report = db
        .recovery_report()
        .expect("durable databases report recovery");
    println!(
        "recovered: {} checkpointed table(s), {} WAL records replayed, {} bytes dropped",
        report.checkpoint_tables, report.replayed_records, report.wal_bytes_dropped
    );

    let session = db.session();
    let out = session.sql("SELECT sensor, COUNT(*) AS n FROM readings GROUP BY sensor")?;
    for i in 0..out.num_rows() {
        let row: Vec<String> = out.row(i).iter().map(|v| v.to_string()).collect();
        println!("{}", row.join(" | "));
    }
    assert_eq!(db.row_count("readings"), Some(100), "no committed row lost");

    // Checkpoint on demand: snapshots every table and truncates the log,
    // so the next startup replays (almost) nothing.
    db.checkpoint()?;
    println!("checkpointed; log truncated");

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
