//! Strict two-phase locking over striped locks.

use crate::error::TxnError;
use crate::ops::{KvEngine, TxnOp};
use crate::serial::{apply_ops, encode_record};
use crate::wal::Wal;
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::HashMap;
use std::sync::Arc;

/// Number of lock stripes (power of two).
const STRIPES: usize = 256;

/// Strict 2PL engine: keys hash to lock stripes; a transaction takes every
/// stripe it touches (write stripes exclusively) *in stripe order*, which
/// makes deadlock impossible, runs, then releases — rung 2 of the E5 ladder.
pub struct TwoPlEngine {
    locks: Vec<RwLock<()>>,
    /// The data itself is sharded to match the stripes, so a stripe lock
    /// protects its shard.
    shards: Vec<Mutex<HashMap<u64, u64>>>,
    wal: Option<Arc<Wal>>,
}

enum StripeGuard<'a> {
    Read(#[allow(dead_code)] RwLockReadGuard<'a, ()>),
    Write(#[allow(dead_code)] RwLockWriteGuard<'a, ()>),
}

fn stripe_of(key: u64) -> usize {
    // Multiplicative hash; stripes are a power of two.
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56) as usize & (STRIPES - 1)
}

impl TwoPlEngine {
    /// An empty engine, optionally durable via `wal`.
    pub fn new(wal: Option<Arc<Wal>>) -> TwoPlEngine {
        TwoPlEngine {
            locks: (0..STRIPES).map(|_| RwLock::new(())).collect(),
            shards: (0..STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
            wal,
        }
    }

    /// Bulk-load initial state without locking or logging.
    pub fn load(&self, pairs: impl IntoIterator<Item = (u64, u64)>) {
        for (k, v) in pairs {
            self.shards[stripe_of(k)].lock().insert(k, v);
        }
    }
}

impl KvEngine for TwoPlEngine {
    fn name(&self) -> &'static str {
        "2PL"
    }

    fn execute(&self, ops: &[TxnOp]) -> Result<Vec<Option<u64>>, TxnError> {
        // Growing phase: collect stripes with the strongest mode needed and
        // lock in ascending stripe order (deadlock freedom by ordering).
        let mut modes: HashMap<usize, bool> = HashMap::new(); // stripe -> needs write
        for op in ops {
            let e = modes.entry(stripe_of(op.key())).or_insert(false);
            *e |= op.is_write();
        }
        let mut stripes: Vec<(usize, bool)> = modes.into_iter().collect();
        stripes.sort_unstable();
        let _guards: Vec<StripeGuard> = stripes
            .iter()
            .map(|&(s, write)| {
                if write {
                    StripeGuard::Write(self.locks[s].write())
                } else {
                    StripeGuard::Read(self.locks[s].read())
                }
            })
            .collect();

        // Execute against a merged view of the touched shards. A
        // transaction touches few keys, so copy-in/copy-out on just those
        // keys is cheap.
        let keys: Vec<u64> = ops.iter().map(|o| o.key()).collect();
        let mut view: HashMap<u64, u64> = HashMap::with_capacity(keys.len());
        for &k in &keys {
            if let Some(v) = self.shards[stripe_of(k)].lock().get(&k) {
                view.insert(k, *v);
            }
        }
        let before = view.clone();
        let result = apply_ops(&mut view, ops)?;
        for (k, v) in &view {
            if before.get(k) != Some(v) {
                self.shards[stripe_of(*k)].lock().insert(*k, *v);
            }
        }
        if let Some(wal) = &self.wal {
            if ops.iter().any(|o| o.is_write()) {
                wal.commit(&encode_record(ops))?;
            }
        }
        // Shrinking phase: guards drop here, after the commit record is
        // durable (strict 2PL).
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::execute_with_retry;

    #[test]
    fn basic_transactions() {
        let e = TwoPlEngine::new(None);
        e.execute(&[TxnOp::Write(1, 100), TxnOp::Write(2, 200)])
            .unwrap();
        let r = e.execute(&[TxnOp::Read(1), TxnOp::Read(2)]).unwrap();
        assert_eq!(r, vec![Some(100), Some(200)]);
    }

    #[test]
    fn concurrent_transfers_preserve_total() {
        // The classic bank test: concurrent transfers between 8 accounts
        // must conserve the total balance.
        let e = Arc::new(TwoPlEngine::new(None));
        e.load((0..8).map(|k| (k, 1000u64)));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let e = e.clone();
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let from = (t + i) % 8;
                        let to = (t + i + 1) % 8;
                        let ops = [TxnOp::Add(from, -1), TxnOp::Add(to, 1)];
                        let (res, _) = execute_with_retry(e.as_ref(), &ops);
                        // ConstraintViolation possible if an account empties.
                        let _ = res;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = (0..8).map(|k| e.read(k).unwrap_or(0)).sum();
        assert_eq!(total, 8000);
    }

    #[test]
    fn cross_stripe_transactions_are_atomic() {
        let e = Arc::new(TwoPlEngine::new(None));
        e.load([(1, 0), (1_000_003, 0)]);
        let writer = {
            let e = e.clone();
            std::thread::spawn(move || {
                for _ in 0..1000 {
                    e.execute(&[TxnOp::Add(1, 1), TxnOp::Add(1_000_003, 1)])
                        .unwrap();
                }
            })
        };
        let reader = {
            let e = e.clone();
            std::thread::spawn(move || {
                for _ in 0..1000 {
                    let r = e
                        .execute(&[TxnOp::Read(1), TxnOp::Read(1_000_003)])
                        .unwrap();
                    let a = r[0].unwrap_or(0);
                    let b = r[1].unwrap_or(0);
                    assert_eq!(a, b, "reader saw a torn transaction");
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
    }

    #[test]
    fn no_deadlock_on_opposite_orders() {
        // Two threads writing the same pair of keys in opposite op orders
        // must not deadlock (ordered stripe acquisition).
        let e = Arc::new(TwoPlEngine::new(None));
        let a = {
            let e = e.clone();
            std::thread::spawn(move || {
                for _ in 0..2000 {
                    e.execute(&[TxnOp::Add(10, 1), TxnOp::Add(20, 1)]).unwrap();
                }
            })
        };
        let b = {
            let e = e.clone();
            std::thread::spawn(move || {
                for _ in 0..2000 {
                    e.execute(&[TxnOp::Add(20, 1), TxnOp::Add(10, 1)]).unwrap();
                }
            })
        };
        a.join().unwrap();
        b.join().unwrap();
        assert_eq!(e.read(10), Some(4000));
        assert_eq!(e.read(20), Some(4000));
    }
}
