//! Multi-threaded workload driver for the E5 throughput ladder.

use crate::ops::{execute_with_retry, KvEngine, TxnOp};
use rand::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Workload shape for [`run_workload`].
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Worker threads.
    pub threads: usize,
    /// Transactions per thread.
    pub txns_per_thread: usize,
    /// Number of keys.
    pub keys: u64,
    /// Zipf-like skew in [0, 1): 0 = uniform, higher = more contended.
    pub skew: f64,
    /// Fraction of read-only transactions in [0, 1].
    pub read_ratio: f64,
    /// Ops per transaction.
    pub ops_per_txn: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            threads: 4,
            txns_per_thread: 1000,
            keys: 1024,
            skew: 0.5,
            read_ratio: 0.5,
            ops_per_txn: 4,
            seed: 42,
        }
    }
}

/// Results of one workload run.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadReport {
    /// Committed transactions.
    pub committed: u64,
    /// Optimistic aborts (retries).
    pub aborts: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl WorkloadReport {
    /// Committed transactions per second.
    pub fn throughput(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.committed as f64 / self.seconds
        }
    }
}

/// Skewed key selection: `skew = 0` is uniform; higher values concentrate
/// accesses on low keys (a cheap Zipf stand-in with the right shape).
fn pick_key(rng: &mut StdRng, keys: u64, skew: f64) -> u64 {
    let u: f64 = rng.gen();
    // Power transform: exponent grows with skew.
    let exp = 1.0 + skew * 8.0;
    ((u.powf(exp)) * keys as f64) as u64 % keys
}

/// Drive `engine` with the configured workload and report throughput.
///
/// Transfers use balanced `Add` pairs so the key-space total is invariant —
/// the integration tests assert it after every run, making the harness
/// itself an isolation checker.
pub fn run_workload(engine: Arc<dyn KvEngine>, config: &WorkloadConfig) -> WorkloadReport {
    let committed = Arc::new(AtomicU64::new(0));
    let aborts = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let handles: Vec<_> = (0..config.threads)
        .map(|t| {
            let engine = engine.clone();
            let committed = committed.clone();
            let aborts = aborts.clone();
            let config = config.clone();
            std::thread::spawn(move || {
                let mut rng =
                    StdRng::seed_from_u64(config.seed ^ (t as u64).wrapping_mul(0x9E3779B9));
                for _ in 0..config.txns_per_thread {
                    let read_only = rng.gen::<f64>() < config.read_ratio;
                    let mut ops = Vec::with_capacity(config.ops_per_txn);
                    if read_only {
                        for _ in 0..config.ops_per_txn {
                            ops.push(TxnOp::Read(pick_key(&mut rng, config.keys, config.skew)));
                        }
                    } else {
                        // Balanced transfer pairs keep the total invariant.
                        for _ in 0..(config.ops_per_txn / 2).max(1) {
                            let from = pick_key(&mut rng, config.keys, config.skew);
                            let to = pick_key(&mut rng, config.keys, config.skew);
                            ops.push(TxnOp::Add(from, -1));
                            ops.push(TxnOp::Add(to, 1));
                        }
                    }
                    let (res, a) = execute_with_retry(engine.as_ref(), &ops);
                    aborts.fetch_add(a, Ordering::Relaxed);
                    if res.is_ok() {
                        committed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    WorkloadReport {
        committed: committed.load(Ordering::Relaxed),
        aborts: aborts.load(Ordering::Relaxed),
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Initial balance used by [`load_initial`].
pub const INITIAL_BALANCE: u64 = 1_000_000;

/// Load every key with [`INITIAL_BALANCE`] (large enough that constraint
/// violations are effectively impossible during a run).
pub fn load_initial(engine: &dyn LoadableEngine, keys: u64) {
    engine.load_pairs(Box::new((0..keys).map(|k| (k, INITIAL_BALANCE))));
}

/// Engines that support bulk loading.
pub trait LoadableEngine {
    /// Install initial key-value pairs without logging.
    fn load_pairs(&self, pairs: Box<dyn Iterator<Item = (u64, u64)> + '_>);
}

impl LoadableEngine for crate::serial::SerialEngine {
    fn load_pairs(&self, pairs: Box<dyn Iterator<Item = (u64, u64)> + '_>) {
        self.load(pairs);
    }
}

impl LoadableEngine for crate::twopl::TwoPlEngine {
    fn load_pairs(&self, pairs: Box<dyn Iterator<Item = (u64, u64)> + '_>) {
        self.load(pairs);
    }
}

impl LoadableEngine for crate::mvcc::MvccEngine {
    fn load_pairs(&self, pairs: Box<dyn Iterator<Item = (u64, u64)> + '_>) {
        self.load(pairs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mvcc::MvccEngine;
    use crate::serial::SerialEngine;
    use crate::twopl::TwoPlEngine;

    fn small_config() -> WorkloadConfig {
        WorkloadConfig {
            threads: 4,
            txns_per_thread: 200,
            keys: 64,
            skew: 0.7,
            read_ratio: 0.3,
            ops_per_txn: 4,
            seed: 9,
        }
    }

    fn total(engine: &dyn KvEngine, keys: u64) -> u64 {
        (0..keys).map(|k| engine.read(k).unwrap_or(0)).sum()
    }

    #[test]
    fn all_engines_conserve_money() {
        let config = small_config();
        let engines: Vec<Arc<dyn KvEngine>> = vec![
            {
                let e = Arc::new(SerialEngine::new(None));
                load_initial(e.as_ref(), config.keys);
                e
            },
            {
                let e = Arc::new(TwoPlEngine::new(None));
                load_initial(e.as_ref(), config.keys);
                e
            },
            {
                let e = Arc::new(MvccEngine::new(None));
                load_initial(e.as_ref(), config.keys);
                e
            },
        ];
        let expected = config.keys * INITIAL_BALANCE;
        for engine in engines {
            let report = run_workload(engine.clone(), &config);
            assert_eq!(
                report.committed,
                (config.threads * config.txns_per_thread) as u64,
                "{}: all txns should commit eventually",
                engine.name()
            );
            assert_eq!(
                total(engine.as_ref(), config.keys),
                expected,
                "{} lost money under concurrency",
                engine.name()
            );
        }
    }

    #[test]
    fn pick_key_respects_bounds_and_skew() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut low = 0;
        for _ in 0..10_000 {
            let k = pick_key(&mut rng, 100, 0.9);
            assert!(k < 100);
            if k < 10 {
                low += 1;
            }
        }
        // With strong skew most picks land on the low decile.
        assert!(low > 5000, "skewed picks in low decile: {low}");
    }

    #[test]
    fn throughput_math() {
        let r = WorkloadReport {
            committed: 100,
            aborts: 5,
            seconds: 2.0,
        };
        assert_eq!(r.throughput(), 50.0);
    }
}
