//! # backbone-txn
//!
//! OLTP substrate for experiment E5 — Dittrich's quip that *"the best
//! (database) minds of my generation are thinking about how to increase
//! transaction throughput from one gazillion TAs/sec to 2 gazillion"*.
//!
//! The crate implements a ladder of transaction engines over the same
//! key-value store so the throughput gain of each classic optimization can
//! be measured in isolation:
//!
//! 1. [`serial::SerialEngine`] — one global lock, the 1970s baseline;
//! 2. [`twopl::TwoPlEngine`] — strict two-phase locking on striped locks;
//! 3. [`mvcc::MvccEngine`] — multi-version snapshot isolation
//!    (first-committer-wins write-conflict detection);
//! 4. any engine + [`wal::Wal`] group commit — amortized fsync.
//!
//! [`harness`] drives them with a contended multi-threaded workload.
//!
//! The WAL is the durable backbone of the whole engine, not just the E5
//! ladder: it appends length-prefixed, CRC-32-checksummed records to a
//! pluggable [`wal::LogDevice`] (in-memory for benchmarks, a real file for
//! persistence, or the deterministic crash-injecting [`fault::FaultFile`]),
//! and [`wal::Wal::replay`] recovers a torn or corrupt tail by truncating at
//! the last valid record instead of panicking.

pub mod error;
pub mod fault;
pub mod harness;
pub mod mvcc;
pub mod ops;
pub mod serial;
pub mod snapshot;
pub mod twopl;
pub mod wal;

pub use error::TxnError;
pub use fault::{FaultFile, FaultKind, FaultPlan};
pub use harness::{run_workload, WorkloadConfig, WorkloadReport};
pub use mvcc::MvccEngine;
pub use ops::{KvEngine, TxnOp};
pub use serial::SerialEngine;
pub use snapshot::{EpochClock, SnapshotGuard};
pub use twopl::TwoPlEngine;
pub use wal::{
    FileDevice, FsyncPolicy, LogDevice, MemDevice, Replay, Wal, WalConfig, WalError, WalRecord,
};
