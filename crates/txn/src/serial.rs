//! The serial baseline: one global lock.

use crate::error::TxnError;
use crate::ops::{KvEngine, TxnOp};
use crate::wal::Wal;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A single-lock engine: every transaction serializes on one mutex. Trivially
/// serializable and trivially unscalable — rung 1 of the E5 ladder.
pub struct SerialEngine {
    store: Mutex<HashMap<u64, u64>>,
    wal: Option<Arc<Wal>>,
}

impl SerialEngine {
    /// An empty engine, optionally durable via `wal`.
    pub fn new(wal: Option<Arc<Wal>>) -> SerialEngine {
        SerialEngine {
            store: Mutex::new(HashMap::new()),
            wal,
        }
    }

    /// Bulk-load initial state without logging.
    pub fn load(&self, pairs: impl IntoIterator<Item = (u64, u64)>) {
        let mut st = self.store.lock();
        st.extend(pairs);
    }
}

/// Apply ops to a map, returning read results; used by serial and 2PL which
/// operate on locked in-place state.
pub(crate) fn apply_ops(
    store: &mut HashMap<u64, u64>,
    ops: &[TxnOp],
) -> Result<Vec<Option<u64>>, TxnError> {
    // Sequential evaluation against a scratch overlay; the store is only
    // mutated after every op validated, so an abort leaves no effects.
    let mut scratch: HashMap<u64, u64> = HashMap::new();
    let mut reads = Vec::new();
    let current = |scratch: &HashMap<u64, u64>, k: &u64| -> Option<u64> {
        scratch.get(k).copied().or_else(|| store.get(k).copied())
    };
    for op in ops {
        match op {
            TxnOp::Read(k) => reads.push(current(&scratch, k)),
            TxnOp::Write(k, v) => {
                scratch.insert(*k, *v);
            }
            TxnOp::Add(k, delta) => {
                let cur = current(&scratch, k).unwrap_or(0) as i128;
                let next = cur + *delta as i128;
                if next < 0 || next > u64::MAX as i128 {
                    return Err(TxnError::ConstraintViolation);
                }
                scratch.insert(*k, next as u64);
            }
        }
    }
    for (k, v) in scratch {
        store.insert(k, v);
    }
    Ok(reads)
}

/// Encode a transaction's write effects as a WAL record.
pub(crate) fn encode_record(ops: &[TxnOp]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ops.len() * 17);
    for op in ops {
        match op {
            TxnOp::Read(_) => {}
            TxnOp::Write(k, v) => {
                out.push(b'W');
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&v.to_le_bytes());
            }
            TxnOp::Add(k, d) => {
                out.push(b'A');
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&d.to_le_bytes());
            }
        }
    }
    out
}

impl KvEngine for SerialEngine {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn execute(&self, ops: &[TxnOp]) -> Result<Vec<Option<u64>>, TxnError> {
        let mut st = self.store.lock();
        let result = apply_ops(&mut st, ops)?;
        // Log before releasing the lock: commit order == log order.
        if let Some(wal) = &self.wal {
            if ops.iter().any(|o| o.is_write()) {
                wal.commit(&encode_record(ops))?;
            }
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_add() {
        let e = SerialEngine::new(None);
        e.execute(&[TxnOp::Write(1, 10)]).unwrap();
        let r = e
            .execute(&[TxnOp::Add(1, 5), TxnOp::Read(1), TxnOp::Read(2)])
            .unwrap();
        assert_eq!(r, vec![Some(15), None]);
    }

    #[test]
    fn add_on_missing_key_starts_at_zero() {
        let e = SerialEngine::new(None);
        let r = e.execute(&[TxnOp::Add(9, 3), TxnOp::Read(9)]).unwrap();
        assert_eq!(r, vec![Some(3)]);
    }

    #[test]
    fn constraint_violation_aborts_whole_txn() {
        let e = SerialEngine::new(None);
        e.execute(&[TxnOp::Write(1, 5)]).unwrap();
        let err = e
            .execute(&[TxnOp::Add(1, 100), TxnOp::Add(2, -1)])
            .unwrap_err();
        assert_eq!(err, TxnError::ConstraintViolation);
        // First Add must not have been applied.
        assert_eq!(e.read(1), Some(5));
        assert_eq!(e.read(2), None);
    }

    #[test]
    fn read_your_own_writes() {
        let e = SerialEngine::new(None);
        let r = e
            .execute(&[
                TxnOp::Write(1, 7),
                TxnOp::Read(1),
                TxnOp::Add(1, 1),
                TxnOp::Read(1),
            ])
            .unwrap();
        assert_eq!(r, vec![Some(7), Some(8)]);
    }
}
