//! Multi-version concurrency control with snapshot isolation.

use crate::error::TxnError;
use crate::ops::{KvEngine, TxnOp};
use crate::serial::encode_record;
use crate::snapshot::EpochClock;
use crate::wal::Wal;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

const SHARDS: usize = 64;

/// Versions of one key: `(commit_ts, value)`, ascending by timestamp.
type VersionChain = Vec<(u64, u64)>;

/// MVCC engine with snapshot isolation — rung 3 of the E5 ladder.
///
/// Reads never block: a transaction reads the newest version at or below its
/// begin snapshot. Writes buffer locally and validate at commit with
/// first-committer-wins (any version newer than the snapshot on a written
/// key aborts the transaction with [`TxnError::Conflict`]).
///
/// Commit timestamps, snapshot refcounts, and the GC horizon all come from
/// a shared [`EpochClock`] — the same machinery the relational facade uses
/// to pin query snapshots, so "a snapshot" means one thing engine-wide.
pub struct MvccEngine {
    shards: Vec<RwLock<HashMap<u64, VersionChain>>>,
    clock: EpochClock,
    /// Serializes validate+install; held briefly (never across the WAL).
    commit_lock: Mutex<()>,
    wal: Option<Arc<Wal>>,
}

fn shard_of(key: u64) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize & (SHARDS - 1)
}

impl MvccEngine {
    /// An empty engine, optionally durable via `wal`.
    pub fn new(wal: Option<Arc<Wal>>) -> MvccEngine {
        MvccEngine {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            clock: EpochClock::new(),
            commit_lock: Mutex::new(()),
            wal,
        }
    }

    /// Bulk-load initial state as version 0, without logging.
    pub fn load(&self, pairs: impl IntoIterator<Item = (u64, u64)>) {
        for (k, v) in pairs {
            self.shards[shard_of(k)].write().insert(k, vec![(0, v)]);
        }
    }

    fn read_at(&self, key: u64, snapshot: u64) -> Option<u64> {
        let shard = self.shards[shard_of(key)].read();
        let chain = shard.get(&key)?;
        chain
            .iter()
            .rev()
            .find(|(ts, _)| *ts <= snapshot)
            .map(|(_, v)| *v)
    }

    fn release_snapshot(&self, ts: u64) {
        self.clock.release(ts);
    }

    /// Oldest snapshot any transaction might still read at.
    fn gc_horizon(&self) -> u64 {
        self.clock.horizon()
    }

    /// Drop versions no active snapshot can see (all but the newest version
    /// at or below the horizon).
    fn gc_chain(chain: &mut VersionChain, horizon: u64) {
        if chain.len() <= 1 {
            return;
        }
        // Index of the newest version visible at the horizon.
        let keep_from = chain
            .iter()
            .rposition(|(ts, _)| *ts <= horizon)
            .unwrap_or(0);
        if keep_from > 0 {
            chain.drain(..keep_from);
        }
    }

    /// Total stored versions (test/diagnostic hook).
    pub fn version_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().values().map(|c| c.len()).sum::<usize>())
            .sum()
    }
}

impl KvEngine for MvccEngine {
    fn name(&self) -> &'static str {
        "MVCC"
    }

    fn execute(&self, ops: &[TxnOp]) -> Result<Vec<Option<u64>>, TxnError> {
        // Atomic read+register: a prune between the two would GC versions
        // this snapshot still needs (see EpochClock::pin_epoch).
        let snapshot = self.clock.pin_epoch();
        let result = self.execute_at(ops, snapshot);
        self.release_snapshot(snapshot);
        result
    }
}

impl MvccEngine {
    fn execute_at(&self, ops: &[TxnOp], snapshot: u64) -> Result<Vec<Option<u64>>, TxnError> {
        let mut write_set: HashMap<u64, u64> = HashMap::new();
        let mut reads = Vec::new();
        for op in ops {
            match op {
                TxnOp::Read(k) => {
                    let v = write_set
                        .get(k)
                        .copied()
                        .or_else(|| self.read_at(*k, snapshot));
                    reads.push(v);
                }
                TxnOp::Write(k, v) => {
                    write_set.insert(*k, *v);
                }
                TxnOp::Add(k, delta) => {
                    let cur = write_set
                        .get(k)
                        .copied()
                        .or_else(|| self.read_at(*k, snapshot))
                        .unwrap_or(0) as i128;
                    let next = cur + *delta as i128;
                    if next < 0 || next > u64::MAX as i128 {
                        return Err(TxnError::ConstraintViolation);
                    }
                    write_set.insert(*k, next as u64);
                }
            }
        }
        if write_set.is_empty() {
            return Ok(reads);
        }

        // Validate + install under the commit lock (first committer wins).
        let commit_ts;
        let wal_seq;
        {
            let _commit = self.commit_lock.lock();
            for k in write_set.keys() {
                let shard = self.shards[shard_of(*k)].read();
                if let Some(chain) = shard.get(k) {
                    if let Some((newest, _)) = chain.last() {
                        if *newest > snapshot {
                            return Err(TxnError::Conflict);
                        }
                    }
                }
            }
            commit_ts = self.clock.reserve();
            let horizon = self.gc_horizon();
            for (k, v) in &write_set {
                let mut shard = self.shards[shard_of(*k)].write();
                let chain = shard.entry(*k).or_default();
                chain.push((commit_ts, *v));
                Self::gc_chain(chain, horizon);
            }
            // Append the log record inside the critical section so the log
            // order equals the commit-timestamp order (replay correctness
            // for non-commutative writes)...
            wal_seq = self.wal.as_ref().map(|w| w.append(&encode_record(ops)));
            // Publishing the timestamp makes the versions visible. On a WAL
            // failure we still publish — the versions are already installed
            // and later validators key off them — but the commit is NOT
            // acknowledged below.
            self.clock.publish(commit_ts);
        }

        // ...but wait for durability outside it, so group commit can batch
        // many committers into one fsync.
        if let Some(seq) = wal_seq {
            let wal = self.wal.as_ref().expect("wal_seq implies wal");
            wal.wait_durable(seq?)?;
        }
        Ok(reads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::execute_with_retry;

    #[test]
    fn snapshot_reads_and_writes() {
        let e = MvccEngine::new(None);
        e.execute(&[TxnOp::Write(1, 10)]).unwrap();
        let r = e
            .execute(&[TxnOp::Read(1), TxnOp::Add(1, 5), TxnOp::Read(1)])
            .unwrap();
        assert_eq!(r, vec![Some(10), Some(15)]);
        assert_eq!(e.read(1), Some(15));
    }

    #[test]
    fn write_write_conflict_detected() {
        let e = MvccEngine::new(None);
        e.load([(1, 100)]);
        // Simulate two concurrent transactions on the same snapshot.
        let snapshot = e.clock.published();
        e.execute_at(&[TxnOp::Add(1, 1)], snapshot).unwrap();
        let err = e.execute_at(&[TxnOp::Add(1, 1)], snapshot).unwrap_err();
        assert_eq!(err, TxnError::Conflict);
    }

    #[test]
    fn readers_never_conflict() {
        let e = MvccEngine::new(None);
        e.load([(1, 5)]);
        let snapshot = e.clock.published();
        e.execute_at(&[TxnOp::Write(1, 6)], snapshot).unwrap();
        // A read-only transaction on the old snapshot still succeeds and
        // sees the old value (repeatable reads).
        let r = e.execute_at(&[TxnOp::Read(1)], snapshot).unwrap();
        assert_eq!(r, vec![Some(5)]);
    }

    #[test]
    fn concurrent_transfers_preserve_total() {
        let e = Arc::new(MvccEngine::new(None));
        e.load((0..8).map(|k| (k, 1000u64)));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let e = e.clone();
                std::thread::spawn(move || {
                    let mut aborts = 0u64;
                    for i in 0..400u64 {
                        let from = (t + i) % 8;
                        let to = (t + i + 3) % 8;
                        if from == to {
                            continue;
                        }
                        let ops = [TxnOp::Add(from, -1), TxnOp::Add(to, 1)];
                        let (res, a) = execute_with_retry(e.as_ref(), &ops);
                        aborts += a;
                        let _ = res;
                    }
                    aborts
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = (0..8).map(|k| e.read(k).unwrap_or(0)).sum();
        assert_eq!(total, 8000, "snapshot isolation lost money");
    }

    #[test]
    fn old_versions_are_garbage_collected() {
        let e = MvccEngine::new(None);
        for i in 0..100 {
            e.execute(&[TxnOp::Write(1, i)]).unwrap();
        }
        // With no active snapshots, only the newest version must survive the
        // next commit's GC pass.
        e.execute(&[TxnOp::Write(1, 999)]).unwrap();
        assert!(
            e.version_count() <= 2,
            "expected GC to prune, found {} versions",
            e.version_count()
        );
    }

    #[test]
    fn gc_respects_active_snapshots() {
        let e = MvccEngine::new(None);
        e.load([(1, 1)]);
        let old_snapshot = e.clock.pin_epoch();
        for i in 0..10 {
            e.execute(&[TxnOp::Write(1, i + 100)]).unwrap();
        }
        // The version visible at old_snapshot must still exist.
        assert_eq!(e.read_at(1, old_snapshot), Some(1));
        e.release_snapshot(old_snapshot);
    }

    #[test]
    fn read_only_txn_needs_no_commit() {
        let e = MvccEngine::new(None);
        e.load([(5, 50)]);
        let before = e.clock.published();
        e.execute(&[TxnOp::Read(5)]).unwrap();
        assert_eq!(e.clock.published(), before);
    }
}
