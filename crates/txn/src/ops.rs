//! The transaction interface shared by every engine.

use crate::error::TxnError;

/// One operation inside a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOp {
    /// Read a key; contributes one slot to the result vector.
    Read(u64),
    /// Overwrite a key.
    Write(u64, u64),
    /// Read-modify-write: add `delta` (may be negative) to a key, treating a
    /// missing key as 0. Fails the transaction with
    /// [`TxnError::ConstraintViolation`] if the result would go negative —
    /// this is what makes the bank workload detect isolation bugs.
    Add(u64, i64),
}

impl TxnOp {
    /// The key this operation touches.
    pub fn key(&self) -> u64 {
        match self {
            TxnOp::Read(k) | TxnOp::Write(k, _) | TxnOp::Add(k, _) => *k,
        }
    }

    /// Whether the operation mutates its key.
    pub fn is_write(&self) -> bool {
        !matches!(self, TxnOp::Read(_))
    }
}

/// A transactional key-value engine.
///
/// `execute` runs the ops as one atomic, isolated transaction and returns the
/// value observed by each `Read` (in op order). Engines using optimistic
/// concurrency return [`TxnError::Conflict`], which callers retry via
/// [`execute_with_retry`].
pub trait KvEngine: Send + Sync {
    /// Engine name for reports.
    fn name(&self) -> &'static str;

    /// Atomically execute a transaction.
    fn execute(&self, ops: &[TxnOp]) -> Result<Vec<Option<u64>>, TxnError>;

    /// Non-transactional point read (for test assertions).
    fn read(&self, key: u64) -> Option<u64> {
        self.execute(&[TxnOp::Read(key)])
            .ok()
            .and_then(|r| r.into_iter().next().flatten())
    }
}

/// Execute with retry on optimistic conflicts. Returns the result plus the
/// number of aborts. Constraint violations are not retried.
pub fn execute_with_retry(
    engine: &dyn KvEngine,
    ops: &[TxnOp],
) -> (Result<Vec<Option<u64>>, TxnError>, u64) {
    let mut aborts = 0;
    loop {
        match engine.execute(ops) {
            Err(TxnError::Conflict) => {
                aborts += 1;
                std::hint::spin_loop();
            }
            other => return (other, aborts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_accessors() {
        assert_eq!(TxnOp::Read(3).key(), 3);
        assert_eq!(TxnOp::Write(4, 9).key(), 4);
        assert_eq!(TxnOp::Add(5, -1).key(), 5);
        assert!(!TxnOp::Read(0).is_write());
        assert!(TxnOp::Write(0, 0).is_write());
        assert!(TxnOp::Add(0, 0).is_write());
    }
}
