//! Deterministic fault injection for the durability subsystem.
//!
//! [`FaultFile`] wraps a real [`FileDevice`] with a model of the operating
//! system's page cache: `append` only buffers; bytes reach the file when
//! `sync` runs. A [`FaultPlan`] arms one fault — at the Nth append or the
//! Nth sync (depending on the kind) the device "crashes": it persists
//! whatever the fault kind dictates (a torn prefix, nothing, a bit-flipped
//! image, or a lie) and every later operation fails. Reopening the log file
//! with an ordinary device then exercises recovery exactly as a process
//! crash would, but deterministically — the same `(kind, trigger, seed)`
//! triple always tears the same bytes.
//!
//! The kinds split into two honesty classes, which is what the recovery
//! invariants key off:
//!
//! - **Honest** ([`FaultKind::CleanCrash`], [`FaultKind::TornWrite`],
//!   [`FaultKind::PartialTail`]): every acknowledged `sync` really persisted.
//!   Recovery must retain *all* acknowledged commits.
//! - **Lying** ([`FaultKind::DroppedFsync`], [`FaultKind::BitFlip`]): the
//!   device acknowledged a sync it did not honor. No log can recover what
//!   was never written; recovery must still come back to a clean prefix of
//!   the acknowledged history without panicking.

use crate::wal::{FileDevice, LogDevice};
use parking_lot::Mutex;
use std::io::{Error, Result};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The failure a [`FaultFile`] injects when its trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The crash interrupts a write: a random strict prefix of the
    /// in-flight bytes reaches the file (can cut mid-record). Honest —
    /// the write was never acknowledged.
    TornWrite,
    /// Like [`FaultKind::TornWrite`] but the cut lands inside the last
    /// record's payload, leaving an intact-looking length prefix with a
    /// short body — the case a length-only (checksum-free) reader
    /// misparses. Honest.
    PartialTail,
    /// The crash loses the entire page cache; nothing in flight reaches the
    /// file. Honest.
    CleanCrash,
    /// `sync` returns success without persisting anything, then the machine
    /// dies — the lying-fsync disk. Commits acknowledged against that sync
    /// are unrecoverable by construction.
    DroppedFsync,
    /// `sync` persists the bytes but flips one bit on the way down (silent
    /// media corruption), acknowledges, then the machine dies.
    BitFlip,
}

impl FaultKind {
    /// Every kind, for building test matrices.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::TornWrite,
        FaultKind::PartialTail,
        FaultKind::CleanCrash,
        FaultKind::DroppedFsync,
        FaultKind::BitFlip,
    ];

    /// Whether every acknowledged sync truly persisted. When true, recovery
    /// must preserve all acknowledged commits; when false, only the
    /// prefix-and-no-panic invariants apply.
    pub fn is_honest(self) -> bool {
        !matches!(self, FaultKind::DroppedFsync | FaultKind::BitFlip)
    }

    /// Whether the trigger counts appends (write faults) or syncs.
    fn triggers_on_append(self) -> bool {
        matches!(
            self,
            FaultKind::TornWrite | FaultKind::PartialTail | FaultKind::CleanCrash
        )
    }
}

/// When and how a [`FaultFile`] fails.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// What happens at the trigger.
    pub kind: FaultKind,
    /// Fire on the Nth append (write kinds) or Nth sync (sync kinds),
    /// 1-based. A trigger the run never reaches simply never fires.
    pub trigger_at: u64,
    /// Seed for the deterministic cut/flip positions.
    pub seed: u64,
}

impl FaultPlan {
    /// A plan for `kind` firing at operation `trigger_at` with `seed`.
    pub fn new(kind: FaultKind, trigger_at: u64, seed: u64) -> FaultPlan {
        FaultPlan {
            kind,
            trigger_at,
            seed,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn crash_err(what: &str) -> Error {
    Error::other(format!("injected fault: {what}"))
}

/// A [`LogDevice`] over a real file that crashes on cue. See the module
/// docs for the cache model and honesty classes.
pub struct FaultFile {
    inner: FileDevice,
    plan: FaultPlan,
    /// Bytes appended but not yet synced (the simulated OS page cache).
    cache: Mutex<Vec<u8>>,
    rng: Mutex<u64>,
    appends: AtomicU64,
    syncs: AtomicU64,
    crashed: AtomicBool,
}

impl FaultFile {
    /// Open (or create) the log file at `path` with `plan` armed.
    pub fn open(path: impl Into<PathBuf>, plan: FaultPlan) -> Result<FaultFile> {
        Ok(FaultFile {
            inner: FileDevice::open(path)?,
            plan,
            cache: Mutex::new(Vec::new()),
            rng: Mutex::new(plan.seed ^ 0x5DEE_CE66_D1CE_CAFE),
            appends: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
        })
    }

    /// Whether the fault has fired.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Appends observed so far.
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::SeqCst)
    }

    /// Syncs observed so far (acknowledged ones, honest or not).
    pub fn syncs(&self) -> u64 {
        self.syncs.load(Ordering::SeqCst)
    }

    fn check_alive(&self) -> Result<()> {
        if self.crashed() {
            Err(crash_err("device is down"))
        } else {
            Ok(())
        }
    }

    /// Persist a torn prefix of `data` and mark the device dead.
    fn crash_with_prefix(&self, data: &[u8], cut: usize) -> Result<()> {
        if cut > 0 {
            self.inner.append(&data[..cut])?;
            self.inner.sync()?;
        }
        self.crashed.store(true, Ordering::SeqCst);
        Ok(())
    }
}

impl LogDevice for FaultFile {
    fn append(&self, buf: &[u8]) -> Result<()> {
        self.check_alive()?;
        let n = self.appends.fetch_add(1, Ordering::SeqCst) + 1;
        let mut cache = self.cache.lock();
        if self.plan.kind.triggers_on_append() && n == self.plan.trigger_at {
            // The crash catches this write in flight: the cache plus some
            // prefix of `buf` may already have been flushed by the OS.
            let mut data = std::mem::take(&mut *cache);
            data.extend_from_slice(buf);
            let cut = match self.plan.kind {
                FaultKind::CleanCrash => 0,
                FaultKind::TornWrite => {
                    // Any strict prefix, including cutting an earlier record.
                    (splitmix64(&mut self.rng.lock()) as usize) % data.len().max(1)
                }
                FaultKind::PartialTail => {
                    // Cut inside the final bytes: the length prefix survives,
                    // the payload does not.
                    let short = 1
                        + (splitmix64(&mut self.rng.lock()) as usize)
                            % 4.min(data.len().max(2) - 1);
                    data.len() - short
                }
                _ => unreachable!("sync-triggered kind in append path"),
            };
            self.crash_with_prefix(&data, cut)?;
            return Err(crash_err("power loss during write"));
        }
        cache.extend_from_slice(buf);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.check_alive()?;
        let n = self.syncs.fetch_add(1, Ordering::SeqCst) + 1;
        let mut cache = self.cache.lock();
        let fires = !self.plan.kind.triggers_on_append() && n == self.plan.trigger_at;
        if fires {
            match self.plan.kind {
                FaultKind::DroppedFsync => {
                    // Acknowledge without persisting, then die: the cached
                    // bytes are gone.
                    cache.clear();
                    self.crashed.store(true, Ordering::SeqCst);
                    return Ok(());
                }
                FaultKind::BitFlip => {
                    let mut data = std::mem::take(&mut *cache);
                    if !data.is_empty() {
                        let pos = (splitmix64(&mut self.rng.lock()) as usize) % data.len();
                        let bit = 1u8 << (splitmix64(&mut self.rng.lock()) % 8);
                        data[pos] ^= bit;
                    }
                    self.inner.append(&data)?;
                    self.inner.sync()?;
                    self.crashed.store(true, Ordering::SeqCst);
                    return Ok(());
                }
                _ => unreachable!("append-triggered kind in sync path"),
            }
        }
        let data = std::mem::take(&mut *cache);
        self.inner.append(&data)?;
        self.inner.sync()
    }

    fn contents(&self) -> Result<Vec<u8>> {
        self.check_alive()?;
        // What a reader through the page cache would see: durable bytes
        // plus the unsynced tail.
        let mut out = self.inner.contents()?;
        out.extend_from_slice(&self.cache.lock());
        Ok(out)
    }

    fn reset(&self, contents: &[u8]) -> Result<()> {
        self.check_alive()?;
        self.cache.lock().clear();
        self.inner.reset(contents)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{FsyncPolicy, Wal, WalConfig};
    use std::fs;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("backbone-fault-{tag}-{}", std::process::id()));
        let _ = fs::remove_file(&p);
        p
    }

    /// Drive commits through a faulty device until the fault fires; return
    /// the payloads whose commits were acknowledged.
    fn run_until_crash(path: &PathBuf, plan: FaultPlan) -> Vec<Vec<u8>> {
        let device = FaultFile::open(path, plan).unwrap();
        let mut acked = Vec::new();
        // An `Err` here means the fault fired while writing the header:
        // nothing was acknowledged, so `acked` stays empty.
        if let Ok(wal) = Wal::with_device(
            Box::new(device),
            WalConfig::with_policy(FsyncPolicy::Always),
        ) {
            for i in 0..20u8 {
                let payload = vec![i; 5];
                if wal.commit(&payload).is_err() {
                    break;
                }
                acked.push(payload);
            }
        }
        acked
    }

    #[test]
    fn deterministic_same_seed_same_tear() {
        let plan = FaultPlan::new(FaultKind::TornWrite, 4, 99);
        let p1 = temp_path("det1");
        let p2 = temp_path("det2");
        run_until_crash(&p1, plan);
        run_until_crash(&p2, plan);
        assert_eq!(fs::read(&p1).unwrap(), fs::read(&p2).unwrap());
        let _ = fs::remove_file(&p1);
        let _ = fs::remove_file(&p2);
    }

    #[test]
    fn honest_faults_keep_every_acked_commit() {
        for kind in [
            FaultKind::CleanCrash,
            FaultKind::TornWrite,
            FaultKind::PartialTail,
        ] {
            for trigger in 1..6 {
                let path = temp_path(&format!("honest-{kind:?}-{trigger}"));
                let acked = run_until_crash(&path, FaultPlan::new(kind, trigger, 7));
                // Recover with an ordinary device, as a restart would.
                let wal = Wal::open(&path, WalConfig::default()).unwrap();
                let recovered: Vec<Vec<u8>> = wal
                    .replay()
                    .unwrap()
                    .payloads()
                    .map(|p| p.to_vec())
                    .collect();
                assert!(
                    recovered.len() >= acked.len(),
                    "{kind:?}@{trigger}: lost acked commits ({} < {})",
                    recovered.len(),
                    acked.len()
                );
                assert_eq!(&recovered[..acked.len()], &acked[..], "{kind:?}@{trigger}");
                let _ = fs::remove_file(&path);
            }
        }
    }

    #[test]
    fn lying_faults_recover_to_clean_prefix() {
        for kind in [FaultKind::DroppedFsync, FaultKind::BitFlip] {
            for trigger in 1..6 {
                let path = temp_path(&format!("lying-{kind:?}-{trigger}"));
                let acked = run_until_crash(&path, FaultPlan::new(kind, trigger, 13));
                // A flip inside the header makes the file unrecognizable;
                // refusing to open it is the correct non-panicking outcome
                // (nothing was acked against a header that never synced).
                let recovered: Vec<Vec<u8>> = match Wal::open(&path, WalConfig::default()) {
                    Ok(wal) => wal
                        .replay()
                        .unwrap()
                        .payloads()
                        .map(|p| p.to_vec())
                        .collect(),
                    Err(crate::wal::WalError::Corrupt(_)) => Vec::new(),
                    Err(e) => panic!("unexpected recovery error: {e}"),
                };
                // A lying disk can lose commits but recovery must come back
                // to a prefix of what was acknowledged, no panic, no junk.
                assert!(recovered.len() <= acked.len(), "{kind:?}@{trigger}");
                assert_eq!(
                    &acked[..recovered.len()],
                    &recovered[..],
                    "{kind:?}@{trigger}"
                );
                let _ = fs::remove_file(&path);
            }
        }
    }

    #[test]
    fn device_stays_down_after_crash() {
        let path = temp_path("down");
        let device = FaultFile::open(&path, FaultPlan::new(FaultKind::CleanCrash, 1, 1)).unwrap();
        assert!(device.append(b"boom").is_err());
        assert!(device.crashed());
        assert!(device.append(b"later").is_err());
        assert!(device.sync().is_err());
        assert!(device.contents().is_err());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn wal_latches_failed_after_device_crash() {
        let path = temp_path("latch");
        let device = FaultFile::open(&path, FaultPlan::new(FaultKind::TornWrite, 3, 5)).unwrap();
        let wal = Wal::with_device(
            Box::new(device),
            WalConfig::with_policy(FsyncPolicy::Always),
        )
        .unwrap();
        let mut saw_err = false;
        for i in 0..10u8 {
            if wal.commit(&[i]).is_err() {
                saw_err = true;
                break;
            }
        }
        assert!(saw_err, "fault never fired");
        // Every later commit fails fast instead of hanging or lying.
        assert!(wal.commit(b"after").is_err());
        assert!(wal.flush_all().is_err());
        let _ = fs::remove_file(&path);
    }
}
