//! Snapshot epochs: the clock every snapshot-isolated reader pins.
//!
//! [`EpochClock`] is the shared commit clock extracted from the MVCC engine
//! so that both worlds use one mechanism:
//!
//! - [`crate::mvcc::MvccEngine`] allocates commit timestamps from it and
//!   consults its horizon for version GC;
//! - the relational facade (`backbone_core::Database`) stamps every insert
//!   with an epoch and lets queries pin a [`SnapshotGuard`] so scans read a
//!   stable prefix of each table without ever blocking a writer.
//!
//! The clock separates *reserved* epochs (handed to a committer inside its
//! critical section, so epoch order equals commit order) from the
//! *published* epoch (the newest epoch whose effects readers may observe).
//! A writer reserves early, does its durable work, and publishes last;
//! readers pin the published epoch, so an un-acknowledged commit is never
//! visible. Publication is a `fetch_max`, which makes out-of-order
//! acknowledgements safe: group commit acknowledges a whole batch of
//! reserved epochs at once, and whichever waiter wakes first publishes for
//! all of them (every epoch below a durable epoch is itself durable, because
//! reservation order equals log order).
//!
//! Active pins are refcounted per epoch; [`EpochClock::horizon`] is the
//! oldest epoch any live reader can still see, which bounds both MVCC
//! version GC and the relational commit-mark pruning.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing commit clock with snapshot refcounting.
#[derive(Debug, Default)]
pub struct EpochClock {
    /// Highest epoch handed to any committer (visible or not).
    reserved: AtomicU64,
    /// Highest epoch readers may observe.
    published: AtomicU64,
    /// Active snapshot refcounts, keyed by pinned epoch.
    active: Mutex<BTreeMap<u64, usize>>,
}

impl EpochClock {
    /// A clock at epoch 0 (everything loaded before the first commit is
    /// stamped 0 and visible to every snapshot).
    pub fn new() -> EpochClock {
        EpochClock::default()
    }

    /// The newest epoch readers may observe.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::SeqCst)
    }

    /// Reserve the next epoch for a commit in flight. Call inside the
    /// commit critical section so reservation order equals commit order.
    pub fn reserve(&self) -> u64 {
        self.reserved.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Make every epoch up to `epoch` visible to new snapshots. Safe to
    /// call out of ack order (`fetch_max`): see the module docs.
    pub fn publish(&self, epoch: u64) {
        self.published.fetch_max(epoch, Ordering::SeqCst);
    }

    /// Register a pin on `epoch` (no guard — the MVCC engine manages its
    /// own pin lifetime). Pair with [`EpochClock::release`].
    pub fn register(&self, epoch: u64) {
        *self.active.lock().entry(epoch).or_insert(0) += 1;
    }

    /// Atomically read the published epoch and register a pin on it,
    /// returning the pinned epoch. Pair with [`EpochClock::release`].
    ///
    /// This must be one critical section: with a separate read-then-register
    /// ([`EpochClock::published`] + [`EpochClock::register`]), a writer can
    /// publish newer epochs and compute [`EpochClock::horizon`] in the gap —
    /// the in-flight pin is invisible, the horizon advances past it, and
    /// commit-mark / version GC reclaims state the pin still needs (readers
    /// then see an impossible empty prefix). Taking the `active` lock around
    /// the read serializes pinning against `horizon()`: a concurrent horizon
    /// either sees this pin, or completes first — in which case this pin
    /// lands at or above the epoch that horizon returned.
    pub fn pin_epoch(&self) -> u64 {
        let mut active = self.active.lock();
        let epoch = self.published();
        *active.entry(epoch).or_insert(0) += 1;
        epoch
    }

    /// Release a pin taken with [`EpochClock::register`].
    pub fn release(&self, epoch: u64) {
        let mut active = self.active.lock();
        if let Some(n) = active.get_mut(&epoch) {
            *n -= 1;
            if *n == 0 {
                active.remove(&epoch);
            }
        }
    }

    /// Pin the currently published epoch behind an RAII guard. The read and
    /// the registration are atomic ([`EpochClock::pin_epoch`]), so pruning
    /// can never slip between them and reclaim the pinned epoch's state.
    pub fn pin(self: &Arc<EpochClock>) -> SnapshotGuard {
        let epoch = self.pin_epoch();
        SnapshotGuard {
            clock: self.clone(),
            epoch,
        }
    }

    /// Oldest epoch any live snapshot might still read at (the published
    /// epoch when nothing is pinned). Versions and commit marks strictly
    /// older than the newest mark at or below this horizon are dead.
    pub fn horizon(&self) -> u64 {
        self.active
            .lock()
            .keys()
            .next()
            .copied()
            .unwrap_or_else(|| self.published())
    }

    /// Number of distinct epochs currently pinned (diagnostics).
    pub fn active_epochs(&self) -> usize {
        self.active.lock().len()
    }
}

/// An RAII pin on a published epoch: while alive, the clock's horizon stays
/// at or below [`SnapshotGuard::epoch`], so state visible at that epoch is
/// never garbage-collected out from under the reader.
#[derive(Debug)]
pub struct SnapshotGuard {
    clock: Arc<EpochClock>,
    epoch: u64,
}

impl SnapshotGuard {
    /// The pinned epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Drop for SnapshotGuard {
    fn drop(&mut self) {
        self.clock.release(self.epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_then_publish_orders_visibility() {
        let clock = EpochClock::new();
        let e1 = clock.reserve();
        let e2 = clock.reserve();
        assert_eq!((e1, e2), (1, 2));
        assert_eq!(clock.published(), 0, "reserved epochs are not visible");
        // Group commit acks out of order: the later epoch publishes first.
        clock.publish(e2);
        assert_eq!(clock.published(), 2);
        clock.publish(e1); // late ack must not move the clock backwards
        assert_eq!(clock.published(), 2);
    }

    #[test]
    fn pins_hold_the_horizon() {
        let clock = Arc::new(EpochClock::new());
        clock.publish(clock.reserve());
        let pin = clock.pin();
        assert_eq!(pin.epoch(), 1);
        for _ in 0..5 {
            clock.publish(clock.reserve());
        }
        assert_eq!(clock.published(), 6);
        assert_eq!(clock.horizon(), 1, "live pin bounds the horizon");
        drop(pin);
        assert_eq!(clock.horizon(), 6, "released pin frees the horizon");
        assert_eq!(clock.active_epochs(), 0);
    }

    #[test]
    fn pinning_is_atomic_against_horizon_pruning() {
        // Regression test: pin() must read `published` and register in one
        // critical section. A writer thread publishes epochs and prunes a
        // mark list by horizon() exactly like Table::record_commit; with a
        // non-atomic pin, the horizon can pass an in-flight pin and the
        // pruned list strands it (no mark at or below the pinned epoch).
        let clock = Arc::new(EpochClock::new());
        clock.publish(clock.reserve());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let marks = Arc::new(Mutex::new(vec![(1u64, 1usize)]));

        let writer = {
            let (clock, stop, marks) = (clock.clone(), stop.clone(), marks.clone());
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    let epoch = clock.reserve();
                    clock.publish(epoch);
                    let mut marks = marks.lock();
                    marks.push((epoch, epoch as usize));
                    let horizon = clock.horizon();
                    if let Some(base) = marks.iter().rposition(|(e, _)| *e <= horizon) {
                        marks.drain(..base);
                    }
                }
            })
        };

        for _ in 0..2000 {
            let pin = clock.pin();
            let visible = marks
                .lock()
                .iter()
                .rev()
                .find(|(e, _)| *e <= pin.epoch())
                .map(|(_, rows)| *rows);
            assert!(
                visible.is_some(),
                "pin at epoch {} stranded below every retained mark",
                pin.epoch()
            );
        }
        stop.store(true, Ordering::SeqCst);
        writer.join().unwrap();
    }

    #[test]
    fn nested_pins_refcount() {
        let clock = Arc::new(EpochClock::new());
        clock.publish(clock.reserve());
        let a = clock.pin();
        let b = clock.pin();
        assert_eq!(a.epoch(), b.epoch());
        drop(a);
        assert_eq!(clock.horizon(), 1, "second pin still holds epoch 1");
        drop(b);
        assert_eq!(clock.horizon(), 1, "horizon = published with no pins");
    }
}
