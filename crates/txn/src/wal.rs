//! Write-ahead log with optional group commit.
//!
//! The log device is simulated: an in-memory buffer plus a configurable
//! per-fsync latency. That preserves exactly the behaviour group commit
//! exploits — fsync cost is per *flush*, not per *byte* — without needing a
//! real disk.

use parking_lot::{Condvar, Mutex};
use std::time::Duration;

/// WAL configuration.
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Simulated fsync latency.
    pub fsync_latency: Duration,
    /// Batch concurrent commits into one fsync.
    pub group_commit: bool,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            fsync_latency: Duration::from_micros(100),
            group_commit: true,
        }
    }
}

#[derive(Default)]
struct WalState {
    /// Records appended but not yet durable.
    pending: Vec<Vec<u8>>,
    /// Sequence number of the last durable record.
    durable_seq: u64,
    /// Sequence number of the last appended record.
    appended_seq: u64,
    /// A flush is in flight (its leader is sleeping in "fsync").
    flushing: bool,
    /// Durable bytes (the simulated on-disk log).
    log: Vec<u8>,
    /// Number of fsyncs performed.
    fsyncs: u64,
}

/// A write-ahead log with per-commit or group commit durability.
pub struct Wal {
    config: WalConfig,
    state: Mutex<WalState>,
    flushed: Condvar,
}

impl Wal {
    /// A new empty log.
    pub fn new(config: WalConfig) -> Wal {
        Wal {
            config,
            state: Mutex::new(WalState::default()),
            flushed: Condvar::new(),
        }
    }

    /// Append a record to the log buffer without waiting for durability.
    /// Returns the record's sequence number for [`Wal::wait_durable`].
    ///
    /// Call this inside the engine's commit critical section so the log
    /// order equals the commit order, then wait outside it so group commit
    /// can batch the fsync.
    pub fn append(&self, record: &[u8]) -> u64 {
        let mut st = self.state.lock();
        st.appended_seq += 1;
        st.pending.push(record.to_vec());
        st.appended_seq
    }

    /// Block until the record with sequence `seq` is durable.
    pub fn wait_durable(&self, seq: u64) {
        let mut st = self.state.lock();
        self.wait_durable_locked(&mut st, seq);
    }

    /// Append a commit record and block until it is durable.
    ///
    /// Without group commit every append performs its own fsync. With group
    /// commit, concurrent appenders elect a leader whose single fsync covers
    /// every record appended before the flush began.
    pub fn commit(&self, record: &[u8]) {
        let mut st = self.state.lock();
        st.appended_seq += 1;
        let my_seq = st.appended_seq;
        st.pending.push(record.to_vec());
        self.wait_durable_locked(&mut st, my_seq);
    }

    fn wait_durable_locked(&self, st: &mut parking_lot::MutexGuard<'_, WalState>, my_seq: u64) {
        if !self.config.group_commit {
            // Strict per-commit durability: records are flushed one at a
            // time, one fsync each, in append order. This is the cost model
            // group commit amortizes.
            loop {
                if st.durable_seq >= my_seq {
                    return;
                }
                if st.flushing {
                    self.flushed.wait(st);
                    continue;
                }
                self.flush_one_locked(st);
                self.flushed.notify_all();
            }
        }

        loop {
            if st.durable_seq >= my_seq {
                return;
            }
            if st.flushing {
                // A leader is flushing; wait for it and re-check.
                self.flushed.wait(st);
                continue;
            }
            // Become the leader: flush everything pending right now.
            self.flush_locked(st);
            self.flushed.notify_all();
        }
    }

    /// Flush all pending records. Drops the lock during the simulated fsync
    /// so other committers can queue behind the flush (this is the whole
    /// point of group commit).
    fn flush_locked(&self, st: &mut parking_lot::MutexGuard<'_, WalState>) {
        st.flushing = true;
        let batch: Vec<Vec<u8>> = std::mem::take(&mut st.pending);
        let covered_seq = st.appended_seq - st.pending.len() as u64; // == appended_seq
        parking_lot::MutexGuard::unlocked(st, || {
            if !self.config.fsync_latency.is_zero() {
                std::thread::sleep(self.config.fsync_latency);
            }
        });
        for rec in &batch {
            let len = rec.len() as u32;
            st.log.extend_from_slice(&len.to_le_bytes());
            st.log.extend_from_slice(rec);
        }
        st.fsyncs += 1;
        st.durable_seq = st.durable_seq.max(covered_seq);
        st.flushing = false;
    }

    /// Flush exactly one pending record with its own fsync (per-commit mode).
    fn flush_one_locked(&self, st: &mut parking_lot::MutexGuard<'_, WalState>) {
        if st.pending.is_empty() {
            return;
        }
        st.flushing = true;
        let rec = st.pending.remove(0);
        parking_lot::MutexGuard::unlocked(st, || {
            if !self.config.fsync_latency.is_zero() {
                std::thread::sleep(self.config.fsync_latency);
            }
        });
        let len = rec.len() as u32;
        st.log.extend_from_slice(&len.to_le_bytes());
        st.log.extend_from_slice(&rec);
        st.fsyncs += 1;
        st.durable_seq += 1;
        st.flushing = false;
    }

    /// Number of fsyncs performed so far.
    pub fn fsyncs(&self) -> u64 {
        self.state.lock().fsyncs
    }

    /// Number of durable records.
    pub fn durable_records(&self) -> u64 {
        self.state.lock().durable_seq
    }

    /// Replay the durable log as raw records (recovery).
    pub fn replay(&self) -> Vec<Vec<u8>> {
        let st = self.state.lock();
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos + 4 <= st.log.len() {
            let len = u32::from_le_bytes(st.log[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            if pos + len > st.log.len() {
                break; // torn tail — ignored, like a real redo pass
            }
            out.push(st.log[pos..pos + len].to_vec());
            pos += len;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn records_become_durable() {
        let wal = Wal::new(WalConfig {
            fsync_latency: Duration::ZERO,
            group_commit: false,
        });
        wal.commit(b"one");
        wal.commit(b"two");
        assert_eq!(wal.durable_records(), 2);
        assert_eq!(wal.replay(), vec![b"one".to_vec(), b"two".to_vec()]);
    }

    #[test]
    fn group_commit_batches_fsyncs() {
        let wal = Arc::new(Wal::new(WalConfig {
            fsync_latency: Duration::from_millis(2),
            group_commit: true,
        }));
        let threads = 8;
        let commits_per_thread = 5;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let wal = wal.clone();
                std::thread::spawn(move || {
                    for i in 0..commits_per_thread {
                        wal.commit(format!("t{t}c{i}").as_bytes());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = (threads * commits_per_thread) as u64;
        assert_eq!(wal.durable_records(), total);
        assert_eq!(wal.replay().len(), total as usize);
        assert!(
            wal.fsyncs() < total,
            "group commit should need fewer fsyncs ({}) than commits ({total})",
            wal.fsyncs()
        );
    }

    #[test]
    fn per_commit_mode_fsyncs_at_least_once_per_nonbatched_commit() {
        let wal = Wal::new(WalConfig {
            fsync_latency: Duration::ZERO,
            group_commit: false,
        });
        for i in 0..10u8 {
            wal.commit(&[i]);
        }
        // Serial caller: exactly one fsync per commit.
        assert_eq!(wal.fsyncs(), 10);
    }

    #[test]
    fn replay_ignores_torn_tail() {
        let wal = Wal::new(WalConfig {
            fsync_latency: Duration::ZERO,
            group_commit: false,
        });
        wal.commit(b"good");
        {
            let mut st = wal.state.lock();
            st.log.extend_from_slice(&99u32.to_le_bytes());
            st.log.extend_from_slice(b"torn");
        }
        assert_eq!(wal.replay(), vec![b"good".to_vec()]);
    }
}
