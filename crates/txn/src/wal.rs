//! File-backed write-ahead log with group commit and checkpoint truncation.
//!
//! The log is a header (`"BWAL"`, version, base LSN) followed by
//! length-prefixed, CRC-32-checksummed records. Every record has an absolute
//! LSN (`base_lsn + ordinal`), which is what lets a checkpoint supersede a
//! log prefix: [`Wal::truncate_through`] rewrites the file with a higher
//! base LSN and recovery skips records at or below the checkpoint's LSN —
//! replay stays idempotent even if a crash lands between the checkpoint
//! rename and the log truncation.
//!
//! Durability cost is policy-driven ([`FsyncPolicy`]): strict per-commit
//! fsync, leader-elected group commit (one fsync covers every record
//! appended before the flush began), or no commit-time fsync at all
//! (durability only at [`Wal::flush_all`] / checkpoint).
//!
//! The log device is pluggable ([`LogDevice`]): an in-memory buffer with
//! simulated fsync latency for the E5 throughput ladder, a real file for
//! persistence, or the fault-injecting [`crate::fault::FaultFile`] for crash
//! testing. Replay never panics: a torn or corrupt tail is truncated at the
//! last valid record and reported as [`Replay::bytes_dropped`].

use backbone_storage::codec::crc32;
use parking_lot::{Condvar, Mutex};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Log file magic bytes.
pub const WAL_MAGIC: [u8; 4] = *b"BWAL";
/// Log format version.
pub const WAL_VERSION: u32 = 1;
/// Header: magic (4) + version (4) + base LSN (8).
const HEADER_LEN: usize = 16;
/// Per-record framing: length (4) + CRC-32 (4).
const FRAME_LEN: usize = 8;
/// Upper bound on a single record; a longer claimed length is corruption.
const MAX_RECORD_LEN: u32 = 1 << 30;

/// When a commit's log record must reach stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync before acknowledging every commit, one fsync per record.
    Always,
    /// fsync before acknowledging, but let concurrent committers share one
    /// fsync (group commit).
    Group,
    /// Never fsync on commit; records become durable only at
    /// [`Wal::flush_all`] (close / checkpoint). Fastest, weakest.
    Never,
}

/// WAL configuration.
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Extra simulated latency added to every flush (used by the in-memory
    /// device to model a slow disk; keep `ZERO` for real files).
    pub fsync_latency: Duration,
    /// Commit durability policy.
    pub policy: FsyncPolicy,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            fsync_latency: Duration::ZERO,
            policy: FsyncPolicy::Group,
        }
    }
}

impl WalConfig {
    /// Zero-latency config with the given policy.
    pub fn with_policy(policy: FsyncPolicy) -> WalConfig {
        WalConfig {
            fsync_latency: Duration::ZERO,
            policy,
        }
    }
}

/// Failures surfaced by the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// The log device failed (real I/O error or injected fault). Once a
    /// device fails the log is latched failed: later commits also error.
    Device(String),
    /// The log exists but cannot be understood (bad magic / version).
    Corrupt(String),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Device(msg) => write!(f, "wal device error: {msg}"),
            WalError::Corrupt(msg) => write!(f, "wal corrupt: {msg}"),
        }
    }
}

impl std::error::Error for WalError {}

fn dev_err(e: std::io::Error) -> WalError {
    WalError::Device(e.to_string())
}

/// The storage a [`Wal`] appends to. Implementations must be thread-safe;
/// the WAL serializes flushes itself but reads (`contents`) may race an
/// append only through the WAL's own locking.
pub trait LogDevice: Send + Sync {
    /// Append bytes at the end of the log (buffered; durable after `sync`).
    fn append(&self, buf: &[u8]) -> std::io::Result<()>;
    /// Force previously appended bytes to stable storage.
    fn sync(&self) -> std::io::Result<()>;
    /// The entire current log contents.
    fn contents(&self) -> std::io::Result<Vec<u8>>;
    /// Atomically replace the log contents (checkpoint truncation, torn-tail
    /// repair).
    fn reset(&self, contents: &[u8]) -> std::io::Result<()>;
}

/// An in-memory log device. `sync` is a no-op — used by the transaction
/// benchmarks, where fsync cost is modeled by [`WalConfig::fsync_latency`].
#[derive(Default)]
pub struct MemDevice {
    buf: Mutex<Vec<u8>>,
}

impl MemDevice {
    /// An empty in-memory log.
    pub fn new() -> MemDevice {
        MemDevice::default()
    }
}

impl LogDevice for MemDevice {
    fn append(&self, buf: &[u8]) -> std::io::Result<()> {
        self.buf.lock().extend_from_slice(buf);
        Ok(())
    }

    fn sync(&self) -> std::io::Result<()> {
        Ok(())
    }

    fn contents(&self) -> std::io::Result<Vec<u8>> {
        Ok(self.buf.lock().clone())
    }

    fn reset(&self, contents: &[u8]) -> std::io::Result<()> {
        *self.buf.lock() = contents.to_vec();
        Ok(())
    }
}

/// A real append-only file; `sync` maps to `fsync` (`File::sync_data`).
pub struct FileDevice {
    path: PathBuf,
    file: Mutex<File>,
}

impl FileDevice {
    /// Open (creating if needed) the log file at `path`.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<FileDevice> {
        let path = path.into();
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)?;
        Ok(FileDevice {
            path,
            file: Mutex::new(file),
        })
    }

    /// The file path this device writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl LogDevice for FileDevice {
    fn append(&self, buf: &[u8]) -> std::io::Result<()> {
        self.file.lock().write_all(buf)
    }

    fn sync(&self) -> std::io::Result<()> {
        self.file.lock().sync_data()
    }

    fn contents(&self) -> std::io::Result<Vec<u8>> {
        // Read through an independent handle so the append cursor is
        // untouched.
        let mut out = Vec::new();
        File::open(&self.path)?.read_to_end(&mut out)?;
        Ok(out)
    }

    fn reset(&self, contents: &[u8]) -> std::io::Result<()> {
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(contents)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &self.path)?;
        let mut handle = self.file.lock();
        *handle = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&self.path)?;
        Ok(())
    }
}

/// One recovered log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Absolute sequence number (monotonic across checkpoint truncations).
    pub lsn: u64,
    /// The record payload as appended.
    pub payload: Vec<u8>,
}

/// The result of replaying the log.
#[derive(Debug, Clone, Default)]
pub struct Replay {
    /// Every valid record, in append (= commit) order.
    pub records: Vec<WalRecord>,
    /// Bytes discarded from a torn or corrupt tail (0 for a clean log). This
    /// includes bytes repaired away when the log was opened.
    pub bytes_dropped: u64,
}

impl Replay {
    /// The record payloads in order (convenience for callers that do their
    /// own decoding).
    pub fn payloads(&self) -> impl Iterator<Item = &[u8]> {
        self.records.iter().map(|r| r.payload.as_slice())
    }
}

/// A parsed log image.
struct Scan {
    base_lsn: u64,
    records: Vec<WalRecord>,
    /// Length of the valid prefix; anything beyond is torn/corrupt.
    valid_len: usize,
}

fn encode_header(base_lsn: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN);
    out.extend_from_slice(&WAL_MAGIC);
    out.extend_from_slice(&WAL_VERSION.to_le_bytes());
    out.extend_from_slice(&base_lsn.to_le_bytes());
    out
}

fn encode_record(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Parse a log image, stopping at the first invalid byte. Never panics: a
/// truncated header, torn record, or checksum mismatch just ends the valid
/// prefix there.
fn scan_log(contents: &[u8]) -> Result<Scan, WalError> {
    if contents.len() < HEADER_LEN {
        // A header torn mid-write: the log never held a record.
        return Ok(Scan {
            base_lsn: 0,
            records: Vec::new(),
            valid_len: 0,
        });
    }
    if contents[..4] != WAL_MAGIC {
        return Err(WalError::Corrupt("bad magic (not a backbone WAL)".into()));
    }
    let version = u32::from_le_bytes(contents[4..8].try_into().unwrap());
    if version != WAL_VERSION {
        return Err(WalError::Corrupt(format!(
            "unsupported WAL version {version}"
        )));
    }
    let base_lsn = u64::from_le_bytes(contents[8..16].try_into().unwrap());
    let mut records = Vec::new();
    let mut pos = HEADER_LEN;
    loop {
        if pos + FRAME_LEN > contents.len() {
            break; // torn frame header
        }
        let len = u32::from_le_bytes(contents[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(contents[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            break; // absurd length: corrupt frame
        }
        let len = len as usize;
        if pos + FRAME_LEN + len > contents.len() {
            break; // torn payload
        }
        let payload = &contents[pos + FRAME_LEN..pos + FRAME_LEN + len];
        if crc32(payload) != crc {
            break; // checksum rejection
        }
        records.push(WalRecord {
            lsn: base_lsn + records.len() as u64 + 1,
            payload: payload.to_vec(),
        });
        pos += FRAME_LEN + len;
    }
    Ok(Scan {
        base_lsn,
        records,
        valid_len: pos,
    })
}

struct WalState {
    /// Payloads appended but not yet written to the device.
    pending: Vec<Vec<u8>>,
    /// LSN of the last appended record.
    appended_lsn: u64,
    /// LSN through which records are durable (on the device and synced, or
    /// superseded by a checkpoint).
    durable_lsn: u64,
    /// A flush is in flight (its leader holds the device).
    flushing: bool,
    /// Number of device syncs performed.
    fsyncs: u64,
    /// Device failure latch: once set, every later operation fails fast.
    failed: Option<WalError>,
}

/// A write-ahead log over a [`LogDevice`].
pub struct Wal {
    config: WalConfig,
    device: Box<dyn LogDevice>,
    state: Mutex<WalState>,
    flushed: Condvar,
    /// Torn-tail bytes discarded when the log was opened.
    repaired_bytes: u64,
}

impl Wal {
    /// A fresh in-memory log (benchmarks, tests).
    pub fn new(config: WalConfig) -> Wal {
        Wal::with_device(Box::new(MemDevice::new()), config).expect("in-memory device cannot fail")
    }

    /// Open (or create) a file-backed log at `path`, repairing any torn
    /// tail left by a crash.
    pub fn open(path: impl Into<PathBuf>, config: WalConfig) -> Result<Wal, WalError> {
        let device = FileDevice::open(path.into()).map_err(dev_err)?;
        Wal::with_device(Box::new(device), config)
    }

    /// Open a log over an arbitrary device (fault injection, custom
    /// storage). Existing contents are scanned; a torn tail is truncated to
    /// the last valid record so later appends land on a clean boundary.
    pub fn with_device(device: Box<dyn LogDevice>, config: WalConfig) -> Result<Wal, WalError> {
        let contents = device.contents().map_err(dev_err)?;
        let mut repaired_bytes = 0u64;
        let last_lsn;
        if contents.is_empty() {
            device.append(&encode_header(0)).map_err(dev_err)?;
            device.sync().map_err(dev_err)?;
            last_lsn = 0;
        } else {
            let scan = scan_log(&contents)?;
            if scan.valid_len < contents.len() {
                repaired_bytes = (contents.len() - scan.valid_len) as u64;
                let keep = if scan.valid_len == 0 {
                    encode_header(0)
                } else {
                    contents[..scan.valid_len].to_vec()
                };
                device.reset(&keep).map_err(dev_err)?;
            }
            last_lsn = scan.base_lsn + scan.records.len() as u64;
        }
        Ok(Wal {
            config,
            device,
            state: Mutex::new(WalState {
                pending: Vec::new(),
                appended_lsn: last_lsn,
                durable_lsn: last_lsn,
                flushing: false,
                fsyncs: 0,
                failed: None,
            }),
            flushed: Condvar::new(),
            repaired_bytes,
        })
    }

    /// Append a record without waiting for durability. Returns its LSN for
    /// [`Wal::wait_durable`].
    ///
    /// Call this inside the engine's commit critical section so the log
    /// order equals the commit order, then wait outside it so group commit
    /// can batch the fsync.
    pub fn append(&self, payload: &[u8]) -> Result<u64, WalError> {
        let mut st = self.state.lock();
        if let Some(e) = &st.failed {
            return Err(e.clone());
        }
        st.appended_lsn += 1;
        st.pending.push(payload.to_vec());
        Ok(st.appended_lsn)
    }

    /// Block until the record at `lsn` is durable under the configured
    /// policy. With [`FsyncPolicy::Never`] this returns immediately.
    pub fn wait_durable(&self, lsn: u64) -> Result<(), WalError> {
        if self.config.policy == FsyncPolicy::Never {
            return Ok(());
        }
        let mut st = self.state.lock();
        self.wait_durable_locked(&mut st, lsn)
    }

    /// Append a commit record and block until it is durable (composition of
    /// [`Wal::append`] + [`Wal::wait_durable`]). Returns the record's LSN.
    pub fn commit(&self, payload: &[u8]) -> Result<u64, WalError> {
        let lsn = self.append(payload)?;
        self.wait_durable(lsn)?;
        Ok(lsn)
    }

    /// Force every appended record to stable storage regardless of policy
    /// (checkpoint / close path; the durability point for
    /// [`FsyncPolicy::Never`]).
    pub fn flush_all(&self) -> Result<(), WalError> {
        let mut st = self.state.lock();
        loop {
            if let Some(e) = &st.failed {
                return Err(e.clone());
            }
            if st.pending.is_empty() && !st.flushing {
                return Ok(());
            }
            if st.flushing {
                self.flushed.wait(&mut st);
                continue;
            }
            self.flush_locked(&mut st);
            self.flushed.notify_all();
        }
    }

    fn wait_durable_locked(
        &self,
        st: &mut parking_lot::MutexGuard<'_, WalState>,
        lsn: u64,
    ) -> Result<(), WalError> {
        loop {
            if st.durable_lsn >= lsn {
                return Ok(());
            }
            if let Some(e) = &st.failed {
                return Err(e.clone());
            }
            if st.flushing {
                // A leader is flushing; wait for it and re-check.
                self.flushed.wait(st);
                continue;
            }
            match self.config.policy {
                // Strict per-commit durability: one record, one fsync, in
                // append order — the cost model group commit amortizes.
                FsyncPolicy::Always => self.flush_some_locked(st, 1),
                // Become the leader: one flush covers everything pending.
                FsyncPolicy::Group | FsyncPolicy::Never => self.flush_some_locked(st, usize::MAX),
            }
            self.flushed.notify_all();
        }
    }

    fn flush_locked(&self, st: &mut parking_lot::MutexGuard<'_, WalState>) {
        self.flush_some_locked(st, usize::MAX);
    }

    /// Flush up to `limit` pending records with one device sync. Drops the
    /// lock during the device I/O so other committers can queue behind the
    /// flush (the whole point of group commit).
    fn flush_some_locked(&self, st: &mut parking_lot::MutexGuard<'_, WalState>, limit: usize) {
        if st.pending.is_empty() {
            return;
        }
        st.flushing = true;
        let take = st.pending.len().min(limit);
        let batch: Vec<Vec<u8>> = st.pending.drain(..take).collect();
        let covered = st.appended_lsn - st.pending.len() as u64;
        let mut buf = Vec::new();
        for payload in &batch {
            encode_record(&mut buf, payload);
        }
        let result = parking_lot::MutexGuard::unlocked(st, || {
            if !self.config.fsync_latency.is_zero() {
                std::thread::sleep(self.config.fsync_latency);
            }
            self.device.append(&buf).and_then(|()| self.device.sync())
        });
        match result {
            Ok(()) => {
                st.fsyncs += 1;
                st.durable_lsn = st.durable_lsn.max(covered);
            }
            Err(e) => {
                // The device may hold a torn prefix of `batch`; recovery
                // truncates it. Latch the failure so no later commit is
                // acknowledged against a dead log.
                st.failed = Some(dev_err(e));
            }
        }
        st.flushing = false;
    }

    /// Number of device syncs performed so far.
    pub fn fsyncs(&self) -> u64 {
        self.state.lock().fsyncs
    }

    /// LSN of the last record known durable.
    pub fn durable_lsn(&self) -> u64 {
        self.state.lock().durable_lsn
    }

    /// LSN of the last record appended (durable or not).
    pub fn appended_lsn(&self) -> u64 {
        self.state.lock().appended_lsn
    }

    /// The configured durability policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.config.policy
    }

    /// Replay the durable log: every valid record in commit order, plus the
    /// number of torn/corrupt tail bytes that were dropped instead of
    /// panicking.
    pub fn replay(&self) -> Result<Replay, WalError> {
        let contents = self.device.contents().map_err(dev_err)?;
        if contents.is_empty() {
            return Ok(Replay {
                records: Vec::new(),
                bytes_dropped: self.repaired_bytes,
            });
        }
        let scan = scan_log(&contents)?;
        Ok(Replay {
            bytes_dropped: self.repaired_bytes + (contents.len() - scan.valid_len) as u64,
            records: scan.records,
        })
    }

    /// Drop every record with LSN ≤ `lsn` (they are superseded by a
    /// checkpoint) and rewrite the log with `lsn` as the new base. Pending
    /// unflushed records at or below `lsn` are discarded too — flushing them
    /// after the rebase would replay them under fresh LSNs.
    pub fn truncate_through(&self, lsn: u64) -> Result<(), WalError> {
        let mut st = self.state.lock();
        while st.flushing {
            self.flushed.wait(&mut st);
        }
        if let Some(e) = &st.failed {
            return Err(e.clone());
        }
        if lsn > st.durable_lsn {
            let superseded = (lsn - st.durable_lsn).min(st.pending.len() as u64) as usize;
            st.pending.drain(..superseded);
            st.durable_lsn = lsn;
        }
        let contents = self.device.contents().map_err(dev_err)?;
        let scan = scan_log(&contents)?;
        let mut out = encode_header(lsn);
        for rec in scan.records.iter().filter(|r| r.lsn > lsn) {
            encode_record(&mut out, &rec.payload);
        }
        self.device.reset(&out).map_err(dev_err)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn mem(policy: FsyncPolicy) -> Wal {
        Wal::new(WalConfig::with_policy(policy))
    }

    fn payloads(wal: &Wal) -> Vec<Vec<u8>> {
        wal.replay()
            .unwrap()
            .payloads()
            .map(|p| p.to_vec())
            .collect()
    }

    #[test]
    fn records_become_durable() {
        let wal = mem(FsyncPolicy::Always);
        wal.commit(b"one").unwrap();
        wal.commit(b"two").unwrap();
        assert_eq!(wal.durable_lsn(), 2);
        assert_eq!(payloads(&wal), vec![b"one".to_vec(), b"two".to_vec()]);
        assert_eq!(wal.replay().unwrap().bytes_dropped, 0);
    }

    #[test]
    fn group_commit_batches_fsyncs() {
        let wal = Arc::new(Wal::new(WalConfig {
            fsync_latency: Duration::from_millis(2),
            policy: FsyncPolicy::Group,
        }));
        let threads = 8;
        let commits_per_thread = 5;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let wal = wal.clone();
                std::thread::spawn(move || {
                    for i in 0..commits_per_thread {
                        wal.commit(format!("t{t}c{i}").as_bytes()).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = (threads * commits_per_thread) as u64;
        assert_eq!(wal.durable_lsn(), total);
        assert_eq!(wal.replay().unwrap().records.len(), total as usize);
        assert!(
            wal.fsyncs() < total,
            "group commit should need fewer fsyncs ({}) than commits ({total})",
            wal.fsyncs()
        );
    }

    #[test]
    fn per_commit_mode_fsyncs_once_per_commit() {
        let wal = mem(FsyncPolicy::Always);
        for i in 0..10u8 {
            wal.commit(&[i]).unwrap();
        }
        // Serial caller: exactly one fsync per commit.
        assert_eq!(wal.fsyncs(), 10);
    }

    #[test]
    fn never_policy_defers_to_flush_all() {
        let wal = mem(FsyncPolicy::Never);
        wal.commit(b"a").unwrap();
        wal.commit(b"b").unwrap();
        assert_eq!(wal.fsyncs(), 0);
        assert_eq!(wal.durable_lsn(), 0);
        wal.flush_all().unwrap();
        assert_eq!(wal.durable_lsn(), 2);
        assert_eq!(payloads(&wal).len(), 2);
    }

    #[test]
    fn replay_truncates_torn_tail_and_reports_bytes() {
        let wal = mem(FsyncPolicy::Always);
        wal.commit(b"good").unwrap();
        // A torn record: a frame claiming 99 bytes with only 4 present.
        let mut torn = Vec::new();
        torn.extend_from_slice(&99u32.to_le_bytes());
        torn.extend_from_slice(&crc32(b"whatever").to_le_bytes());
        torn.extend_from_slice(b"torn");
        wal.device.append(&torn).unwrap();
        let replay = wal.replay().unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0].payload, b"good");
        assert_eq!(replay.bytes_dropped, torn.len() as u64);
    }

    #[test]
    fn replay_rejects_checksum_mismatch() {
        let wal = mem(FsyncPolicy::Always);
        wal.commit(b"first").unwrap();
        wal.commit(b"second").unwrap();
        // Flip one bit inside the second record's payload.
        let mut contents = wal.device.contents().unwrap();
        let n = contents.len();
        contents[n - 2] ^= 0x10;
        wal.device.reset(&contents).unwrap();
        let replay = wal.replay().unwrap();
        assert_eq!(replay.records.len(), 1, "corrupt record must be dropped");
        assert!(replay.bytes_dropped > 0);
    }

    #[test]
    fn open_repairs_torn_tail_for_future_appends() {
        let path = std::env::temp_dir().join(format!("backbone-wal-repair-{}", std::process::id()));
        let _ = fs::remove_file(&path);
        {
            let wal = Wal::open(&path, WalConfig::with_policy(FsyncPolicy::Always)).unwrap();
            wal.commit(b"keep").unwrap();
        }
        // Simulate a torn append at the tail.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[7u8, 0, 0]).unwrap();
        }
        let wal = Wal::open(&path, WalConfig::with_policy(FsyncPolicy::Always)).unwrap();
        assert_eq!(wal.replay().unwrap().bytes_dropped, 3);
        wal.commit(b"after").unwrap();
        let replay = wal.replay().unwrap();
        assert_eq!(
            replay.payloads().collect::<Vec<_>>(),
            vec![b"keep".as_slice(), b"after".as_slice()]
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn file_backed_log_survives_reopen() {
        let path = std::env::temp_dir().join(format!("backbone-wal-reopen-{}", std::process::id()));
        let _ = fs::remove_file(&path);
        {
            let wal = Wal::open(&path, WalConfig::with_policy(FsyncPolicy::Group)).unwrap();
            wal.commit(b"alpha").unwrap();
            wal.commit(b"beta").unwrap();
        }
        let wal = Wal::open(&path, WalConfig::with_policy(FsyncPolicy::Group)).unwrap();
        assert_eq!(wal.appended_lsn(), 2);
        let replay = wal.replay().unwrap();
        assert_eq!(replay.records[1].lsn, 2);
        assert_eq!(replay.records[1].payload, b"beta");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn truncate_through_rebases_lsns() {
        let wal = mem(FsyncPolicy::Always);
        for i in 0..5u8 {
            wal.commit(&[i]).unwrap();
        }
        wal.truncate_through(3).unwrap();
        let replay = wal.replay().unwrap();
        assert_eq!(
            replay.records.iter().map(|r| r.lsn).collect::<Vec<_>>(),
            vec![4, 5]
        );
        // New appends continue the absolute sequence.
        let lsn = wal.commit(&[9]).unwrap();
        assert_eq!(lsn, 6);
        assert_eq!(wal.replay().unwrap().records.last().unwrap().lsn, 6);
    }

    #[test]
    fn truncate_discards_superseded_pending_records() {
        let wal = mem(FsyncPolicy::Never);
        for i in 0..4u8 {
            wal.commit(&[i]).unwrap(); // policy Never: all pending
        }
        // A checkpoint at LSN 4 supersedes everything pending.
        wal.truncate_through(4).unwrap();
        wal.flush_all().unwrap();
        assert!(wal.replay().unwrap().records.is_empty());
        assert_eq!(wal.commit(&[9]).unwrap(), 5);
        wal.flush_all().unwrap();
        assert_eq!(wal.replay().unwrap().records[0].lsn, 5);
    }

    #[test]
    fn foreign_file_is_rejected_not_replayed() {
        let wal = mem(FsyncPolicy::Always);
        wal.device.reset(b"definitely not a wal file").unwrap();
        assert!(matches!(wal.replay(), Err(WalError::Corrupt(_))));
    }
}
