//! Transaction errors.

use crate::wal::WalError;
use std::fmt;

/// Errors surfaced by transaction engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// A write-write conflict under snapshot isolation; the caller should
    /// retry the transaction.
    Conflict,
    /// An `Add` underflowed below zero (domain constraint used by the bank
    /// workload).
    ConstraintViolation,
    /// The write-ahead log failed; the commit is not durable and must not
    /// be acknowledged.
    Wal(WalError),
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Conflict => write!(f, "write-write conflict; retry"),
            TxnError::ConstraintViolation => write!(f, "constraint violation"),
            TxnError::Wal(e) => write!(f, "commit not durable: {e}"),
        }
    }
}

impl std::error::Error for TxnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TxnError::Wal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WalError> for TxnError {
    fn from(e: WalError) -> TxnError {
        TxnError::Wal(e)
    }
}
