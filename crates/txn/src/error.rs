//! Transaction errors.

use std::fmt;

/// Errors surfaced by transaction engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnError {
    /// A write-write conflict under snapshot isolation; the caller should
    /// retry the transaction.
    Conflict,
    /// An `Add` underflowed below zero (domain constraint used by the bank
    /// workload).
    ConstraintViolation,
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Conflict => write!(f, "write-write conflict; retry"),
            TxnError::ConstraintViolation => write!(f, "constraint violation"),
        }
    }
}

impl std::error::Error for TxnError {}
