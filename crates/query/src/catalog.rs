//! Table catalogs: how plans resolve names to physical tables.

use crate::stats::{analyze_table, ColumnStats};
use backbone_storage::Table;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Resolves table names for planning and execution.
pub trait Catalog: Send + Sync {
    /// Look up a table by name.
    fn table(&self, name: &str) -> Option<Arc<Table>>;

    /// Estimated row count for a table (used by the cost model). The default
    /// consults the table itself.
    fn row_count(&self, name: &str) -> Option<usize> {
        self.table(name).map(|t| t.num_rows())
    }

    /// `ANALYZE`-style statistics for a column, if the catalog maintains
    /// them. The default maintains none; [`MemCatalog`] computes lazily.
    fn column_stats(&self, _table: &str, _column: &str) -> Option<ColumnStats> {
        None
    }
}

/// A simple in-memory catalog.
#[derive(Default)]
pub struct MemCatalog {
    tables: RwLock<HashMap<String, Arc<Table>>>,
    /// Lazily computed per-table column statistics, invalidated on register.
    stats: RwLock<HashMap<String, Arc<Vec<ColumnStats>>>>,
    /// Monotonic version of everything a cached plan depends on: the set of
    /// tables, their schemas, and (coarsely) their sizes. Plan-cache keys
    /// include this, so a bump orphans every cached plan.
    plan_version: AtomicU64,
    /// Per-table row count at the last `plan_version` bump. Steady appends
    /// re-register the same table on every commit; re-planning each time
    /// would make the plan cache useless, and plans only change once stats
    /// move materially, so the version bumps on >=2x / <=1/2 drift instead.
    plan_rows: RwLock<HashMap<String, usize>>,
}

impl MemCatalog {
    /// An empty catalog.
    pub fn new() -> MemCatalog {
        MemCatalog::default()
    }

    /// Register (or replace) a table. The table is flushed first so scans see
    /// every appended row.
    pub fn register(&self, name: impl Into<String>, mut table: Table) {
        table
            .flush()
            .expect("flush of consistent table cannot fail");
        self.register_arc(name, Arc::new(table));
    }

    /// Register a pre-shared table handle.
    pub fn register_arc(&self, name: impl Into<String>, table: Arc<Table>) {
        let name = name.into();
        self.note_registration(&name, &table);
        self.stats.write().remove(&name);
        self.tables.write().insert(name, table);
    }

    /// The current plan version (see the field docs). Cached-plan keys must
    /// include this value.
    pub fn plan_version(&self) -> u64 {
        self.plan_version.load(Ordering::Acquire)
    }

    /// Bump the plan version when a registration changes what the optimizer
    /// would decide: a new or schema-changed table always does; a same-shape
    /// replacement only once its row count drifts past 2x (or under half)
    /// of the count at the previous bump.
    fn note_registration(&self, name: &str, table: &Arc<Table>) {
        let rows = table.num_rows();
        let schema_changed = match self.tables.read().get(name) {
            None => true,
            Some(old) => old.schema() != table.schema(),
        };
        let mut last = self.plan_rows.write();
        let drifted = match last.get(name) {
            None => true,
            Some(&prev) => {
                rows > prev.saturating_mul(2).saturating_add(16)
                    || rows.saturating_mul(2).saturating_add(16) < prev
            }
        };
        if schema_changed || drifted {
            last.insert(name.to_string(), rows);
            self.plan_version.fetch_add(1, Ordering::Release);
        }
    }

    /// All column statistics of a table, computing and caching on first use.
    pub fn table_stats(&self, name: &str) -> Option<Arc<Vec<ColumnStats>>> {
        if let Some(cached) = self.stats.read().get(name) {
            return Some(cached.clone());
        }
        let table = self.table(name)?;
        let computed = Arc::new(analyze_table(&table));
        self.stats
            .write()
            .insert(name.to_string(), computed.clone());
        Some(computed)
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Remove a table, returning whether it existed.
    pub fn deregister(&self, name: &str) -> bool {
        let existed = self.tables.write().remove(name).is_some();
        if existed {
            self.plan_rows.write().remove(name);
            self.plan_version.fetch_add(1, Ordering::Release);
        }
        existed
    }
}

impl Catalog for MemCatalog {
    fn table(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.read().get(name).cloned()
    }

    fn column_stats(&self, table: &str, column: &str) -> Option<ColumnStats> {
        let idx = self.table(table)?.schema().index_of(column).ok()?;
        self.table_stats(table)?.get(idx).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backbone_storage::{DataType, Field, Schema, Value};

    fn make_table(rows: usize) -> Table {
        let schema = Schema::new(vec![Field::new("x", DataType::Int64)]);
        let mut t = Table::new(schema);
        for i in 0..rows {
            t.append_row(vec![Value::Int(i as i64)]).unwrap();
        }
        t
    }

    #[test]
    fn register_and_resolve() {
        let cat = MemCatalog::new();
        cat.register("t", make_table(5));
        assert!(cat.table("t").is_some());
        assert!(cat.table("missing").is_none());
        assert_eq!(cat.row_count("t"), Some(5));
    }

    #[test]
    fn register_flushes_pending_rows() {
        let cat = MemCatalog::new();
        cat.register("t", make_table(3));
        let t = cat.table("t").unwrap();
        // All rows must be visible through sealed groups.
        let total: usize = (0..t.num_groups()).map(|g| t.group_rows(g)).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn plan_version_bumps_on_shape_not_on_every_append() {
        let cat = MemCatalog::new();
        let v0 = cat.plan_version();
        cat.register("t", make_table(100));
        let v1 = cat.plan_version();
        assert!(v1 > v0, "new table must bump");
        // Steady drip of appends: same schema, <2x growth -> no bump.
        cat.register("t", make_table(120));
        cat.register("t", make_table(150));
        assert_eq!(cat.plan_version(), v1, "small drift must not bump");
        // Crossing 2x of the last-bumped count (100) re-plans.
        cat.register("t", make_table(400));
        let v2 = cat.plan_version();
        assert!(v2 > v1, "2x drift must bump");
        // Schema change always bumps, regardless of size.
        let schema = Schema::new(vec![Field::new("y", DataType::Int64)]);
        cat.register("t", Table::new(schema));
        let v3 = cat.plan_version();
        assert!(v3 > v2, "schema change must bump");
        // Dropping a table bumps too.
        cat.deregister("t");
        assert!(cat.plan_version() > v3);
    }

    #[test]
    fn names_and_deregister() {
        let cat = MemCatalog::new();
        cat.register("b", make_table(1));
        cat.register("a", make_table(1));
        assert_eq!(cat.table_names(), vec!["a", "b"]);
        assert!(cat.deregister("a"));
        assert!(!cat.deregister("a"));
    }
}
