//! Table catalogs: how plans resolve names to physical tables.

use crate::stats::{analyze_table, ColumnStats};
use backbone_storage::Table;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Resolves table names for planning and execution.
pub trait Catalog: Send + Sync {
    /// Look up a table by name.
    fn table(&self, name: &str) -> Option<Arc<Table>>;

    /// Estimated row count for a table (used by the cost model). The default
    /// consults the table itself.
    fn row_count(&self, name: &str) -> Option<usize> {
        self.table(name).map(|t| t.num_rows())
    }

    /// `ANALYZE`-style statistics for a column, if the catalog maintains
    /// them. The default maintains none; [`MemCatalog`] computes lazily.
    fn column_stats(&self, _table: &str, _column: &str) -> Option<ColumnStats> {
        None
    }
}

/// A simple in-memory catalog.
#[derive(Default)]
pub struct MemCatalog {
    tables: RwLock<HashMap<String, Arc<Table>>>,
    /// Lazily computed per-table column statistics, invalidated on register.
    stats: RwLock<HashMap<String, Arc<Vec<ColumnStats>>>>,
}

impl MemCatalog {
    /// An empty catalog.
    pub fn new() -> MemCatalog {
        MemCatalog::default()
    }

    /// Register (or replace) a table. The table is flushed first so scans see
    /// every appended row.
    pub fn register(&self, name: impl Into<String>, mut table: Table) {
        table
            .flush()
            .expect("flush of consistent table cannot fail");
        let name = name.into();
        self.stats.write().remove(&name);
        self.tables.write().insert(name, Arc::new(table));
    }

    /// Register a pre-shared table handle.
    pub fn register_arc(&self, name: impl Into<String>, table: Arc<Table>) {
        let name = name.into();
        self.stats.write().remove(&name);
        self.tables.write().insert(name, table);
    }

    /// All column statistics of a table, computing and caching on first use.
    pub fn table_stats(&self, name: &str) -> Option<Arc<Vec<ColumnStats>>> {
        if let Some(cached) = self.stats.read().get(name) {
            return Some(cached.clone());
        }
        let table = self.table(name)?;
        let computed = Arc::new(analyze_table(&table));
        self.stats
            .write()
            .insert(name.to_string(), computed.clone());
        Some(computed)
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Remove a table, returning whether it existed.
    pub fn deregister(&self, name: &str) -> bool {
        self.tables.write().remove(name).is_some()
    }
}

impl Catalog for MemCatalog {
    fn table(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.read().get(name).cloned()
    }

    fn column_stats(&self, table: &str, column: &str) -> Option<ColumnStats> {
        let idx = self.table(table)?.schema().index_of(column).ok()?;
        self.table_stats(table)?.get(idx).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backbone_storage::{DataType, Field, Schema, Value};

    fn make_table(rows: usize) -> Table {
        let schema = Schema::new(vec![Field::new("x", DataType::Int64)]);
        let mut t = Table::new(schema);
        for i in 0..rows {
            t.append_row(vec![Value::Int(i as i64)]).unwrap();
        }
        t
    }

    #[test]
    fn register_and_resolve() {
        let cat = MemCatalog::new();
        cat.register("t", make_table(5));
        assert!(cat.table("t").is_some());
        assert!(cat.table("missing").is_none());
        assert_eq!(cat.row_count("t"), Some(5));
    }

    #[test]
    fn register_flushes_pending_rows() {
        let cat = MemCatalog::new();
        cat.register("t", make_table(3));
        let t = cat.table("t").unwrap();
        // All rows must be visible through sealed groups.
        let total: usize = (0..t.num_groups()).map(|g| t.group_rows(g)).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn names_and_deregister() {
        let cat = MemCatalog::new();
        cat.register("b", make_table(1));
        cat.register("a", make_table(1));
        assert_eq!(cat.table_names(), vec!["a", "b"]);
        assert!(cat.deregister("a"));
        assert!(!cat.deregister("a"));
    }
}
