//! Thread-local [`Metrics`] handle for expression-level kernels.
//!
//! Operators receive a `Metrics` registry explicitly, but expression
//! evaluation is a free function called from deep inside every operator —
//! threading a handle through each `eval` call would put a metrics argument
//! on the hottest signature in the engine. Instead the executor installs the
//! registry for the current thread before draining a plan, and encoded
//! kernels record `op.eval.kernel.*` counters through it. Morsel-parallel
//! worker threads (scan, aggregate, join probe, top-k) install their own
//! handle on the same shared registry at spawn, so parallel runs report the
//! same `op.eval.kernel.*` totals as serial ones.

use backbone_storage::Metrics;
use std::cell::RefCell;

thread_local! {
    static EVAL_METRICS: RefCell<Option<Metrics>> = const { RefCell::new(None) };
}

/// Install `metrics` as this thread's eval-kernel registry; the previous
/// handle is restored when the guard drops (nesting-safe for sub-queries).
pub fn install(metrics: Option<Metrics>) -> EvalMetricsGuard {
    let prev = EVAL_METRICS.with(|tl| tl.replace(metrics));
    EvalMetricsGuard { prev }
}

/// Restores the previously installed handle on drop.
pub struct EvalMetricsGuard {
    prev: Option<Metrics>,
}

impl Drop for EvalMetricsGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        EVAL_METRICS.with(|tl| tl.replace(prev));
    }
}

/// Run `f` with the installed registry, if any.
pub(crate) fn record(f: impl FnOnce(&Metrics)) {
    EVAL_METRICS.with(|tl| {
        if let Some(m) = tl.borrow().as_ref() {
            f(m);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_restore_nesting() {
        let outer = Metrics::new();
        let inner = Metrics::new();
        {
            let _g1 = install(Some(outer.clone()));
            record(|m| m.counter("x").add(1));
            {
                let _g2 = install(Some(inner.clone()));
                record(|m| m.counter("x").add(10));
            }
            record(|m| m.counter("x").add(1));
        }
        record(|m| m.counter("x").add(100)); // no registry installed
        assert_eq!(outer.value("x"), 2);
        assert_eq!(inner.value("x"), 10);
    }
}
