//! Execution profiling: per-operator counters behind EXPLAIN ANALYZE.
//!
//! The planner can lower a logical plan into an *instrumented* operator tree
//! (see [`crate::planner::create_instrumented_plan`]): every physical
//! operator is wrapped in an [`InstrumentedExec`] that counts rows, batches,
//! and wall time, and a parallel [`ProfileNode`] tree holds handles to the
//! same counters. After the plan is drained, [`ProfileNode::render`] prints
//! the annotated plan — rows in/out, batch count, and elapsed time per
//! operator — and, when a shared [`Metrics`] registry is configured on
//! [`crate::ExecOptions`], the same numbers accumulate under `op.<name>.*`
//! so engine-truth totals survive across queries.

use crate::error::Result;
use crate::physical::{Operator, ParallelProfile};
use backbone_storage::metrics::{Counter, Metrics};
use backbone_storage::{RecordBatch, Schema};
use std::sync::Arc;
use std::time::Instant;

/// Counters for one operator instance. All fields are shared atomics, so the
/// profile tree observes updates while (and after) the wrapped operator runs.
#[derive(Debug, Clone, Default)]
pub struct OpStats {
    /// Rows produced.
    pub rows_out: Counter,
    /// Batches produced.
    pub batches: Counter,
    /// Wall time spent inside this operator's `next()`, in nanoseconds.
    /// Includes time spent in children (times are inclusive, like a flame
    /// graph), so subtract children to get self time.
    pub elapsed_ns: Counter,
}

/// The stable registry scope for a physical operator name
/// (`"HashJoin"` → `"hash_join"`), used for `op.<scope>.*` counters.
pub fn registry_scope(op_name: &str) -> &'static str {
    match op_name {
        "TableScan" => "scan",
        "Filter" => "filter",
        "Project" => "project",
        "HashJoin" => "hash_join",
        "NestedLoopJoin" => "nl_join",
        "HashAggregate" => "aggregate",
        "Sort" => "sort",
        "Limit" => "limit",
        "TopK" => "topk",
        _ => "other",
    }
}

/// Registry counters an instrumented operator mirrors into.
struct RegistryMirror {
    rows_in: Counter,
    rows_out: Counter,
    batches: Counter,
    elapsed_ns: Counter,
}

impl RegistryMirror {
    fn resolve(metrics: &Metrics, op_name: &str) -> RegistryMirror {
        let scope = registry_scope(op_name);
        RegistryMirror {
            rows_in: metrics.counter(&format!("op.{scope}.rows_in")),
            rows_out: metrics.counter(&format!("op.{scope}.rows_out")),
            batches: metrics.counter(&format!("op.{scope}.batches")),
            elapsed_ns: metrics.counter(&format!("op.{scope}.elapsed_ns")),
        }
    }
}

/// A transparent wrapper recording an operator's output and timing.
pub struct InstrumentedExec {
    inner: Box<dyn Operator>,
    stats: OpStats,
    mirror: Option<RegistryMirror>,
    /// Rows-out counters of the child operators; their post-run sum is this
    /// operator's rows-in (pull execution means input rows are exactly what
    /// the children produced).
    child_rows: Vec<Counter>,
    /// Rows-in already mirrored into the registry (to mirror only the delta).
    mirrored_rows_in: u64,
}

impl InstrumentedExec {
    /// Wrap `inner`, mirroring into `metrics` when provided.
    pub fn new(
        inner: Box<dyn Operator>,
        stats: OpStats,
        metrics: Option<&Metrics>,
        child_rows: Vec<Counter>,
    ) -> InstrumentedExec {
        let mirror = metrics.map(|m| RegistryMirror::resolve(m, inner.name()));
        InstrumentedExec {
            inner,
            stats,
            mirror,
            child_rows,
            mirrored_rows_in: 0,
        }
    }
}

impl Operator for InstrumentedExec {
    fn schema(&self) -> Arc<Schema> {
        self.inner.schema()
    }

    fn next(&mut self) -> Result<Option<RecordBatch>> {
        let start = Instant::now();
        let out = self.inner.next();
        self.stats.elapsed_ns.add_elapsed(start);
        if let Ok(Some(batch)) = &out {
            self.stats.rows_out.add(batch.num_rows() as u64);
            self.stats.batches.incr();
        }
        if let Some(mirror) = &self.mirror {
            mirror.elapsed_ns.add_elapsed(start);
            if let Ok(Some(batch)) = &out {
                mirror.rows_out.add(batch.num_rows() as u64);
                mirror.batches.incr();
            }
            let rows_in: u64 = self.child_rows.iter().map(Counter::get).sum();
            mirror.rows_in.add(rows_in - self.mirrored_rows_in);
            self.mirrored_rows_in = rows_in;
        }
        out
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// One node of the annotated plan tree built alongside an instrumented
/// physical plan.
#[derive(Debug, Clone)]
pub struct ProfileNode {
    /// Physical operator name (`HashJoin`, `TableScan`, ...).
    pub name: &'static str,
    /// Operator-specific detail (table, predicate, keys, ...).
    pub detail: String,
    /// Live counters shared with the running operator.
    pub stats: OpStats,
    /// Parallel-execution counters (workers, morsels, steals, merge time),
    /// present when the operator ran with worker threads.
    pub parallel: Option<ParallelProfile>,
    /// Child profiles, in the operator's input order.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Total rows this operator consumed: the sum of its children's output.
    /// Leaves (scans) have no plan inputs and report 0.
    pub fn rows_in(&self) -> u64 {
        self.children.iter().map(|c| c.stats.rows_out.get()).sum()
    }

    /// Render the annotated tree, one operator per line:
    /// `Name: detail (rows_in=… rows_out=… batches=… time=…)`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        let detail = if self.detail.is_empty() {
            String::new()
        } else {
            format!(" {}", self.detail)
        };
        let rows_in = if self.children.is_empty() {
            String::new()
        } else {
            format!("rows_in={} ", self.rows_in())
        };
        // Parallel annotation only when workers actually ran (a serial plan
        // renders exactly as before).
        let parallel = match &self.parallel {
            Some(p) if p.workers.get() > 0 => {
                let mut s = format!(" workers={} morsels={}", p.workers.get(), p.morsels.get());
                if p.steals.get() > 0 {
                    s.push_str(&format!(" steals={}", p.steals.get()));
                }
                if p.merge_ns.get() > 0 {
                    s.push_str(&format!(" merge={}", format_ns(p.merge_ns.get())));
                }
                s
            }
            _ => String::new(),
        };
        out.push_str(&format!(
            "{pad}{}:{detail} ({rows_in}rows_out={} batches={} time={}{parallel})\n",
            self.name,
            self.stats.rows_out.get(),
            self.stats.batches.get(),
            format_ns(self.stats.elapsed_ns.get()),
        ));
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }
}

/// Format nanoseconds with a human-friendly unit.
pub fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::drain;
    use crate::physical::test_util::{int_batch, BatchSource};

    fn instrumented_source(rows: Vec<i64>) -> (InstrumentedExec, OpStats) {
        let batch = int_batch(&[("v", rows)]);
        let stats = OpStats::default();
        let op = InstrumentedExec::new(
            Box::new(BatchSource::single(batch)),
            stats.clone(),
            None,
            vec![],
        );
        (op, stats)
    }

    #[test]
    fn wrapper_counts_rows_batches_and_time() {
        let (mut op, stats) = instrumented_source(vec![1, 2, 3, 4]);
        let batches = drain(&mut op).unwrap();
        assert_eq!(batches.len(), 1);
        assert_eq!(stats.rows_out.get(), 4);
        assert_eq!(stats.batches.get(), 1);
        // Two next() calls happened (batch + end-of-stream), both timed.
        assert!(stats.elapsed_ns.get() > 0);
    }

    #[test]
    fn registry_mirror_accumulates_across_instances() {
        let metrics = Metrics::new();
        for _ in 0..2 {
            let batch = int_batch(&[("v", vec![1, 2, 3])]);
            let mut op = InstrumentedExec::new(
                Box::new(BatchSource::single(batch)),
                OpStats::default(),
                Some(&metrics),
                vec![],
            );
            drain(&mut op).unwrap();
        }
        // BatchSource maps to the "other" scope.
        assert_eq!(metrics.value("op.other.rows_out"), 6);
        assert_eq!(metrics.value("op.other.batches"), 2);
        assert!(metrics.value("op.other.elapsed_ns") > 0);
    }

    #[test]
    fn profile_tree_rows_in_is_children_rows_out() {
        let (mut child_op, child_stats) = instrumented_source(vec![1, 2, 3]);
        drain(&mut child_op).unwrap();
        let root = ProfileNode {
            name: "Filter",
            detail: "(v > 1)".into(),
            stats: OpStats::default(),
            parallel: None,
            children: vec![ProfileNode {
                name: "TableScan",
                detail: "t".into(),
                stats: child_stats,
                parallel: None,
                children: vec![],
            }],
        };
        assert_eq!(root.rows_in(), 3);
        let text = root.render();
        assert!(text.contains("Filter: (v > 1) (rows_in=3 rows_out=0"));
        assert!(text.contains("  TableScan: t (rows_out=3"));
    }

    #[test]
    fn parallel_counters_render_when_workers_ran() {
        let parallel = ParallelProfile::default();
        parallel.workers.add(4);
        parallel.morsels.add(12);
        parallel.steals.add(2);
        parallel.merge_ns.add(1_700);
        let node = ProfileNode {
            name: "HashAggregate",
            detail: String::new(),
            stats: OpStats::default(),
            parallel: Some(parallel),
            children: vec![],
        };
        let text = node.render();
        assert!(text.contains("workers=4 morsels=12 steals=2 merge=1.70us"));

        // Zero-worker profiles (serial fallback) stay unannotated.
        let quiet = ProfileNode {
            name: "HashAggregate",
            detail: String::new(),
            stats: OpStats::default(),
            parallel: Some(ParallelProfile::default()),
            children: vec![],
        };
        assert!(!quiet.render().contains("workers="));
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(format_ns(17), "17ns");
        assert_eq!(format_ns(1_700), "1.70us");
        assert_eq!(format_ns(2_500_000), "2.50ms");
        assert_eq!(format_ns(3_000_000_000), "3.00s");
    }
}
