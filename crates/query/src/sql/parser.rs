//! SQL `SELECT` parser: tokens → logical plan.

use super::lexer::{lex, Token};
use crate::catalog::Catalog;
use crate::error::{QueryError, Result};
use crate::expr::{avg, col, count, count_star, max, min, sum, AggExpr, BinOp, Expr};
use crate::logical::{JoinType, LogicalPlan, SortKey};
use backbone_storage::Value;

/// One item of the select list.
#[derive(Debug, Clone)]
enum SelectItem {
    /// `*`
    Star,
    /// A scalar expression (optionally aliased).
    Scalar(Expr),
    /// An aggregate call (optionally aliased).
    Agg(AggExpr),
}

#[derive(Debug)]
struct JoinSpec {
    table: String,
    on: Vec<(String, String)>,
    join_type: JoinType,
}

#[derive(Debug)]
struct SelectStmt {
    items: Vec<SelectItem>,
    from: String,
    joins: Vec<JoinSpec>,
    where_clause: Option<Expr>,
    group_by: Vec<Expr>,
    having: Option<Expr>,
    order_by: Vec<SortKey>,
    limit: Option<usize>,
}

/// A parsed SQL statement: a query, or an EXPLAIN [ANALYZE] wrapper
/// around one.
#[derive(Debug, Clone)]
pub enum Statement {
    /// A plain `SELECT`.
    Select(LogicalPlan),
    /// `EXPLAIN [ANALYZE] SELECT ...`; `analyze` asks for instrumented
    /// execution with measured per-operator statistics.
    Explain {
        /// The wrapped query.
        plan: LogicalPlan,
        /// Whether to run the plan and report actuals (ANALYZE).
        analyze: bool,
    },
}

/// Parse a SQL `SELECT` statement against a catalog into a logical plan.
pub fn parse_select(sql: &str, catalog: &dyn Catalog) -> Result<LogicalPlan> {
    match parse_statement(sql, catalog)? {
        Statement::Select(plan) => Ok(plan),
        Statement::Explain { .. } => Err(QueryError::InvalidPlan(
            "EXPLAIN is a statement, not a query; use parse_statement".into(),
        )),
    }
}

/// Parse a SQL statement — `SELECT` or `EXPLAIN [ANALYZE] SELECT`.
pub fn parse_statement(sql: &str, catalog: &dyn Catalog) -> Result<Statement> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let explain = p.eat_keyword("EXPLAIN");
    let analyze = explain && p.eat_keyword("ANALYZE");
    let stmt = p.parse_statement()?;
    p.expect_end()?;
    let plan = build_plan(stmt, catalog)?;
    Ok(if explain {
        Statement::Explain { plan, analyze }
    } else {
        Statement::Select(plan)
    })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek().map(|t| t.keyword_eq(kw)).unwrap_or(false) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(QueryError::InvalidPlan(format!(
                "expected {kw} at token {:?}",
                self.peek()
            )))
        }
    }

    fn eat(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Token) -> Result<()> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(QueryError::InvalidPlan(format!(
                "expected {tok:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_end(&self) -> Result<()> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(QueryError::InvalidPlan(format!(
                "unexpected trailing tokens starting at {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(QueryError::InvalidPlan(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    /// A possibly qualified column name; qualifiers are dropped because the
    /// engine resolves by unqualified name.
    fn column_name(&mut self) -> Result<String> {
        let first = self.ident()?;
        if self.eat(&Token::Dot) {
            self.ident()
        } else {
            Ok(first)
        }
    }

    fn parse_statement(&mut self) -> Result<SelectStmt> {
        self.expect_keyword("SELECT")?;
        let items = self.parse_select_list()?;
        self.expect_keyword("FROM")?;
        let from = self.ident()?;

        let mut joins = Vec::new();
        loop {
            let join_type = if self.eat_keyword("LEFT") {
                self.eat_keyword("OUTER");
                self.expect_keyword("JOIN")?;
                JoinType::Left
            } else if self.eat_keyword("INNER") {
                self.expect_keyword("JOIN")?;
                JoinType::Inner
            } else if self.eat_keyword("JOIN") {
                JoinType::Inner
            } else {
                break;
            };
            let table = self.ident()?;
            self.expect_keyword("ON")?;
            let mut on = Vec::new();
            loop {
                let l = self.column_name()?;
                self.expect(&Token::Eq)?;
                let r = self.column_name()?;
                on.push((l, r));
                if !self.eat_keyword("AND") {
                    break;
                }
            }
            joins.push(JoinSpec {
                table,
                on,
                join_type,
            });
        }

        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.parse_expr(0)?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.parse_expr(0)?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }

        let having = if self.eat_keyword("HAVING") {
            Some(self.parse_expr(0)?)
        } else {
            None
        };

        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.parse_expr(0)?;
                let descending = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                order_by.push(SortKey { expr, descending });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }

        let limit = if self.eat_keyword("LIMIT") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => {
                    return Err(QueryError::InvalidPlan(format!(
                        "LIMIT expects a non-negative integer, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };

        Ok(SelectStmt {
            items,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn parse_select_list(&mut self) -> Result<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            items.push(self.parse_select_item()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.peek() == Some(&Token::Star) {
            self.pos += 1;
            return Ok(SelectItem::Star);
        }
        // Aggregate call at the top level of a select item?
        if let Some(Token::Ident(name)) = self.peek().cloned() {
            if is_agg_name(&name) && self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
                let agg = self.parse_agg_call(&name)?;
                let agg = self.maybe_alias_agg(agg)?;
                return Ok(SelectItem::Agg(agg));
            }
        }
        let expr = self.parse_expr(0)?;
        let expr = self.maybe_alias(expr)?;
        Ok(SelectItem::Scalar(expr))
    }

    fn maybe_alias(&mut self, expr: Expr) -> Result<Expr> {
        if self.eat_keyword("AS") {
            let name = self.ident()?;
            return Ok(expr.alias(name));
        }
        Ok(expr)
    }

    fn maybe_alias_agg(&mut self, agg: AggExpr) -> Result<AggExpr> {
        if self.eat_keyword("AS") {
            let name = self.ident()?;
            return Ok(agg.alias(name));
        }
        Ok(agg)
    }

    fn parse_agg_call(&mut self, name: &str) -> Result<AggExpr> {
        self.pos += 1; // function name
        self.expect(&Token::LParen)?;
        if name.eq_ignore_ascii_case("COUNT") && self.eat(&Token::Star) {
            self.expect(&Token::RParen)?;
            return Ok(count_star());
        }
        let inner = self.parse_expr(0)?;
        self.expect(&Token::RParen)?;
        let agg = match name.to_ascii_uppercase().as_str() {
            "SUM" => sum(inner),
            "COUNT" => count(inner),
            "MIN" => min(inner),
            "MAX" => max(inner),
            "AVG" => avg(inner),
            other => {
                return Err(QueryError::InvalidPlan(format!(
                    "unknown aggregate {other}"
                )))
            }
        };
        Ok(agg)
    }

    /// Pratt expression parser. `min_bp` is the minimum binding power.
    fn parse_expr(&mut self, min_bp: u8) -> Result<Expr> {
        let mut lhs = self.parse_prefix()?;
        loop {
            // IS [NOT] NULL postfix.
            if self.peek().map(|t| t.keyword_eq("IS")).unwrap_or(false) && min_bp <= 4 {
                self.pos += 1;
                let negated = self.eat_keyword("NOT");
                self.expect_keyword("NULL")?;
                lhs = if negated {
                    lhs.is_not_null()
                } else {
                    lhs.is_null()
                };
                continue;
            }
            // [NOT] LIKE 'pattern'.
            let like_ahead = self.peek().map(|t| t.keyword_eq("LIKE")).unwrap_or(false);
            let not_like_ahead = self.peek().map(|t| t.keyword_eq("NOT")).unwrap_or(false)
                && self
                    .tokens
                    .get(self.pos + 1)
                    .map(|t| t.keyword_eq("LIKE"))
                    .unwrap_or(false);
            if (like_ahead || not_like_ahead) && min_bp <= 4 {
                let negated = not_like_ahead;
                self.pos += if negated { 2 } else { 1 };
                match self.next() {
                    Some(Token::Str(pattern)) => {
                        lhs = if negated {
                            lhs.not_like(pattern)
                        } else {
                            lhs.like(pattern)
                        };
                        continue;
                    }
                    other => {
                        return Err(QueryError::InvalidPlan(format!(
                            "LIKE expects a string pattern, found {other:?}"
                        )))
                    }
                }
            }
            // [NOT] IN ( expr, ... ).
            let in_ahead = self.peek().map(|t| t.keyword_eq("IN")).unwrap_or(false);
            let not_in_ahead = self.peek().map(|t| t.keyword_eq("NOT")).unwrap_or(false)
                && self
                    .tokens
                    .get(self.pos + 1)
                    .map(|t| t.keyword_eq("IN"))
                    .unwrap_or(false);
            if (in_ahead || not_in_ahead) && min_bp <= 4 {
                let negated = not_in_ahead;
                self.pos += if negated { 2 } else { 1 };
                if !matches!(self.next(), Some(Token::LParen)) {
                    return Err(QueryError::InvalidPlan("IN expects '('".into()));
                }
                let mut list = Vec::new();
                if matches!(self.peek(), Some(Token::RParen)) {
                    self.pos += 1;
                } else {
                    loop {
                        list.push(self.parse_expr(0)?);
                        match self.next() {
                            Some(Token::Comma) => continue,
                            Some(Token::RParen) => break,
                            other => {
                                return Err(QueryError::InvalidPlan(format!(
                                    "IN list expects ',' or ')', found {other:?}"
                                )))
                            }
                        }
                    }
                }
                lhs = if negated {
                    lhs.not_in_list(list)
                } else {
                    lhs.in_list(list)
                };
                continue;
            }
            // BETWEEN lo AND hi.
            if self
                .peek()
                .map(|t| t.keyword_eq("BETWEEN"))
                .unwrap_or(false)
                && min_bp <= 4
            {
                self.pos += 1;
                let lo = self.parse_expr(5)?;
                self.expect_keyword("AND")?;
                let hi = self.parse_expr(5)?;
                lhs = lhs.between(lo, hi);
                continue;
            }
            let Some((op, lbp, rbp)) = self.peek_binop() else {
                break;
            };
            if lbp < min_bp {
                break;
            }
            self.pos += 1;
            let rhs = self.parse_expr(rbp)?;
            lhs = Expr::Binary {
                left: Box::new(lhs),
                op,
                right: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn peek_binop(&self) -> Option<(BinOp, u8, u8)> {
        let t = self.peek()?;
        let (op, bp) = match t {
            Token::Ident(s) if s.eq_ignore_ascii_case("OR") => (BinOp::Or, 1),
            Token::Ident(s) if s.eq_ignore_ascii_case("AND") => (BinOp::And, 2),
            Token::Eq => (BinOp::Eq, 4),
            Token::NotEq => (BinOp::NotEq, 4),
            Token::Lt => (BinOp::Lt, 4),
            Token::LtEq => (BinOp::LtEq, 4),
            Token::Gt => (BinOp::Gt, 4),
            Token::GtEq => (BinOp::GtEq, 4),
            Token::Plus => (BinOp::Add, 5),
            Token::Minus => (BinOp::Sub, 5),
            Token::Star => (BinOp::Mul, 6),
            Token::Slash => (BinOp::Div, 6),
            Token::Percent => (BinOp::Mod, 6),
            _ => return None,
        };
        Some((op, bp, bp + 1))
    }

    fn parse_prefix(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Token::Int(n)) => Ok(Expr::Literal(Value::Int(n))),
            Some(Token::Float(f)) => Ok(Expr::Literal(Value::Float(f))),
            Some(Token::Str(s)) => Ok(Expr::Literal(Value::str(s))),
            Some(Token::Param(i)) => Ok(Expr::Param(i)),
            Some(Token::Minus) => Ok(self.parse_expr(7)?.neg()),
            Some(Token::LParen) => {
                let inner = self.parse_expr(0)?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("NOT") => Ok(self.parse_expr(3)?.not()),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("TRUE") => {
                Ok(Expr::Literal(Value::Bool(true)))
            }
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("FALSE") => {
                Ok(Expr::Literal(Value::Bool(false)))
            }
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("NULL") => {
                Ok(Expr::Literal(Value::Null))
            }
            Some(Token::Ident(s)) => {
                if self.peek() == Some(&Token::LParen) {
                    return Err(QueryError::InvalidPlan(format!(
                        "function '{s}' not allowed here (aggregates only at the top of a select item)"
                    )));
                }
                if self.eat(&Token::Dot) {
                    // Qualified name: keep only the column part.
                    return Ok(col(self.ident()?));
                }
                Ok(col(s))
            }
            other => Err(QueryError::InvalidPlan(format!(
                "unexpected token in expression: {other:?}"
            ))),
        }
    }
}

fn is_agg_name(name: &str) -> bool {
    ["SUM", "COUNT", "MIN", "MAX", "AVG"]
        .iter()
        .any(|k| name.eq_ignore_ascii_case(k))
}

fn build_plan(stmt: SelectStmt, catalog: &dyn Catalog) -> Result<LogicalPlan> {
    let mut plan = LogicalPlan::scan(&stmt.from, catalog)?;
    for j in stmt.joins {
        let right = LogicalPlan::scan(&j.table, catalog)?;
        let on: Vec<(&str, &str)> = j.on.iter().map(|(l, r)| (l.as_str(), r.as_str())).collect();
        plan = plan.join(right, on, j.join_type);
    }
    if let Some(w) = stmt.where_clause {
        plan = plan.filter(w);
    }

    let has_aggs = stmt.items.iter().any(|i| matches!(i, SelectItem::Agg(_)));
    if has_aggs || !stmt.group_by.is_empty() {
        // Group keys: the explicit GROUP BY list; scalar select items must
        // be among them.
        let group_by = stmt.group_by.clone();
        let group_names: Vec<String> = group_by.iter().map(|g| g.output_name()).collect();
        let mut aggs = Vec::new();
        let mut out_names = Vec::new();
        for item in &stmt.items {
            match item {
                SelectItem::Star => {
                    return Err(QueryError::InvalidPlan(
                        "SELECT * cannot be combined with aggregation".into(),
                    ))
                }
                SelectItem::Scalar(e) => {
                    let name = e.output_name();
                    if !group_names.contains(&name) {
                        return Err(QueryError::InvalidPlan(format!(
                            "column '{name}' must appear in GROUP BY or an aggregate"
                        )));
                    }
                    out_names.push(name);
                }
                SelectItem::Agg(a) => {
                    out_names.push(a.name.clone());
                    aggs.push(a.clone());
                }
            }
        }
        plan = plan.aggregate(group_by, aggs);
        if let Some(h) = stmt.having {
            plan = plan.filter(h);
        }
        // Re-project to the select-list order (aggregate output is
        // group-keys-then-aggs).
        plan = plan.project(out_names.into_iter().map(col).collect());
    } else {
        if stmt.having.is_some() {
            return Err(QueryError::InvalidPlan(
                "HAVING requires aggregation".into(),
            ));
        }
        let all_star = stmt.items.iter().all(|i| matches!(i, SelectItem::Star));
        if !all_star {
            let mut exprs = Vec::new();
            for item in &stmt.items {
                match item {
                    SelectItem::Star => {
                        return Err(QueryError::InvalidPlan(
                            "mixing * with expressions is unsupported".into(),
                        ))
                    }
                    SelectItem::Scalar(e) => exprs.push(e.clone()),
                    SelectItem::Agg(_) => unreachable!("handled above"),
                }
            }
            plan = plan.project(exprs);
        }
    }

    if !stmt.order_by.is_empty() {
        plan = plan.sort(stmt.order_by);
    }
    if let Some(n) = stmt.limit {
        plan = plan.limit(n);
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{execute, ExecOptions};
    use crate::optimizer::test_fixtures::catalog;
    use backbone_storage::Value;

    fn run(sql: &str) -> Vec<Vec<Value>> {
        let cat = catalog();
        let plan = parse_select(sql, &cat).expect(sql);
        execute(plan, &cat, &ExecOptions::serial())
            .expect(sql)
            .to_rows()
    }

    #[test]
    fn select_star_limit() {
        let rows = run("SELECT * FROM small LIMIT 3");
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].len(), 3);
    }

    #[test]
    fn projection_and_arithmetic() {
        let rows = run("SELECT small_v + 1 AS inc, small_v * 2 FROM small WHERE small_v < 3");
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][0], Value::Int(1));
        assert_eq!(rows[2][1], Value::Int(4));
    }

    #[test]
    fn where_with_precedence() {
        // AND binds tighter than OR.
        let rows =
            run("SELECT small_v FROM small WHERE small_v = 0 OR small_v > 7 AND small_v < 9");
        let vals: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(vals, vec![0, 8]);
    }

    #[test]
    fn group_by_aggregates() {
        let rows = run(
            "SELECT small_tag, COUNT(*) AS n, SUM(small_v) AS s FROM small GROUP BY small_tag ORDER BY small_tag",
        );
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::str("a"));
        assert_eq!(rows[0][1], Value::Int(5));
        assert_eq!(rows[0][2], Value::Int(2 + 4 + 6 + 8));
    }

    #[test]
    fn having_filters_groups() {
        let rows = run(
            "SELECT small_tag, SUM(small_v) AS s FROM small GROUP BY small_tag HAVING s > 20 ORDER BY s",
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::str("b")); // 1+3+5+7+9 = 25
    }

    #[test]
    fn joins_inner_and_left() {
        let rows = run(
            "SELECT big_v, small_v FROM big JOIN small ON big_k = small_k WHERE big_v < 3 ORDER BY big_v",
        );
        assert!(!rows.is_empty());
        // LEFT JOIN: big keys 10..49 have no small match -> NULL small_v.
        let left = run(
            "SELECT big_k, small_v FROM big LEFT JOIN small ON big_k = small_k WHERE big_k = 20 LIMIT 1",
        );
        assert_eq!(left[0][0], Value::Int(20));
        assert!(left[0][1].is_null());
    }

    #[test]
    fn order_by_desc_and_limit() {
        let rows = run("SELECT small_v FROM small ORDER BY small_v DESC LIMIT 2");
        let vals: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(vals, vec![9, 8]);
    }

    #[test]
    fn between_and_is_null() {
        let rows = run(
            "SELECT small_v FROM small WHERE small_v BETWEEN 2 AND 4 AND small_tag IS NOT NULL",
        );
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn string_literals_and_not() {
        let rows = run("SELECT small_v FROM small WHERE NOT small_tag = 'a'");
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn global_aggregate() {
        let rows = run("SELECT COUNT(*), AVG(small_v) FROM small");
        assert_eq!(rows[0][0], Value::Int(10));
        assert_eq!(rows[0][1], Value::Float(4.5));
    }

    #[test]
    fn error_cases() {
        let cat = catalog();
        for bad in [
            "SELECT",
            "SELECT * FROM",
            "SELECT * FROM nope",
            "SELECT x FROM small WHERE",
            "SELECT * FROM small GROUP BY small_tag",
            "SELECT small_v, COUNT(*) FROM small GROUP BY small_tag",
            "SELECT * FROM small LIMIT -1",
            "SELECT * FROM small HAVING small_v > 1",
            "SELECT lower(small_tag) FROM small",
            "SELECT * FROM small trailing garbage",
        ] {
            assert!(parse_select(bad, &cat).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn like_patterns() {
        // tags are 'a' and 'b'; LIKE with wildcards.
        let rows = run("SELECT small_v FROM small WHERE small_tag LIKE 'a'");
        assert_eq!(rows.len(), 5);
        let rows = run("SELECT small_v FROM small WHERE small_tag LIKE '%'");
        assert_eq!(rows.len(), 10);
        let rows = run("SELECT small_v FROM small WHERE small_tag NOT LIKE 'a'");
        assert_eq!(rows.len(), 5);
        let rows = run("SELECT small_v FROM small WHERE small_tag LIKE '_'");
        assert_eq!(rows.len(), 10);
        let rows = run("SELECT small_v FROM small WHERE small_tag LIKE 'a_'");
        assert_eq!(rows.len(), 0);
        let cat = catalog();
        assert!(parse_select("SELECT * FROM small WHERE small_tag LIKE 5", &cat).is_err());
    }

    #[test]
    fn in_lists() {
        let rows = run("SELECT small_v FROM small WHERE small_tag IN ('a')");
        assert_eq!(rows.len(), 5);
        let rows = run("SELECT small_v FROM small WHERE small_tag IN ('a', 'b')");
        assert_eq!(rows.len(), 10);
        let rows = run("SELECT small_v FROM small WHERE small_tag NOT IN ('a')");
        assert_eq!(rows.len(), 5);
        let rows = run("SELECT small_v FROM small WHERE small_v IN (1, 3, 999)");
        assert_eq!(rows.len(), 2);
        let rows = run("SELECT small_v FROM small WHERE small_tag IN ()");
        assert_eq!(rows.len(), 0);
        let rows = run("SELECT small_v FROM small WHERE small_v IN (1 + 1)");
        assert_eq!(rows.len(), 1);
        let cat = catalog();
        assert!(parse_select("SELECT * FROM small WHERE small_tag IN 'a'", &cat).is_err());
        assert!(parse_select("SELECT * FROM small WHERE small_tag IN ('a'", &cat).is_err());
    }

    #[test]
    fn parenthesized_expressions() {
        let rows = run("SELECT (small_v + 1) * 2 FROM small WHERE small_v = 3");
        assert_eq!(rows[0][0], Value::Int(8));
    }

    #[test]
    fn qualified_names_resolve() {
        let rows = run("SELECT small.small_v FROM small WHERE small.small_v = 2");
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn explain_and_explain_analyze_statements() {
        let cat = catalog();
        match parse_statement("EXPLAIN SELECT * FROM small", &cat).unwrap() {
            Statement::Explain { analyze: false, .. } => {}
            other => panic!("expected EXPLAIN, got {other:?}"),
        }
        match parse_statement("explain analyze SELECT small_v FROM small LIMIT 1", &cat).unwrap() {
            Statement::Explain {
                analyze: true,
                plan,
            } => {
                assert!(plan.display_indent().contains("Limit"));
            }
            other => panic!("expected EXPLAIN ANALYZE, got {other:?}"),
        }
        match parse_statement("SELECT * FROM small", &cat).unwrap() {
            Statement::Select(_) => {}
            other => panic!("expected SELECT, got {other:?}"),
        }
        // EXPLAIN wraps a full statement: garbage inside still errors, and
        // parse_select refuses EXPLAIN.
        assert!(parse_statement("EXPLAIN", &cat).is_err());
        assert!(parse_statement("EXPLAIN ANALYZE", &cat).is_err());
        assert!(parse_select("EXPLAIN SELECT * FROM small", &cat).is_err());
    }

    #[test]
    fn join_missing_table_errors() {
        let cat = catalog();
        assert!(parse_select("SELECT * FROM small JOIN ghost ON small_k = g_k", &cat).is_err());
    }
}
