//! SQL tokenizer.

use crate::error::{QueryError, Result};

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are matched case-insensitively by
    /// the parser via [`Token::keyword_eq`]).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes removed, `''` unescaped).
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `.` (qualified names)
    Dot,
    /// `$1`, `$2`, ... — a prepared-statement parameter placeholder.
    /// Stored zero-based: `$1` lexes to `Param(0)`.
    Param(usize),
}

impl Token {
    /// Case-insensitive keyword comparison for identifiers.
    pub fn keyword_eq(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize a SQL string.
pub fn lex(sql: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let chars: Vec<char> = sql.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                // Line comments: `-- ...`
                if chars.get(i + 1) == Some(&'-') {
                    while i < chars.len() && chars[i] != '\n' {
                        i += 1;
                    }
                } else {
                    out.push(Token::Minus);
                    i += 1;
                }
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '%' => {
                out.push(Token::Percent);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::NotEq);
                    i += 2;
                } else {
                    return Err(QueryError::InvalidExpression("stray '!' in SQL".into()));
                }
            }
            '<' => match chars.get(i + 1) {
                Some('=') => {
                    out.push(Token::LtEq);
                    i += 2;
                }
                Some('>') => {
                    out.push(Token::NotEq);
                    i += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::GtEq);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '$' => {
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && chars[j].is_ascii_digit() {
                    j += 1;
                }
                let digits: String = chars[start..j].iter().collect();
                let n: usize = digits.parse().map_err(|_| {
                    QueryError::InvalidExpression(
                        "expected parameter index after '$' (e.g. $1)".into(),
                    )
                })?;
                if n == 0 {
                    return Err(QueryError::InvalidExpression(
                        "parameter indexes start at $1".into(),
                    ));
                }
                out.push(Token::Param(n - 1));
                i = j;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        None => {
                            return Err(QueryError::InvalidExpression(
                                "unterminated string literal".into(),
                            ))
                        }
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&c) => {
                            s.push(c);
                            i += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                if text.contains('.') {
                    out.push(Token::Float(text.parse().map_err(|_| {
                        QueryError::InvalidExpression(format!("bad float literal '{text}'"))
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| {
                        QueryError::InvalidExpression(format!("bad int literal '{text}'"))
                    })?));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token::Ident(chars[start..i].iter().collect()));
            }
            other => {
                return Err(QueryError::InvalidExpression(format!(
                    "unexpected character '{other}' in SQL"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_query() {
        let toks = lex("SELECT a, b FROM t WHERE a >= 1.5 AND s = 'x''y'").unwrap();
        assert!(toks.contains(&Token::Ident("SELECT".into())));
        assert!(toks.contains(&Token::GtEq));
        assert!(toks.contains(&Token::Float(1.5)));
        assert!(toks.contains(&Token::Str("x'y".into())));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("SELECT a -- the column\nFROM t").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn operators() {
        let toks = lex("< <= > >= = <> != + - * / %").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Lt,
                Token::LtEq,
                Token::Gt,
                Token::GtEq,
                Token::Eq,
                Token::NotEq,
                Token::NotEq,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::Percent
            ]
        );
    }

    #[test]
    fn errors_on_garbage() {
        assert!(lex("SELECT ~").is_err());
        assert!(lex("'unterminated").is_err());
        assert!(lex("1.2.3").is_err());
    }

    #[test]
    fn params_lex_zero_based() {
        let toks = lex("WHERE a = $1 AND b = $12").unwrap();
        assert!(toks.contains(&Token::Param(0)));
        assert!(toks.contains(&Token::Param(11)));
        assert!(lex("$").is_err());
        assert!(lex("$0").is_err());
        assert!(lex("$x").is_err());
    }

    #[test]
    fn keyword_matching_is_case_insensitive() {
        let toks = lex("select").unwrap();
        assert!(toks[0].keyword_eq("SELECT"));
        assert!(toks[0].keyword_eq("select"));
        assert!(!toks[0].keyword_eq("FROM"));
    }
}
