//! A SQL front-end for the declarative layer.
//!
//! Supports single-statement `SELECT` queries, optionally wrapped in
//! `EXPLAIN` (render the plan) or `EXPLAIN ANALYZE` (run it instrumented and
//! render measured per-operator statistics):
//!
//! ```text
//! [ EXPLAIN [ANALYZE] ]
//! SELECT <exprs | aggregates | *>
//! FROM <table>
//! [ [LEFT|INNER] JOIN <table> ON a = b [AND c = d]... ]...
//! [ WHERE <predicate> ]
//! [ GROUP BY <exprs> ] [ HAVING <predicate> ]
//! [ ORDER BY <expr> [ASC|DESC], ... ]
//! [ LIMIT <n> ]
//! ```
//!
//! The parser lowers straight into [`crate::logical::LogicalPlan`], so SQL
//! text and the builder API optimize and execute identically — two skins
//! over one declarative algebra, which is the paper's "usability" point in
//! practice.

mod lexer;
mod parser;

pub use lexer::{lex, Token};
pub use parser::{parse_select, parse_statement, Statement};

use crate::error::Result;

/// Canonical single-spaced rendering of a statement's token stream — the
/// text half of a plan-cache fingerprint. Whitespace runs and `--` comments
/// never reach the tokens, so formattings of the same statement normalize
/// identically. Identifier case is preserved verbatim (column resolution is
/// case-sensitive), so `SELECT` vs `select` yields two cache entries — a
/// duplicate, never a wrong hit.
pub fn normalize(sql: &str) -> Result<String> {
    let tokens = lex(sql)?;
    let mut out = String::with_capacity(sql.len());
    for (i, t) in tokens.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        match t {
            Token::Ident(s) => out.push_str(s),
            Token::Int(n) => out.push_str(&n.to_string()),
            Token::Float(f) => out.push_str(&f.to_string()),
            Token::Str(s) => {
                out.push('\'');
                out.push_str(&s.replace('\'', "''"));
                out.push('\'');
            }
            Token::Param(p) => out.push_str(&format!("${}", p + 1)),
            Token::Comma => out.push(','),
            Token::LParen => out.push('('),
            Token::RParen => out.push(')'),
            Token::Star => out.push('*'),
            Token::Plus => out.push('+'),
            Token::Minus => out.push('-'),
            Token::Slash => out.push('/'),
            Token::Percent => out.push('%'),
            Token::Eq => out.push('='),
            Token::NotEq => out.push_str("<>"),
            Token::Lt => out.push('<'),
            Token::LtEq => out.push_str("<="),
            Token::Gt => out.push('>'),
            Token::GtEq => out.push_str(">="),
            Token::Dot => out.push('.'),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod normalize_tests {
    use super::normalize;

    #[test]
    fn whitespace_and_comments_collapse() {
        let a = normalize("SELECT a,b FROM t WHERE a>=1 -- trailing\n").unwrap();
        let b = normalize("SELECT  a , b\n  FROM t\n  WHERE a >= 1").unwrap();
        assert_eq!(a, b);
        assert_eq!(a, "SELECT a , b FROM t WHERE a >= 1");
    }

    #[test]
    fn literals_and_params_survive() {
        let n = normalize("SELECT * FROM t WHERE s = 'o''k' AND x = $2 AND f != 1.50").unwrap();
        assert_eq!(
            n,
            "SELECT * FROM t WHERE s = 'o''k' AND x = $2 AND f <> 1.5"
        );
    }

    #[test]
    fn different_literals_normalize_differently() {
        let a = normalize("SELECT * FROM t WHERE x = 1").unwrap();
        let b = normalize("SELECT * FROM t WHERE x = 2").unwrap();
        assert_ne!(a, b);
    }
}
