//! A SQL front-end for the declarative layer.
//!
//! Supports single-statement `SELECT` queries, optionally wrapped in
//! `EXPLAIN` (render the plan) or `EXPLAIN ANALYZE` (run it instrumented and
//! render measured per-operator statistics):
//!
//! ```text
//! [ EXPLAIN [ANALYZE] ]
//! SELECT <exprs | aggregates | *>
//! FROM <table>
//! [ [LEFT|INNER] JOIN <table> ON a = b [AND c = d]... ]...
//! [ WHERE <predicate> ]
//! [ GROUP BY <exprs> ] [ HAVING <predicate> ]
//! [ ORDER BY <expr> [ASC|DESC], ... ]
//! [ LIMIT <n> ]
//! ```
//!
//! The parser lowers straight into [`crate::logical::LogicalPlan`], so SQL
//! text and the builder API optimize and execute identically — two skins
//! over one declarative algebra, which is the paper's "usability" point in
//! practice.

mod lexer;
mod parser;

pub use lexer::{lex, Token};
pub use parser::{parse_select, parse_statement, Statement};
