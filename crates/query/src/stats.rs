//! Column statistics: the optimizer's eyes.
//!
//! `ANALYZE`-style statistics (distinct count, min/max, null count) computed
//! lazily per column and cached until the table is re-registered. The
//! cardinality model uses them to replace magic-constant selectivities with
//! `1/ndv` equality estimates, range-fraction estimates, and the classic
//! `|L|·|R| / max(ndv)` join estimate.

use backbone_storage::{Table, Value};
use std::collections::HashSet;

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Exact number of distinct non-null values.
    pub ndv: u64,
    /// Minimum non-null value.
    pub min: Option<Value>,
    /// Maximum non-null value.
    pub max: Option<Value>,
    /// Number of NULL rows.
    pub null_count: u64,
    /// Total rows.
    pub row_count: u64,
}

impl ColumnStats {
    /// Selectivity of `col = literal` under a uniform-distribution
    /// assumption: `1/ndv` (clamped into (0, 1]).
    pub fn eq_selectivity(&self) -> f64 {
        if self.ndv == 0 {
            0.0
        } else {
            (1.0 / self.ndv as f64).min(1.0)
        }
    }

    /// Selectivity of a range predicate against a numeric literal, using
    /// linear interpolation over [min, max]. `None` when the column is not
    /// numeric or has no values.
    pub fn range_selectivity(&self, op_lt: bool, inclusive: bool, v: &Value) -> Option<f64> {
        let lo = self.min.as_ref()?.as_float()?;
        let hi = self.max.as_ref()?.as_float()?;
        let x = v.as_float()?;
        if hi <= lo {
            // Degenerate single-value column.
            let matches = match (op_lt, inclusive) {
                (true, true) => x >= lo,
                (true, false) => x > lo,
                (false, true) => x <= lo,
                (false, false) => x < lo,
            };
            return Some(if matches { 1.0 } else { 0.0 });
        }
        let frac = ((x - lo) / (hi - lo)).clamp(0.0, 1.0);
        Some(if op_lt { frac } else { 1.0 - frac })
    }
}

/// Per-type accumulator for one column's statistics. Typed kernels keep the
/// hot loop on raw slices: no per-row `Value` boxing, and distinct-counting
/// hashes primitives (floats by bit pattern) instead of enum values.
enum StatAcc<'a> {
    Int {
        distinct: HashSet<i64>,
        min: i64,
        max: i64,
    },
    Float {
        distinct: HashSet<u64>,
        min: f64,
        max: f64,
    },
    Str {
        distinct: HashSet<&'a str>,
        min: Option<&'a str>,
        max: Option<&'a str>,
    },
    Bool {
        seen: [bool; 2],
    },
    Other {
        distinct: HashSet<Value>,
        min: Option<Value>,
        max: Option<Value>,
    },
}

/// Compute statistics for every column of a table (one pass per column).
pub fn analyze_table(table: &Table) -> Vec<ColumnStats> {
    let ncols = table.schema().len();
    // Materialize groups up front (paged ones decode through the pool); the
    // string accumulators borrow from these batches, so they must outlive
    // the per-column passes. Unreadable groups contribute no stats rather
    // than failing planning.
    let groups: Vec<_> = (0..table.num_groups())
        .filter_map(|i| table.group(i).ok())
        .collect();
    let mut out = Vec::with_capacity(ncols);
    for c in 0..ncols {
        let mut acc: Option<StatAcc> = None;
        let mut null_count = 0u64;
        let mut row_count = 0u64;
        for group in &groups {
            let col = group.batch().column(c);
            let bm = col.validity();
            row_count += col.len() as u64;
            if let Ok(data) = col.i64_data() {
                let a = acc.get_or_insert(StatAcc::Int {
                    distinct: HashSet::new(),
                    min: i64::MAX,
                    max: i64::MIN,
                });
                if let StatAcc::Int { distinct, min, max } = a {
                    for (i, &v) in data.iter().enumerate() {
                        if !bm.get(i) {
                            null_count += 1;
                            continue;
                        }
                        *min = v.min(*min);
                        *max = v.max(*max);
                        distinct.insert(v);
                    }
                }
            } else if let Ok(data) = col.f64_data() {
                let a = acc.get_or_insert(StatAcc::Float {
                    distinct: HashSet::new(),
                    min: f64::INFINITY,
                    max: f64::NEG_INFINITY,
                });
                if let StatAcc::Float { distinct, min, max } = a {
                    for (i, &v) in data.iter().enumerate() {
                        if !bm.get(i) {
                            null_count += 1;
                            continue;
                        }
                        *min = v.min(*min);
                        *max = v.max(*max);
                        distinct.insert(v.to_bits());
                    }
                }
            } else if let Ok(data) = col.utf8_data() {
                let a = acc.get_or_insert(StatAcc::Str {
                    distinct: HashSet::new(),
                    min: None,
                    max: None,
                });
                if let StatAcc::Str { distinct, min, max } = a {
                    for (i, v) in data.iter().enumerate() {
                        if !bm.get(i) {
                            null_count += 1;
                            continue;
                        }
                        let s: &str = v.as_str();
                        if min.is_none_or(|m| s < m) {
                            *min = Some(s);
                        }
                        if max.is_none_or(|m| s > m) {
                            *max = Some(s);
                        }
                        distinct.insert(s);
                    }
                }
            } else if let Ok(data) = col.bool_data() {
                let a = acc.get_or_insert(StatAcc::Bool {
                    seen: [false, false],
                });
                if let StatAcc::Bool { seen } = a {
                    for (i, &v) in data.iter().enumerate() {
                        if !bm.get(i) {
                            null_count += 1;
                            continue;
                        }
                        seen[v as usize] = true;
                    }
                }
            } else if let Some((dict, codes, _)) = col.dict_parts() {
                // Dictionary columns: O(rows) code scan for usage + nulls,
                // then string work only over the distinct entries.
                let a = acc.get_or_insert(StatAcc::Str {
                    distinct: HashSet::new(),
                    min: None,
                    max: None,
                });
                if let StatAcc::Str { distinct, min, max } = a {
                    let mut used = vec![false; dict.len()];
                    for (i, &code) in codes.iter().enumerate() {
                        if !bm.get(i) {
                            null_count += 1;
                            continue;
                        }
                        used[code as usize] = true;
                    }
                    for (entry, u) in dict.iter().zip(used) {
                        if !u {
                            continue;
                        }
                        let s: &str = entry.as_str();
                        if min.is_none_or(|m| s < m) {
                            *min = Some(s);
                        }
                        if max.is_none_or(|m| s > m) {
                            *max = Some(s);
                        }
                        distinct.insert(s);
                    }
                }
            } else {
                let a = acc.get_or_insert(StatAcc::Other {
                    distinct: HashSet::new(),
                    min: None,
                    max: None,
                });
                if let StatAcc::Other { distinct, min, max } = a {
                    for i in 0..col.len() {
                        let v = col.value(i);
                        if v.is_null() {
                            null_count += 1;
                            continue;
                        }
                        if min
                            .as_ref()
                            .is_none_or(|m| v.sql_cmp(m) == std::cmp::Ordering::Less)
                        {
                            *min = Some(v.clone());
                        }
                        if max
                            .as_ref()
                            .is_none_or(|m| v.sql_cmp(m) == std::cmp::Ordering::Greater)
                        {
                            *max = Some(v.clone());
                        }
                        distinct.insert(v);
                    }
                }
            }
        }
        let (ndv, min, max) = match acc {
            Some(StatAcc::Int { distinct, min, max }) if !distinct.is_empty() => (
                distinct.len() as u64,
                Some(Value::Int(min)),
                Some(Value::Int(max)),
            ),
            Some(StatAcc::Float { distinct, min, max }) if !distinct.is_empty() => (
                distinct.len() as u64,
                Some(Value::Float(min)),
                Some(Value::Float(max)),
            ),
            Some(StatAcc::Str { distinct, min, max }) => (
                distinct.len() as u64,
                min.map(Value::str),
                max.map(Value::str),
            ),
            Some(StatAcc::Bool { seen }) => {
                let ndv = seen.iter().filter(|&&b| b).count() as u64;
                let min = if seen[0] {
                    Some(Value::Bool(false))
                } else if seen[1] {
                    Some(Value::Bool(true))
                } else {
                    None
                };
                let max = if seen[1] {
                    Some(Value::Bool(true))
                } else if seen[0] {
                    Some(Value::Bool(false))
                } else {
                    None
                };
                (ndv, min, max)
            }
            Some(StatAcc::Other { distinct, min, max }) => (distinct.len() as u64, min, max),
            _ => (0, None, None),
        };
        out.push(ColumnStats {
            ndv,
            min,
            max,
            null_count,
            row_count,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use backbone_storage::{DataType, Field, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::nullable("v", DataType::Utf8),
        ]);
        let mut t = Table::with_group_size(schema, 4);
        for i in 0..20i64 {
            let v = if i % 5 == 0 {
                Value::Null
            } else {
                Value::str(format!("s{}", i % 3))
            };
            t.append_row(vec![Value::Int(i % 7), v]).unwrap();
        }
        t.flush().unwrap();
        t
    }

    #[test]
    fn analyze_counts() {
        let stats = analyze_table(&table());
        assert_eq!(stats[0].ndv, 7);
        assert_eq!(stats[0].null_count, 0);
        assert_eq!(stats[0].min, Some(Value::Int(0)));
        assert_eq!(stats[0].max, Some(Value::Int(6)));
        assert_eq!(stats[0].row_count, 20);
        assert_eq!(stats[1].ndv, 3);
        assert_eq!(stats[1].null_count, 4);
    }

    #[test]
    fn eq_selectivity_uniform() {
        let stats = analyze_table(&table());
        assert!((stats[0].eq_selectivity() - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn range_selectivity_interpolates() {
        let stats = analyze_table(&table());
        // k in [0, 6]; k < 3 ~ 0.5.
        let s = stats[0]
            .range_selectivity(true, false, &Value::Int(3))
            .unwrap();
        assert!((s - 0.5).abs() < 1e-9);
        // k > 6 ~ 0.
        let s = stats[0]
            .range_selectivity(false, false, &Value::Int(6))
            .unwrap();
        assert_eq!(s, 0.0);
        // Out-of-range literal clamps.
        let s = stats[0]
            .range_selectivity(true, false, &Value::Int(100))
            .unwrap();
        assert_eq!(s, 1.0);
        // Non-numeric columns yield None.
        assert!(stats[1]
            .range_selectivity(true, false, &Value::Int(1))
            .is_none());
    }

    #[test]
    fn degenerate_single_value_column() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int64)]);
        let mut t = Table::new(schema);
        for _ in 0..5 {
            t.append_row(vec![Value::Int(42)]).unwrap();
        }
        t.flush().unwrap();
        let stats = analyze_table(&t);
        assert_eq!(stats[0].ndv, 1);
        assert_eq!(
            stats[0].range_selectivity(true, true, &Value::Int(42)),
            Some(1.0)
        );
        assert_eq!(
            stats[0].range_selectivity(true, false, &Value::Int(42)),
            Some(0.0)
        );
    }
}
