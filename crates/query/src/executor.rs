//! Query execution entry points.

use crate::catalog::Catalog;
use crate::error::Result;
use crate::logical::LogicalPlan;
use crate::optimizer::{estimate_rows, Optimizer, Rule};
use crate::physical::{drain, drain_one};
use crate::planner::{create_instrumented_plan, create_physical_plan};
use backbone_storage::metrics::Metrics;
use backbone_storage::RecordBatch;

/// How many worker threads an executing plan may use ("automatic
/// scalability": the query text never changes, the engine soaks up the
/// hardware).
///
/// The default is [`Parallelism::Serial`]: every operator runs inline on the
/// calling thread, which is also what [`Parallelism::Auto`] degrades to on a
/// single-core machine. `Fixed(n)` always uses exactly `n` workers — even
/// `Fixed(1)` exercises the full parallel machinery (shared morsel source,
/// partial states, merge), though its one worker runs inline on the caller,
/// which is how the bench floor measures parallel overhead deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Run every operator inline on the calling thread.
    #[default]
    Serial,
    /// Spawn exactly this many worker threads (clamped to at least 1).
    Fixed(usize),
    /// Use the available cores (capped at [`MAX_AUTO_WORKERS`]); serial on a
    /// single-core machine, where workers could only add overhead.
    Auto,
}

/// Upper bound on worker threads chosen by [`Parallelism::Auto`].
pub const MAX_AUTO_WORKERS: usize = 16;

impl Parallelism {
    /// Worker threads to spawn; `0` means run serially inline.
    pub fn worker_threads(&self) -> usize {
        match self {
            Parallelism::Serial => 0,
            Parallelism::Fixed(n) => (*n).max(1),
            Parallelism::Auto => {
                let cores = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                if cores <= 1 {
                    0
                } else {
                    cores.min(MAX_AUTO_WORKERS)
                }
            }
        }
    }

    /// True when execution stays on the calling thread.
    pub fn is_serial(&self) -> bool {
        self.worker_threads() == 0
    }
}

/// Back-compat with the old `parallelism: usize` knob: `0` and `1` meant a
/// serial scan, anything larger meant that many workers.
impl From<usize> for Parallelism {
    fn from(n: usize) -> Parallelism {
        if n <= 1 {
            Parallelism::Serial
        } else {
            Parallelism::Fixed(n)
        }
    }
}

/// Execution knobs.
///
/// `parallelism` is the worker-thread policy ("automatic scalability": the
/// query text never changes). `rules` selects optimizer rules; `None` means
/// all. `metrics` is an optional shared registry; when set, instrumented
/// plans accumulate engine-truth `op.<name>.*` counters into it.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker-thread policy for parallel operators.
    pub parallelism: Parallelism,
    /// Optimizer rules to apply; `None` = every rule, `Some(vec![])` = none.
    pub rules: Option<Vec<Rule>>,
    /// Shared metrics registry for instrumented execution.
    pub metrics: Option<Metrics>,
    /// Rows per scan batch (0 = one batch per row group). Smaller batches
    /// keep the working set cache-resident through the kernel pipeline.
    pub batch_rows: usize,
    /// Memory budget in bytes for pipeline-breaking operator state (hash
    /// aggregate tables, hash join build sides). `None` = unlimited. When
    /// the shared per-query total crosses the budget, operators partition
    /// their state by key hash and spill to disk (Grace-style), re-reading
    /// one partition at a time.
    pub mem_budget: Option<usize>,
    /// Snapshot epoch pinned for this query. `None` = read everything (the
    /// pre-MVCC behavior and the right default for catalogs built by hand).
    /// When set, table scans clamp to the row prefix committed at or before
    /// this epoch, so concurrent appends — even already-registered ones —
    /// stay invisible for the lifetime of the query.
    pub snapshot_epoch: Option<u64>,
    /// Serve `Database::sql` statements from the plan cache (and populate it
    /// on a miss). Off = always re-parse and re-optimize. Of all the knobs
    /// here, only `rules` changes the cached artifact — the optimized
    /// *logical* plan — so only `rules` joins the cache key; parallelism,
    /// batch size, and memory budget steer per-execution *physical* planning,
    /// which always runs fresh against the caller's options.
    pub plan_cache: bool,
    /// Serve read-only `Database::sql` results from the epoch-tagged result
    /// cache (and populate it on a miss). Off = always execute.
    pub result_cache: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions::serial()
    }
}

/// Default scan batch size: large enough to amortize per-batch dispatch,
/// small enough that a handful of live columns stay in L2.
pub const DEFAULT_BATCH_ROWS: usize = 16 * 1024;

impl ExecOptions {
    /// The single source of truth for baseline options: serial execution,
    /// every optimizer rule, no metrics, default batch size. `Default`,
    /// the test helpers, and every other constructor route through here.
    pub fn serial() -> ExecOptions {
        ExecOptions {
            parallelism: Parallelism::Serial,
            rules: None,
            metrics: None,
            batch_rows: DEFAULT_BATCH_ROWS,
            mem_budget: None,
            snapshot_epoch: None,
            plan_cache: true,
            result_cache: true,
        }
    }

    /// Default options with the given parallelism. Accepts the typed
    /// [`Parallelism`] enum or, as a thin compatibility shim, the old
    /// `usize` worker count (`ExecOptions::with_parallelism(4)`).
    pub fn with_parallelism(p: impl Into<Parallelism>) -> ExecOptions {
        ExecOptions {
            parallelism: p.into(),
            ..ExecOptions::serial()
        }
    }

    /// These options with the given parallelism (consuming builder, the
    /// same style as [`ExecOptions::with_metrics`]).
    pub fn parallel(mut self, p: impl Into<Parallelism>) -> ExecOptions {
        self.parallelism = p.into();
        self
    }

    /// Default options with optimization disabled (baseline measurements).
    pub fn unoptimized() -> ExecOptions {
        ExecOptions {
            rules: Some(vec![]),
            ..ExecOptions::serial()
        }
    }

    /// These options with operator counters recorded into `metrics`.
    pub fn with_metrics(mut self, metrics: Metrics) -> ExecOptions {
        self.metrics = Some(metrics);
        self
    }

    /// These options with scan batches capped at `n` rows (0 = per row group).
    pub fn with_batch_rows(mut self, n: usize) -> ExecOptions {
        self.batch_rows = n;
        self
    }

    /// These options with a memory budget (bytes) for operator state. Hash
    /// aggregates and hash joins spill to disk instead of exceeding it.
    pub fn with_mem_budget(mut self, bytes: usize) -> ExecOptions {
        self.mem_budget = Some(bytes);
        self
    }

    /// These options pinned to a snapshot epoch: scans read only rows
    /// committed at or before `epoch`.
    pub fn at_snapshot(mut self, epoch: u64) -> ExecOptions {
        self.snapshot_epoch = Some(epoch);
        self
    }

    /// These options with the plan cache disabled: every `Database::sql`
    /// call re-parses and re-optimizes.
    pub fn without_plan_cache(mut self) -> ExecOptions {
        self.plan_cache = false;
        self
    }

    /// These options with the result cache disabled: every read executes.
    pub fn without_result_cache(mut self) -> ExecOptions {
        self.result_cache = false;
        self
    }

    /// These options with both serving-path caches disabled.
    pub fn without_caches(self) -> ExecOptions {
        self.without_plan_cache().without_result_cache()
    }

    fn optimizer(&self) -> Optimizer {
        match &self.rules {
            None => Optimizer::new(),
            Some(rules) => Optimizer::with_rules(rules.clone()),
        }
    }
}

/// Run just the optimizer phase of [`execute`], returning the optimized
/// logical plan. The plan cache calls this once per statement fingerprint and
/// replays the result through [`execute_optimized`] on every hit.
pub fn optimize_plan(
    plan: LogicalPlan,
    catalog: &dyn Catalog,
    opts: &ExecOptions,
) -> Result<LogicalPlan> {
    opts.optimizer().optimize(plan, catalog)
}

/// Optimize and execute a plan, returning a single concatenated batch.
///
/// Dictionary-encoded columns flow through the operator pipeline in code
/// space and are late-materialized here, at the boundary where results
/// leave the engine.
pub fn execute(
    plan: LogicalPlan,
    catalog: &dyn Catalog,
    opts: &ExecOptions,
) -> Result<RecordBatch> {
    let optimized = opts.optimizer().optimize(plan, catalog)?;
    let mut op = create_physical_plan(&optimized, catalog, opts)?;
    let _kernel = crate::kernel_metrics::install(opts.metrics.clone());
    Ok(drain_one(op.as_mut())?.decoded())
}

/// Execute an *already optimized* plan, returning a single concatenated
/// batch. Physical planning still happens here, against the caller's options
/// — this is the logical/physical split the plan cache leans on: the cached
/// logical artifact is shared while every execution picks its own physical
/// strategy (parallelism, batch size, spill budget).
pub fn execute_optimized(
    optimized: &LogicalPlan,
    catalog: &dyn Catalog,
    opts: &ExecOptions,
) -> Result<RecordBatch> {
    let mut op = create_physical_plan(optimized, catalog, opts)?;
    let _kernel = crate::kernel_metrics::install(opts.metrics.clone());
    Ok(drain_one(op.as_mut())?.decoded())
}

/// Optimize and execute a plan, returning the raw batch stream (decoded,
/// like [`execute`]).
pub fn execute_plan(
    plan: LogicalPlan,
    catalog: &dyn Catalog,
    opts: &ExecOptions,
) -> Result<Vec<RecordBatch>> {
    let optimized = opts.optimizer().optimize(plan, catalog)?;
    let mut op = create_physical_plan(&optimized, catalog, opts)?;
    let _kernel = crate::kernel_metrics::install(opts.metrics.clone());
    Ok(drain(op.as_mut())?.iter().map(|b| b.decoded()).collect())
}

/// Render an EXPLAIN report: the plan before and after optimization, with
/// estimated cardinalities.
pub fn explain(plan: &LogicalPlan, catalog: &dyn Catalog, opts: &ExecOptions) -> Result<String> {
    let optimized = opts.optimizer().optimize(plan.clone(), catalog)?;
    Ok(format!(
        "== Logical plan ==\n{}== Optimized plan (est. {:.0} rows) ==\n{}",
        plan.display_indent(),
        estimate_rows(&optimized, catalog),
        optimized.display_indent()
    ))
}

/// EXPLAIN ANALYZE: optimize the plan, *run* it instrumented, and render the
/// physical plan annotated with measured per-operator rows-in/rows-out,
/// batch counts, and elapsed time. Returns the report and the query result.
pub fn explain_analyze(
    plan: &LogicalPlan,
    catalog: &dyn Catalog,
    opts: &ExecOptions,
) -> Result<(String, RecordBatch)> {
    let optimized = opts.optimizer().optimize(plan.clone(), catalog)?;
    let est = estimate_rows(&optimized, catalog);
    let (mut op, profile) = create_instrumented_plan(&optimized, catalog, opts)?;
    let _kernel = crate::kernel_metrics::install(opts.metrics.clone());
    // Snapshot spill counters so the report shows this query's delta even
    // against a long-lived shared registry.
    let spill_keys = [
        "storage.spill.partitions",
        "storage.spill.bytes_written",
        "storage.spill.bytes_read",
    ];
    let spill_before: Vec<u64> = spill_keys
        .iter()
        .map(|k| opts.metrics.as_ref().map_or(0, |m| m.value(k)))
        .collect();
    let start = std::time::Instant::now();
    let result = drain_one(op.as_mut())?.decoded();
    let total = start.elapsed();
    drop(op); // release operator state before rendering the final counters
    let mut report = format!(
        "== Analyzed plan (est. {est:.0} rows, actual {} rows, total {}) ==\n{}",
        result.num_rows(),
        crate::profile::format_ns(total.as_nanos() as u64),
        profile.render(),
    );
    if let Some(m) = &opts.metrics {
        let delta: Vec<u64> = spill_keys
            .iter()
            .zip(&spill_before)
            .map(|(k, &b)| m.value(k).saturating_sub(b))
            .collect();
        if delta.iter().any(|&d| d > 0) {
            report.push_str(&format!(
                "spill: partitions={} bytes_written={} bytes_read={}\n",
                delta[0], delta[1], delta[2]
            ));
        }
    }
    Ok((report, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{avg, col, count_star, lit, sum};
    use crate::logical::{asc, desc};
    use crate::optimizer::test_fixtures::catalog;
    use backbone_storage::Value;

    #[test]
    fn end_to_end_filter_project() {
        let cat = catalog();
        let plan = LogicalPlan::scan("small", &cat)
            .unwrap()
            .filter(col("small_v").gt_eq(lit(8i64)))
            .project(vec![col("small_v").mul(lit(2i64)).alias("d")]);
        let out = execute(plan, &cat, &ExecOptions::default()).unwrap();
        let mut vals: Vec<i64> = out.column(0).i64_data().unwrap().to_vec();
        vals.sort_unstable();
        assert_eq!(vals, vec![16, 18]);
    }

    #[test]
    fn optimized_matches_unoptimized() {
        let cat = catalog();
        let make_plan = || {
            LogicalPlan::scan("big", &cat)
                .unwrap()
                .join_on(
                    LogicalPlan::scan("small", &cat).unwrap(),
                    vec![("big_k", "small_k")],
                )
                .filter(
                    col("big_v")
                        .lt(lit(100i64))
                        .and(col("small_v").lt(lit(9i64))),
                )
                .aggregate(
                    vec![col("small_tag")],
                    vec![count_star().alias("n"), sum(col("big_v")).alias("s")],
                )
                .sort(vec![asc(col("small_tag"))])
        };
        let a = execute(make_plan(), &cat, &ExecOptions::default()).unwrap();
        let b = execute(make_plan(), &cat, &ExecOptions::unoptimized()).unwrap();
        assert_eq!(a.to_rows(), b.to_rows());
        assert!(a.num_rows() > 0);
    }

    #[test]
    fn parallel_matches_serial() {
        let cat = catalog();
        let make_plan = || {
            LogicalPlan::scan("big", &cat)
                .unwrap()
                .filter(col("big_v").modulo(lit(3i64)).eq(lit(0i64)))
                .aggregate(
                    vec![],
                    vec![count_star().alias("n"), avg(col("big_v")).alias("m")],
                )
        };
        let a = execute(make_plan(), &cat, &ExecOptions::default()).unwrap();
        let b = execute(make_plan(), &cat, &ExecOptions::with_parallelism(4)).unwrap();
        assert_eq!(a.row(0)[0], b.row(0)[0]);
        let (ma, mb) = (
            a.row(0)[1].as_float().unwrap(),
            b.row(0)[1].as_float().unwrap(),
        );
        assert!((ma - mb).abs() < 1e-9);
    }

    #[test]
    fn parallelism_usize_shim_maps_to_enum() {
        assert_eq!(Parallelism::from(0), Parallelism::Serial);
        assert_eq!(Parallelism::from(1), Parallelism::Serial);
        assert_eq!(Parallelism::from(4), Parallelism::Fixed(4));
        assert_eq!(
            ExecOptions::with_parallelism(4).parallelism,
            Parallelism::Fixed(4)
        );
        assert_eq!(
            ExecOptions::with_parallelism(Parallelism::Auto).parallelism,
            Parallelism::Auto
        );
    }

    #[test]
    fn parallelism_worker_threads() {
        assert_eq!(Parallelism::Serial.worker_threads(), 0);
        assert!(Parallelism::Serial.is_serial());
        // Fixed always spawns workers, even Fixed(1) / Fixed(0).
        assert_eq!(Parallelism::Fixed(1).worker_threads(), 1);
        assert_eq!(Parallelism::Fixed(0).worker_threads(), 1);
        assert!(!Parallelism::Fixed(1).is_serial());
        // Auto never exceeds the cap and degrades to serial on one core.
        let auto = Parallelism::Auto.worker_threads();
        assert!(auto <= MAX_AUTO_WORKERS);
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores <= 1 {
            assert_eq!(auto, 0, "Auto must degrade to serial on 1 vCPU");
        } else {
            assert!(auto >= 2);
        }
    }

    #[test]
    fn parallel_builder_is_consuming() {
        let opts = ExecOptions::serial()
            .parallel(Parallelism::Fixed(2))
            .with_batch_rows(512);
        assert_eq!(opts.parallelism, Parallelism::Fixed(2));
        assert_eq!(opts.batch_rows, 512);
    }

    #[test]
    fn fixed_one_worker_matches_serial() {
        let cat = catalog();
        let make_plan = || {
            LogicalPlan::scan("big", &cat)
                .unwrap()
                .filter(col("big_v").modulo(lit(5i64)).eq(lit(1i64)))
                .aggregate(
                    vec![col("big_k")],
                    vec![count_star().alias("n"), sum(col("big_v")).alias("s")],
                )
                .sort(vec![asc(col("big_k"))])
        };
        let a = execute(make_plan(), &cat, &ExecOptions::serial()).unwrap();
        let b = execute(
            make_plan(),
            &cat,
            &ExecOptions::with_parallelism(Parallelism::Fixed(1)),
        )
        .unwrap();
        assert_eq!(a.to_rows(), b.to_rows());
    }

    #[test]
    fn explain_analyze_annotates_parallel_operators() {
        let cat = catalog();
        let plan = LogicalPlan::scan("big", &cat)
            .unwrap()
            .aggregate(
                vec![col("big_k")],
                vec![count_star().alias("n"), sum(col("big_v")).alias("s")],
            )
            .sort(vec![asc(col("big_k"))])
            .limit(5);
        let opts = ExecOptions::with_parallelism(Parallelism::Fixed(2));
        let (report, result) = explain_analyze(&plan, &cat, &opts).unwrap();
        assert_eq!(result.num_rows(), 5);
        assert!(report.contains("workers=2"), "{report}");
        assert!(report.contains("morsels="), "{report}");
        assert!(report.contains("merge="), "{report}");
    }

    #[test]
    fn topk_pipeline() {
        let cat = catalog();
        let plan = LogicalPlan::scan("big", &cat)
            .unwrap()
            .sort(vec![desc(col("big_v"))])
            .limit(3);
        let out = execute(plan, &cat, &ExecOptions::default()).unwrap();
        assert_eq!(
            out.column_by_name("big_v").unwrap().i64_data().unwrap(),
            &[999, 998, 997]
        );
    }

    #[test]
    fn explain_contains_both_plans() {
        let cat = catalog();
        let plan = LogicalPlan::scan("big", &cat)
            .unwrap()
            .filter(col("big_v").lt(lit(5i64)))
            .project(vec![col("big_k")]);
        let text = explain(&plan, &cat, &ExecOptions::default()).unwrap();
        assert!(text.contains("== Logical plan =="));
        assert!(text.contains("== Optimized plan"));
        assert!(text.contains("filters="));
    }

    #[test]
    fn explain_analyze_reports_actual_rows_and_time() {
        let cat = catalog();
        let plan = LogicalPlan::scan("big", &cat)
            .unwrap()
            .filter(col("big_v").lt(lit(100i64)))
            .aggregate(vec![], vec![count_star().alias("n")]);
        let (report, result) = explain_analyze(&plan, &cat, &ExecOptions::default()).unwrap();
        assert_eq!(result.row(0)[0], Value::Int(100));
        assert!(report.contains("== Analyzed plan"), "{report}");
        assert!(report.contains("actual 1 rows"), "{report}");
        // Filter is pushed into the scan by the optimizer; the aggregate must
        // report the scan's 100 surviving rows as its input.
        assert!(report.contains("HashAggregate"), "{report}");
        assert!(report.contains("rows_in=100"), "{report}");
        assert!(report.contains("rows_out=100"), "{report}");
        assert!(report.contains("time="), "{report}");
    }

    #[test]
    fn instrumented_execution_matches_plain_and_fills_registry() {
        let cat = catalog();
        let metrics = Metrics::new();
        let make_plan = || {
            LogicalPlan::scan("big", &cat)
                .unwrap()
                .join_on(
                    LogicalPlan::scan("small", &cat).unwrap(),
                    vec![("big_k", "small_k")],
                )
                .sort(vec![asc(col("big_v"))])
                .limit(7)
        };
        let plain = execute(make_plan(), &cat, &ExecOptions::default()).unwrap();
        let opts = ExecOptions::default().with_metrics(metrics.clone());
        let (_, analyzed) = explain_analyze(&make_plan(), &cat, &opts).unwrap();
        assert_eq!(plain.to_rows(), analyzed.to_rows());
        // Engine-truth totals landed in the shared registry.
        assert_eq!(metrics.value("op.topk.rows_out"), 7);
        assert!(metrics.value("op.scan.rows_out") > 0);
        assert!(metrics.value("op.hash_join.elapsed_ns") > 0);
        assert_eq!(
            metrics.value("op.topk.rows_in"),
            metrics.value("op.hash_join.rows_out"),
        );
    }

    use backbone_storage::Metrics;

    #[test]
    fn three_table_join_correctness() {
        let cat = catalog();
        // small(10) -> mid(100) -> big(1000), all on k in 0..50.
        // Count of matches computed independently below.
        let plan = LogicalPlan::scan("big", &cat)
            .unwrap()
            .join_on(
                LogicalPlan::scan("mid", &cat).unwrap(),
                vec![("big_k", "mid_k")],
            )
            .join_on(
                LogicalPlan::scan("small", &cat).unwrap(),
                vec![("mid_k", "small_k")],
            )
            .aggregate(vec![], vec![count_star().alias("n")]);
        let out = execute(plan, &cat, &ExecOptions::default()).unwrap();
        // Expected: for k in 0..10 (small has k=0..9), big has 20 rows per k
        // (1000 rows, k = i%50), mid has 2 rows per k (100 rows, k = i%50).
        // Each k contributes 20 * 2 * 1 = 40; total = 10 * 40 = 400.
        assert_eq!(out.row(0)[0], Value::Int(400));
    }
}
