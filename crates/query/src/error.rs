//! Error types for the query layer.

use backbone_storage::StorageError;
use std::fmt;

/// Errors raised while planning or executing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// An error bubbling up from the storage layer.
    Storage(StorageError),
    /// A table name that the catalog cannot resolve.
    TableNotFound(String),
    /// An expression that cannot be typed or evaluated.
    InvalidExpression(String),
    /// A plan shape the planner cannot lower.
    InvalidPlan(String),
    /// Division by zero or a similar runtime arithmetic fault.
    Arithmetic(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Storage(e) => write!(f, "storage error: {e}"),
            QueryError::TableNotFound(t) => write!(f, "table not found: {t}"),
            QueryError::InvalidExpression(msg) => write!(f, "invalid expression: {msg}"),
            QueryError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            QueryError::Arithmetic(msg) => write!(f, "arithmetic error: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for QueryError {
    fn from(e: StorageError) -> Self {
        QueryError::Storage(e)
    }
}

/// Convenience alias used across the query crate.
pub type Result<T> = std::result::Result<T, QueryError>;
