//! Constant folding: evaluate constant sub-expressions at plan time.

use crate::error::Result;
use crate::eval::eval;
use crate::expr::{BinOp, Expr, UnOp};
use crate::logical::LogicalPlan;
use backbone_storage::{RecordBatch, Schema, Value};

/// Fold constants in every expression of the plan.
pub fn fold_plan(plan: LogicalPlan) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Scan {
            table,
            table_schema,
            projection,
            filters,
        } => LogicalPlan::Scan {
            table,
            table_schema,
            projection,
            filters: filters.into_iter().map(fold_expr).collect(),
        },
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(fold_plan(*input)?),
            predicate: fold_expr(predicate),
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(fold_plan(*input)?),
            exprs: exprs.into_iter().map(fold_expr).collect(),
        },
        LogicalPlan::Join {
            left,
            right,
            on,
            join_type,
        } => LogicalPlan::Join {
            left: Box::new(fold_plan(*left)?),
            right: Box::new(fold_plan(*right)?),
            on,
            join_type,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => LogicalPlan::Aggregate {
            input: Box::new(fold_plan(*input)?),
            group_by: group_by.into_iter().map(fold_expr).collect(),
            aggs: aggs
                .into_iter()
                .map(|mut a| {
                    a.input = fold_expr(a.input);
                    a
                })
                .collect(),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(fold_plan(*input)?),
            keys: keys
                .into_iter()
                .map(|mut k| {
                    k.expr = fold_expr(k.expr);
                    k
                })
                .collect(),
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(fold_plan(*input)?),
            n,
        },
    })
}

/// Fold constant sub-expressions bottom-up.
pub fn fold_expr(expr: Expr) -> Expr {
    match expr {
        Expr::Binary { left, op, right } => {
            let left = fold_expr(*left);
            let right = fold_expr(*right);
            // Boolean identities.
            match (&left, op, &right) {
                (Expr::Literal(Value::Bool(true)), BinOp::And, _) => return right,
                (_, BinOp::And, Expr::Literal(Value::Bool(true))) => return left,
                (Expr::Literal(Value::Bool(false)), BinOp::Or, _) => return right,
                (_, BinOp::Or, Expr::Literal(Value::Bool(false))) => return left,
                (Expr::Literal(Value::Bool(false)), BinOp::And, _)
                | (_, BinOp::And, Expr::Literal(Value::Bool(false))) => {
                    return Expr::Literal(Value::Bool(false))
                }
                (Expr::Literal(Value::Bool(true)), BinOp::Or, _)
                | (_, BinOp::Or, Expr::Literal(Value::Bool(true))) => {
                    return Expr::Literal(Value::Bool(true))
                }
                _ => {}
            }
            let folded = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
            try_eval_const(&folded).unwrap_or(folded)
        }
        Expr::Unary { op, expr } => {
            let inner = fold_expr(*expr);
            let folded = Expr::Unary {
                op,
                expr: Box::new(inner),
            };
            try_eval_const(&folded).unwrap_or(folded)
        }
        Expr::Alias(inner, name) => Expr::Alias(Box::new(fold_expr(*inner)), name),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let folded = Expr::Like {
                expr: Box::new(fold_expr(*expr)),
                pattern,
                negated,
            };
            try_eval_const(&folded).unwrap_or(folded)
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let folded = Expr::InList {
                expr: Box::new(fold_expr(*expr)),
                list: list.into_iter().map(fold_expr).collect(),
                negated,
            };
            try_eval_const(&folded).unwrap_or(folded)
        }
        leaf => leaf,
    }
}

/// If the expression references no columns, evaluate it against a one-row
/// empty-schema batch and replace it with the literal result. Errors (e.g.
/// division by zero) leave the expression unfolded so they surface at
/// execution, matching unoptimized behaviour.
fn try_eval_const(expr: &Expr) -> Option<Expr> {
    if !expr.referenced_columns().is_empty() {
        return None;
    }
    if matches!(expr, Expr::Literal(_)) {
        return None;
    }
    // Evaluate against a one-row dummy batch (a zero-column batch would
    // report zero rows and broadcast literals to nothing).
    let schema = Schema::new(vec![backbone_storage::Field::new(
        "__fold_dummy",
        backbone_storage::DataType::Int64,
    )]);
    let batch = RecordBatch::from_rows(schema, &[vec![Value::Int(0)]]).ok()?;
    let col = eval(expr, &batch).ok()?;
    if col.len() != 1 {
        return None;
    }
    // NOT NULL stays NULL-typed; represent as literal null.
    let v = col.value(0);
    // Avoid folding unary NOT of NULL into Int-typed null surprises.
    if matches!((expr, &v), (Expr::Unary { op: UnOp::Not, .. }, Value::Null)) {
        return None;
    }
    Some(Expr::Literal(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};

    #[test]
    fn folds_arithmetic() {
        let e = fold_expr(lit(2i64).add(lit(3i64)).mul(lit(4i64)));
        assert_eq!(e, lit(20i64));
    }

    #[test]
    fn folds_inside_column_expression() {
        let e = fold_expr(col("x").add(lit(2i64).mul(lit(5i64))));
        assert_eq!(e, col("x").add(lit(10i64)));
    }

    #[test]
    fn boolean_identities() {
        assert_eq!(fold_expr(col("p").and(lit(true))), col("p"));
        assert_eq!(fold_expr(lit(true).and(col("p"))), col("p"));
        assert_eq!(fold_expr(col("p").or(lit(false))), col("p"));
        assert_eq!(fold_expr(col("p").and(lit(false))), lit(false));
        assert_eq!(fold_expr(col("p").or(lit(true))), lit(true));
    }

    #[test]
    fn folds_comparisons() {
        assert_eq!(fold_expr(lit(3i64).lt(lit(5i64))), lit(true));
        assert_eq!(fold_expr(lit("a").eq(lit("b"))), lit(false));
    }

    #[test]
    fn division_by_zero_not_folded() {
        // Must not turn a runtime error into a plan-time panic or wrong value.
        let e = lit(1i64).div(lit(0i64));
        assert_eq!(fold_expr(e.clone()), e);
    }

    #[test]
    fn column_refs_untouched() {
        let e = col("x").add(col("y"));
        assert_eq!(fold_expr(e.clone()), e);
    }

    #[test]
    fn folds_through_plan() {
        use crate::optimizer::test_fixtures::catalog;
        let cat = catalog();
        let plan = LogicalPlan::scan("small", &cat)
            .unwrap()
            .filter(col("small_v").gt(lit(1i64).add(lit(2i64))));
        let folded = fold_plan(plan).unwrap();
        assert!(folded.display_indent().contains("(small_v > 3)"));
    }
}
