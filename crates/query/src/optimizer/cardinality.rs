//! Textbook cardinality estimation for the cost-based rules.
//!
//! Deliberately simple (System-R-era heuristics): the goal is correct
//! *relative* ordering of plan alternatives at workload scale, not accurate
//! absolute counts.

use crate::catalog::Catalog;
use crate::expr::{BinOp, Expr, UnOp};
use crate::logical::LogicalPlan;
use backbone_storage::Value;

/// Default selectivity of an equality predicate against a literal.
pub const SEL_EQ: f64 = 0.05;
/// Default selectivity of a range predicate.
pub const SEL_RANGE: f64 = 0.33;
/// Default selectivity of anything else.
pub const SEL_DEFAULT: f64 = 0.25;

/// Estimate the output rows of a plan.
pub fn estimate_rows(plan: &LogicalPlan, catalog: &dyn Catalog) -> f64 {
    match plan {
        LogicalPlan::Scan { table, filters, .. } => {
            let base = catalog.row_count(table).unwrap_or(1000) as f64;
            filters
                .iter()
                .fold(base, |acc, f| acc * selectivity_on(f, table, catalog))
                .max(1.0)
        }
        LogicalPlan::Filter { input, predicate } => {
            // Use statistics when every referenced column lives in one scan
            // below this filter.
            let sel = match owning_scan_table(input, predicate) {
                Some(table) => selectivity_on(predicate, &table, catalog),
                None => selectivity(predicate),
            };
            (estimate_rows(input, catalog) * sel).max(1.0)
        }
        LogicalPlan::Project { input, .. } => estimate_rows(input, catalog),
        LogicalPlan::Join {
            left, right, on, ..
        } => {
            let l = estimate_rows(left, catalog);
            let r = estimate_rows(right, catalog);
            // With statistics: the textbook |L|·|R| / max(ndv_l, ndv_r)
            // estimate on the first equi-key; without them, the PK-FK
            // min/max blend.
            if let Some((lk, rk)) = on.first() {
                let ndv_l = base_column_ndv(left, lk, catalog);
                let ndv_r = base_column_ndv(right, rk, catalog);
                if let Some(ndv) = ndv_l.into_iter().chain(ndv_r).max() {
                    if ndv > 0 {
                        return (l * r / ndv as f64).max(1.0);
                    }
                }
            }
            l.min(r).max(l.max(r) * 0.5).max(1.0)
        }
        LogicalPlan::Aggregate {
            input, group_by, ..
        } => {
            let child = estimate_rows(input, catalog);
            if group_by.is_empty() {
                1.0
            } else {
                // Groups grow sublinearly with input.
                child.sqrt().max(1.0)
            }
        }
        LogicalPlan::Sort { input, .. } => estimate_rows(input, catalog),
        LogicalPlan::Limit { input, n } => estimate_rows(input, catalog).min(*n as f64),
    }
}

/// The single scan table under `plan` whose schema contains every column
/// the predicate references (None when columns span tables or are computed).
fn owning_scan_table(plan: &LogicalPlan, predicate: &Expr) -> Option<String> {
    let cols = predicate.referenced_columns();
    if cols.is_empty() {
        return None;
    }
    fn scans<'a>(plan: &'a LogicalPlan, out: &mut Vec<&'a LogicalPlan>) {
        match plan {
            LogicalPlan::Scan { .. } => out.push(plan),
            other => {
                for c in other.children() {
                    scans(c, out);
                }
            }
        }
    }
    let mut scan_nodes = Vec::new();
    scans(plan, &mut scan_nodes);
    for node in scan_nodes {
        if let LogicalPlan::Scan {
            table,
            table_schema,
            ..
        } = node
        {
            if cols.iter().all(|c| table_schema.index_of(c).is_ok()) {
                return Some(table.clone());
            }
        }
    }
    None
}

/// NDV of `column` in the base table scanned somewhere under `plan` (the
/// scan whose schema contains the column), if statistics exist.
fn base_column_ndv(plan: &LogicalPlan, column: &str, catalog: &dyn Catalog) -> Option<u64> {
    match plan {
        LogicalPlan::Scan {
            table,
            table_schema,
            ..
        } => {
            if table_schema.index_of(column).is_ok() {
                catalog.column_stats(table, column).map(|s| s.ndv)
            } else {
                None
            }
        }
        other => other
            .children()
            .into_iter()
            .find_map(|c| base_column_ndv(c, column, catalog)),
    }
}

/// Statistics-aware selectivity for a predicate over one table's columns.
/// Falls back to [`selectivity`] heuristics when statistics don't apply.
pub fn selectivity_on(expr: &Expr, table: &str, catalog: &dyn Catalog) -> f64 {
    if let Expr::Binary { left, op, right } = expr {
        match op {
            BinOp::And => {
                return selectivity_on(left, table, catalog) * selectivity_on(right, table, catalog)
            }
            BinOp::Or => {
                let a = selectivity_on(left, table, catalog);
                let b = selectivity_on(right, table, catalog);
                return (a + b - a * b).min(1.0);
            }
            _ => {}
        }
        // Normalize to (column op literal).
        let norm = match (left.as_ref(), right.as_ref()) {
            (Expr::Column(c), Expr::Literal(v)) => Some((c, *op, v, false)),
            (Expr::Literal(v), Expr::Column(c)) => Some((c, *op, v, true)),
            _ => None,
        };
        if let Some((c, op, v, flipped)) = norm {
            if !matches!(v, Value::Null) {
                if let Some(stats) = catalog.column_stats(table, c) {
                    let sel = match op {
                        BinOp::Eq => Some(stats.eq_selectivity()),
                        BinOp::NotEq => Some(1.0 - stats.eq_selectivity()),
                        BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                            // `lit < col` flips the direction.
                            let lt = matches!(op, BinOp::Lt | BinOp::LtEq) != flipped;
                            let inclusive = matches!(op, BinOp::LtEq | BinOp::GtEq);
                            stats.range_selectivity(lt, inclusive, v)
                        }
                        _ => None,
                    };
                    if let Some(sel) = sel {
                        // Scale down by the non-null fraction: NULL rows never
                        // satisfy a comparison.
                        let non_null = if stats.row_count == 0 {
                            1.0
                        } else {
                            1.0 - stats.null_count as f64 / stats.row_count as f64
                        };
                        return (sel * non_null).clamp(0.0, 1.0);
                    }
                }
            }
        }
    }
    selectivity(expr)
}

/// Estimated fraction of rows a predicate keeps (statistics-free
/// heuristics; prefer [`selectivity_on`] when a table context exists).
pub fn selectivity(expr: &Expr) -> f64 {
    match expr {
        Expr::Binary { left, op, right } => match op {
            BinOp::And => selectivity(left) * selectivity(right),
            // Inclusion-exclusion with independence assumption.
            BinOp::Or => {
                let a = selectivity(left);
                let b = selectivity(right);
                (a + b - a * b).min(1.0)
            }
            BinOp::Eq => SEL_EQ,
            BinOp::NotEq => 1.0 - SEL_EQ,
            BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => SEL_RANGE,
            _ => SEL_DEFAULT,
        },
        Expr::Unary { op, expr } => match op {
            UnOp::Not => 1.0 - selectivity(expr),
            UnOp::IsNull => SEL_EQ,
            UnOp::IsNotNull => 1.0 - SEL_EQ,
            UnOp::Neg => SEL_DEFAULT,
        },
        Expr::Like { negated, .. } => {
            if *negated {
                1.0 - SEL_RANGE
            } else {
                SEL_RANGE
            }
        }
        Expr::InList { list, negated, .. } => {
            // Each list item behaves like an equality disjunct.
            let hit = (SEL_EQ * list.len() as f64).min(1.0);
            if *negated {
                1.0 - hit
            } else {
                hit
            }
        }
        Expr::Literal(v) => match v.as_bool() {
            Some(true) => 1.0,
            Some(false) => 0.0,
            None => SEL_DEFAULT,
        },
        _ => SEL_DEFAULT,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::optimizer::test_fixtures::catalog;

    #[test]
    fn scan_uses_catalog_row_counts() {
        let cat = catalog();
        let big = LogicalPlan::scan("big", &cat).unwrap();
        let small = LogicalPlan::scan("small", &cat).unwrap();
        assert!(estimate_rows(&big, &cat) > estimate_rows(&small, &cat));
        assert_eq!(estimate_rows(&big, &cat), 1000.0);
    }

    #[test]
    fn filters_shrink_estimates() {
        let cat = catalog();
        let plan = LogicalPlan::scan("big", &cat).unwrap();
        let filtered = plan.clone().filter(col("big_k").eq(lit(1i64)));
        assert!(estimate_rows(&filtered, &cat) < estimate_rows(&plan, &cat));
    }

    #[test]
    fn and_is_more_selective_than_or() {
        let a = col("x").eq(lit(1i64));
        let b = col("y").eq(lit(2i64));
        assert!(selectivity(&a.clone().and(b.clone())) < selectivity(&a.or(b)));
    }

    #[test]
    fn not_inverts() {
        let p = col("x").eq(lit(1i64));
        let s = selectivity(&p);
        assert!((selectivity(&p.not()) - (1.0 - s)).abs() < 1e-12);
    }

    #[test]
    fn limit_caps_estimate() {
        let cat = catalog();
        let plan = LogicalPlan::scan("big", &cat).unwrap().limit(7);
        assert_eq!(estimate_rows(&plan, &cat), 7.0);
    }

    #[test]
    fn stats_sharpen_equality_estimates() {
        let cat = catalog();
        // big_k has 50 distinct values over 1000 rows: 1/ndv = 2% beats the
        // 5% magic constant.
        let filtered = LogicalPlan::scan("big", &cat)
            .unwrap()
            .filter(col("big_k").eq(lit(7i64)));
        let est = estimate_rows(&filtered, &cat);
        assert!((est - 20.0).abs() < 1.0, "expected ~20 rows, got {est}");
    }

    #[test]
    fn stats_range_interpolation() {
        let cat = catalog();
        // big_v is uniform on [0, 999]: v < 100 ~ 10%.
        let filtered = LogicalPlan::scan("big", &cat)
            .unwrap()
            .filter(col("big_v").lt(lit(100i64)));
        let est = estimate_rows(&filtered, &cat);
        assert!(
            (90.0..=110.0).contains(&est),
            "expected ~100 rows, got {est}"
        );
    }

    #[test]
    fn stats_join_ndv_estimate() {
        let cat = catalog();
        // big(1000) ⋈ small(10) on k with ndv(big_k)=50, ndv(small_k)=10:
        // |L|·|R|/max(ndv) = 1000*10/50 = 200 — the true fan-out.
        let plan = LogicalPlan::scan("big", &cat).unwrap().join_on(
            LogicalPlan::scan("small", &cat).unwrap(),
            vec![("big_k", "small_k")],
        );
        let est = estimate_rows(&plan, &cat);
        assert!((est - 200.0).abs() < 1.0, "expected 200, got {est}");
    }

    #[test]
    fn estimates_never_zero() {
        let cat = catalog();
        let plan = LogicalPlan::scan("small", &cat).unwrap().filter(lit(false));
        assert!(estimate_rows(&plan, &cat) >= 1.0);
    }
}
