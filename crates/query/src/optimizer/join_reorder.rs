//! Greedy join reordering over inner-join chains.
//!
//! Flattens nested inner joins into a relation set + equi-conditions, then
//! greedily builds a left-deep tree starting from the smallest estimated
//! relation, always choosing the next relation minimizing the estimated
//! intermediate size. Hash joins build on the left input, so the running
//! (usually smaller) side stays on the build side.

use super::cardinality::estimate_rows;
use crate::catalog::Catalog;
use crate::error::Result;
use crate::expr::col;
use crate::logical::{JoinType, LogicalPlan};
use std::collections::BTreeSet;

/// Reorder inner-join chains in `plan` by estimated cardinality.
pub fn reorder(plan: LogicalPlan, catalog: &dyn Catalog) -> Result<LogicalPlan> {
    match plan {
        LogicalPlan::Join {
            left,
            right,
            on,
            join_type: JoinType::Inner,
        } => {
            let joined = LogicalPlan::Join {
                left,
                right,
                on,
                join_type: JoinType::Inner,
            };
            // Name-based reordering is ambiguous when the combined schema
            // has duplicate column names (self-joins): leave such subtrees
            // untouched rather than risk misplacing conditions.
            if let Ok(schema) = joined.schema() {
                let mut seen = BTreeSet::new();
                if schema.fields().iter().any(|f| !seen.insert(f.name.clone())) {
                    return Ok(joined);
                }
            }
            // Flatten this maximal inner-join subtree.
            let mut relations = Vec::new();
            let mut conditions = Vec::new();
            flatten(joined, catalog, &mut relations, &mut conditions)?;
            build_greedy(relations, conditions, catalog)
        }
        // Recurse into non-join nodes.
        LogicalPlan::Filter { input, predicate } => Ok(LogicalPlan::Filter {
            input: Box::new(reorder(*input, catalog)?),
            predicate,
        }),
        LogicalPlan::Project { input, exprs } => Ok(LogicalPlan::Project {
            input: Box::new(reorder(*input, catalog)?),
            exprs,
        }),
        LogicalPlan::Join {
            left,
            right,
            on,
            join_type,
        } => Ok(LogicalPlan::Join {
            left: Box::new(reorder(*left, catalog)?),
            right: Box::new(reorder(*right, catalog)?),
            on,
            join_type,
        }),
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => Ok(LogicalPlan::Aggregate {
            input: Box::new(reorder(*input, catalog)?),
            group_by,
            aggs,
        }),
        LogicalPlan::Sort { input, keys } => Ok(LogicalPlan::Sort {
            input: Box::new(reorder(*input, catalog)?),
            keys,
        }),
        LogicalPlan::Limit { input, n } => Ok(LogicalPlan::Limit {
            input: Box::new(reorder(*input, catalog)?),
            n,
        }),
        leaf => Ok(leaf),
    }
}

/// Collect the leaves and equi-conditions of a nested inner-join tree.
fn flatten(
    plan: LogicalPlan,
    catalog: &dyn Catalog,
    relations: &mut Vec<LogicalPlan>,
    conditions: &mut Vec<(String, String)>,
) -> Result<()> {
    match plan {
        LogicalPlan::Join {
            left,
            right,
            on,
            join_type: JoinType::Inner,
        } => {
            conditions.extend(on);
            flatten(*left, catalog, relations, conditions)?;
            flatten(*right, catalog, relations, conditions)?;
            Ok(())
        }
        other => {
            // Leaves get optimized independently (they may contain joins
            // below e.g. an aggregate boundary).
            relations.push(reorder(other, catalog)?);
            Ok(())
        }
    }
}

fn build_greedy(
    relations: Vec<LogicalPlan>,
    conditions: Vec<(String, String)>,
    catalog: &dyn Catalog,
) -> Result<LogicalPlan> {
    // The caller rejects duplicate column names before flattening, so
    // name-based placement below is unambiguous.

    // Desired final column order (for the restoring projection).
    let original_order: Vec<String> = relations
        .iter()
        .map(|r| r.schema())
        .collect::<Result<Vec<_>>>()?
        .iter()
        .flat_map(|s| s.fields().iter().map(|f| f.name.clone()))
        .collect();

    let col_sets: Vec<BTreeSet<String>> = relations
        .iter()
        .map(|r| {
            Ok(r.schema()?
                .fields()
                .iter()
                .map(|f| f.name.clone())
                .collect())
        })
        .collect::<Result<_>>()?;
    let sizes: Vec<f64> = relations
        .iter()
        .map(|r| estimate_rows(r, catalog))
        .collect();

    let n = relations.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    // Seed with the smallest relation.
    let seed_pos = remaining
        .iter()
        .enumerate()
        .min_by(|a, b| sizes[*a.1].total_cmp(&sizes[*b.1]))
        .map(|(pos, _)| pos)
        .expect("at least two relations");
    let seed = remaining.remove(seed_pos);

    let mut relations: Vec<Option<LogicalPlan>> = relations.into_iter().map(Some).collect();
    let mut current = relations[seed].take().expect("seed present");
    let mut current_cols = col_sets[seed].clone();
    let mut current_size = sizes[seed];
    let mut unused_conditions = conditions;

    while !remaining.is_empty() {
        // Pick the joinable relation minimizing the estimated output.
        let mut best: Option<(usize, f64, bool)> = None; // (pos, est, connected)
        for (pos, &idx) in remaining.iter().enumerate() {
            let connected = unused_conditions.iter().any(|(a, b)| {
                (current_cols.contains(a) && col_sets[idx].contains(b))
                    || (current_cols.contains(b) && col_sets[idx].contains(a))
            });
            let est = if connected {
                current_size
                    .min(sizes[idx])
                    .max(current_size.max(sizes[idx]) * 0.5)
            } else {
                current_size * sizes[idx] // cross product
            };
            let better = match &best {
                None => true,
                Some((_, best_est, best_conn)) => {
                    // Connected relations always beat cross products.
                    (connected && !best_conn) || (connected == *best_conn && est < *best_est)
                }
            };
            if better {
                best = Some((pos, est, connected));
            }
        }
        let (pos, est, _) = best.expect("non-empty remaining");
        let idx = remaining.remove(pos);
        let next = relations[idx].take().expect("unused relation");

        // Gather every condition linking the current set with `next`.
        let mut on: Vec<(String, String)> = Vec::new();
        unused_conditions.retain(|(a, b)| {
            if current_cols.contains(a) && col_sets[idx].contains(b) {
                on.push((a.clone(), b.clone()));
                false
            } else if current_cols.contains(b) && col_sets[idx].contains(a) {
                on.push((b.clone(), a.clone()));
                false
            } else {
                true
            }
        });
        current = LogicalPlan::Join {
            left: Box::new(current),
            right: Box::new(next),
            on,
            join_type: JoinType::Inner,
        };
        current_cols.extend(col_sets[idx].iter().cloned());
        current_size = est;
    }

    // Conditions whose endpoints ended up in the same side (cycles in the
    // join graph) become residual filters.
    for (a, b) in unused_conditions {
        current = LogicalPlan::Filter {
            input: Box::new(current),
            predicate: col(a).eq(col(b)),
        };
    }

    // Restore the caller-visible column order.
    let new_order: Vec<String> = current
        .schema()?
        .fields()
        .iter()
        .map(|f| f.name.clone())
        .collect();
    if new_order != original_order {
        current = LogicalPlan::Project {
            input: Box::new(current),
            exprs: original_order.into_iter().map(col).collect(),
        };
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::lit;
    use crate::optimizer::test_fixtures::catalog;

    /// Leftmost leaf table name of a join tree.
    fn leftmost(plan: &LogicalPlan) -> Option<&str> {
        match plan {
            LogicalPlan::Scan { table, .. } => Some(table),
            other => other.children().first().and_then(|c| leftmost(c)),
        }
    }

    #[test]
    fn smaller_relation_becomes_build_side() {
        let cat = catalog();
        let plan = LogicalPlan::scan("big", &cat).unwrap().join_on(
            LogicalPlan::scan("small", &cat).unwrap(),
            vec![("big_k", "small_k")],
        );
        let out = reorder(plan, &cat).unwrap();
        assert_eq!(leftmost(&out), Some("small"), "got:\n{out}");
    }

    #[test]
    fn schema_order_is_preserved() {
        let cat = catalog();
        let plan = LogicalPlan::scan("big", &cat).unwrap().join_on(
            LogicalPlan::scan("small", &cat).unwrap(),
            vec![("big_k", "small_k")],
        );
        let before = plan.schema().unwrap();
        let after = reorder(plan, &cat).unwrap().schema().unwrap();
        let names = |s: &backbone_storage::Schema| -> Vec<String> {
            s.fields().iter().map(|f| f.name.clone()).collect()
        };
        assert_eq!(names(&before), names(&after));
    }

    #[test]
    fn three_way_chain_starts_smallest() {
        let cat = catalog();
        let plan = LogicalPlan::scan("big", &cat)
            .unwrap()
            .join_on(
                LogicalPlan::scan("mid", &cat).unwrap(),
                vec![("big_k", "mid_k")],
            )
            .join_on(
                LogicalPlan::scan("small", &cat).unwrap(),
                vec![("mid_k", "small_k")],
            );
        let out = reorder(plan, &cat).unwrap();
        assert_eq!(leftmost(&out), Some("small"), "got:\n{out}");
    }

    #[test]
    fn already_optimal_left_unchanged_semantically() {
        let cat = catalog();
        let plan = LogicalPlan::scan("small", &cat).unwrap().join_on(
            LogicalPlan::scan("big", &cat).unwrap(),
            vec![("small_k", "big_k")],
        );
        let out = reorder(plan.clone(), &cat).unwrap();
        assert_eq!(leftmost(&out), Some("small"));
    }

    #[test]
    fn filtered_big_table_can_win_seed() {
        let cat = catalog();
        // big with an extremely selective pushed filter (estimated 1000 *
        // 0.05^3 ≈ 0.1 -> clamped to >= 1) beats small (10 rows).
        let filtered_big = LogicalPlan::Scan {
            table: "big".into(),
            table_schema: cat.table("big").unwrap().schema().clone(),
            projection: None,
            filters: vec![
                col("big_v").eq(lit(1i64)),
                col("big_k").eq(lit(1i64)),
                col("big_tag").eq(lit("a")),
            ],
        };
        let plan = LogicalPlan::scan("small", &cat)
            .unwrap()
            .join_on(filtered_big, vec![("small_k", "big_k")]);
        let out = reorder(plan, &cat).unwrap();
        assert_eq!(leftmost(&out), Some("big"), "got:\n{out}");
    }

    #[test]
    fn self_join_with_duplicate_names_left_untouched() {
        // Reordering by column name is ambiguous for self-joins; the plan
        // must come back unchanged (and three-way self-joins must not lose
        // conditions — the regression this guards).
        let cat = catalog();
        let scan = || LogicalPlan::scan("small", &cat).unwrap();
        let two = scan().join_on(scan(), vec![("small_k", "small_k")]);
        assert_eq!(reorder(two.clone(), &cat).unwrap(), two);
        let three = two.clone().join_on(scan(), vec![("small_v", "small_v")]);
        assert_eq!(reorder(three.clone(), &cat).unwrap(), three);
    }

    #[test]
    fn non_inner_join_untouched() {
        let cat = catalog();
        let plan = LogicalPlan::scan("big", &cat).unwrap().join(
            LogicalPlan::scan("small", &cat).unwrap(),
            vec![("big_k", "small_k")],
            JoinType::Left,
        );
        let out = reorder(plan.clone(), &cat).unwrap();
        assert_eq!(plan, out);
    }
}
