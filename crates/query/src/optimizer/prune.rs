//! Projection pruning: scans read only the columns the query touches.

use crate::error::Result;
use crate::expr::Expr;
use crate::logical::LogicalPlan;
use std::collections::BTreeSet;

/// Column requirements flowing down the plan: either everything (`All`, e.g.
/// below a bare `SELECT *`) or a specific set.
#[derive(Debug, Clone)]
enum Need {
    All,
    Cols(BTreeSet<String>),
}

impl Need {
    fn union_exprs<'a>(mut self, exprs: impl Iterator<Item = &'a Expr>) -> Need {
        if let Need::Cols(set) = &mut self {
            for e in exprs {
                set.extend(e.referenced_columns());
            }
        }
        self
    }
}

/// Prune unread columns from every scan in the plan.
pub fn prune(plan: LogicalPlan) -> Result<LogicalPlan> {
    rewrite(plan, Need::All)
}

fn rewrite(plan: LogicalPlan, need: Need) -> Result<LogicalPlan> {
    match plan {
        LogicalPlan::Scan {
            table,
            table_schema,
            projection,
            filters,
        } => {
            let projection = match (&need, projection) {
                // An explicit projection (set by an earlier pass or caller)
                // stays; we only narrow unconstrained scans.
                (_, Some(existing)) => Some(existing),
                (Need::All, None) => None,
                (Need::Cols(cols), None) => {
                    // Scan must also produce columns its own filters read.
                    let mut want = cols.clone();
                    for f in &filters {
                        want.extend(f.referenced_columns());
                    }
                    // Preserve table column order; ignore names not in this
                    // table (they belong to the other join side).
                    let ordered: Vec<String> = table_schema
                        .fields()
                        .iter()
                        .map(|f| f.name.clone())
                        .filter(|n| want.contains(n))
                        .collect();
                    if ordered.len() == table_schema.len() || ordered.is_empty() {
                        None
                    } else {
                        Some(ordered)
                    }
                }
            };
            Ok(LogicalPlan::Scan {
                table,
                table_schema,
                projection,
                filters,
            })
        }
        LogicalPlan::Filter { input, predicate } => {
            let need = need.union_exprs(std::iter::once(&predicate));
            Ok(LogicalPlan::Filter {
                input: Box::new(rewrite(*input, need)?),
                predicate,
            })
        }
        LogicalPlan::Project { input, exprs } => {
            // Keep only the outputs an ancestor reads. The query's final
            // projection always sees `Need::All`, so the user-visible schema
            // is never narrowed; this clause exists for *intermediate*
            // projections (e.g. the column-order restorers join reordering
            // inserts), which would otherwise reset requirements to every
            // column and defeat pruning below a join.
            let exprs = match &need {
                Need::All => exprs,
                Need::Cols(wanted) => {
                    let kept: Vec<Expr> = exprs
                        .iter()
                        .filter(|e| wanted.contains(&e.output_name()))
                        .cloned()
                        .collect();
                    // Never project down to zero columns: batches would lose
                    // their row count.
                    if kept.is_empty() {
                        exprs
                    } else {
                        kept
                    }
                }
            };
            // The surviving expressions reset requirements to exactly what
            // they compute.
            let mut cols = BTreeSet::new();
            for e in &exprs {
                cols.extend(e.referenced_columns());
            }
            Ok(LogicalPlan::Project {
                input: Box::new(rewrite(*input, Need::Cols(cols))?),
                exprs,
            })
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            join_type,
        } => {
            let need = match need {
                Need::All => Need::All,
                Need::Cols(mut cols) => {
                    for (l, r) in &on {
                        cols.insert(l.clone());
                        cols.insert(r.clone());
                    }
                    Need::Cols(cols)
                }
            };
            // Each side keeps the subset of needs it can satisfy; names not
            // in a side's schema are filtered out inside the scan rewrite.
            Ok(LogicalPlan::Join {
                left: Box::new(rewrite(*left, need.clone())?),
                right: Box::new(rewrite(*right, need)?),
                on,
                join_type,
            })
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let mut cols = BTreeSet::new();
            for g in &group_by {
                cols.extend(g.referenced_columns());
            }
            for a in &aggs {
                cols.extend(a.input.referenced_columns());
            }
            Ok(LogicalPlan::Aggregate {
                input: Box::new(rewrite(*input, Need::Cols(cols))?),
                group_by,
                aggs,
            })
        }
        LogicalPlan::Sort { input, keys } => {
            let need = need.union_exprs(keys.iter().map(|k| &k.expr));
            Ok(LogicalPlan::Sort {
                input: Box::new(rewrite(*input, need)?),
                keys,
            })
        }
        LogicalPlan::Limit { input, n } => Ok(LogicalPlan::Limit {
            input: Box::new(rewrite(*input, need)?),
            n,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit, sum};
    use crate::optimizer::test_fixtures::catalog;

    fn scan_projection(plan: &LogicalPlan, table_name: &str) -> Option<Vec<String>> {
        match plan {
            LogicalPlan::Scan {
                table, projection, ..
            } if table == table_name => projection.clone(),
            other => {
                for child in other.children() {
                    if let Some(p) = scan_projection(child, table_name) {
                        return Some(p);
                    }
                }
                None
            }
        }
    }

    #[test]
    fn project_narrows_scan() {
        let cat = catalog();
        let plan = LogicalPlan::scan("big", &cat)
            .unwrap()
            .project(vec![col("big_v").add(lit(1i64)).alias("w")]);
        let out = prune(plan).unwrap();
        assert_eq!(scan_projection(&out, "big"), Some(vec!["big_v".into()]));
    }

    #[test]
    fn filter_columns_are_kept() {
        let cat = catalog();
        let plan = LogicalPlan::scan("big", &cat)
            .unwrap()
            .filter(col("big_k").eq(lit(1i64)))
            .project(vec![col("big_v")]);
        let out = prune(plan).unwrap();
        let proj = scan_projection(&out, "big").unwrap();
        assert!(proj.contains(&"big_k".to_string()));
        assert!(proj.contains(&"big_v".to_string()));
        assert!(!proj.contains(&"big_tag".to_string()));
    }

    #[test]
    fn aggregate_narrows_to_keys_and_inputs() {
        let cat = catalog();
        let plan = LogicalPlan::scan("big", &cat)
            .unwrap()
            .aggregate(vec![col("big_tag")], vec![sum(col("big_v")).alias("s")]);
        let out = prune(plan).unwrap();
        let proj = scan_projection(&out, "big").unwrap();
        assert_eq!(proj, vec!["big_v".to_string(), "big_tag".to_string()]);
    }

    #[test]
    fn join_keys_survive_pruning() {
        let cat = catalog();
        let plan = LogicalPlan::scan("big", &cat)
            .unwrap()
            .join_on(
                LogicalPlan::scan("small", &cat).unwrap(),
                vec![("big_k", "small_k")],
            )
            .project(vec![col("big_v"), col("small_v")]);
        let out = prune(plan).unwrap();
        let big = scan_projection(&out, "big").unwrap();
        assert!(big.contains(&"big_k".to_string()) && big.contains(&"big_v".to_string()));
        assert!(!big.contains(&"big_tag".to_string()));
        let small = scan_projection(&out, "small").unwrap();
        assert!(small.contains(&"small_k".to_string()) && small.contains(&"small_v".to_string()));
    }

    #[test]
    fn select_star_reads_everything() {
        let cat = catalog();
        let plan = LogicalPlan::scan("big", &cat).unwrap().limit(3);
        let out = prune(plan).unwrap();
        assert_eq!(scan_projection(&out, "big"), None);
    }
}
