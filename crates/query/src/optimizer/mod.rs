//! Rule-based logical optimizer.
//!
//! Each rule is independently toggleable so experiment E6 can ablate them —
//! the paper's Alibaba/QWEN anecdote ("applying query optimization principles
//! ... significantly reducing costs") is tested by measuring each rule's
//! contribution on join-heavy analytical queries.

pub mod cardinality;
mod fold;
mod join_reorder;
mod prune;
mod pushdown;

pub use cardinality::estimate_rows;
pub use fold::fold_expr;

use crate::catalog::Catalog;
use crate::error::Result;
use crate::logical::LogicalPlan;

/// An optimizer rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Fold constant sub-expressions (`1 + 2` → `3`, `x AND true` → `x`).
    ConstantFolding,
    /// Push filter predicates toward scans and through joins.
    PredicatePushdown,
    /// Read only the columns a query needs.
    ProjectionPruning,
    /// Reorder inner-join chains by estimated cardinality and put the
    /// smaller input on the hash-join build side.
    JoinReorder,
}

impl Rule {
    /// All rules, in their canonical application order.
    pub fn all() -> Vec<Rule> {
        vec![
            Rule::ConstantFolding,
            Rule::PredicatePushdown,
            Rule::JoinReorder,
            Rule::ProjectionPruning,
        ]
    }
}

/// Applies a configurable set of rewrite rules to a logical plan.
pub struct Optimizer {
    rules: Vec<Rule>,
}

impl Optimizer {
    /// An optimizer with every rule enabled.
    pub fn new() -> Optimizer {
        Optimizer { rules: Rule::all() }
    }

    /// An optimizer with a custom rule set (ablation studies; an empty list
    /// disables optimization entirely).
    pub fn with_rules(rules: Vec<Rule>) -> Optimizer {
        Optimizer { rules }
    }

    /// The enabled rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Rewrite `plan`. The result is semantically equivalent: the property
    /// tests in `tests/` verify optimized and unoptimized plans return the
    /// same rows.
    pub fn optimize(&self, plan: LogicalPlan, catalog: &dyn Catalog) -> Result<LogicalPlan> {
        let mut plan = plan;
        for rule in &self.rules {
            plan = match rule {
                Rule::ConstantFolding => fold::fold_plan(plan)?,
                Rule::PredicatePushdown => pushdown::push_down(plan)?,
                Rule::ProjectionPruning => prune::prune(plan)?,
                Rule::JoinReorder => join_reorder::reorder(plan, catalog)?,
            };
        }
        Ok(plan)
    }
}

impl Default for Optimizer {
    fn default() -> Self {
        Optimizer::new()
    }
}

#[cfg(test)]
pub(crate) mod test_fixtures {
    use crate::catalog::MemCatalog;
    use backbone_storage::{DataType, Field, Schema, Table, Value};

    /// A catalog with `big` (1000 rows), `small` (10 rows), and `mid`
    /// (100 rows) tables sharing a key column `k` plus payloads.
    pub fn catalog() -> MemCatalog {
        let cat = MemCatalog::new();
        for (name, rows) in [("big", 1000i64), ("mid", 100), ("small", 10)] {
            let schema = Schema::new(vec![
                Field::new(format!("{name}_k"), DataType::Int64),
                Field::new(format!("{name}_v"), DataType::Int64),
                Field::new(format!("{name}_tag"), DataType::Utf8),
            ]);
            let mut t = Table::with_group_size(schema, 64);
            for i in 0..rows {
                t.append_row(vec![
                    Value::Int(i % 50),
                    Value::Int(i),
                    Value::str(if i % 2 == 0 { "a" } else { "b" }),
                ])
                .unwrap();
            }
            cat.register(name, t);
        }
        cat
    }
}

#[cfg(test)]
mod tests {
    use super::test_fixtures::catalog;
    use super::*;
    use crate::expr::{col, lit};

    #[test]
    fn optimizer_runs_all_rules() {
        let cat = catalog();
        let plan = LogicalPlan::scan("big", &cat)
            .unwrap()
            .filter(col("big_v").lt(lit(100i64)).and(lit(true)))
            .project(vec![col("big_k")]);
        let optimized = Optimizer::new().optimize(plan, &cat).unwrap();
        let text = optimized.display_indent();
        // Pushdown moved the filter into the scan; pruning set a projection.
        assert!(
            text.contains("filters="),
            "expected scan filters in:\n{text}"
        );
        assert!(
            text.contains("project="),
            "expected scan projection in:\n{text}"
        );
        // The folded `AND true` must be gone.
        assert!(!text.contains("AND true"), "constant not folded:\n{text}");
    }

    #[test]
    fn empty_rule_set_is_identity() {
        let cat = catalog();
        let plan = LogicalPlan::scan("big", &cat)
            .unwrap()
            .filter(col("big_v").lt(lit(100i64)));
        let same = Optimizer::with_rules(vec![])
            .optimize(plan.clone(), &cat)
            .unwrap();
        assert_eq!(plan, same);
    }
}
