//! Predicate pushdown: move filters as close to the data as possible.

use crate::error::Result;
use crate::expr::Expr;
use crate::logical::{JoinType, LogicalPlan};
use std::collections::BTreeSet;

/// Push filter predicates down the plan tree: into scans (where they enable
/// zone-map pruning), through joins to the side that owns their columns, and
/// below sorts.
pub fn push_down(plan: LogicalPlan) -> Result<LogicalPlan> {
    rewrite(plan, Vec::new())
}

/// Rewrite `plan` with `pending` conjuncts waiting to be placed.
fn rewrite(plan: LogicalPlan, mut pending: Vec<Expr>) -> Result<LogicalPlan> {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            // Absorb this filter's conjuncts and recurse into the input.
            pending.extend(predicate.split_conjunction().into_iter().cloned());
            rewrite(*input, pending)
        }
        LogicalPlan::Scan {
            table,
            table_schema,
            projection,
            mut filters,
        } => {
            filters.extend(pending);
            Ok(LogicalPlan::Scan {
                table,
                table_schema,
                projection,
                filters,
            })
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            join_type,
        } => {
            let left_cols = plan_columns(&left);
            let right_cols = plan_columns(&right);
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut keep = Vec::new();
            for p in pending {
                let refs = p.referenced_columns();
                if refs.iter().all(|c| left_cols.contains(c)) {
                    to_left.push(p);
                } else if refs.iter().all(|c| right_cols.contains(c)) {
                    // Pushing below the null-padded side of an outer join
                    // changes semantics; keep those above the join.
                    if join_type == JoinType::Left {
                        keep.push(p);
                    } else {
                        to_right.push(p);
                    }
                } else {
                    keep.push(p);
                }
            }
            let new_left = rewrite(*left, to_left)?;
            let new_right = rewrite(*right, to_right)?;
            let joined = LogicalPlan::Join {
                left: Box::new(new_left),
                right: Box::new(new_right),
                on,
                join_type,
            };
            Ok(wrap_filter(joined, keep))
        }
        LogicalPlan::Project { input, exprs } => {
            // Push through only predicates whose columns are passed through
            // unchanged by this projection.
            let passthrough: BTreeSet<String> = exprs
                .iter()
                .filter_map(|e| match e {
                    Expr::Column(n) => Some(n.clone()),
                    Expr::Alias(inner, name) => match inner.as_ref() {
                        // `x AS x` — only identity aliases are transparent.
                        Expr::Column(n) if n == name => Some(n.clone()),
                        _ => None,
                    },
                    _ => None,
                })
                .collect();
            let mut pushable = Vec::new();
            let mut keep = Vec::new();
            for p in pending {
                if p.referenced_columns()
                    .iter()
                    .all(|c| passthrough.contains(c))
                {
                    pushable.push(p);
                } else {
                    keep.push(p);
                }
            }
            let new_input = rewrite(*input, pushable)?;
            let projected = LogicalPlan::Project {
                input: Box::new(new_input),
                exprs,
            };
            Ok(wrap_filter(projected, keep))
        }
        LogicalPlan::Sort { input, keys } => {
            // Filtering before sorting is always safe and cheaper.
            let new_input = rewrite(*input, pending)?;
            Ok(LogicalPlan::Sort {
                input: Box::new(new_input),
                keys,
            })
        }
        LogicalPlan::Limit { input, n } => {
            // Never push a filter below a limit: it changes which rows the
            // limit keeps. Optimize below the limit independently.
            let new_input = rewrite(*input, Vec::new())?;
            Ok(wrap_filter(
                LogicalPlan::Limit {
                    input: Box::new(new_input),
                    n,
                },
                pending,
            ))
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            // Predicates over group keys (plain columns) can move below the
            // aggregate; predicates over aggregate outputs cannot.
            let group_cols: BTreeSet<String> = group_by
                .iter()
                .filter_map(|g| match g {
                    Expr::Column(n) => Some(n.clone()),
                    _ => None,
                })
                .collect();
            let mut pushable = Vec::new();
            let mut keep = Vec::new();
            for p in pending {
                if p.referenced_columns()
                    .iter()
                    .all(|c| group_cols.contains(c))
                {
                    pushable.push(p);
                } else {
                    keep.push(p);
                }
            }
            let new_input = rewrite(*input, pushable)?;
            Ok(wrap_filter(
                LogicalPlan::Aggregate {
                    input: Box::new(new_input),
                    group_by,
                    aggs,
                },
                keep,
            ))
        }
    }
}

fn wrap_filter(plan: LogicalPlan, preds: Vec<Expr>) -> LogicalPlan {
    match Expr::conjunction(preds) {
        None => plan,
        Some(p) => LogicalPlan::Filter {
            input: Box::new(plan),
            predicate: p,
        },
    }
}

/// Output column names of a plan (best-effort; unknown schemas yield empty).
fn plan_columns(plan: &LogicalPlan) -> BTreeSet<String> {
    plan.schema()
        .map(|s| s.fields().iter().map(|f| f.name.clone()).collect())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, count_star, lit};
    use crate::optimizer::test_fixtures::catalog;

    #[test]
    fn filter_merges_into_scan() {
        let cat = catalog();
        let plan = LogicalPlan::scan("big", &cat)
            .unwrap()
            .filter(col("big_v").lt(lit(10i64)))
            .filter(col("big_k").eq(lit(1i64)));
        let out = push_down(plan).unwrap();
        match out {
            LogicalPlan::Scan { filters, .. } => assert_eq!(filters.len(), 2),
            other => panic!("expected bare scan, got:\n{other}"),
        }
    }

    #[test]
    fn join_splits_conjuncts_by_side() {
        let cat = catalog();
        let plan = LogicalPlan::scan("big", &cat)
            .unwrap()
            .join_on(
                LogicalPlan::scan("small", &cat).unwrap(),
                vec![("big_k", "small_k")],
            )
            .filter(
                col("big_v")
                    .lt(lit(10i64))
                    .and(col("small_v").gt(lit(2i64)))
                    .and(col("big_v").lt(col("small_v"))),
            );
        let out = push_down(plan).unwrap();
        let text = out.display_indent();
        // The mixed predicate stays above the join; single-side ones sank.
        assert!(text.contains("Filter: (big_v < small_v)"), "got:\n{text}");
        assert!(
            text.contains("Scan: big filters=[(big_v < 10)]"),
            "got:\n{text}"
        );
        assert!(
            text.contains("Scan: small filters=[(small_v > 2)]"),
            "got:\n{text}"
        );
    }

    #[test]
    fn left_join_blocks_right_side_pushdown() {
        let cat = catalog();
        let plan = LogicalPlan::scan("big", &cat)
            .unwrap()
            .join(
                LogicalPlan::scan("small", &cat).unwrap(),
                vec![("big_k", "small_k")],
                JoinType::Left,
            )
            .filter(col("small_v").gt(lit(2i64)));
        let out = push_down(plan).unwrap();
        let text = out.display_indent();
        assert!(
            text.contains("Filter: (small_v > 2)"),
            "right-side predicate must stay above a LEFT join:\n{text}"
        );
        assert!(!text.contains("Scan: small filters"), "got:\n{text}");
    }

    #[test]
    fn filter_not_pushed_below_limit() {
        let cat = catalog();
        let plan = LogicalPlan::scan("big", &cat)
            .unwrap()
            .limit(5)
            .filter(col("big_v").gt(lit(2i64)));
        let out = push_down(plan).unwrap();
        match &out {
            LogicalPlan::Filter { input, .. } => {
                assert!(matches!(input.as_ref(), LogicalPlan::Limit { .. }))
            }
            other => panic!("filter must remain above limit:\n{other}"),
        }
    }

    #[test]
    fn group_key_filter_pushes_below_aggregate() {
        let cat = catalog();
        let plan = LogicalPlan::scan("big", &cat)
            .unwrap()
            .aggregate(vec![col("big_k")], vec![count_star().alias("n")])
            .filter(col("big_k").eq(lit(3i64)).and(col("n").gt(lit(1i64))));
        let out = push_down(plan).unwrap();
        let text = out.display_indent();
        assert!(
            text.contains("Scan: big filters=[(big_k = 3)]"),
            "got:\n{text}"
        );
        assert!(text.contains("Filter: (n > 1)"), "got:\n{text}");
    }

    #[test]
    fn pushes_through_identity_projection_only() {
        let cat = catalog();
        // Projection renames big_v: predicate on the rename must stay above.
        let plan = LogicalPlan::scan("big", &cat)
            .unwrap()
            .project(vec![col("big_k"), col("big_v").add(lit(1i64)).alias("w")])
            .filter(col("big_k").lt(lit(5i64)).and(col("w").gt(lit(0i64))));
        let out = push_down(plan).unwrap();
        let text = out.display_indent();
        assert!(
            text.contains("Scan: big filters=[(big_k < 5)]"),
            "got:\n{text}"
        );
        assert!(text.contains("Filter: (w > 0)"), "got:\n{text}");
    }
}
