//! Projection operator.

use super::Operator;
use crate::error::Result;
use crate::eval::eval_arc;
use crate::expr::Expr;
use backbone_storage::{Field, RecordBatch, Schema};
use std::sync::Arc;

/// Computes one output column per expression.
pub struct ProjectExec {
    input: Box<dyn Operator>,
    exprs: Vec<Expr>,
    schema: Arc<Schema>,
}

impl ProjectExec {
    /// Wrap `input`, computing `exprs` per batch.
    pub fn new(input: Box<dyn Operator>, exprs: Vec<Expr>) -> Result<ProjectExec> {
        let in_schema = input.schema();
        let mut fields = Vec::with_capacity(exprs.len());
        for e in &exprs {
            fields.push(Field::nullable(e.output_name(), e.data_type(&in_schema)?));
        }
        Ok(ProjectExec {
            input,
            exprs,
            schema: Schema::new(fields),
        })
    }
}

impl Operator for ProjectExec {
    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn next(&mut self) -> Result<Option<RecordBatch>> {
        let Some(batch) = self.input.next()? else {
            return Ok(None);
        };
        let mut cols = Vec::with_capacity(self.exprs.len());
        for e in &self.exprs {
            // Bare column references pass through by Arc; only computed
            // expressions allocate.
            cols.push(eval_arc(e, &batch)?);
        }
        // Eval outputs are base-length: a selected input stays a selected
        // output, carrying the same lanes over the freshly computed columns.
        let out = RecordBatch::try_new(self.schema.clone(), cols)?;
        match batch.selection_shared() {
            Some(sel) => Ok(Some(out.with_selection(sel)?)),
            None => Ok(Some(out)),
        }
    }

    fn name(&self) -> &'static str {
        "Project"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::physical::drain_one;
    use crate::physical::test_util::{int_batch, BatchSource};
    use backbone_storage::DataType;

    #[test]
    fn computes_expressions() {
        let batch = int_batch(&[("a", vec![1, 2, 3]), ("b", vec![10, 20, 30])]);
        let src = BatchSource::single(batch);
        let mut p = ProjectExec::new(
            Box::new(src),
            vec![col("b").add(col("a")).alias("sum"), col("a")],
        )
        .unwrap();
        let out = drain_one(&mut p).unwrap();
        assert_eq!(out.schema().field(0).name, "sum");
        assert_eq!(out.column(0).i64_data().unwrap(), &[11, 22, 33]);
        assert_eq!(out.column(1).i64_data().unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn schema_typed_from_exprs() {
        let batch = int_batch(&[("a", vec![1])]);
        let p = ProjectExec::new(
            Box::new(BatchSource::single(batch)),
            vec![col("a").div(lit(2i64)).alias("half")],
        )
        .unwrap();
        assert_eq!(p.schema().field(0).data_type, DataType::Float64);
    }

    #[test]
    fn invalid_expr_rejected_at_build() {
        let batch = int_batch(&[("a", vec![1])]);
        assert!(ProjectExec::new(Box::new(BatchSource::single(batch)), vec![col("zzz")]).is_err());
    }
}
