//! Table scan with zone-map pruning, scan-time filtering, projection, and
//! morsel-style parallelism.

use super::parallel::{record_worker, ParallelProfile, StealQueues};
use super::pool::{spawn_detached, PoolHandle};
use super::Operator;
use crate::error::Result;
use crate::eval::eval_predicate;
use crate::expr::{BinOp, Expr};
use backbone_storage::table::ZoneMap;
use backbone_storage::{Metrics, RecordBatch, Schema, Table, Value};
use crossbeam::channel::{bounded, Receiver};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// Counters exposed for pruning experiments (E6 reports them).
#[derive(Debug, Default, Clone, Copy)]
pub struct ScanStats {
    /// Row groups skipped via zone maps.
    pub groups_pruned: usize,
    /// Row groups actually scanned.
    pub groups_scanned: usize,
}

/// Scans a table's row groups, skipping groups whose zone maps refute a
/// pushed-down filter, evaluating remaining filters per batch, and projecting
/// early. With `workers >= 1` row groups become morsels on per-worker
/// work-stealing queues processed by that many threads, with no change to
/// semantics — the paper's "automatic scalability" principle.
pub struct TableScanExec {
    schema: Arc<Schema>,
    mode: Mode,
    stats: ScanStats,
    /// Split emitted batches to at most this many logical rows (0 = group
    /// size). On filtered scans the split narrows the selection vector, so
    /// no column data is copied.
    batch_rows: usize,
    pending: VecDeque<RecordBatch>,
    metrics: Option<Metrics>,
    profile: Option<ParallelProfile>,
    /// Snapshot clamp: scan only this visible row prefix (see
    /// [`TableScanExec::with_snapshot`]). `None` = scan everything.
    clamp: Option<ScanClamp>,
}

/// The group-level shape of a snapshot's visible row prefix.
#[derive(Debug, Clone, Copy)]
struct ScanClamp {
    /// Leading row groups that intersect the prefix; later groups hold only
    /// rows committed after the snapshot and are never touched.
    groups: usize,
    /// When the prefix ends inside group `groups - 1`: how many of its
    /// leading rows are visible. `None` = the last group is wholly visible.
    last_rows: Option<usize>,
}

enum Mode {
    Serial {
        table: Arc<Table>,
        filters: Vec<Expr>,
        projection: Option<Vec<usize>>,
        group_idx: usize,
    },
    /// Parallel scan not yet started: workers spawn lazily on the first
    /// `next()` so the builder methods (`with_metrics`, profile) apply.
    Pending {
        table: Arc<Table>,
        filters: Vec<Expr>,
        projection: Option<Vec<usize>>,
        workers: usize,
    },
    Running {
        rx: Receiver<Result<RecordBatch>>,
        /// Keep handles so worker panics surface at join.
        handles: Vec<PoolHandle>,
    },
}

impl TableScanExec {
    /// Build a scan.
    ///
    /// `projection` lists output column names (in order); `filters` are
    /// conjunctive predicates applied during the scan; `workers` is the
    /// number of worker threads (0 or 1 = serial, on the calling thread).
    pub fn new(
        table: Arc<Table>,
        projection: Option<Vec<String>>,
        filters: Vec<Expr>,
        workers: usize,
    ) -> Result<TableScanExec> {
        let table_schema = table.schema().clone();
        let proj_indices: Option<Vec<usize>> = match &projection {
            None => None,
            Some(names) => {
                let mut idx = Vec::with_capacity(names.len());
                for n in names {
                    idx.push(table_schema.index_of(n)?);
                }
                Some(idx)
            }
        };
        let schema = match &proj_indices {
            None => table_schema.clone(),
            Some(idx) => table_schema.project(idx),
        };
        let mode = if workers <= 1 {
            Mode::Serial {
                table,
                filters,
                projection: proj_indices,
                group_idx: 0,
            }
        } else {
            Mode::Pending {
                table,
                filters,
                projection: proj_indices,
                workers,
            }
        };
        Ok(TableScanExec {
            schema,
            mode,
            stats: ScanStats::default(),
            batch_rows: 0,
            pending: VecDeque::new(),
            metrics: None,
            profile: None,
            clamp: None,
        })
    }

    /// Cap emitted batches at `n` logical rows (0 = one batch per row group).
    pub fn with_batch_rows(mut self, n: usize) -> Self {
        self.batch_rows = n;
        self
    }

    /// Pin the scan to a snapshot epoch: only the table's row prefix
    /// committed at or before `epoch` (per its commit marks) is read. Groups
    /// past the prefix are never materialized; the group straddling the
    /// boundary is sliced to its visible leading rows *before* filters run.
    /// Zone-map pruning stays sound on the sliced group — full-group zones
    /// over-approximate any prefix, so a refutation still holds.
    pub fn with_snapshot(mut self, epoch: Option<u64>) -> Self {
        let Some(epoch) = epoch else { return self };
        let table = match &self.mode {
            Mode::Serial { table, .. } | Mode::Pending { table, .. } => table,
            Mode::Running { .. } => unreachable!("snapshot set before the scan starts"),
        };
        let mut remaining = table.visible_rows_at(epoch);
        let mut groups = 0usize;
        let mut last_rows = None;
        for g in 0..table.num_groups() {
            if remaining == 0 {
                break;
            }
            let rows = table.group_rows(g);
            groups += 1;
            if rows > remaining {
                last_rows = Some(remaining);
                break;
            }
            remaining -= rows;
        }
        self.clamp = Some(ScanClamp { groups, last_rows });
        self
    }

    /// Record scan kernel time (`op.scan.kernel.*`) and, in parallel mode,
    /// per-worker morsel/row/steal counters (`op.scan.worker.*`,
    /// `op.scan.steals`) into `metrics`.
    pub fn with_metrics(mut self, metrics: Option<Metrics>) -> Self {
        self.metrics = metrics;
        self
    }

    /// Attach shared parallel counters for EXPLAIN ANALYZE.
    pub fn with_parallel_profile(mut self, profile: Option<ParallelProfile>) -> Self {
        self.profile = profile;
        self
    }

    /// Morsel-parallel start: row groups go onto per-worker work-stealing
    /// queues; workers prune, filter, and project their morsels and feed
    /// surviving batches through a bounded channel.
    fn start(&mut self) {
        let placeholder = Mode::Running {
            rx: bounded(0).1,
            handles: Vec::new(),
        };
        let Mode::Pending {
            table,
            filters,
            projection,
            workers,
        } = std::mem::replace(&mut self.mode, placeholder)
        else {
            unreachable!("start is only called on a pending parallel scan");
        };
        let (tx, rx) = bounded(workers * 2);
        let n_groups = self
            .clamp
            .map_or(table.num_groups(), |c| c.groups.min(table.num_groups()));
        // (group index, visible leading rows) when the snapshot boundary
        // falls inside the final visible group.
        let boundary = self
            .clamp
            .and_then(|c| c.last_rows.map(|n| (c.groups - 1, n)));
        let queues = Arc::new(StealQueues::split(n_groups, workers));
        if let Some(p) = &self.profile {
            p.workers.add(workers as u64);
        }
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let table = table.clone();
            let filters = filters.clone();
            let projection = projection.clone();
            let tx = tx.clone();
            let queues = queues.clone();
            let metrics = self.metrics.clone();
            let profile = self.profile.clone();
            handles.push(spawn_detached(move || {
                // Workers record eval-kernel counters through their own
                // thread-local handle; all counters are shared atomics.
                let _kernel = crate::kernel_metrics::install(metrics.clone());
                let (mut morsels, mut rows, mut steals) = (0u64, 0u64, 0u64);
                while let Some((g, stolen)) = queues.pop(w) {
                    morsels += 1;
                    steals += u64::from(stolen);
                    // Zone maps are always resident: refuted groups are
                    // skipped before their payload is ever read (for paged
                    // tables, before any I/O happens at all).
                    let zones = group_zones(&table, g);
                    if prunable(&zones, table.schema(), &filters) {
                        continue;
                    }
                    let group = match table.group(g) {
                        Ok(gr) => gr,
                        Err(e) => {
                            let _ = tx.send(Err(e.into()));
                            break;
                        }
                    };
                    let sliced;
                    let gbatch = match boundary {
                        Some((bg, n)) if bg == g => {
                            match group.batch().slice(0, n) {
                                Ok(b) => sliced = b,
                                Err(e) => {
                                    let _ = tx.send(Err(e.into()));
                                    break;
                                }
                            }
                            &sliced
                        }
                        _ => group.batch(),
                    };
                    match process_group(gbatch, zones, &filters, &projection) {
                        Ok(Some(batch)) => {
                            rows += batch.num_rows() as u64;
                            if tx.send(Ok(batch)).is_err() {
                                break;
                            }
                        }
                        Ok(None) => {}
                        Err(e) => {
                            let _ = tx.send(Err(e));
                            break;
                        }
                    }
                }
                record_worker(metrics.as_ref(), "scan", w, morsels, rows);
                if let Some(m) = &metrics {
                    m.counter("op.scan.steals").add(steals);
                }
                if let Some(p) = &profile {
                    p.morsels.add(morsels);
                    p.steals.add(steals);
                }
            }));
        }
        drop(tx);
        self.mode = Mode::Running { rx, handles };
    }

    /// Split `batch` per `batch_rows`, queueing the tail; returns the head.
    fn emit(&mut self, batch: RecordBatch) -> Result<RecordBatch> {
        let n = batch.num_rows();
        if self.batch_rows == 0 || n <= self.batch_rows {
            return Ok(batch);
        }
        let mut offset = self.batch_rows;
        while offset < n {
            let len = self.batch_rows.min(n - offset);
            self.pending.push_back(batch.slice(offset, len)?);
            offset += len;
        }
        Ok(batch.slice(0, self.batch_rows)?)
    }

    /// Pruning counters (serial mode only; parallel workers don't report).
    pub fn stats(&self) -> ScanStats {
        self.stats
    }
}

fn group_zones(table: &Table, g: usize) -> Vec<(usize, ZoneMap)> {
    table.group_zones(g).iter().cloned().enumerate().collect()
}

/// Can the zone maps refute every row of this group for some filter?
fn prunable(zones: &[(usize, ZoneMap)], schema: &Schema, filters: &[Expr]) -> bool {
    filters.iter().any(|f| zone_refutes(zones, schema, f))
}

/// Returns true when `filter` provably matches no row of the group.
fn zone_refutes(zones: &[(usize, ZoneMap)], schema: &Schema, filter: &Expr) -> bool {
    let Expr::Binary { left, op, right } = filter else {
        return false;
    };
    // Normalize to (column op literal).
    let (name, op, value) = match (left.as_ref(), right.as_ref()) {
        (Expr::Column(n), Expr::Literal(v)) => (n, *op, v),
        (Expr::Literal(v), Expr::Column(n)) => {
            let flipped = match op {
                BinOp::Lt => BinOp::Gt,
                BinOp::LtEq => BinOp::GtEq,
                BinOp::Gt => BinOp::Lt,
                BinOp::GtEq => BinOp::LtEq,
                other => *other,
            };
            (n, flipped, v)
        }
        _ => return false,
    };
    if matches!(value, Value::Null) {
        return false;
    }
    let Ok(idx) = schema.index_of(name) else {
        return false;
    };
    let Some((_, zone)) = zones.iter().find(|(i, _)| *i == idx) else {
        return false;
    };
    match op {
        BinOp::Eq => !zone.may_contain_eq(value),
        BinOp::Lt => !zone.may_contain_lt(value, false),
        BinOp::LtEq => !zone.may_contain_lt(value, true),
        BinOp::Gt => !zone.may_contain_gt(value, false),
        BinOp::GtEq => !zone.may_contain_gt(value, true),
        _ => false,
    }
}

fn process_group(
    batch: &RecordBatch,
    zones: Vec<(usize, ZoneMap)>,
    filters: &[Expr],
    projection: &Option<Vec<usize>>,
) -> Result<Option<RecordBatch>> {
    if prunable(&zones, batch.schema(), filters) {
        return Ok(None);
    }
    let mut current = batch.clone();
    for f in filters {
        let mask = eval_predicate(f, &current)?;
        // Survivors become a narrower selection over the same columns;
        // downstream kernels and the projection late-materialize.
        current = current.select_mask(&mask)?;
        if current.is_empty() {
            return Ok(None);
        }
    }
    if let Some(idx) = projection {
        current = current.project(idx)?;
    }
    Ok(Some(current))
}

impl Operator for TableScanExec {
    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn next(&mut self) -> Result<Option<RecordBatch>> {
        if let Some(b) = self.pending.pop_front() {
            return Ok(Some(b));
        }
        if matches!(self.mode, Mode::Pending { .. }) {
            self.start();
        }
        let produced = match &mut self.mode {
            Mode::Serial {
                table,
                filters,
                projection,
                group_idx,
            } => {
                let clamp = self.clamp;
                let total_groups =
                    clamp.map_or(table.num_groups(), |c| c.groups.min(table.num_groups()));
                let mut found = None;
                loop {
                    if *group_idx >= total_groups {
                        break;
                    }
                    let g = *group_idx;
                    *group_idx += 1;
                    // Resident zone maps decide pruning before the group is
                    // materialized — paged groups refuted here cost no I/O.
                    let zones = group_zones(table, g);
                    if prunable(&zones, table.schema(), filters) {
                        self.stats.groups_pruned += 1;
                        continue;
                    }
                    self.stats.groups_scanned += 1;
                    let group = table.group(g)?;
                    let t0 = Instant::now();
                    let sliced;
                    let gbatch = match clamp {
                        Some(ScanClamp {
                            groups,
                            last_rows: Some(n),
                        }) if g + 1 == groups => {
                            sliced = group.batch().slice(0, n)?;
                            &sliced
                        }
                        _ => group.batch(),
                    };
                    let out = process_group(gbatch, zones, filters, projection)?;
                    if let Some(m) = &self.metrics {
                        m.counter("op.scan.kernel.filter_ns")
                            .add(t0.elapsed().as_nanos() as u64);
                    }
                    if let Some(batch) = out {
                        found = Some(batch);
                        break;
                    }
                }
                found
            }
            Mode::Pending { .. } => unreachable!("pending scan started above"),
            Mode::Running { rx, handles } => match rx.recv() {
                Ok(item) => Some(item?),
                Err(_) => {
                    for h in handles.drain(..) {
                        h.join().expect("scan worker panicked");
                    }
                    None
                }
            },
        };
        match produced {
            Some(batch) => Ok(Some(self.emit(batch)?)),
            None => Ok(None),
        }
    }

    fn name(&self) -> &'static str {
        "TableScan"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::physical::drain_one;
    use backbone_storage::{DataType, Field};

    fn table(rows: i64, group_size: usize) -> Arc<Table> {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("val", DataType::Int64),
        ]);
        let mut t = Table::with_group_size(schema, group_size);
        for i in 0..rows {
            t.append_row(vec![Value::Int(i), Value::Int(i * 10)])
                .unwrap();
        }
        t.flush().unwrap();
        Arc::new(t)
    }

    #[test]
    fn full_scan() {
        let t = table(10, 4);
        let mut scan = TableScanExec::new(t, None, vec![], 1).unwrap();
        let all = drain_one(&mut scan).unwrap();
        assert_eq!(all.num_rows(), 10);
    }

    #[test]
    fn filtered_scan() {
        let t = table(100, 10);
        let mut scan = TableScanExec::new(t, None, vec![col("id").gt_eq(lit(95i64))], 1).unwrap();
        let out = drain_one(&mut scan).unwrap();
        assert_eq!(out.num_rows(), 5);
    }

    #[test]
    fn zone_maps_prune_groups() {
        // Ten groups of 10 sorted ids: id >= 95 touches only the last group.
        let t = table(100, 10);
        let mut scan = TableScanExec::new(t, None, vec![col("id").gt_eq(lit(95i64))], 1).unwrap();
        while scan.next().unwrap().is_some() {}
        let stats = scan.stats();
        assert_eq!(stats.groups_pruned, 9);
        assert_eq!(stats.groups_scanned, 1);
    }

    #[test]
    fn pruning_eq_and_flipped_literal() {
        let t = table(100, 10);
        // literal on the left: 5 > id  <=>  id < 5 — only group 0 survives.
        let mut scan = TableScanExec::new(t, None, vec![lit(5i64).gt(col("id"))], 1).unwrap();
        let out = drain_one(&mut scan).unwrap();
        assert_eq!(out.num_rows(), 5);
        assert_eq!(scan.stats().groups_scanned, 1);
    }

    #[test]
    fn projection_narrows_schema() {
        let t = table(10, 4);
        let mut scan = TableScanExec::new(t, Some(vec!["val".into()]), vec![], 1).unwrap();
        let out = drain_one(&mut scan).unwrap();
        assert_eq!(out.num_columns(), 1);
        assert_eq!(out.schema().field(0).name, "val");
        assert_eq!(out.column(0).i64_data().unwrap()[3], 30);
    }

    #[test]
    fn unknown_projection_column_errors() {
        let t = table(4, 4);
        assert!(TableScanExec::new(t, Some(vec!["nope".into()]), vec![], 1).is_err());
    }

    #[test]
    fn parallel_scan_matches_serial() {
        let t = table(1000, 32);
        let filters = vec![col("id").modulo(lit(7i64)).eq(lit(0i64))];
        let mut serial = TableScanExec::new(t.clone(), None, filters.clone(), 1).unwrap();
        let mut parallel = TableScanExec::new(t, None, filters, 4).unwrap();
        let a = drain_one(&mut serial).unwrap();
        let b = drain_one(&mut parallel).unwrap();
        assert_eq!(a.num_rows(), b.num_rows());
        // Parallel output order is nondeterministic: compare as sorted sets.
        let mut ra: Vec<i64> = a.column(0).i64_data().unwrap().to_vec();
        let mut rb: Vec<i64> = b.column(0).i64_data().unwrap().to_vec();
        ra.sort_unstable();
        rb.sort_unstable();
        assert_eq!(ra, rb);
    }

    /// 10 rows committed at epoch 1, 7 more at epoch 2, groups of 4 — the
    /// epoch-1 boundary falls mid-group.
    fn marked_table() -> Arc<Table> {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("val", DataType::Int64),
        ]);
        let mut t = Table::with_group_size(schema, 4);
        for i in 0..10 {
            t.append_row(vec![Value::Int(i), Value::Int(i * 10)])
                .unwrap();
        }
        t.record_commit(1, 0);
        for i in 10..17 {
            t.append_row(vec![Value::Int(i), Value::Int(i * 10)])
                .unwrap();
        }
        t.record_commit(2, 0);
        t.flush().unwrap();
        Arc::new(t)
    }

    #[test]
    fn snapshot_clamps_to_visible_prefix() {
        let t = marked_table();
        // Epoch 1: only the first 10 rows; the 3rd group is sliced to 2.
        let mut scan = TableScanExec::new(t.clone(), None, vec![], 1)
            .unwrap()
            .with_snapshot(Some(1));
        let out = drain_one(&mut scan).unwrap();
        let ids: Vec<i64> = out.column(0).i64_data().unwrap().to_vec();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
        // Epoch 2 (and beyond): everything.
        let mut scan = TableScanExec::new(t.clone(), None, vec![], 1)
            .unwrap()
            .with_snapshot(Some(5));
        assert_eq!(drain_one(&mut scan).unwrap().num_rows(), 17);
        // Epoch 0 predates every commit: nothing visible.
        let mut scan = TableScanExec::new(t.clone(), None, vec![], 1)
            .unwrap()
            .with_snapshot(Some(0));
        assert!(scan.next().unwrap().is_none());
        // No snapshot: the pre-MVCC full scan.
        let mut scan = TableScanExec::new(t, None, vec![], 1)
            .unwrap()
            .with_snapshot(None);
        assert_eq!(drain_one(&mut scan).unwrap().num_rows(), 17);
    }

    #[test]
    fn snapshot_parallel_matches_serial() {
        let t = marked_table();
        for epoch in [0u64, 1, 2] {
            let mut serial = TableScanExec::new(t.clone(), None, vec![], 1)
                .unwrap()
                .with_snapshot(Some(epoch));
            let mut parallel = TableScanExec::new(t.clone(), None, vec![], 4)
                .unwrap()
                .with_snapshot(Some(epoch));
            let a = drain_one(&mut serial).unwrap();
            let b = drain_one(&mut parallel).unwrap();
            let collect = |x: &RecordBatch| {
                let mut ids: Vec<i64> = x.column(0).i64_data().unwrap().to_vec();
                ids.sort_unstable();
                ids
            };
            assert_eq!(collect(&a), collect(&b), "epoch {epoch}");
        }
    }

    #[test]
    fn snapshot_respects_filters_on_sliced_group() {
        let t = marked_table();
        // id >= 8 under epoch 1 must see exactly rows 8 and 9 — rows 10+ are
        // in the same physical groups but invisible.
        let mut scan = TableScanExec::new(t, None, vec![col("id").gt_eq(lit(8i64))], 1)
            .unwrap()
            .with_snapshot(Some(1));
        let out = drain_one(&mut scan).unwrap();
        let ids: Vec<i64> = out.column(0).i64_data().unwrap().to_vec();
        assert_eq!(ids, vec![8, 9]);
    }

    #[test]
    fn empty_table_scan() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int64)]);
        let t = Arc::new(Table::new(schema));
        let mut scan = TableScanExec::new(t, None, vec![], 1).unwrap();
        assert!(scan.next().unwrap().is_none());
    }
}
