//! Physical operators: interchangeable implementations of the logical algebra.
//!
//! Every operator is a Volcano-style batch iterator. The planner — not the
//! caller — picks which operators realize a logical plan, which is exactly
//! the physical independence the paper's panelists name as a lasting
//! database principle.

mod aggregate;
mod filter;
mod hash_join;
mod limit;
mod nl_join;
mod parallel;
pub mod pool;
mod project;
mod scan;
mod sort;
pub mod spill;
mod topk;

pub use aggregate::HashAggregateExec;
pub use filter::FilterExec;
pub use hash_join::HashJoinExec;
pub use limit::LimitExec;
pub use nl_join::NestedLoopJoinExec;
pub use parallel::ParallelProfile;
pub use project::ProjectExec;
pub use scan::TableScanExec;
pub use sort::SortExec;
pub use spill::{BudgetAccountant, BudgetLease};
pub use topk::TopKExec;

use crate::error::Result;
use backbone_storage::{RecordBatch, Schema};
use std::sync::Arc;

/// A pull-based physical operator producing record batches.
pub trait Operator: Send {
    /// The operator's output schema.
    fn schema(&self) -> Arc<Schema>;

    /// Produce the next batch, or `None` when exhausted.
    fn next(&mut self) -> Result<Option<RecordBatch>>;

    /// Operator name for EXPLAIN output.
    fn name(&self) -> &'static str;
}

/// Visit a batch's logical rows as `(position, base_row)` pairs: positions
/// are dense `0..n`, base rows map through the selection when present.
#[inline]
pub(crate) fn for_each_lane(sel: Option<&[u32]>, n: usize, mut f: impl FnMut(usize, usize)) {
    match sel {
        Some(s) => {
            for (pos, &b) in s.iter().enumerate() {
                f(pos, b as usize);
            }
        }
        None => {
            for i in 0..n {
                f(i, i);
            }
        }
    }
}

/// Drain an operator into a vector of **dense** batches. Selection views are
/// materialized here so batches never escape the executor half-filtered.
pub fn drain(op: &mut dyn Operator) -> Result<Vec<RecordBatch>> {
    let mut out = Vec::new();
    while let Some(batch) = op.next()? {
        out.push(batch.materialize());
    }
    Ok(out)
}

/// Drain an operator and concatenate into a single batch.
pub fn drain_one(op: &mut dyn Operator) -> Result<RecordBatch> {
    let schema = op.schema();
    let batches = drain(op)?;
    Ok(RecordBatch::concat(schema, &batches)?)
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;
    use backbone_storage::StorageError;

    /// An operator that yields a fixed list of batches (test source).
    pub struct BatchSource {
        schema: Arc<Schema>,
        batches: std::vec::IntoIter<RecordBatch>,
    }

    impl BatchSource {
        pub fn new(schema: Arc<Schema>, batches: Vec<RecordBatch>) -> BatchSource {
            BatchSource {
                schema,
                batches: batches.into_iter(),
            }
        }

        /// Single-batch convenience constructor.
        pub fn single(batch: RecordBatch) -> BatchSource {
            BatchSource::new(batch.schema().clone(), vec![batch])
        }
    }

    impl Operator for BatchSource {
        fn schema(&self) -> Arc<Schema> {
            self.schema.clone()
        }

        fn next(&mut self) -> Result<Option<RecordBatch>> {
            Ok(self.batches.next())
        }

        fn name(&self) -> &'static str {
            "BatchSource"
        }
    }

    /// Build an int batch from (name, values) column specs.
    pub fn int_batch(cols: &[(&str, Vec<i64>)]) -> RecordBatch {
        use backbone_storage::{Column, DataType, Field};
        let schema = Schema::new(
            cols.iter()
                .map(|(n, _)| Field::new(*n, DataType::Int64))
                .collect(),
        );
        let columns = cols
            .iter()
            .map(|(_, v)| Arc::new(Column::from_i64(v.clone())))
            .collect();
        RecordBatch::try_new(schema, columns)
            .map_err(|e: StorageError| e)
            .unwrap()
    }
}
