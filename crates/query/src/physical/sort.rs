//! Sort operator.

use super::{drain, Operator};
use crate::error::Result;
use crate::eval::eval_arc;
use crate::logical::SortKey;
use backbone_storage::{Column, RecordBatch, Schema};
use std::cmp::Ordering;
use std::sync::Arc;

/// Fully materializing sort by one or more keys.
pub struct SortExec {
    input: Option<Box<dyn Operator>>,
    keys: Vec<SortKey>,
    schema: Arc<Schema>,
    done: bool,
}

impl SortExec {
    /// Sort `input` by `keys` (major key first).
    pub fn new(input: Box<dyn Operator>, keys: Vec<SortKey>) -> SortExec {
        let schema = input.schema();
        SortExec {
            input: Some(input),
            keys,
            schema,
            done: false,
        }
    }
}

/// Compare row `a` vs row `b` under the sort keys, given pre-evaluated key
/// columns.
pub(crate) fn cmp_rows(key_cols: &[(Arc<Column>, bool)], a: usize, b: usize) -> Ordering {
    for (col, descending) in key_cols {
        let va = col.value(a);
        let vb = col.value(b);
        let ord = va.sql_cmp(&vb);
        let ord = if *descending { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

impl Operator for SortExec {
    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn next(&mut self) -> Result<Option<RecordBatch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let mut input = self.input.take().expect("sorted once");
        let batches = drain(input.as_mut())?;
        let all = RecordBatch::concat(self.schema.clone(), &batches)?;
        if all.is_empty() {
            return Ok(Some(all));
        }
        let key_cols: Vec<(Arc<Column>, bool)> = self
            .keys
            .iter()
            .map(|k| Ok((eval_arc(&k.expr, &all)?, k.descending)))
            .collect::<Result<_>>()?;
        let mut indices: Vec<usize> = (0..all.num_rows()).collect();
        // Stable sort: ties keep input order, giving deterministic output.
        indices.sort_by(|&a, &b| cmp_rows(&key_cols, a, b));
        Ok(Some(all.take(&indices)?))
    }

    fn name(&self) -> &'static str {
        "Sort"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::col;
    use crate::logical::{asc, desc};
    use crate::physical::drain_one;
    use crate::physical::test_util::{int_batch, BatchSource};

    #[test]
    fn single_key_ascending() {
        let batch = int_batch(&[("x", vec![3, 1, 2])]);
        let mut s = SortExec::new(Box::new(BatchSource::single(batch)), vec![asc(col("x"))]);
        let out = drain_one(&mut s).unwrap();
        assert_eq!(out.column(0).i64_data().unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn multi_key_mixed_direction() {
        let batch = int_batch(&[("g", vec![1, 2, 1, 2]), ("v", vec![5, 6, 7, 8])]);
        let mut s = SortExec::new(
            Box::new(BatchSource::single(batch)),
            vec![asc(col("g")), desc(col("v"))],
        );
        let out = drain_one(&mut s).unwrap();
        let g: Vec<i64> = out.column(0).i64_data().unwrap().to_vec();
        let v: Vec<i64> = out.column(1).i64_data().unwrap().to_vec();
        assert_eq!(g, vec![1, 1, 2, 2]);
        assert_eq!(v, vec![7, 5, 8, 6]);
    }

    #[test]
    fn sorts_across_batches() {
        let b1 = int_batch(&[("x", vec![5, 1])]);
        let b2 = int_batch(&[("x", vec![4, 2])]);
        let src = BatchSource::new(b1.schema().clone(), vec![b1, b2]);
        let mut s = SortExec::new(Box::new(src), vec![asc(col("x"))]);
        let out = drain_one(&mut s).unwrap();
        assert_eq!(out.column(0).i64_data().unwrap(), &[1, 2, 4, 5]);
    }

    #[test]
    fn nulls_sort_first() {
        use backbone_storage::{Column as C, DataType, Field};
        let schema = Schema::new(vec![Field::nullable("x", DataType::Int64)]);
        let batch = RecordBatch::try_new(
            schema,
            vec![Arc::new(C::from_opt_i64(vec![Some(2), None, Some(1)]))],
        )
        .unwrap();
        let mut s = SortExec::new(Box::new(BatchSource::single(batch)), vec![asc(col("x"))]);
        let out = drain_one(&mut s).unwrap();
        assert!(out.column(0).is_null(0));
        assert_eq!(out.column(0).value(1), backbone_storage::Value::Int(1));
    }

    #[test]
    fn empty_input() {
        let batch = int_batch(&[("x", vec![])]);
        let mut s = SortExec::new(Box::new(BatchSource::single(batch)), vec![asc(col("x"))]);
        let out = drain_one(&mut s).unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn sort_by_expression() {
        use crate::expr::lit;
        let batch = int_batch(&[("x", vec![1, 2, 3])]);
        // Sort by -x == descending by x.
        let mut s = SortExec::new(
            Box::new(BatchSource::single(batch)),
            vec![asc(lit(0i64).sub(col("x")))],
        );
        let out = drain_one(&mut s).unwrap();
        assert_eq!(out.column(0).i64_data().unwrap(), &[3, 2, 1]);
    }
}
