//! Limit operator.

use super::Operator;
use crate::error::Result;
use backbone_storage::{RecordBatch, Schema};
use std::sync::Arc;

/// Emits at most `n` rows from its input, then stops pulling.
pub struct LimitExec {
    input: Box<dyn Operator>,
    remaining: usize,
}

impl LimitExec {
    /// Wrap `input` with a row budget of `n`.
    pub fn new(input: Box<dyn Operator>, n: usize) -> LimitExec {
        LimitExec {
            input,
            remaining: n,
        }
    }
}

impl Operator for LimitExec {
    fn schema(&self) -> Arc<Schema> {
        self.input.schema()
    }

    fn next(&mut self) -> Result<Option<RecordBatch>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let Some(batch) = self.input.next()? else {
            return Ok(None);
        };
        if batch.num_rows() <= self.remaining {
            self.remaining -= batch.num_rows();
            Ok(Some(batch))
        } else {
            let out = batch.slice(0, self.remaining)?;
            self.remaining = 0;
            Ok(Some(out))
        }
    }

    fn name(&self) -> &'static str {
        "Limit"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::drain_one;
    use crate::physical::test_util::{int_batch, BatchSource};

    #[test]
    fn truncates_mid_batch() {
        let batch = int_batch(&[("x", vec![1, 2, 3, 4, 5])]);
        let mut l = LimitExec::new(Box::new(BatchSource::single(batch)), 3);
        let out = drain_one(&mut l).unwrap();
        assert_eq!(out.column(0).i64_data().unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn spans_batches_and_stops_pulling() {
        let b1 = int_batch(&[("x", vec![1, 2])]);
        let b2 = int_batch(&[("x", vec![3, 4])]);
        let b3 = int_batch(&[("x", vec![5, 6])]);
        let src = BatchSource::new(b1.schema().clone(), vec![b1, b2, b3]);
        let mut l = LimitExec::new(Box::new(src), 3);
        let out = drain_one(&mut l).unwrap();
        assert_eq!(out.column(0).i64_data().unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn zero_limit() {
        let batch = int_batch(&[("x", vec![1])]);
        let mut l = LimitExec::new(Box::new(BatchSource::single(batch)), 0);
        assert!(l.next().unwrap().is_none());
    }
}
