//! Filter operator.

use super::Operator;
use crate::error::Result;
use crate::eval::eval_predicate;
use crate::expr::Expr;
use backbone_storage::{RecordBatch, Schema};
use std::sync::Arc;

/// Keeps rows of its input for which the predicate evaluates to TRUE.
pub struct FilterExec {
    input: Box<dyn Operator>,
    predicate: Expr,
}

impl FilterExec {
    /// Wrap `input` with a predicate.
    pub fn new(input: Box<dyn Operator>, predicate: Expr) -> FilterExec {
        FilterExec { input, predicate }
    }
}

impl Operator for FilterExec {
    fn schema(&self) -> Arc<Schema> {
        self.input.schema()
    }

    fn next(&mut self) -> Result<Option<RecordBatch>> {
        // Skip batches that filter to empty rather than emitting empties.
        while let Some(batch) = self.input.next()? {
            let mask = eval_predicate(&self.predicate, &batch)?;
            // Pass survivors downstream as a selection view: no column is
            // compacted here, kernels below iterate the selected lanes.
            let out = batch.select_mask(&mask)?;
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
        Ok(None)
    }

    fn name(&self) -> &'static str {
        "Filter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::physical::drain_one;
    use crate::physical::test_util::{int_batch, BatchSource};

    #[test]
    fn filters_rows() {
        let batch = int_batch(&[("x", vec![1, 2, 3, 4, 5])]);
        let src = BatchSource::single(batch);
        let mut f = FilterExec::new(Box::new(src), col("x").gt(lit(3i64)));
        let out = drain_one(&mut f).unwrap();
        assert_eq!(out.column(0).i64_data().unwrap(), &[4, 5]);
    }

    #[test]
    fn skips_empty_batches() {
        let b1 = int_batch(&[("x", vec![1, 2])]);
        let b2 = int_batch(&[("x", vec![10, 20])]);
        let src = BatchSource::new(b1.schema().clone(), vec![b1, b2]);
        let mut f = FilterExec::new(Box::new(src), col("x").gt_eq(lit(10i64)));
        let first = f.next().unwrap().unwrap();
        assert_eq!(first.num_rows(), 2);
        assert!(f.next().unwrap().is_none());
    }

    #[test]
    fn all_filtered_yields_none() {
        let batch = int_batch(&[("x", vec![1, 2, 3])]);
        let mut f = FilterExec::new(
            Box::new(BatchSource::single(batch)),
            col("x").gt(lit(99i64)),
        );
        assert!(f.next().unwrap().is_none());
    }
}
