//! Shared machinery for morsel-driven parallel operators.
//!
//! Three pieces, reused by every parallel operator:
//!
//! - [`StealQueues`]: per-worker deques of morsel indices with LIFO stealing.
//!   Each scan worker drains its own range front-to-back and steals from the
//!   back of a victim's queue when it runs dry, so contiguous row groups stay
//!   with one worker (locality) while skew still balances out.
//! - [`SharedSource`]: a mutex around a pulled child operator. Breaker
//!   operators (aggregate, join probe, top-k) spawn workers that pull batches
//!   through it; the lock only covers the child's `next()` — when the child
//!   is a parallel scan that is one cheap channel receive, so the expensive
//!   per-batch kernel work happens outside the lock, on the worker.
//! - [`ParallelProfile`]: shared atomic counters (workers, morsels, steals,
//!   merge time) that the operator fills in while running and EXPLAIN
//!   ANALYZE renders next to the per-operator row counts.
//!
//! Per-worker engine-truth counters land in the [`Metrics`] registry under
//! `op.<scope>.worker.<i>.{morsels,rows}` via [`record_worker`].

use super::Operator;
use crate::error::Result;
use backbone_storage::metrics::{Counter, Metrics};
use backbone_storage::RecordBatch;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Live counters describing one operator's parallel execution, shared
/// between the running operator and its EXPLAIN ANALYZE profile node.
#[derive(Debug, Clone, Default)]
pub struct ParallelProfile {
    /// Worker threads spawned.
    pub workers: Counter,
    /// Morsels (row groups or input batches) processed across all workers.
    pub morsels: Counter,
    /// Morsels taken from another worker's queue.
    pub steals: Counter,
    /// Nanoseconds spent merging per-worker partial states.
    pub merge_ns: Counter,
}

/// Work-stealing queues over `0..items` morsel indices, split into
/// contiguous per-worker ranges.
pub(crate) struct StealQueues {
    queues: Vec<Mutex<VecDeque<usize>>>,
}

impl StealQueues {
    /// Split `items` morsels into `workers` contiguous runs.
    pub fn split(items: usize, workers: usize) -> StealQueues {
        let workers = workers.max(1);
        let mut queues: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        // Distribute remainder one-per-queue so runs differ by at most one.
        let base = items / workers;
        let extra = items % workers;
        let mut next = 0;
        for (w, q) in queues.iter_mut().enumerate() {
            let len = base + usize::from(w < extra);
            let dq = q.get_mut().expect("fresh queue lock");
            dq.extend(next..next + len);
            next += len;
        }
        StealQueues { queues }
    }

    /// Next morsel for `worker`: its own queue front, else steal from the
    /// back of the first non-empty victim. Returns `(index, stolen)`.
    pub fn pop(&self, worker: usize) -> Option<(usize, bool)> {
        if let Some(g) = self.queues[worker].lock().expect("queue lock").pop_front() {
            return Some((g, false));
        }
        let n = self.queues.len();
        for d in 1..n {
            let victim = (worker + d) % n;
            if let Some(g) = self.queues[victim].lock().expect("queue lock").pop_back() {
                return Some((g, true));
            }
        }
        None
    }
}

/// A pulled child operator shared by worker threads. Lock scope is exactly
/// one `next()` call.
pub(crate) struct SharedSource<'a> {
    inner: Mutex<&'a mut dyn Operator>,
}

impl<'a> SharedSource<'a> {
    pub fn new(op: &'a mut dyn Operator) -> SharedSource<'a> {
        SharedSource {
            inner: Mutex::new(op),
        }
    }

    /// Pull the next batch on behalf of one worker.
    pub fn next(&self) -> Result<Option<RecordBatch>> {
        self.inner.lock().expect("source lock").next()
    }
}

/// Record one worker's morsel/row totals under
/// `op.<scope>.worker.<worker>.*`.
pub(crate) fn record_worker(
    metrics: Option<&Metrics>,
    scope: &str,
    worker: usize,
    morsels: u64,
    rows: u64,
) {
    if let Some(m) = metrics {
        m.counter(&format!("op.{scope}.worker.{worker}.morsels"))
            .add(morsels);
        m.counter(&format!("op.{scope}.worker.{worker}.rows"))
            .add(rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::test_util::{int_batch, BatchSource};

    #[test]
    fn split_covers_every_index_exactly_once() {
        let q = StealQueues::split(11, 3);
        let mut seen = [false; 11];
        let mut steals = 0;
        // Worker 2 drains everything: its own run plus two stolen runs.
        while let Some((g, stolen)) = q.pop(2) {
            assert!(!seen[g], "morsel {g} served twice");
            seen[g] = true;
            steals += usize::from(stolen);
        }
        assert!(seen.iter().all(|&s| s));
        assert!(steals > 0, "cross-queue pops must count as steals");
        assert!(q.pop(0).is_none());
    }

    #[test]
    fn split_handles_more_workers_than_items() {
        let q = StealQueues::split(2, 8);
        assert!(q.pop(7).is_some());
        assert!(q.pop(7).is_some());
        assert!(q.pop(0).is_none());
    }

    #[test]
    fn shared_source_serves_workers_to_exhaustion() {
        let batches: Vec<_> = (0..6).map(|i| int_batch(&[("x", vec![i])])).collect();
        let schema = batches[0].schema().clone();
        let mut src = BatchSource::new(schema, batches);
        let shared = SharedSource::new(&mut src);
        let got = std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let shared = &shared;
                    s.spawn(move || {
                        let mut n = 0;
                        while let Some(b) = shared.next().unwrap() {
                            n += b.num_rows();
                        }
                        n
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .sum::<usize>()
        });
        assert_eq!(got, 6);
    }

    #[test]
    fn worker_counters_land_in_registry() {
        let m = Metrics::new();
        record_worker(Some(&m), "scan", 3, 5, 120);
        assert_eq!(m.value("op.scan.worker.3.morsels"), 5);
        assert_eq!(m.value("op.scan.worker.3.rows"), 120);
        record_worker(None, "scan", 0, 1, 1); // no registry: no-op
    }
}
