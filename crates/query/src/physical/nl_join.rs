//! Nested-loop join: the baseline the optimizer experiments compare against.

use super::{drain, Operator};
use crate::error::Result;
use crate::eval::eval_predicate;
use crate::expr::Expr;
use backbone_storage::{Column, RecordBatch, Schema};
use std::sync::Arc;

/// Quadratic join with an arbitrary (not necessarily equi-) predicate over
/// the combined row. Used as the unoptimized baseline in E6 and for
/// non-equi join conditions.
pub struct NestedLoopJoinExec {
    left: Option<Box<dyn Operator>>,
    right: Option<Box<dyn Operator>>,
    predicate: Option<Expr>,
    schema: Arc<Schema>,
    output: Option<std::vec::IntoIter<RecordBatch>>,
}

impl NestedLoopJoinExec {
    /// Build a nested-loop join. `predicate` of `None` yields the cross
    /// product.
    pub fn new(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        predicate: Option<Expr>,
    ) -> NestedLoopJoinExec {
        let schema = left.schema().join(&right.schema());
        NestedLoopJoinExec {
            left: Some(left),
            right: Some(right),
            predicate,
            schema,
            output: None,
        }
    }

    fn compute(&mut self) -> Result<Vec<RecordBatch>> {
        let mut left = self.left.take().expect("computed once");
        let mut right = self.right.take().expect("computed once");
        let lschema = left.schema();
        let rschema = right.schema();
        let lbatch = RecordBatch::concat(lschema, &drain(left.as_mut())?)?;
        let rbatch = RecordBatch::concat(rschema, &drain(right.as_mut())?)?;
        let ln = lbatch.num_rows();
        let rn = rbatch.num_rows();
        if ln == 0 || rn == 0 {
            return Ok(vec![]);
        }
        // Materialize the cross product in row-chunks to bound memory.
        const CHUNK: usize = 4096;
        let mut out = Vec::new();
        let mut li = Vec::with_capacity(CHUNK);
        let mut ri = Vec::with_capacity(CHUNK);
        let mut flush = |li: &mut Vec<usize>, ri: &mut Vec<usize>| -> Result<()> {
            if li.is_empty() {
                return Ok(());
            }
            let lpart = lbatch.take(li)?;
            let rpart = rbatch.take(ri)?;
            let mut cols: Vec<Arc<Column>> = lpart.columns().to_vec();
            cols.extend(rpart.columns().iter().cloned());
            let combined = RecordBatch::try_new(self.schema.clone(), cols)?;
            let kept = match &self.predicate {
                None => combined,
                Some(p) => {
                    let mask = eval_predicate(p, &combined)?;
                    combined.filter(&mask)?
                }
            };
            if !kept.is_empty() {
                out.push(kept);
            }
            li.clear();
            ri.clear();
            Ok(())
        };
        for l in 0..ln {
            for r in 0..rn {
                li.push(l);
                ri.push(r);
                if li.len() == CHUNK {
                    flush(&mut li, &mut ri)?;
                }
            }
        }
        flush(&mut li, &mut ri)?;
        Ok(out)
    }
}

impl Operator for NestedLoopJoinExec {
    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn next(&mut self) -> Result<Option<RecordBatch>> {
        if self.output.is_none() {
            let batches = self.compute()?;
            self.output = Some(batches.into_iter());
        }
        Ok(self.output.as_mut().unwrap().next())
    }

    fn name(&self) -> &'static str {
        "NestedLoopJoin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::physical::drain_one;
    use crate::physical::test_util::{int_batch, BatchSource};

    #[test]
    fn cross_product() {
        let lb = int_batch(&[("a", vec![1, 2])]);
        let rb = int_batch(&[("b", vec![10, 20, 30])]);
        let mut j = NestedLoopJoinExec::new(
            Box::new(BatchSource::single(lb)),
            Box::new(BatchSource::single(rb)),
            None,
        );
        let out = drain_one(&mut j).unwrap();
        assert_eq!(out.num_rows(), 6);
    }

    #[test]
    fn predicate_join_matches_hash_join() {
        use crate::logical::JoinType;
        use crate::physical::HashJoinExec;
        let l = vec![("id", vec![1i64, 2, 3, 4]), ("x", vec![5i64, 6, 7, 8])];
        let r = vec![("rid", vec![2i64, 4, 9]), ("y", vec![1i64, 2, 3])];
        let mut nl = NestedLoopJoinExec::new(
            Box::new(BatchSource::single(int_batch(&l))),
            Box::new(BatchSource::single(int_batch(&r))),
            Some(col("id").eq(col("rid"))),
        );
        let mut hj = HashJoinExec::new(
            Box::new(BatchSource::single(int_batch(&l))),
            Box::new(BatchSource::single(int_batch(&r))),
            vec![("id".to_string(), "rid".to_string())],
            JoinType::Inner,
        )
        .unwrap();
        let mut a = drain_one(&mut nl).unwrap().to_rows();
        let mut b = drain_one(&mut hj).unwrap().to_rows();
        let key = |r: &Vec<backbone_storage::Value>| format!("{r:?}");
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn non_equi_predicate() {
        let lb = int_batch(&[("a", vec![1, 5])]);
        let rb = int_batch(&[("b", vec![3])]);
        let mut j = NestedLoopJoinExec::new(
            Box::new(BatchSource::single(lb)),
            Box::new(BatchSource::single(rb)),
            Some(col("a").gt(col("b"))),
        );
        let out = drain_one(&mut j).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.column(0).i64_data().unwrap(), &[5]);
    }

    #[test]
    fn empty_side_yields_empty() {
        let lb = int_batch(&[("a", vec![])]);
        let rb = int_batch(&[("b", vec![1, 2])]);
        let mut j = NestedLoopJoinExec::new(
            Box::new(BatchSource::single(lb)),
            Box::new(BatchSource::single(rb)),
            None,
        );
        let out = drain_one(&mut j).unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn constant_false_predicate() {
        let lb = int_batch(&[("a", vec![1, 2, 3])]);
        let rb = int_batch(&[("b", vec![1, 2, 3])]);
        let mut j = NestedLoopJoinExec::new(
            Box::new(BatchSource::single(lb)),
            Box::new(BatchSource::single(rb)),
            Some(lit(false)),
        );
        let out = drain_one(&mut j).unwrap();
        assert_eq!(out.num_rows(), 0);
    }
}
