//! Hash aggregation.
//!
//! Columnar, selection-aware implementation: group keys are hashed column-
//! wise with [`Column::hash_combine`] (one mixing pass per key column, no
//! `Value` boxing), group ids come from an open-addressing table pre-sized to
//! the first batch, and every aggregate maintains a **typed accumulator
//! vector indexed by group id** so the update pass is a tight loop over one
//! column at a time. A global aggregate (no keys) skips hashing entirely.

use super::{for_each_lane, Operator};
use crate::error::{QueryError, Result};
use crate::eval::eval_arc;
use crate::expr::{AggExpr, AggFunc, Expr};
use backbone_storage::{Bitmap, Column, DataType, Field, Metrics, RecordBatch, Schema, Value};
use std::sync::Arc;
use std::time::Instant;

/// Open-addressing hash table mapping key hashes to dense group ids.
/// Collisions are resolved by the caller-supplied key-equality closure, so
/// the table itself never touches key data.
struct GroupTable {
    /// `group_id + 1`; 0 marks an empty slot.
    slots: Vec<u32>,
    hashes: Vec<u64>,
    mask: usize,
    len: usize,
}

impl GroupTable {
    fn with_capacity(groups: usize) -> GroupTable {
        let cap = (groups.max(8) * 2).next_power_of_two();
        GroupTable {
            slots: vec![0; cap],
            hashes: vec![0; cap],
            mask: cap - 1,
            len: 0,
        }
    }

    /// Look up `hash`, verifying candidates with `eq(group_id)`; insert as
    /// `next_id` when absent. Returns `(group_id, inserted)`.
    fn find_or_insert(&mut self, hash: u64, next_id: u32, eq: impl Fn(u32) -> bool) -> (u32, bool) {
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mut idx = (hash as usize) & self.mask;
        loop {
            let s = self.slots[idx];
            if s == 0 {
                self.slots[idx] = next_id + 1;
                self.hashes[idx] = hash;
                self.len += 1;
                return (next_id, true);
            }
            if self.hashes[idx] == hash && eq(s - 1) {
                return (s - 1, false);
            }
            idx = (idx + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let cap = self.slots.len() * 2;
        let mut slots = vec![0u32; cap];
        let mut hashes = vec![0u64; cap];
        let mask = cap - 1;
        for (&s, &h) in self.slots.iter().zip(&self.hashes) {
            if s != 0 {
                let mut idx = (h as usize) & mask;
                while slots[idx] != 0 {
                    idx = (idx + 1) & mask;
                }
                slots[idx] = s;
                hashes[idx] = h;
            }
        }
        self.slots = slots;
        self.hashes = hashes;
        self.mask = mask;
    }
}

/// One typed accumulator vector per aggregate, indexed by group id.
enum AccVec {
    /// COUNT / COUNT(*).
    Count(Vec<i64>),
    SumI {
        sums: Vec<i64>,
        seen: Vec<bool>,
    },
    SumF {
        sums: Vec<f64>,
        seen: Vec<bool>,
    },
    Avg {
        sums: Vec<f64>,
        counts: Vec<i64>,
    },
    MinMaxI {
        vals: Vec<i64>,
        seen: Vec<bool>,
        min: bool,
    },
    MinMaxF {
        vals: Vec<f64>,
        seen: Vec<bool>,
        min: bool,
    },
    MinMaxS {
        vals: Vec<String>,
        seen: Vec<bool>,
        min: bool,
    },
    MinMaxB {
        vals: Vec<bool>,
        seen: Vec<bool>,
        min: bool,
    },
}

impl AccVec {
    fn new(func: AggFunc, input_dt: DataType) -> AccVec {
        match func {
            AggFunc::Count | AggFunc::CountStar => AccVec::Count(Vec::new()),
            AggFunc::Sum => match input_dt {
                DataType::Float64 => AccVec::SumF {
                    sums: Vec::new(),
                    seen: Vec::new(),
                },
                // Non-numeric SUM is rejected at plan time (AggExpr::data_type).
                _ => AccVec::SumI {
                    sums: Vec::new(),
                    seen: Vec::new(),
                },
            },
            AggFunc::Avg => AccVec::Avg {
                sums: Vec::new(),
                counts: Vec::new(),
            },
            AggFunc::Min | AggFunc::Max => {
                let min = func == AggFunc::Min;
                match input_dt {
                    DataType::Int64 => AccVec::MinMaxI {
                        vals: Vec::new(),
                        seen: Vec::new(),
                        min,
                    },
                    DataType::Float64 => AccVec::MinMaxF {
                        vals: Vec::new(),
                        seen: Vec::new(),
                        min,
                    },
                    DataType::Utf8 => AccVec::MinMaxS {
                        vals: Vec::new(),
                        seen: Vec::new(),
                        min,
                    },
                    DataType::Bool => AccVec::MinMaxB {
                        vals: Vec::new(),
                        seen: Vec::new(),
                        min,
                    },
                }
            }
        }
    }

    /// Append default state for one newly created group.
    fn push_group(&mut self) {
        match self {
            AccVec::Count(c) => c.push(0),
            AccVec::SumI { sums, seen } => {
                sums.push(0);
                seen.push(false);
            }
            AccVec::SumF { sums, seen } => {
                sums.push(0.0);
                seen.push(false);
            }
            AccVec::Avg { sums, counts } => {
                sums.push(0.0);
                counts.push(0);
            }
            AccVec::MinMaxI { vals, seen, .. } => {
                vals.push(0);
                seen.push(false);
            }
            AccVec::MinMaxF { vals, seen, .. } => {
                vals.push(0.0);
                seen.push(false);
            }
            AccVec::MinMaxS { vals, seen, .. } => {
                vals.push(String::new());
                seen.push(false);
            }
            AccVec::MinMaxB { vals, seen, .. } => {
                vals.push(false);
                seen.push(false);
            }
        }
    }

    /// Fold one batch's lanes into the accumulators. `gids[pos]` is the group
    /// for logical row `pos`; `input` is `None` only for COUNT(*).
    fn update_batch(
        &mut self,
        gids: &[u32],
        sel: Option<&[u32]>,
        n: usize,
        input: Option<&Column>,
    ) -> Result<()> {
        match self {
            AccVec::Count(counts) => match input {
                None => {
                    // COUNT(*): every lane counts.
                    for &g in gids {
                        counts[g as usize] += 1;
                    }
                }
                Some(col) => {
                    let validity = col.validity();
                    for_each_lane(sel, n, |pos, base| {
                        if validity.get(base) {
                            counts[gids[pos] as usize] += 1;
                        }
                    });
                }
            },
            AccVec::SumI { sums, seen } => {
                let col = input.expect("SUM has an input");
                match col {
                    Column::Int64(v, bm) => {
                        let mut overflow = false;
                        for_each_lane(sel, n, |pos, base| {
                            if bm.get(base) {
                                let g = gids[pos] as usize;
                                match sums[g].checked_add(v[base]) {
                                    Some(s) => {
                                        sums[g] = s;
                                        seen[g] = true;
                                    }
                                    None => overflow = true,
                                }
                            }
                        });
                        if overflow {
                            return Err(QueryError::Arithmetic("SUM integer overflow".into()));
                        }
                    }
                    other => {
                        return Err(QueryError::InvalidExpression(format!(
                            "SUM over {}",
                            other.data_type()
                        )))
                    }
                }
            }
            AccVec::SumF { sums, seen } => {
                let col = input.expect("SUM has an input");
                match col {
                    Column::Float64(v, bm) => {
                        for_each_lane(sel, n, |pos, base| {
                            if bm.get(base) {
                                let g = gids[pos] as usize;
                                sums[g] += v[base];
                                seen[g] = true;
                            }
                        });
                    }
                    Column::Int64(v, bm) => {
                        for_each_lane(sel, n, |pos, base| {
                            if bm.get(base) {
                                let g = gids[pos] as usize;
                                sums[g] += v[base] as f64;
                                seen[g] = true;
                            }
                        });
                    }
                    other => {
                        return Err(QueryError::InvalidExpression(format!(
                            "SUM over {}",
                            other.data_type()
                        )))
                    }
                }
            }
            AccVec::Avg { sums, counts } => {
                let col = input.expect("AVG has an input");
                match col {
                    Column::Float64(v, bm) => {
                        for_each_lane(sel, n, |pos, base| {
                            if bm.get(base) {
                                let g = gids[pos] as usize;
                                sums[g] += v[base];
                                counts[g] += 1;
                            }
                        });
                    }
                    Column::Int64(v, bm) => {
                        for_each_lane(sel, n, |pos, base| {
                            if bm.get(base) {
                                let g = gids[pos] as usize;
                                sums[g] += v[base] as f64;
                                counts[g] += 1;
                            }
                        });
                    }
                    other => {
                        // Mirror the row-at-a-time error: only raised when a
                        // non-null value actually arrives.
                        let mut bad: Option<Value> = None;
                        for_each_lane(sel, n, |_, base| {
                            if bad.is_none() && !other.is_null(base) {
                                bad = Some(other.value(base));
                            }
                        });
                        if let Some(v) = bad {
                            return Err(QueryError::InvalidExpression(format!(
                                "AVG over non-numeric value {v}"
                            )));
                        }
                    }
                }
            }
            AccVec::MinMaxI { vals, seen, min } => {
                if let Some(Column::Int64(v, bm)) = input {
                    let min = *min;
                    for_each_lane(sel, n, |pos, base| {
                        if bm.get(base) {
                            let g = gids[pos] as usize;
                            let x = v[base];
                            if !seen[g] || (min && x < vals[g]) || (!min && x > vals[g]) {
                                vals[g] = x;
                                seen[g] = true;
                            }
                        }
                    });
                }
            }
            AccVec::MinMaxF { vals, seen, min } => {
                if let Some(Column::Float64(v, bm)) = input {
                    let min = *min;
                    for_each_lane(sel, n, |pos, base| {
                        if bm.get(base) {
                            let g = gids[pos] as usize;
                            let x = v[base];
                            // sql_cmp treats incomparable floats as equal, so
                            // NaN never replaces an existing extreme.
                            let ord = x.partial_cmp(&vals[g]).unwrap_or(std::cmp::Ordering::Equal);
                            let better = if min {
                                ord == std::cmp::Ordering::Less
                            } else {
                                ord == std::cmp::Ordering::Greater
                            };
                            if !seen[g] || better {
                                vals[g] = x;
                                seen[g] = true;
                            }
                        }
                    });
                }
            }
            AccVec::MinMaxS { vals, seen, min } => match input {
                Some(Column::Utf8(v, bm)) => {
                    let min = *min;
                    for_each_lane(sel, n, |pos, base| {
                        if bm.get(base) {
                            let g = gids[pos] as usize;
                            let x = &v[base];
                            if !seen[g] || (min && *x < vals[g]) || (!min && *x > vals[g]) {
                                vals[g] = x.clone();
                                seen[g] = true;
                            }
                        }
                    });
                }
                Some(c @ Column::DictUtf8 { .. }) => {
                    let (dict, codes, bm) = c.dict_parts().expect("matched dict");
                    let min = *min;
                    for_each_lane(sel, n, |pos, base| {
                        if bm.get(base) {
                            let g = gids[pos] as usize;
                            let x = dict[codes[base] as usize].as_str();
                            if !seen[g]
                                || (min && x < vals[g].as_str())
                                || (!min && x > vals[g].as_str())
                            {
                                vals[g] = x.to_string();
                                seen[g] = true;
                            }
                        }
                    });
                }
                _ => {}
            },
            AccVec::MinMaxB { vals, seen, min } => {
                if let Some(Column::Bool(v, bm)) = input {
                    let min = *min;
                    for_each_lane(sel, n, |pos, base| {
                        if bm.get(base) {
                            let g = gids[pos] as usize;
                            let x = v[base];
                            if !seen[g] || (min && !x & vals[g]) || (!min && x & !vals[g]) {
                                vals[g] = x;
                                seen[g] = true;
                            }
                        }
                    });
                }
            }
        }
        Ok(())
    }

    /// Emit the output column across all groups.
    fn finish(self) -> Column {
        fn with_seen<T>(
            vals: Vec<T>,
            seen: Vec<bool>,
            build: impl Fn(Vec<T>, Bitmap) -> Column,
        ) -> Column {
            let bm = Bitmap::from_bools(&seen);
            build(vals, bm)
        }
        match self {
            AccVec::Count(c) => Column::from_i64(c),
            AccVec::SumI { sums, seen } => with_seen(sums, seen, Column::Int64),
            AccVec::SumF { sums, seen } => with_seen(sums, seen, Column::Float64),
            AccVec::Avg { sums, counts } => {
                let seen: Vec<bool> = counts.iter().map(|&c| c > 0).collect();
                let vals: Vec<f64> = sums
                    .iter()
                    .zip(&counts)
                    .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
                    .collect();
                with_seen(vals, seen, Column::Float64)
            }
            AccVec::MinMaxI { vals, seen, .. } => with_seen(vals, seen, Column::Int64),
            AccVec::MinMaxF { vals, seen, .. } => with_seen(vals, seen, Column::Float64),
            AccVec::MinMaxS { vals, seen, .. } => with_seen(vals, seen, Column::Utf8),
            AccVec::MinMaxB { vals, seen, .. } => with_seen(vals, seen, Column::Bool),
        }
    }
}

/// Hash aggregate: consumes all input, groups by key expressions, and emits
/// one row per group (first-appearance order).
pub struct HashAggregateExec {
    input: Box<dyn Operator>,
    group_by: Vec<Expr>,
    aggs: Vec<AggExpr>,
    schema: Arc<Schema>,
    key_types: Vec<DataType>,
    agg_input_types: Vec<DataType>,
    metrics: Option<Metrics>,
    done: bool,
}

impl HashAggregateExec {
    /// Build an aggregation over `input`.
    pub fn new(
        input: Box<dyn Operator>,
        group_by: Vec<Expr>,
        aggs: Vec<AggExpr>,
    ) -> Result<HashAggregateExec> {
        let in_schema = input.schema();
        let mut fields = Vec::with_capacity(group_by.len() + aggs.len());
        let mut key_types = Vec::with_capacity(group_by.len());
        for g in &group_by {
            let dt = g.data_type(&in_schema)?;
            key_types.push(dt);
            fields.push(Field::nullable(g.output_name(), dt));
        }
        let mut agg_input_types = Vec::with_capacity(aggs.len());
        for a in &aggs {
            fields.push(Field::nullable(a.name.clone(), a.data_type(&in_schema)?));
            agg_input_types.push(a.input.data_type(&in_schema).unwrap_or(DataType::Int64));
        }
        Ok(HashAggregateExec {
            input,
            group_by,
            aggs,
            schema: Schema::new(fields),
            key_types,
            agg_input_types,
            metrics: None,
            done: false,
        })
    }

    /// Record per-kernel timers into `metrics` under `op.aggregate.kernel.*`.
    pub fn with_metrics(mut self, metrics: Option<Metrics>) -> Self {
        self.metrics = metrics;
        self
    }
}

impl Operator for HashAggregateExec {
    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn next(&mut self) -> Result<Option<RecordBatch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;

        let nkeys = self.group_by.len();
        let mut key_stores: Vec<Column> =
            self.key_types.iter().map(|&dt| Column::empty(dt)).collect();
        let mut accs: Vec<AccVec> = self
            .aggs
            .iter()
            .zip(&self.agg_input_types)
            .map(|(a, &dt)| AccVec::new(a.func, dt))
            .collect();
        let mut table = GroupTable::with_capacity(256);
        let mut n_groups: u32 = 0;

        let mut hash_ns = 0u64;
        let mut update_ns = 0u64;
        let mut dict_key_rows = 0u64;
        let mut hashes: Vec<u64> = Vec::new();
        let mut gids: Vec<u32> = Vec::new();

        while let Some(batch) = self.input.next()? {
            let n = batch.num_rows();
            if n == 0 && nkeys > 0 {
                continue;
            }
            let sel = batch.selection();
            let base = batch.base_rows();

            let key_cols: Vec<Arc<Column>> = self
                .group_by
                .iter()
                .map(|g| eval_arc(g, &batch))
                .collect::<Result<_>>()?;
            // COUNT(*) needs no input column at all.
            let agg_cols: Vec<Option<Arc<Column>>> = self
                .aggs
                .iter()
                .map(|a| match a.func {
                    AggFunc::CountStar => Ok(None),
                    _ => eval_arc(&a.input, &batch).map(Some),
                })
                .collect::<Result<_>>()?;

            // Pass 1: assign a group id to every lane.
            let t0 = Instant::now();
            gids.clear();
            gids.resize(n, 0);
            if nkeys == 0 {
                // Global aggregate: one group, no hashing.
                if n_groups == 0 && n > 0 {
                    n_groups = 1;
                    for acc in &mut accs {
                        acc.push_group();
                    }
                }
            } else {
                hashes.clear();
                hashes.resize(base, 0);
                for kc in &key_cols {
                    kc.hash_combine(sel, &mut hashes);
                }
                if key_cols.iter().any(|kc| kc.is_dict()) {
                    dict_key_rows += n as u64;
                }
                let mut insert_err: Option<QueryError> = None;
                for_each_lane(sel, n, |pos, base_row| {
                    if insert_err.is_some() {
                        return;
                    }
                    let h = hashes[base_row];
                    let (gid, inserted) = table.find_or_insert(h, n_groups, |g| {
                        key_stores
                            .iter()
                            .zip(&key_cols)
                            .all(|(store, kc)| store.eq_rows_null_eq(g as usize, kc, base_row))
                    });
                    if inserted {
                        n_groups += 1;
                        for (store, kc) in key_stores.iter_mut().zip(&key_cols) {
                            if let Err(e) = store.push_from(kc, base_row) {
                                insert_err = Some(e.into());
                                return;
                            }
                        }
                        for acc in &mut accs {
                            acc.push_group();
                        }
                    }
                    gids[pos] = gid;
                });
                if let Some(e) = insert_err {
                    return Err(e);
                }
            }
            hash_ns += t0.elapsed().as_nanos() as u64;

            // Pass 2: columnar accumulator update, one aggregate at a time.
            let t1 = Instant::now();
            for (acc, col) in accs.iter_mut().zip(&agg_cols) {
                acc.update_batch(&gids, sel, n, col.as_deref())?;
            }
            update_ns += t1.elapsed().as_nanos() as u64;
        }

        // Global aggregation over an empty input still yields one row
        // (COUNT(*) = 0, SUM = NULL, ...), matching SQL.
        if n_groups == 0 && nkeys == 0 {
            n_groups = 1;
            for acc in &mut accs {
                acc.push_group();
            }
        }

        if let Some(m) = &self.metrics {
            m.counter("op.aggregate.kernel.hash_ns").add(hash_ns);
            m.counter("op.aggregate.kernel.update_ns").add(update_ns);
            m.counter("op.aggregate.kernel.groups").add(n_groups as u64);
            if dict_key_rows > 0 {
                m.counter("op.aggregate.kernel.dict_key_rows")
                    .add(dict_key_rows);
            }
        }

        let mut columns: Vec<Arc<Column>> = Vec::with_capacity(nkeys + self.aggs.len());
        for store in key_stores {
            columns.push(Arc::new(store));
        }
        for acc in accs {
            columns.push(Arc::new(acc.finish()));
        }
        Ok(Some(RecordBatch::try_new(self.schema.clone(), columns)?))
    }

    fn name(&self) -> &'static str {
        "HashAggregate"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{avg, col, count, count_star, lit, max, min, sum};
    use crate::physical::drain_one;
    use crate::physical::test_util::{int_batch, BatchSource};

    #[test]
    fn grouped_sums() {
        let batch = int_batch(&[("g", vec![1, 2, 1, 2, 1]), ("v", vec![10, 20, 30, 40, 50])]);
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::single(batch)),
            vec![col("g")],
            vec![sum(col("v")).alias("total"), count_star().alias("n")],
        )
        .unwrap();
        let out = drain_one(&mut agg).unwrap();
        assert_eq!(out.num_rows(), 2);
        let rows = out.to_rows();
        let g1 = rows.iter().find(|r| r[0] == Value::Int(1)).unwrap();
        assert_eq!(g1[1], Value::Int(90));
        assert_eq!(g1[2], Value::Int(3));
        let g2 = rows.iter().find(|r| r[0] == Value::Int(2)).unwrap();
        assert_eq!(g2[1], Value::Int(60));
    }

    #[test]
    fn global_aggregate_no_groups() {
        let batch = int_batch(&[("v", vec![1, 2, 3, 4])]);
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::single(batch)),
            vec![],
            vec![
                sum(col("v")),
                min(col("v")),
                max(col("v")),
                avg(col("v")),
                count(col("v")),
            ],
        )
        .unwrap();
        let out = drain_one(&mut agg).unwrap();
        assert_eq!(out.num_rows(), 1);
        let r = out.row(0);
        assert_eq!(r[0], Value::Int(10));
        assert_eq!(r[1], Value::Int(1));
        assert_eq!(r[2], Value::Int(4));
        assert_eq!(r[3], Value::Float(2.5));
        assert_eq!(r[4], Value::Int(4));
    }

    #[test]
    fn empty_input_global_aggregate() {
        let batch = int_batch(&[("v", vec![])]);
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::single(batch)),
            vec![],
            vec![count_star().alias("n"), sum(col("v")).alias("s")],
        )
        .unwrap();
        let out = drain_one(&mut agg).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0)[0], Value::Int(0));
        assert!(out.row(0)[1].is_null());
    }

    #[test]
    fn empty_input_grouped_aggregate_yields_no_rows() {
        let batch = int_batch(&[("g", vec![]), ("v", vec![])]);
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::single(batch)),
            vec![col("g")],
            vec![count_star()],
        )
        .unwrap();
        let out = drain_one(&mut agg).unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn count_skips_nulls_count_star_does_not() {
        use backbone_storage::{Column, DataType, Field};
        let schema = Schema::new(vec![Field::nullable("v", DataType::Int64)]);
        let batch = RecordBatch::try_new(
            schema,
            vec![Arc::new(Column::from_opt_i64(vec![Some(1), None, Some(3)]))],
        )
        .unwrap();
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::single(batch)),
            vec![],
            vec![count(col("v")).alias("c"), count_star().alias("cs")],
        )
        .unwrap();
        let out = drain_one(&mut agg).unwrap();
        assert_eq!(out.row(0)[0], Value::Int(2));
        assert_eq!(out.row(0)[1], Value::Int(3));
    }

    #[test]
    fn expression_group_keys() {
        let batch = int_batch(&[("v", vec![1, 2, 3, 4, 5, 6])]);
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::single(batch)),
            vec![col("v").modulo(lit(2i64)).alias("parity")],
            vec![count_star().alias("n")],
        )
        .unwrap();
        let out = drain_one(&mut agg).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert!(out.to_rows().iter().all(|r| r[1] == Value::Int(3)));
    }

    #[test]
    fn aggregate_across_batches() {
        let b1 = int_batch(&[("g", vec![1, 2]), ("v", vec![1, 1])]);
        let b2 = int_batch(&[("g", vec![1, 2]), ("v", vec![10, 10])]);
        let src = BatchSource::new(b1.schema().clone(), vec![b1, b2]);
        let mut agg = HashAggregateExec::new(
            Box::new(src),
            vec![col("g")],
            vec![sum(col("v")).alias("s")],
        )
        .unwrap();
        let out = drain_one(&mut agg).unwrap();
        let rows = out.to_rows();
        assert!(rows
            .iter()
            .any(|r| r[0] == Value::Int(1) && r[1] == Value::Int(11)));
    }

    #[test]
    fn sum_int_overflow_detected() {
        let batch = int_batch(&[("v", vec![i64::MAX, 1])]);
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::single(batch)),
            vec![],
            vec![sum(col("v"))],
        )
        .unwrap();
        assert!(matches!(agg.next(), Err(QueryError::Arithmetic(_))));
    }

    #[test]
    fn groups_emit_in_first_appearance_order() {
        let batch = int_batch(&[("g", vec![7, 3, 7, 9, 3]), ("v", vec![1, 1, 1, 1, 1])]);
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::single(batch)),
            vec![col("g")],
            vec![count_star().alias("n")],
        )
        .unwrap();
        let out = drain_one(&mut agg).unwrap();
        let keys: Vec<Value> = (0..out.num_rows()).map(|i| out.row(i)[0].clone()).collect();
        assert_eq!(keys, vec![Value::Int(7), Value::Int(3), Value::Int(9)]);
    }

    #[test]
    fn null_keys_group_together() {
        use backbone_storage::{Column, DataType, Field};
        let schema = Schema::new(vec![
            Field::nullable("g", DataType::Int64),
            Field::new("v", DataType::Int64),
        ]);
        let batch = RecordBatch::try_new(
            schema,
            vec![
                Arc::new(Column::from_opt_i64(vec![None, Some(1), None, Some(1)])),
                Arc::new(Column::from_i64(vec![10, 20, 30, 40])),
            ],
        )
        .unwrap();
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::single(batch)),
            vec![col("g")],
            vec![sum(col("v")).alias("s")],
        )
        .unwrap();
        let out = drain_one(&mut agg).unwrap();
        assert_eq!(out.num_rows(), 2);
        let rows = out.to_rows();
        assert!(rows
            .iter()
            .any(|r| r[0].is_null() && r[1] == Value::Int(40)));
        assert!(rows
            .iter()
            .any(|r| r[0] == Value::Int(1) && r[1] == Value::Int(60)));
    }

    #[test]
    fn aggregates_respect_selection_views() {
        let batch = int_batch(&[("g", vec![1, 1, 2, 2]), ("v", vec![10, 20, 30, 40])]);
        let view = batch.with_selection(Arc::new(vec![0, 3])).unwrap();
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::new(view.schema().clone(), vec![view])),
            vec![col("g")],
            vec![sum(col("v")).alias("s"), count_star().alias("n")],
        )
        .unwrap();
        let out = drain_one(&mut agg).unwrap();
        let rows = out.to_rows();
        assert_eq!(rows.len(), 2);
        assert!(rows
            .iter()
            .any(|r| r[0] == Value::Int(1) && r[1] == Value::Int(10) && r[2] == Value::Int(1)));
        assert!(rows
            .iter()
            .any(|r| r[0] == Value::Int(2) && r[1] == Value::Int(40) && r[2] == Value::Int(1)));
    }
}
