//! Hash aggregation.

use super::Operator;
use crate::error::{QueryError, Result};
use crate::eval::eval;
use crate::expr::{AggExpr, AggFunc, Expr};
use backbone_storage::{Column, Field, RecordBatch, Schema, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// One running accumulator per (group, aggregate).
#[derive(Debug, Clone)]
enum Acc {
    Count(i64),
    SumI(i64),
    SumF(f64),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg {
        sum: f64,
        count: i64,
    },
    /// Sum that has seen no non-null input yet (SQL: SUM of empties is NULL);
    /// becomes SumI/SumF on first value.
    SumEmpty,
}

impl Acc {
    fn new(func: AggFunc) -> Acc {
        match func {
            AggFunc::Count | AggFunc::CountStar => Acc::Count(0),
            AggFunc::Sum => Acc::SumEmpty,
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            AggFunc::Avg => Acc::Avg { sum: 0.0, count: 0 },
        }
    }

    fn update(&mut self, func: AggFunc, v: &Value) -> Result<()> {
        match func {
            AggFunc::CountStar => {
                if let Acc::Count(c) = self {
                    *c += 1;
                }
            }
            AggFunc::Count => {
                if !v.is_null() {
                    if let Acc::Count(c) = self {
                        *c += 1;
                    }
                }
            }
            AggFunc::Sum => {
                if v.is_null() {
                    return Ok(());
                }
                match (&mut *self, v) {
                    (Acc::SumEmpty, Value::Int(x)) => *self = Acc::SumI(*x),
                    (Acc::SumEmpty, Value::Float(x)) => *self = Acc::SumF(*x),
                    (Acc::SumI(s), Value::Int(x)) => {
                        *s = s
                            .checked_add(*x)
                            .ok_or_else(|| QueryError::Arithmetic("SUM integer overflow".into()))?;
                    }
                    (Acc::SumF(s), Value::Float(x)) => *s += x,
                    (Acc::SumF(s), Value::Int(x)) => *s += *x as f64,
                    (Acc::SumI(s), Value::Float(x)) => {
                        *self = Acc::SumF(*s as f64 + x);
                    }
                    _ => {
                        return Err(QueryError::InvalidExpression(format!(
                            "SUM over non-numeric value {v}"
                        )))
                    }
                }
            }
            AggFunc::Min => {
                if v.is_null() {
                    return Ok(());
                }
                if let Acc::Min(cur) = self {
                    match cur {
                        None => *cur = Some(v.clone()),
                        Some(m) if v.sql_cmp(m) == std::cmp::Ordering::Less => {
                            *cur = Some(v.clone())
                        }
                        _ => {}
                    }
                }
            }
            AggFunc::Max => {
                if v.is_null() {
                    return Ok(());
                }
                if let Acc::Max(cur) = self {
                    match cur {
                        None => *cur = Some(v.clone()),
                        Some(m) if v.sql_cmp(m) == std::cmp::Ordering::Greater => {
                            *cur = Some(v.clone())
                        }
                        _ => {}
                    }
                }
            }
            AggFunc::Avg => {
                if v.is_null() {
                    return Ok(());
                }
                if let Acc::Avg { sum, count } = self {
                    *sum += v.as_float().ok_or_else(|| {
                        QueryError::InvalidExpression(format!("AVG over non-numeric value {v}"))
                    })?;
                    *count += 1;
                }
            }
        }
        Ok(())
    }

    fn finish(&self) -> Value {
        match self {
            Acc::Count(c) => Value::Int(*c),
            Acc::SumI(s) => Value::Int(*s),
            Acc::SumF(s) => Value::Float(*s),
            Acc::SumEmpty => Value::Null,
            Acc::Min(v) | Acc::Max(v) => v.clone().unwrap_or(Value::Null),
            Acc::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / *count as f64)
                }
            }
        }
    }
}

/// Hash aggregate: consumes all input, groups by key expressions, and emits
/// one row per group.
pub struct HashAggregateExec {
    input: Box<dyn Operator>,
    group_by: Vec<Expr>,
    aggs: Vec<AggExpr>,
    schema: Arc<Schema>,
    done: bool,
}

impl HashAggregateExec {
    /// Build an aggregation over `input`.
    pub fn new(
        input: Box<dyn Operator>,
        group_by: Vec<Expr>,
        aggs: Vec<AggExpr>,
    ) -> Result<HashAggregateExec> {
        let in_schema = input.schema();
        let mut fields = Vec::with_capacity(group_by.len() + aggs.len());
        for g in &group_by {
            fields.push(Field::nullable(g.output_name(), g.data_type(&in_schema)?));
        }
        for a in &aggs {
            fields.push(Field::nullable(a.name.clone(), a.data_type(&in_schema)?));
        }
        Ok(HashAggregateExec {
            input,
            group_by,
            aggs,
            schema: Schema::new(fields),
            done: false,
        })
    }
}

impl Operator for HashAggregateExec {
    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn next(&mut self) -> Result<Option<RecordBatch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;

        // Keyed accumulators; key order of first appearance for stable output.
        let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
        let mut order: Vec<Vec<Value>> = Vec::new();
        let mut saw_rows = false;

        while let Some(batch) = self.input.next()? {
            saw_rows = saw_rows || batch.num_rows() > 0;
            let key_cols: Vec<Column> = self
                .group_by
                .iter()
                .map(|g| eval(g, &batch))
                .collect::<Result<_>>()?;
            let agg_cols: Vec<Column> = self
                .aggs
                .iter()
                .map(|a| eval(&a.input, &batch))
                .collect::<Result<_>>()?;
            for row in 0..batch.num_rows() {
                let key: Vec<Value> = key_cols.iter().map(|c| c.value(row)).collect();
                let accs = groups.entry(key.clone()).or_insert_with(|| {
                    order.push(key);
                    self.aggs.iter().map(|a| Acc::new(a.func)).collect()
                });
                for (acc, (a, col)) in accs.iter_mut().zip(self.aggs.iter().zip(&agg_cols)) {
                    acc.update(a.func, &col.value(row))?;
                }
            }
        }

        // Global aggregation over an empty input still yields one row
        // (COUNT(*) = 0, SUM = NULL, ...), matching SQL.
        if order.is_empty() && self.group_by.is_empty() && !saw_rows {
            order.push(Vec::new());
            groups.insert(
                Vec::new(),
                self.aggs.iter().map(|a| Acc::new(a.func)).collect(),
            );
        }

        let mut rows: Vec<Vec<Value>> = Vec::with_capacity(order.len());
        for key in &order {
            let accs = &groups[key];
            let mut row = key.clone();
            row.extend(accs.iter().map(|a| a.finish()));
            rows.push(row);
        }
        Ok(Some(RecordBatch::from_rows(self.schema.clone(), &rows)?))
    }

    fn name(&self) -> &'static str {
        "HashAggregate"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{avg, col, count, count_star, lit, max, min, sum};
    use crate::physical::drain_one;
    use crate::physical::test_util::{int_batch, BatchSource};

    #[test]
    fn grouped_sums() {
        let batch = int_batch(&[("g", vec![1, 2, 1, 2, 1]), ("v", vec![10, 20, 30, 40, 50])]);
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::single(batch)),
            vec![col("g")],
            vec![sum(col("v")).alias("total"), count_star().alias("n")],
        )
        .unwrap();
        let out = drain_one(&mut agg).unwrap();
        assert_eq!(out.num_rows(), 2);
        let rows = out.to_rows();
        let g1 = rows.iter().find(|r| r[0] == Value::Int(1)).unwrap();
        assert_eq!(g1[1], Value::Int(90));
        assert_eq!(g1[2], Value::Int(3));
        let g2 = rows.iter().find(|r| r[0] == Value::Int(2)).unwrap();
        assert_eq!(g2[1], Value::Int(60));
    }

    #[test]
    fn global_aggregate_no_groups() {
        let batch = int_batch(&[("v", vec![1, 2, 3, 4])]);
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::single(batch)),
            vec![],
            vec![
                sum(col("v")),
                min(col("v")),
                max(col("v")),
                avg(col("v")),
                count(col("v")),
            ],
        )
        .unwrap();
        let out = drain_one(&mut agg).unwrap();
        assert_eq!(out.num_rows(), 1);
        let r = out.row(0);
        assert_eq!(r[0], Value::Int(10));
        assert_eq!(r[1], Value::Int(1));
        assert_eq!(r[2], Value::Int(4));
        assert_eq!(r[3], Value::Float(2.5));
        assert_eq!(r[4], Value::Int(4));
    }

    #[test]
    fn empty_input_global_aggregate() {
        let batch = int_batch(&[("v", vec![])]);
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::single(batch)),
            vec![],
            vec![count_star().alias("n"), sum(col("v")).alias("s")],
        )
        .unwrap();
        let out = drain_one(&mut agg).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0)[0], Value::Int(0));
        assert!(out.row(0)[1].is_null());
    }

    #[test]
    fn empty_input_grouped_aggregate_yields_no_rows() {
        let batch = int_batch(&[("g", vec![]), ("v", vec![])]);
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::single(batch)),
            vec![col("g")],
            vec![count_star()],
        )
        .unwrap();
        let out = drain_one(&mut agg).unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn count_skips_nulls_count_star_does_not() {
        use backbone_storage::{Column, DataType, Field};
        let schema = Schema::new(vec![Field::nullable("v", DataType::Int64)]);
        let batch = RecordBatch::try_new(
            schema,
            vec![Arc::new(Column::from_opt_i64(vec![Some(1), None, Some(3)]))],
        )
        .unwrap();
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::single(batch)),
            vec![],
            vec![count(col("v")).alias("c"), count_star().alias("cs")],
        )
        .unwrap();
        let out = drain_one(&mut agg).unwrap();
        assert_eq!(out.row(0)[0], Value::Int(2));
        assert_eq!(out.row(0)[1], Value::Int(3));
    }

    #[test]
    fn expression_group_keys() {
        let batch = int_batch(&[("v", vec![1, 2, 3, 4, 5, 6])]);
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::single(batch)),
            vec![col("v").modulo(lit(2i64)).alias("parity")],
            vec![count_star().alias("n")],
        )
        .unwrap();
        let out = drain_one(&mut agg).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert!(out.to_rows().iter().all(|r| r[1] == Value::Int(3)));
    }

    #[test]
    fn aggregate_across_batches() {
        let b1 = int_batch(&[("g", vec![1, 2]), ("v", vec![1, 1])]);
        let b2 = int_batch(&[("g", vec![1, 2]), ("v", vec![10, 10])]);
        let src = BatchSource::new(b1.schema().clone(), vec![b1, b2]);
        let mut agg = HashAggregateExec::new(
            Box::new(src),
            vec![col("g")],
            vec![sum(col("v")).alias("s")],
        )
        .unwrap();
        let out = drain_one(&mut agg).unwrap();
        let rows = out.to_rows();
        assert!(rows
            .iter()
            .any(|r| r[0] == Value::Int(1) && r[1] == Value::Int(11)));
    }

    #[test]
    fn sum_int_overflow_detected() {
        let batch = int_batch(&[("v", vec![i64::MAX, 1])]);
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::single(batch)),
            vec![],
            vec![sum(col("v"))],
        )
        .unwrap();
        assert!(matches!(agg.next(), Err(QueryError::Arithmetic(_))));
    }
}
