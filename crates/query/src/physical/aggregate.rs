//! Hash aggregation.
//!
//! Columnar, selection-aware implementation: group keys are hashed column-
//! wise with [`Column::hash_combine`] (one mixing pass per key column, no
//! `Value` boxing), group ids come from an open-addressing table pre-sized to
//! the first batch, and every aggregate maintains a **typed accumulator
//! vector indexed by group id** so the update pass is a tight loop over one
//! column at a time. A global aggregate (no keys) skips hashing entirely.

use super::parallel::{record_worker, ParallelProfile, SharedSource};
use super::spill::{BudgetAccountant, BudgetLease, SpillFile, SpillSet, MAX_SPILL_DEPTH};
use super::{for_each_lane, Operator};
use crate::error::{QueryError, Result};
use crate::eval::eval_arc;
use crate::expr::{AggExpr, AggFunc, Expr};
use backbone_storage::{Bitmap, Column, DataType, Field, Metrics, RecordBatch, Schema, Value};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Open-addressing hash table mapping key hashes to dense group ids.
/// Collisions are resolved by the caller-supplied key-equality closure, so
/// the table itself never touches key data.
struct GroupTable {
    /// `group_id + 1`; 0 marks an empty slot.
    slots: Vec<u32>,
    hashes: Vec<u64>,
    mask: usize,
    len: usize,
}

impl GroupTable {
    fn with_capacity(groups: usize) -> GroupTable {
        let cap = (groups.max(8) * 2).next_power_of_two();
        GroupTable {
            slots: vec![0; cap],
            hashes: vec![0; cap],
            mask: cap - 1,
            len: 0,
        }
    }

    /// Look up `hash`, verifying candidates with `eq(group_id)`; insert as
    /// `next_id` when absent. Returns `(group_id, inserted)`.
    fn find_or_insert(&mut self, hash: u64, next_id: u32, eq: impl Fn(u32) -> bool) -> (u32, bool) {
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mut idx = (hash as usize) & self.mask;
        loop {
            let s = self.slots[idx];
            if s == 0 {
                self.slots[idx] = next_id + 1;
                self.hashes[idx] = hash;
                self.len += 1;
                return (next_id, true);
            }
            if self.hashes[idx] == hash && eq(s - 1) {
                return (s - 1, false);
            }
            idx = (idx + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let cap = self.slots.len() * 2;
        let mut slots = vec![0u32; cap];
        let mut hashes = vec![0u64; cap];
        let mask = cap - 1;
        for (&s, &h) in self.slots.iter().zip(&self.hashes) {
            if s != 0 {
                let mut idx = (h as usize) & mask;
                while slots[idx] != 0 {
                    idx = (idx + 1) & mask;
                }
                slots[idx] = s;
                hashes[idx] = h;
            }
        }
        self.slots = slots;
        self.hashes = hashes;
        self.mask = mask;
    }
}

/// One typed accumulator vector per aggregate, indexed by group id.
enum AccVec {
    /// COUNT / COUNT(*).
    Count(Vec<i64>),
    SumI {
        sums: Vec<i64>,
        seen: Vec<bool>,
    },
    SumF {
        sums: Vec<f64>,
        seen: Vec<bool>,
    },
    Avg {
        sums: Vec<f64>,
        counts: Vec<i64>,
    },
    MinMaxI {
        vals: Vec<i64>,
        seen: Vec<bool>,
        min: bool,
    },
    MinMaxF {
        vals: Vec<f64>,
        seen: Vec<bool>,
        min: bool,
    },
    MinMaxS {
        vals: Vec<String>,
        seen: Vec<bool>,
        min: bool,
    },
    MinMaxB {
        vals: Vec<bool>,
        seen: Vec<bool>,
        min: bool,
    },
}

impl AccVec {
    fn new(func: AggFunc, input_dt: DataType) -> AccVec {
        match func {
            AggFunc::Count | AggFunc::CountStar => AccVec::Count(Vec::new()),
            AggFunc::Sum => match input_dt {
                DataType::Float64 => AccVec::SumF {
                    sums: Vec::new(),
                    seen: Vec::new(),
                },
                // Non-numeric SUM is rejected at plan time (AggExpr::data_type).
                _ => AccVec::SumI {
                    sums: Vec::new(),
                    seen: Vec::new(),
                },
            },
            AggFunc::Avg => AccVec::Avg {
                sums: Vec::new(),
                counts: Vec::new(),
            },
            AggFunc::Min | AggFunc::Max => {
                let min = func == AggFunc::Min;
                match input_dt {
                    DataType::Int64 => AccVec::MinMaxI {
                        vals: Vec::new(),
                        seen: Vec::new(),
                        min,
                    },
                    DataType::Float64 => AccVec::MinMaxF {
                        vals: Vec::new(),
                        seen: Vec::new(),
                        min,
                    },
                    DataType::Utf8 => AccVec::MinMaxS {
                        vals: Vec::new(),
                        seen: Vec::new(),
                        min,
                    },
                    DataType::Bool => AccVec::MinMaxB {
                        vals: Vec::new(),
                        seen: Vec::new(),
                        min,
                    },
                }
            }
        }
    }

    /// Append default state for one newly created group.
    fn push_group(&mut self) {
        match self {
            AccVec::Count(c) => c.push(0),
            AccVec::SumI { sums, seen } => {
                sums.push(0);
                seen.push(false);
            }
            AccVec::SumF { sums, seen } => {
                sums.push(0.0);
                seen.push(false);
            }
            AccVec::Avg { sums, counts } => {
                sums.push(0.0);
                counts.push(0);
            }
            AccVec::MinMaxI { vals, seen, .. } => {
                vals.push(0);
                seen.push(false);
            }
            AccVec::MinMaxF { vals, seen, .. } => {
                vals.push(0.0);
                seen.push(false);
            }
            AccVec::MinMaxS { vals, seen, .. } => {
                vals.push(String::new());
                seen.push(false);
            }
            AccVec::MinMaxB { vals, seen, .. } => {
                vals.push(false);
                seen.push(false);
            }
        }
    }

    /// Fold one batch's lanes into the accumulators. `gids[pos]` is the group
    /// for logical row `pos`; `input` is `None` only for COUNT(*).
    fn update_batch(
        &mut self,
        gids: &[u32],
        sel: Option<&[u32]>,
        n: usize,
        input: Option<&Column>,
    ) -> Result<()> {
        match self {
            AccVec::Count(counts) => match input {
                None => {
                    // COUNT(*): every lane counts.
                    for &g in gids {
                        counts[g as usize] += 1;
                    }
                }
                Some(col) => {
                    let validity = col.validity();
                    for_each_lane(sel, n, |pos, base| {
                        if validity.get(base) {
                            counts[gids[pos] as usize] += 1;
                        }
                    });
                }
            },
            AccVec::SumI { sums, seen } => {
                let col = input.expect("SUM has an input");
                match col {
                    Column::Int64(v, bm) => {
                        let mut overflow = false;
                        for_each_lane(sel, n, |pos, base| {
                            if bm.get(base) {
                                let g = gids[pos] as usize;
                                match sums[g].checked_add(v[base]) {
                                    Some(s) => {
                                        sums[g] = s;
                                        seen[g] = true;
                                    }
                                    None => overflow = true,
                                }
                            }
                        });
                        if overflow {
                            return Err(QueryError::Arithmetic("SUM integer overflow".into()));
                        }
                    }
                    Column::Int64Encoded { data, validity } => {
                        let mut overflow = false;
                        for_each_lane(sel, n, |pos, base| {
                            if validity.get(base) {
                                let g = gids[pos] as usize;
                                match sums[g].checked_add(data.get(base)) {
                                    Some(s) => {
                                        sums[g] = s;
                                        seen[g] = true;
                                    }
                                    None => overflow = true,
                                }
                            }
                        });
                        if overflow {
                            return Err(QueryError::Arithmetic("SUM integer overflow".into()));
                        }
                    }
                    other => {
                        return Err(QueryError::InvalidExpression(format!(
                            "SUM over {}",
                            other.data_type()
                        )))
                    }
                }
            }
            AccVec::SumF { sums, seen } => {
                let col = input.expect("SUM has an input");
                match col {
                    Column::Float64(v, bm) => {
                        for_each_lane(sel, n, |pos, base| {
                            if bm.get(base) {
                                let g = gids[pos] as usize;
                                sums[g] += v[base];
                                seen[g] = true;
                            }
                        });
                    }
                    Column::Int64(v, bm) => {
                        for_each_lane(sel, n, |pos, base| {
                            if bm.get(base) {
                                let g = gids[pos] as usize;
                                sums[g] += v[base] as f64;
                                seen[g] = true;
                            }
                        });
                    }
                    Column::Int64Encoded { data, validity } => {
                        for_each_lane(sel, n, |pos, base| {
                            if validity.get(base) {
                                let g = gids[pos] as usize;
                                sums[g] += data.get(base) as f64;
                                seen[g] = true;
                            }
                        });
                    }
                    other => {
                        return Err(QueryError::InvalidExpression(format!(
                            "SUM over {}",
                            other.data_type()
                        )))
                    }
                }
            }
            AccVec::Avg { sums, counts } => {
                let col = input.expect("AVG has an input");
                match col {
                    Column::Float64(v, bm) => {
                        for_each_lane(sel, n, |pos, base| {
                            if bm.get(base) {
                                let g = gids[pos] as usize;
                                sums[g] += v[base];
                                counts[g] += 1;
                            }
                        });
                    }
                    Column::Int64(v, bm) => {
                        for_each_lane(sel, n, |pos, base| {
                            if bm.get(base) {
                                let g = gids[pos] as usize;
                                sums[g] += v[base] as f64;
                                counts[g] += 1;
                            }
                        });
                    }
                    Column::Int64Encoded { data, validity } => {
                        for_each_lane(sel, n, |pos, base| {
                            if validity.get(base) {
                                let g = gids[pos] as usize;
                                sums[g] += data.get(base) as f64;
                                counts[g] += 1;
                            }
                        });
                    }
                    other => {
                        // Mirror the row-at-a-time error: only raised when a
                        // non-null value actually arrives.
                        let mut bad: Option<Value> = None;
                        for_each_lane(sel, n, |_, base| {
                            if bad.is_none() && !other.is_null(base) {
                                bad = Some(other.value(base));
                            }
                        });
                        if let Some(v) = bad {
                            return Err(QueryError::InvalidExpression(format!(
                                "AVG over non-numeric value {v}"
                            )));
                        }
                    }
                }
            }
            AccVec::MinMaxI { vals, seen, min } => match input {
                Some(Column::Int64(v, bm)) => {
                    let min = *min;
                    for_each_lane(sel, n, |pos, base| {
                        if bm.get(base) {
                            let g = gids[pos] as usize;
                            let x = v[base];
                            if !seen[g] || (min && x < vals[g]) || (!min && x > vals[g]) {
                                vals[g] = x;
                                seen[g] = true;
                            }
                        }
                    });
                }
                Some(Column::Int64Encoded { data, validity }) => {
                    let min = *min;
                    for_each_lane(sel, n, |pos, base| {
                        if validity.get(base) {
                            let g = gids[pos] as usize;
                            let x = data.get(base);
                            if !seen[g] || (min && x < vals[g]) || (!min && x > vals[g]) {
                                vals[g] = x;
                                seen[g] = true;
                            }
                        }
                    });
                }
                _ => {}
            },
            AccVec::MinMaxF { vals, seen, min } => {
                if let Some(Column::Float64(v, bm)) = input {
                    let min = *min;
                    for_each_lane(sel, n, |pos, base| {
                        if bm.get(base) {
                            let g = gids[pos] as usize;
                            let x = v[base];
                            // sql_cmp treats incomparable floats as equal, so
                            // NaN never replaces an existing extreme.
                            let ord = x.partial_cmp(&vals[g]).unwrap_or(std::cmp::Ordering::Equal);
                            let better = if min {
                                ord == std::cmp::Ordering::Less
                            } else {
                                ord == std::cmp::Ordering::Greater
                            };
                            if !seen[g] || better {
                                vals[g] = x;
                                seen[g] = true;
                            }
                        }
                    });
                }
            }
            AccVec::MinMaxS { vals, seen, min } => match input {
                Some(Column::Utf8(v, bm)) => {
                    let min = *min;
                    for_each_lane(sel, n, |pos, base| {
                        if bm.get(base) {
                            let g = gids[pos] as usize;
                            let x = &v[base];
                            if !seen[g] || (min && *x < vals[g]) || (!min && *x > vals[g]) {
                                vals[g] = x.clone();
                                seen[g] = true;
                            }
                        }
                    });
                }
                Some(c @ Column::DictUtf8 { .. }) => {
                    let (dict, codes, bm) = c.dict_parts().expect("matched dict");
                    let min = *min;
                    for_each_lane(sel, n, |pos, base| {
                        if bm.get(base) {
                            let g = gids[pos] as usize;
                            let x = dict[codes[base] as usize].as_str();
                            if !seen[g]
                                || (min && x < vals[g].as_str())
                                || (!min && x > vals[g].as_str())
                            {
                                vals[g] = x.to_string();
                                seen[g] = true;
                            }
                        }
                    });
                }
                _ => {}
            },
            AccVec::MinMaxB { vals, seen, min } => {
                if let Some(Column::Bool(v, bm)) = input {
                    let min = *min;
                    for_each_lane(sel, n, |pos, base| {
                        if bm.get(base) {
                            let g = gids[pos] as usize;
                            let x = v[base];
                            if !seen[g] || (min && !x & vals[g]) || (!min && x & !vals[g]) {
                                vals[g] = x;
                                seen[g] = true;
                            }
                        }
                    });
                }
            }
        }
        Ok(())
    }

    /// Fold source group `sg` of `src` (a partial state for the same
    /// aggregate) into group `dst` of `self` — the merge phase of parallel
    /// aggregation. Same semantics as feeding `src`'s inputs through
    /// `update_batch`, so COUNT adds, SUM re-checks overflow, MIN/MAX keep
    /// the better extreme, and never-seen source groups stay NULL.
    fn merge_from(&mut self, dst: usize, src: &AccVec, sg: usize) -> Result<()> {
        fn better<T: PartialOrd>(min: bool, x: &T, cur: &T) -> bool {
            let ord = x.partial_cmp(cur).unwrap_or(std::cmp::Ordering::Equal);
            if min {
                ord == std::cmp::Ordering::Less
            } else {
                ord == std::cmp::Ordering::Greater
            }
        }
        match (self, src) {
            (AccVec::Count(a), AccVec::Count(b)) => a[dst] += b[sg],
            (AccVec::SumI { sums, seen }, AccVec::SumI { sums: s2, seen: e2 }) => {
                if e2[sg] {
                    sums[dst] = sums[dst]
                        .checked_add(s2[sg])
                        .ok_or_else(|| QueryError::Arithmetic("SUM integer overflow".into()))?;
                    seen[dst] = true;
                }
            }
            (AccVec::SumF { sums, seen }, AccVec::SumF { sums: s2, seen: e2 }) => {
                if e2[sg] {
                    sums[dst] += s2[sg];
                    seen[dst] = true;
                }
            }
            (
                AccVec::Avg { sums, counts },
                AccVec::Avg {
                    sums: s2,
                    counts: c2,
                },
            ) => {
                sums[dst] += s2[sg];
                counts[dst] += c2[sg];
            }
            (
                AccVec::MinMaxI { vals, seen, min },
                AccVec::MinMaxI {
                    vals: v2, seen: e2, ..
                },
            ) => {
                if e2[sg] && (!seen[dst] || better(*min, &v2[sg], &vals[dst])) {
                    vals[dst] = v2[sg];
                    seen[dst] = true;
                }
            }
            (
                AccVec::MinMaxF { vals, seen, min },
                AccVec::MinMaxF {
                    vals: v2, seen: e2, ..
                },
            ) => {
                if e2[sg] && (!seen[dst] || better(*min, &v2[sg], &vals[dst])) {
                    vals[dst] = v2[sg];
                    seen[dst] = true;
                }
            }
            (
                AccVec::MinMaxS { vals, seen, min },
                AccVec::MinMaxS {
                    vals: v2, seen: e2, ..
                },
            ) => {
                if e2[sg] && (!seen[dst] || better(*min, &v2[sg], &vals[dst])) {
                    vals[dst] = v2[sg].clone();
                    seen[dst] = true;
                }
            }
            (
                AccVec::MinMaxB { vals, seen, min },
                AccVec::MinMaxB {
                    vals: v2, seen: e2, ..
                },
            ) => {
                if e2[sg] && (!seen[dst] || better(*min, &v2[sg], &vals[dst])) {
                    vals[dst] = v2[sg];
                    seen[dst] = true;
                }
            }
            _ => unreachable!("partial aggregate states share one spec"),
        }
        Ok(())
    }

    /// Approximate resident bytes, for budget accounting.
    fn byte_size(&self) -> usize {
        match self {
            AccVec::Count(c) => c.len() * 8,
            AccVec::SumI { sums, seen } => sums.len() * 8 + seen.len(),
            AccVec::SumF { sums, seen } => sums.len() * 8 + seen.len(),
            AccVec::Avg { sums, counts } => sums.len() * 8 + counts.len() * 8,
            AccVec::MinMaxI { vals, seen, .. } => vals.len() * 8 + seen.len(),
            AccVec::MinMaxF { vals, seen, .. } => vals.len() * 8 + seen.len(),
            AccVec::MinMaxS { vals, seen, .. } => {
                vals.iter().map(|s| s.capacity() + 24).sum::<usize>() + seen.len()
            }
            AccVec::MinMaxB { vals, seen, .. } => vals.len() + seen.len(),
        }
    }

    /// Data types of this accumulator's serialized partial state. AVG keeps
    /// sums and counts as separate columns so re-merged partials stay exact.
    fn state_types(&self) -> Vec<DataType> {
        match self {
            AccVec::Count(_) => vec![DataType::Int64],
            AccVec::SumI { .. } => vec![DataType::Int64],
            AccVec::SumF { .. } => vec![DataType::Float64],
            AccVec::Avg { .. } => vec![DataType::Float64, DataType::Int64],
            AccVec::MinMaxI { .. } => vec![DataType::Int64],
            AccVec::MinMaxF { .. } => vec![DataType::Float64],
            AccVec::MinMaxS { .. } => vec![DataType::Utf8],
            AccVec::MinMaxB { .. } => vec![DataType::Bool],
        }
    }

    /// Serialize the partial state for spilling. `seen` becomes the validity
    /// bitmap, so a codec round trip that zeroes data under nulls cannot
    /// change the merge result ([`AccVec::merge_from`] checks `seen` first).
    fn state_columns(&self) -> Vec<Column> {
        match self {
            AccVec::Count(c) => vec![Column::from_i64(c.clone())],
            AccVec::SumI { sums, seen } => {
                vec![Column::Int64(sums.clone(), Bitmap::from_bools(seen))]
            }
            AccVec::SumF { sums, seen } => {
                vec![Column::Float64(sums.clone(), Bitmap::from_bools(seen))]
            }
            AccVec::Avg { sums, counts } => vec![
                Column::from_f64(sums.clone()),
                Column::from_i64(counts.clone()),
            ],
            AccVec::MinMaxI { vals, seen, .. } => {
                vec![Column::Int64(vals.clone(), Bitmap::from_bools(seen))]
            }
            AccVec::MinMaxF { vals, seen, .. } => {
                vec![Column::Float64(vals.clone(), Bitmap::from_bools(seen))]
            }
            AccVec::MinMaxS { vals, seen, .. } => {
                vec![Column::Utf8(vals.clone(), Bitmap::from_bools(seen))]
            }
            AccVec::MinMaxB { vals, seen, .. } => {
                vec![Column::Bool(vals.clone(), Bitmap::from_bools(seen))]
            }
        }
    }

    /// Rebuild partial state from spilled columns (inverse of
    /// [`AccVec::state_columns`]); consumes as many columns from the
    /// iterator as [`AccVec::state_types`] declares.
    fn load_state<'a>(&mut self, cols: &mut impl Iterator<Item = &'a Arc<Column>>) -> Result<()> {
        fn seen_of(col: &Column) -> Vec<bool> {
            let bm = col.validity();
            (0..col.len()).map(|i| bm.get(i)).collect()
        }
        let mut next = || {
            cols.next().ok_or_else(|| {
                QueryError::InvalidPlan("missing spilled aggregate state column".into())
            })
        };
        match self {
            AccVec::Count(c) => *c = next()?.i64_data()?.to_vec(),
            AccVec::SumI { sums, seen } => {
                let col = next()?;
                *sums = col.i64_data()?.to_vec();
                *seen = seen_of(col);
            }
            AccVec::SumF { sums, seen } => {
                let col = next()?;
                *sums = col.f64_data()?.to_vec();
                *seen = seen_of(col);
            }
            AccVec::Avg { sums, counts } => {
                *sums = next()?.f64_data()?.to_vec();
                *counts = next()?.i64_data()?.to_vec();
            }
            AccVec::MinMaxI { vals, seen, .. } => {
                let col = next()?;
                *vals = col.i64_data()?.to_vec();
                *seen = seen_of(col);
            }
            AccVec::MinMaxF { vals, seen, .. } => {
                let col = next()?;
                *vals = col.f64_data()?.to_vec();
                *seen = seen_of(col);
            }
            AccVec::MinMaxS { vals, seen, .. } => {
                let col = next()?;
                *vals = col.utf8_data()?.to_vec();
                *seen = seen_of(col);
            }
            AccVec::MinMaxB { vals, seen, .. } => {
                let col = next()?;
                *vals = col.bool_data()?.to_vec();
                *seen = seen_of(col);
            }
        }
        Ok(())
    }

    /// Emit the output column across all groups.
    fn finish(self) -> Column {
        fn with_seen<T>(
            vals: Vec<T>,
            seen: Vec<bool>,
            build: impl Fn(Vec<T>, Bitmap) -> Column,
        ) -> Column {
            let bm = Bitmap::from_bools(&seen);
            build(vals, bm)
        }
        match self {
            AccVec::Count(c) => Column::from_i64(c),
            AccVec::SumI { sums, seen } => with_seen(sums, seen, Column::Int64),
            AccVec::SumF { sums, seen } => with_seen(sums, seen, Column::Float64),
            AccVec::Avg { sums, counts } => {
                let seen: Vec<bool> = counts.iter().map(|&c| c > 0).collect();
                let vals: Vec<f64> = sums
                    .iter()
                    .zip(&counts)
                    .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
                    .collect();
                with_seen(vals, seen, Column::Float64)
            }
            AccVec::MinMaxI { vals, seen, .. } => with_seen(vals, seen, Column::Int64),
            AccVec::MinMaxF { vals, seen, .. } => with_seen(vals, seen, Column::Float64),
            AccVec::MinMaxS { vals, seen, .. } => with_seen(vals, seen, Column::Utf8),
            AccVec::MinMaxB { vals, seen, .. } => with_seen(vals, seen, Column::Bool),
        }
    }
}

/// One grouping state: key stores + accumulators + the hash table mapping
/// key hashes to dense group ids. Serial aggregation uses one; each parallel
/// worker builds its own and the states merge pairwise afterwards.
struct AggState {
    key_stores: Vec<Column>,
    accs: Vec<AccVec>,
    table: GroupTable,
    n_groups: u32,
    hash_ns: u64,
    update_ns: u64,
    dict_key_rows: u64,
    morsels: u64,
    rows: u64,
    // Scratch reused across batches.
    hashes: Vec<u64>,
    gids: Vec<u32>,
}

impl AggState {
    fn new(key_types: &[DataType], aggs: &[AggExpr], agg_input_types: &[DataType]) -> AggState {
        AggState {
            key_stores: key_types.iter().map(|&dt| Column::empty(dt)).collect(),
            accs: aggs
                .iter()
                .zip(agg_input_types)
                .map(|(a, &dt)| AccVec::new(a.func, dt))
                .collect(),
            table: GroupTable::with_capacity(256),
            n_groups: 0,
            hash_ns: 0,
            update_ns: 0,
            dict_key_rows: 0,
            morsels: 0,
            rows: 0,
            hashes: Vec::new(),
            gids: Vec::new(),
        }
    }

    /// Fold one input batch into this state (hash keys, assign group ids,
    /// columnar accumulator update).
    fn consume(&mut self, group_by: &[Expr], aggs: &[AggExpr], batch: &RecordBatch) -> Result<()> {
        let nkeys = group_by.len();
        let n = batch.num_rows();
        self.morsels += 1;
        self.rows += n as u64;
        if n == 0 && nkeys > 0 {
            return Ok(());
        }
        let sel = batch.selection();
        let base = batch.base_rows();

        let key_cols: Vec<Arc<Column>> = group_by
            .iter()
            .map(|g| eval_arc(g, batch))
            .collect::<Result<_>>()?;
        // COUNT(*) needs no input column at all.
        let agg_cols: Vec<Option<Arc<Column>>> = aggs
            .iter()
            .map(|a| match a.func {
                AggFunc::CountStar => Ok(None),
                _ => eval_arc(&a.input, batch).map(Some),
            })
            .collect::<Result<_>>()?;

        // Pass 1: assign a group id to every lane.
        let t0 = Instant::now();
        self.gids.clear();
        self.gids.resize(n, 0);
        if nkeys == 0 {
            // Global aggregate: one group, no hashing.
            if self.n_groups == 0 && n > 0 {
                self.n_groups = 1;
                for acc in &mut self.accs {
                    acc.push_group();
                }
            }
        } else {
            self.hashes.clear();
            self.hashes.resize(base, 0);
            for kc in &key_cols {
                kc.hash_combine(sel, &mut self.hashes);
            }
            if key_cols.iter().any(|kc| kc.is_dict()) {
                self.dict_key_rows += n as u64;
            }
            let mut insert_err: Option<QueryError> = None;
            let hashes = &self.hashes;
            let gids = &mut self.gids;
            let key_stores = &mut self.key_stores;
            let accs = &mut self.accs;
            let table = &mut self.table;
            let n_groups = &mut self.n_groups;
            // Run-aware fast path: a single all-valid RLE-encoded key with
            // no selection resolves one group id per *run* — every row in a
            // run shares the key, hence the hash, hence the group.
            let key_runs = if sel.is_none() && key_cols.len() == 1 {
                match key_cols[0].as_ref() {
                    Column::Int64Encoded { data, validity } if validity.all_set() => data.runs(),
                    _ => None,
                }
            } else {
                None
            };
            if let Some(runs) = key_runs {
                let mut pos = 0usize;
                for &(_, cnt) in runs {
                    let (gid, inserted) = table.find_or_insert(hashes[pos], *n_groups, |g| {
                        key_stores[0].eq_rows_null_eq(g as usize, &key_cols[0], pos)
                    });
                    if inserted {
                        *n_groups += 1;
                        key_stores[0].push_from(&key_cols[0], pos)?;
                        for acc in accs.iter_mut() {
                            acc.push_group();
                        }
                    }
                    let end = pos + cnt as usize;
                    gids[pos..end].fill(gid);
                    pos = end;
                }
                self.hash_ns += t0.elapsed().as_nanos() as u64;
                let t1 = Instant::now();
                for (acc, col) in self.accs.iter_mut().zip(&agg_cols) {
                    acc.update_batch(&self.gids, sel, n, col.as_deref())?;
                }
                self.update_ns += t1.elapsed().as_nanos() as u64;
                return Ok(());
            }
            for_each_lane(sel, n, |pos, base_row| {
                if insert_err.is_some() {
                    return;
                }
                let h = hashes[base_row];
                let (gid, inserted) = table.find_or_insert(h, *n_groups, |g| {
                    key_stores
                        .iter()
                        .zip(&key_cols)
                        .all(|(store, kc)| store.eq_rows_null_eq(g as usize, kc, base_row))
                });
                if inserted {
                    *n_groups += 1;
                    for (store, kc) in key_stores.iter_mut().zip(&key_cols) {
                        if let Err(e) = store.push_from(kc, base_row) {
                            insert_err = Some(e.into());
                            return;
                        }
                    }
                    for acc in accs.iter_mut() {
                        acc.push_group();
                    }
                }
                gids[pos] = gid;
            });
            if let Some(e) = insert_err {
                return Err(e);
            }
        }
        self.hash_ns += t0.elapsed().as_nanos() as u64;

        // Pass 2: columnar accumulator update, one aggregate at a time.
        let t1 = Instant::now();
        for (acc, col) in self.accs.iter_mut().zip(&agg_cols) {
            acc.update_batch(&self.gids, sel, n, col.as_deref())?;
        }
        self.update_ns += t1.elapsed().as_nanos() as u64;
        Ok(())
    }

    /// Merge another worker's partial state into this one. Key stores hold
    /// decoded values, and [`Column::hash_combine`]'s hash is value-
    /// compatible between plain and dict columns, so rehashing the stored
    /// keys reproduces the hashes the per-worker tables were built from.
    fn absorb(&mut self, other: &AggState, nkeys: usize) -> Result<()> {
        self.hash_ns += other.hash_ns;
        self.update_ns += other.update_ns;
        self.dict_key_rows += other.dict_key_rows;
        self.morsels += other.morsels;
        self.rows += other.rows;
        if other.n_groups == 0 {
            return Ok(());
        }
        if nkeys == 0 {
            if self.n_groups == 0 {
                self.n_groups = 1;
                for acc in &mut self.accs {
                    acc.push_group();
                }
            }
            for (acc, src) in self.accs.iter_mut().zip(&other.accs) {
                acc.merge_from(0, src, 0)?;
            }
            return Ok(());
        }
        let src_groups = other.n_groups as usize;
        let mut hashes = vec![0u64; src_groups];
        for ks in &other.key_stores {
            ks.hash_combine(None, &mut hashes);
        }
        for (sg, &hash) in hashes.iter().enumerate() {
            let key_stores = &self.key_stores;
            let others = &other.key_stores;
            let (gid, inserted) = self.table.find_or_insert(hash, self.n_groups, |g| {
                key_stores
                    .iter()
                    .zip(others)
                    .all(|(store, o)| store.eq_rows_null_eq(g as usize, o, sg))
            });
            if inserted {
                self.n_groups += 1;
                for (store, o) in self.key_stores.iter_mut().zip(&other.key_stores) {
                    store.push_from(o, sg)?;
                }
                for acc in &mut self.accs {
                    acc.push_group();
                }
            }
            for (acc, src) in self.accs.iter_mut().zip(&other.accs) {
                acc.merge_from(gid as usize, src, sg)?;
            }
        }
        Ok(())
    }

    /// Approximate resident bytes of this grouping state (keys +
    /// accumulators + hash table), for budget accounting.
    fn mem_bytes(&self) -> usize {
        let keys: usize = self.key_stores.iter().map(|c| c.byte_size()).sum();
        let accs: usize = self.accs.iter().map(|a| a.byte_size()).sum();
        keys + accs + self.table.slots.len() * 12
    }

    /// Serialize every group as one partial-state row: key columns first,
    /// then each accumulator's state columns, matching the spill schema.
    fn state_batch(&self, spill_schema: &Arc<Schema>) -> Result<RecordBatch> {
        let mut cols: Vec<Arc<Column>> = Vec::with_capacity(spill_schema.len());
        for ks in &self.key_stores {
            cols.push(Arc::new(ks.clone()));
        }
        for acc in &self.accs {
            for c in acc.state_columns() {
                cols.push(Arc::new(c));
            }
        }
        Ok(RecordBatch::try_new(spill_schema.clone(), cols)?)
    }

    /// Merge one spilled partial-state batch back in (inverse of
    /// [`AggState::state_batch`], routed through [`AggState::absorb`] so the
    /// merge semantics are identical to the parallel worker merge).
    fn absorb_batch(&mut self, batch: &RecordBatch, spec: &AggSpec<'_>) -> Result<()> {
        let mut partial = AggState::new(spec.key_types, spec.aggs, spec.agg_input_types);
        partial.n_groups = batch.num_rows() as u32;
        partial.key_stores = (0..spec.nkeys())
            .map(|i| batch.column(i).as_ref().clone())
            .collect();
        let mut it = batch.columns().iter().skip(spec.nkeys());
        for acc in &mut partial.accs {
            acc.load_state(&mut it)?;
        }
        self.absorb(&partial, spec.nkeys())
    }
}

/// The aggregate's type spec, bundled so spill helpers stay callable from
/// worker closures that cannot borrow the whole operator.
struct AggSpec<'a> {
    key_types: &'a [DataType],
    aggs: &'a [AggExpr],
    agg_input_types: &'a [DataType],
}

impl AggSpec<'_> {
    fn nkeys(&self) -> usize {
        self.key_types.len()
    }
}

/// Flush `state`'s groups into `spill` partitioned by key hash at `depth`,
/// leaving a fresh state that keeps the running timing counters.
fn spill_state_into(
    state: &mut AggState,
    spill: &mut SpillSet,
    spill_schema: &Arc<Schema>,
    spec: &AggSpec<'_>,
    depth: usize,
    metrics: Option<&Metrics>,
) -> Result<()> {
    if state.n_groups == 0 {
        return Ok(());
    }
    let batch = state.state_batch(spill_schema)?;
    let key_idx: Vec<usize> = (0..spec.nkeys()).collect();
    spill.append_partitioned(&batch, &key_idx, depth, metrics)?;
    let mut fresh = AggState::new(spec.key_types, spec.aggs, spec.agg_input_types);
    fresh.hash_ns = state.hash_ns;
    fresh.update_ns = state.update_ns;
    fresh.dict_key_rows = state.dict_key_rows;
    fresh.morsels = state.morsels;
    fresh.rows = state.rows;
    *state = fresh;
    Ok(())
}

/// Emit a finished state as an output batch (keys + aggregate results).
fn finish_batch(state: AggState, schema: &Arc<Schema>) -> Result<RecordBatch> {
    let mut columns: Vec<Arc<Column>> =
        Vec::with_capacity(state.key_stores.len() + state.accs.len());
    for store in state.key_stores {
        columns.push(Arc::new(store));
    }
    for acc in state.accs {
        columns.push(Arc::new(acc.finish()));
    }
    Ok(RecordBatch::try_new(schema.clone(), columns)?)
}

/// Hash aggregate: consumes all input, groups by key expressions, and emits
/// one row per group (first-appearance order). With `workers >= 1`, worker
/// threads pull batches through a shared source into per-worker states that
/// merge — in worker order, so output order stays deterministic — at the end.
pub struct HashAggregateExec {
    input: Box<dyn Operator>,
    group_by: Vec<Expr>,
    aggs: Vec<AggExpr>,
    schema: Arc<Schema>,
    key_types: Vec<DataType>,
    agg_input_types: Vec<DataType>,
    metrics: Option<Metrics>,
    workers: usize,
    profile: Option<ParallelProfile>,
    budget: Option<Arc<BudgetAccountant>>,
    done: bool,
}

impl HashAggregateExec {
    /// Build an aggregation over `input`.
    pub fn new(
        input: Box<dyn Operator>,
        group_by: Vec<Expr>,
        aggs: Vec<AggExpr>,
    ) -> Result<HashAggregateExec> {
        let in_schema = input.schema();
        let mut fields = Vec::with_capacity(group_by.len() + aggs.len());
        let mut key_types = Vec::with_capacity(group_by.len());
        for g in &group_by {
            let dt = g.data_type(&in_schema)?;
            key_types.push(dt);
            fields.push(Field::nullable(g.output_name(), dt));
        }
        let mut agg_input_types = Vec::with_capacity(aggs.len());
        for a in &aggs {
            fields.push(Field::nullable(a.name.clone(), a.data_type(&in_schema)?));
            agg_input_types.push(a.input.data_type(&in_schema).unwrap_or(DataType::Int64));
        }
        Ok(HashAggregateExec {
            input,
            group_by,
            aggs,
            schema: Schema::new(fields),
            key_types,
            agg_input_types,
            metrics: None,
            workers: 0,
            profile: None,
            budget: None,
            done: false,
        })
    }

    /// Record per-kernel timers into `metrics` under `op.aggregate.kernel.*`
    /// (plus `op.aggregate.worker.*` when parallel).
    pub fn with_metrics(mut self, metrics: Option<Metrics>) -> Self {
        self.metrics = metrics;
        self
    }

    /// Aggregate with `n` worker threads (0 = serial, on the calling thread).
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Attach shared parallel counters for EXPLAIN ANALYZE.
    pub fn with_parallel_profile(mut self, profile: Option<ParallelProfile>) -> Self {
        self.profile = profile;
        self
    }

    /// Share a per-query memory-budget accountant. When the shared total
    /// crosses the limit, grouped aggregation partitions its hash-table
    /// state by key hash and spills to disk.
    pub fn with_budget(mut self, budget: Option<Arc<BudgetAccountant>>) -> Self {
        self.budget = budget;
        self
    }

    /// Schema of spilled partial-state batches: group keys, then each
    /// accumulator's state columns.
    fn spill_schema(&self) -> Arc<Schema> {
        let mut fields = Vec::new();
        for (i, &dt) in self.key_types.iter().enumerate() {
            fields.push(Field::nullable(format!("k{i}"), dt));
        }
        for (ai, (a, &dt)) in self.aggs.iter().zip(&self.agg_input_types).enumerate() {
            let proto = AccVec::new(a.func, dt);
            for (si, sdt) in proto.state_types().into_iter().enumerate() {
                fields.push(Field::nullable(format!("a{ai}s{si}"), sdt));
            }
        }
        Schema::new(fields)
    }

    fn spec(&self) -> AggSpec<'_> {
        AggSpec {
            key_types: &self.key_types,
            aggs: &self.aggs,
            agg_input_types: &self.agg_input_types,
        }
    }

    /// Re-aggregate one spilled partition. A partition whose merged state
    /// itself exceeds the budget repartitions with deeper hash bits and
    /// recurses, up to [`MAX_SPILL_DEPTH`]; past the cap it finishes in
    /// memory (correctness over the ceiling).
    fn process_partition(
        &self,
        file: &mut SpillFile,
        spill_schema: &Arc<Schema>,
        depth: usize,
        out: &mut Vec<RecordBatch>,
    ) -> Result<()> {
        if file.is_empty() {
            return Ok(());
        }
        let spec = self.spec();
        let batches = file.read_all(spill_schema, self.metrics.as_ref())?;
        let mut lease = self.budget.as_ref().map(|b| BudgetLease::new(b.clone()));
        let mut st = AggState::new(&self.key_types, &self.aggs, &self.agg_input_types);
        for (i, b) in batches.iter().enumerate() {
            st.absorb_batch(b, &spec)?;
            if let Some(l) = &mut lease {
                l.set(st.mem_bytes());
                if l.over() && depth < MAX_SPILL_DEPTH {
                    let mut sub = SpillSet::new();
                    spill_state_into(
                        &mut st,
                        &mut sub,
                        spill_schema,
                        &spec,
                        depth,
                        self.metrics.as_ref(),
                    )?;
                    l.set(st.mem_bytes());
                    let key_idx: Vec<usize> = (0..spec.nkeys()).collect();
                    for rest in &batches[i + 1..] {
                        sub.append_partitioned(rest, &key_idx, depth, self.metrics.as_ref())?;
                    }
                    for mut f in sub.into_files() {
                        self.process_partition(&mut f, spill_schema, depth + 1, out)?;
                    }
                    return Ok(());
                }
            }
        }
        if st.n_groups > 0 {
            out.push(finish_batch(st, &self.schema)?);
        }
        Ok(())
    }

    /// Build per-worker partial states in parallel, then merge them serially
    /// in worker order. Workers share the budget accountant; a worker whose
    /// state pushes the shared total over the limit serializes it into the
    /// shared partition files under one lock.
    fn parallel_state(
        &mut self,
        spill: &mut Option<SpillSet>,
        spill_schema: &Arc<Schema>,
    ) -> Result<AggState> {
        let workers = self.workers;
        let metrics = &self.metrics;
        let profile = &self.profile;
        let group_by = &self.group_by;
        let aggs = &self.aggs;
        let key_types = &self.key_types;
        let agg_input_types = &self.agg_input_types;
        let budget = self.budget.clone();
        let nkeys = group_by.len();
        let shared_spill: Mutex<&mut Option<SpillSet>> = Mutex::new(spill);
        let source = SharedSource::new(self.input.as_mut());
        let states: Vec<Result<AggState>> = super::pool::run_workers(workers, |w| {
            // Per-thread handle so eval kernels report here too.
            let _kernel = crate::kernel_metrics::install(metrics.clone());
            let spec = AggSpec {
                key_types,
                aggs,
                agg_input_types,
            };
            let mut lease = budget.as_ref().map(|b| BudgetLease::new(b.clone()));
            let mut st = AggState::new(key_types, aggs, agg_input_types);
            while let Some(batch) = source.next()? {
                st.consume(group_by, aggs, &batch)?;
                if nkeys > 0 {
                    if let Some(l) = &mut lease {
                        l.set(st.mem_bytes());
                        if l.over() {
                            let mut guard = shared_spill.lock().expect("spill lock");
                            let set = guard.get_or_insert_with(SpillSet::new);
                            spill_state_into(
                                &mut st,
                                set,
                                spill_schema,
                                &spec,
                                0,
                                metrics.as_ref(),
                            )?;
                            drop(guard);
                            l.set(st.mem_bytes());
                        }
                    }
                }
            }
            record_worker(metrics.as_ref(), "aggregate", w, st.morsels, st.rows);
            Ok(st)
        });
        if let Some(p) = profile {
            p.workers.add(workers as u64);
        }
        let t0 = Instant::now();
        let mut merged: Option<AggState> = None;
        for st in states {
            let st = st?;
            match &mut merged {
                None => merged = Some(st),
                Some(m) => m.absorb(&st, self.group_by.len())?,
            }
        }
        let merge_ns = t0.elapsed().as_nanos() as u64;
        if let Some(p) = profile {
            if let Some(m) = &merged {
                p.morsels.add(m.morsels);
            }
            p.merge_ns.add(merge_ns);
        }
        if let Some(m) = &self.metrics {
            m.counter("op.aggregate.kernel.merge_ns").add(merge_ns);
        }
        Ok(merged.expect("at least one worker"))
    }
}

impl Operator for HashAggregateExec {
    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn next(&mut self) -> Result<Option<RecordBatch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;

        let nkeys = self.group_by.len();
        let spill_schema = self.spill_schema();
        let mut spill: Option<SpillSet> = None;
        let mut state = if self.workers == 0 {
            // Field-level borrows: `spec` must not lock all of `self` while
            // the loop pulls from `self.input`.
            let spec = AggSpec {
                key_types: &self.key_types,
                aggs: &self.aggs,
                agg_input_types: &self.agg_input_types,
            };
            let mut lease = self.budget.as_ref().map(|b| BudgetLease::new(b.clone()));
            let mut st = AggState::new(&self.key_types, &self.aggs, &self.agg_input_types);
            while let Some(batch) = self.input.next()? {
                st.consume(&self.group_by, &self.aggs, &batch)?;
                if nkeys > 0 {
                    if let Some(l) = &mut lease {
                        l.set(st.mem_bytes());
                        if l.over() {
                            spill_state_into(
                                &mut st,
                                spill.get_or_insert_with(SpillSet::new),
                                &spill_schema,
                                &spec,
                                0,
                                self.metrics.as_ref(),
                            )?;
                            l.set(st.mem_bytes());
                        }
                    }
                }
            }
            st
        } else {
            self.parallel_state(&mut spill, &spill_schema)?
        };

        // The merge of per-worker partials can itself cross the budget even
        // when no worker spilled mid-stream.
        if spill.is_none() && nkeys > 0 {
            if let Some(b) = &self.budget {
                if state.mem_bytes() > b.limit() {
                    spill = Some(SpillSet::new());
                }
            }
        }

        // Global aggregation over an empty input still yields one row
        // (COUNT(*) = 0, SUM = NULL, ...), matching SQL.
        if state.n_groups == 0 && nkeys == 0 {
            state.n_groups = 1;
            for acc in &mut state.accs {
                acc.push_group();
            }
        }

        // When anything spilled, every group flows through the partitions:
        // the in-memory residual is flushed too, so a group spilled earlier
        // cannot also be emitted from memory. Output group order becomes
        // per-partition instead of first-appearance.
        let spilled_out = if let Some(mut set) = spill.take() {
            let spec = self.spec();
            spill_state_into(
                &mut state,
                &mut set,
                &spill_schema,
                &spec,
                0,
                self.metrics.as_ref(),
            )?;
            let mut out = Vec::new();
            for mut f in set.into_files() {
                self.process_partition(&mut f, &spill_schema, 1, &mut out)?;
            }
            Some(out)
        } else {
            None
        };

        let groups_total = match &spilled_out {
            Some(bs) => bs.iter().map(|b| b.num_rows() as u64).sum(),
            None => state.n_groups as u64,
        };
        if let Some(m) = &self.metrics {
            m.counter("op.aggregate.kernel.hash_ns").add(state.hash_ns);
            m.counter("op.aggregate.kernel.update_ns")
                .add(state.update_ns);
            m.counter("op.aggregate.kernel.groups").add(groups_total);
            if state.dict_key_rows > 0 {
                m.counter("op.aggregate.kernel.dict_key_rows")
                    .add(state.dict_key_rows);
            }
        }

        match spilled_out {
            Some(bs) => Ok(Some(RecordBatch::concat(self.schema.clone(), &bs)?)),
            None => Ok(Some(finish_batch(state, &self.schema)?)),
        }
    }

    fn name(&self) -> &'static str {
        "HashAggregate"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{avg, col, count, count_star, lit, max, min, sum};
    use crate::physical::drain_one;
    use crate::physical::test_util::{int_batch, BatchSource};

    #[test]
    fn grouped_sums() {
        let batch = int_batch(&[("g", vec![1, 2, 1, 2, 1]), ("v", vec![10, 20, 30, 40, 50])]);
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::single(batch)),
            vec![col("g")],
            vec![sum(col("v")).alias("total"), count_star().alias("n")],
        )
        .unwrap();
        let out = drain_one(&mut agg).unwrap();
        assert_eq!(out.num_rows(), 2);
        let rows = out.to_rows();
        let g1 = rows.iter().find(|r| r[0] == Value::Int(1)).unwrap();
        assert_eq!(g1[1], Value::Int(90));
        assert_eq!(g1[2], Value::Int(3));
        let g2 = rows.iter().find(|r| r[0] == Value::Int(2)).unwrap();
        assert_eq!(g2[1], Value::Int(60));
    }

    #[test]
    fn global_aggregate_no_groups() {
        let batch = int_batch(&[("v", vec![1, 2, 3, 4])]);
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::single(batch)),
            vec![],
            vec![
                sum(col("v")),
                min(col("v")),
                max(col("v")),
                avg(col("v")),
                count(col("v")),
            ],
        )
        .unwrap();
        let out = drain_one(&mut agg).unwrap();
        assert_eq!(out.num_rows(), 1);
        let r = out.row(0);
        assert_eq!(r[0], Value::Int(10));
        assert_eq!(r[1], Value::Int(1));
        assert_eq!(r[2], Value::Int(4));
        assert_eq!(r[3], Value::Float(2.5));
        assert_eq!(r[4], Value::Int(4));
    }

    #[test]
    fn empty_input_global_aggregate() {
        let batch = int_batch(&[("v", vec![])]);
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::single(batch)),
            vec![],
            vec![count_star().alias("n"), sum(col("v")).alias("s")],
        )
        .unwrap();
        let out = drain_one(&mut agg).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0)[0], Value::Int(0));
        assert!(out.row(0)[1].is_null());
    }

    #[test]
    fn empty_input_grouped_aggregate_yields_no_rows() {
        let batch = int_batch(&[("g", vec![]), ("v", vec![])]);
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::single(batch)),
            vec![col("g")],
            vec![count_star()],
        )
        .unwrap();
        let out = drain_one(&mut agg).unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn count_skips_nulls_count_star_does_not() {
        use backbone_storage::{Column, DataType, Field};
        let schema = Schema::new(vec![Field::nullable("v", DataType::Int64)]);
        let batch = RecordBatch::try_new(
            schema,
            vec![Arc::new(Column::from_opt_i64(vec![Some(1), None, Some(3)]))],
        )
        .unwrap();
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::single(batch)),
            vec![],
            vec![count(col("v")).alias("c"), count_star().alias("cs")],
        )
        .unwrap();
        let out = drain_one(&mut agg).unwrap();
        assert_eq!(out.row(0)[0], Value::Int(2));
        assert_eq!(out.row(0)[1], Value::Int(3));
    }

    #[test]
    fn expression_group_keys() {
        let batch = int_batch(&[("v", vec![1, 2, 3, 4, 5, 6])]);
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::single(batch)),
            vec![col("v").modulo(lit(2i64)).alias("parity")],
            vec![count_star().alias("n")],
        )
        .unwrap();
        let out = drain_one(&mut agg).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert!(out.to_rows().iter().all(|r| r[1] == Value::Int(3)));
    }

    #[test]
    fn aggregate_across_batches() {
        let b1 = int_batch(&[("g", vec![1, 2]), ("v", vec![1, 1])]);
        let b2 = int_batch(&[("g", vec![1, 2]), ("v", vec![10, 10])]);
        let src = BatchSource::new(b1.schema().clone(), vec![b1, b2]);
        let mut agg = HashAggregateExec::new(
            Box::new(src),
            vec![col("g")],
            vec![sum(col("v")).alias("s")],
        )
        .unwrap();
        let out = drain_one(&mut agg).unwrap();
        let rows = out.to_rows();
        assert!(rows
            .iter()
            .any(|r| r[0] == Value::Int(1) && r[1] == Value::Int(11)));
    }

    #[test]
    fn sum_int_overflow_detected() {
        let batch = int_batch(&[("v", vec![i64::MAX, 1])]);
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::single(batch)),
            vec![],
            vec![sum(col("v"))],
        )
        .unwrap();
        assert!(matches!(agg.next(), Err(QueryError::Arithmetic(_))));
    }

    #[test]
    fn groups_emit_in_first_appearance_order() {
        let batch = int_batch(&[("g", vec![7, 3, 7, 9, 3]), ("v", vec![1, 1, 1, 1, 1])]);
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::single(batch)),
            vec![col("g")],
            vec![count_star().alias("n")],
        )
        .unwrap();
        let out = drain_one(&mut agg).unwrap();
        let keys: Vec<Value> = (0..out.num_rows()).map(|i| out.row(i)[0].clone()).collect();
        assert_eq!(keys, vec![Value::Int(7), Value::Int(3), Value::Int(9)]);
    }

    #[test]
    fn null_keys_group_together() {
        use backbone_storage::{Column, DataType, Field};
        let schema = Schema::new(vec![
            Field::nullable("g", DataType::Int64),
            Field::new("v", DataType::Int64),
        ]);
        let batch = RecordBatch::try_new(
            schema,
            vec![
                Arc::new(Column::from_opt_i64(vec![None, Some(1), None, Some(1)])),
                Arc::new(Column::from_i64(vec![10, 20, 30, 40])),
            ],
        )
        .unwrap();
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::single(batch)),
            vec![col("g")],
            vec![sum(col("v")).alias("s")],
        )
        .unwrap();
        let out = drain_one(&mut agg).unwrap();
        assert_eq!(out.num_rows(), 2);
        let rows = out.to_rows();
        assert!(rows
            .iter()
            .any(|r| r[0].is_null() && r[1] == Value::Int(40)));
        assert!(rows
            .iter()
            .any(|r| r[0] == Value::Int(1) && r[1] == Value::Int(60)));
    }

    #[test]
    fn parallel_matches_serial_grouped() {
        let make = || {
            let batches: Vec<_> = (0..8)
                .map(|b| {
                    int_batch(&[
                        ("g", (0..100).map(|i| (b * 7 + i) % 13).collect()),
                        ("v", (0..100).map(|i| b * 100 + i).collect()),
                    ])
                })
                .collect();
            BatchSource::new(batches[0].schema().clone(), batches)
        };
        let run = |workers: usize| {
            let mut agg = HashAggregateExec::new(
                Box::new(make()),
                vec![col("g")],
                vec![
                    sum(col("v")).alias("s"),
                    count_star().alias("n"),
                    min(col("v")).alias("lo"),
                    max(col("v")).alias("hi"),
                    avg(col("v")).alias("a"),
                ],
            )
            .unwrap()
            .with_workers(workers);
            let mut rows = drain_one(&mut agg).unwrap().to_rows();
            rows.sort_by_key(|r| format!("{:?}", r[0]));
            rows
        };
        let serial = run(0);
        assert_eq!(serial, run(1));
        assert_eq!(serial, run(3));
    }

    #[test]
    fn parallel_global_aggregate_and_profile() {
        let batches: Vec<_> = (0..4)
            .map(|b| int_batch(&[("v", (b * 10..b * 10 + 10).collect())]))
            .collect();
        let src = BatchSource::new(batches[0].schema().clone(), batches);
        let profile = ParallelProfile::default();
        let metrics = Metrics::new();
        let mut agg = HashAggregateExec::new(
            Box::new(src),
            vec![],
            vec![sum(col("v")).alias("s"), count_star().alias("n")],
        )
        .unwrap()
        .with_workers(2)
        .with_metrics(Some(metrics.clone()))
        .with_parallel_profile(Some(profile.clone()));
        let out = drain_one(&mut agg).unwrap();
        assert_eq!(out.row(0)[0], Value::Int((0..40).sum()));
        assert_eq!(out.row(0)[1], Value::Int(40));
        assert_eq!(profile.workers.get(), 2);
        assert_eq!(profile.morsels.get(), 4);
        let worker_morsels: u64 = (0..2)
            .map(|w| metrics.value(&format!("op.aggregate.worker.{w}.morsels")))
            .sum();
        assert_eq!(worker_morsels, 4);
    }

    #[test]
    fn parallel_empty_global_still_one_row() {
        let batch = int_batch(&[("v", vec![])]);
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::single(batch)),
            vec![],
            vec![count_star().alias("n"), sum(col("v")).alias("s")],
        )
        .unwrap()
        .with_workers(2);
        let out = drain_one(&mut agg).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0)[0], Value::Int(0));
        assert!(out.row(0)[1].is_null());
    }

    #[test]
    fn aggregates_respect_selection_views() {
        let batch = int_batch(&[("g", vec![1, 1, 2, 2]), ("v", vec![10, 20, 30, 40])]);
        let view = batch.with_selection(Arc::new(vec![0, 3])).unwrap();
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::new(view.schema().clone(), vec![view])),
            vec![col("g")],
            vec![sum(col("v")).alias("s"), count_star().alias("n")],
        )
        .unwrap();
        let out = drain_one(&mut agg).unwrap();
        let rows = out.to_rows();
        assert_eq!(rows.len(), 2);
        assert!(rows
            .iter()
            .any(|r| r[0] == Value::Int(1) && r[1] == Value::Int(10) && r[2] == Value::Int(1)));
        assert!(rows
            .iter()
            .any(|r| r[0] == Value::Int(2) && r[1] == Value::Int(40) && r[2] == Value::Int(1)));
    }

    /// Sorted row images for order-insensitive comparison: spilled output is
    /// emitted per partition, not in first-appearance order.
    fn sorted_rows(b: &RecordBatch) -> Vec<String> {
        let mut rows: Vec<String> = b.to_rows().iter().map(|r| format!("{r:?}")).collect();
        rows.sort();
        rows
    }

    /// 800 rows over 157 groups with a mixed accumulator set; integer-valued
    /// sums stay exact in f64, so avg is merge-order independent.
    fn many_groups(workers: usize, budget: Option<usize>, metrics: Option<Metrics>) -> RecordBatch {
        let batches: Vec<_> = (0..8)
            .map(|b| {
                int_batch(&[
                    ("g", (0..100).map(|i| (b * 100 + i) % 157).collect()),
                    ("v", (0..100).map(|i| b * 100 + i).collect()),
                ])
            })
            .collect();
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::new(batches[0].schema().clone(), batches)),
            vec![col("g")],
            vec![
                sum(col("v")).alias("s"),
                count_star().alias("n"),
                min(col("v")).alias("lo"),
                avg(col("v")).alias("a"),
            ],
        )
        .unwrap()
        .with_workers(workers)
        .with_metrics(metrics)
        .with_budget(budget.map(BudgetAccountant::new));
        drain_one(&mut agg).unwrap()
    }

    #[test]
    fn spilling_aggregate_matches_in_memory() {
        let expect = sorted_rows(&many_groups(0, None, None));
        let metrics = Metrics::new();
        let spilled = many_groups(0, Some(4096), Some(metrics.clone()));
        assert_eq!(sorted_rows(&spilled), expect);
        assert!(
            metrics.value("storage.spill.partitions") > 0,
            "a 4 KiB budget must force a spill"
        );
        assert!(metrics.value("storage.spill.bytes_written") > 0);
        assert!(metrics.value("storage.spill.bytes_read") > 0);
    }

    #[test]
    fn parallel_spilling_aggregate_matches_serial() {
        let expect = sorted_rows(&many_groups(0, None, None));
        let metrics = Metrics::new();
        let spilled = many_groups(4, Some(4096), Some(metrics.clone()));
        assert_eq!(sorted_rows(&spilled), expect);
        assert!(metrics.value("storage.spill.partitions") > 0);
    }

    #[test]
    fn one_byte_budget_recursion_stays_correct() {
        // Every partition is always "over", so repartitioning recurses to
        // MAX_SPILL_DEPTH and then finishes in memory.
        let expect = sorted_rows(&many_groups(0, None, None));
        assert_eq!(sorted_rows(&many_groups(0, Some(1), None)), expect);
    }

    #[test]
    fn generous_budget_never_spills() {
        let metrics = Metrics::new();
        let out = many_groups(0, Some(64 << 20), Some(metrics.clone()));
        assert_eq!(sorted_rows(&out), sorted_rows(&many_groups(0, None, None)));
        assert_eq!(metrics.value("storage.spill.partitions"), 0);
    }

    #[test]
    fn global_aggregate_ignores_budget() {
        // No group keys: nothing to partition by, so the (tiny) budget must
        // not trigger spilling and the single-row result stays exact.
        let metrics = Metrics::new();
        let batch = int_batch(&[("v", vec![1, 2, 3, 4])]);
        let mut agg = HashAggregateExec::new(
            Box::new(BatchSource::single(batch)),
            vec![],
            vec![sum(col("v")).alias("s")],
        )
        .unwrap()
        .with_metrics(Some(metrics.clone()))
        .with_budget(Some(BudgetAccountant::new(1)));
        let out = drain_one(&mut agg).unwrap();
        assert_eq!(out.row(0)[0], Value::Int(10));
        assert_eq!(metrics.value("storage.spill.partitions"), 0);
    }
}
