//! Top-K operator: `ORDER BY ... LIMIT k` without a full sort.

use super::Operator;
use crate::error::Result;
use crate::eval::eval;
use crate::logical::SortKey;
use crate::physical::sort::cmp_rows;
use backbone_storage::{Column, RecordBatch, Schema, Value};
use std::cmp::Ordering;
use std::sync::Arc;

/// Keeps only the best `k` rows under the sort keys, using a bounded
/// selection buffer instead of sorting the whole input. The planner fuses
/// `Limit(Sort(x))` into this operator.
pub struct TopKExec {
    input: Option<Box<dyn Operator>>,
    keys: Vec<SortKey>,
    k: usize,
    schema: Arc<Schema>,
    done: bool,
}

impl TopKExec {
    /// Keep the best `k` rows of `input` under `keys`.
    pub fn new(input: Box<dyn Operator>, keys: Vec<SortKey>, k: usize) -> TopKExec {
        let schema = input.schema();
        TopKExec {
            input: Some(input),
            keys,
            k,
            schema,
            done: false,
        }
    }
}

impl Operator for TopKExec {
    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn next(&mut self) -> Result<Option<RecordBatch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        if self.k == 0 {
            return Ok(Some(RecordBatch::empty(self.schema.clone())));
        }
        let mut input = self.input.take().expect("run once");

        // Buffer of candidate rows as (key values, full row). Kept sorted and
        // truncated to k after each batch: selection cost is
        // O(n log(buffer)) and memory O(k + batch).
        let mut buffer: Vec<(Vec<Value>, Vec<Value>)> = Vec::new();
        let descending: Vec<bool> = self.keys.iter().map(|k| k.descending).collect();
        let cmp_keys = |a: &[Value], b: &[Value]| -> Ordering {
            for (i, (va, vb)) in a.iter().zip(b).enumerate() {
                let ord = va.sql_cmp(vb);
                let ord = if descending[i] { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        };

        while let Some(batch) = input.next()? {
            let key_cols: Vec<(Column, bool)> = self
                .keys
                .iter()
                .map(|k| Ok((eval(&k.expr, &batch)?, k.descending)))
                .collect::<Result<_>>()?;
            // Pre-rank this batch's rows, take its local top-k, merge.
            let mut local: Vec<usize> = (0..batch.num_rows()).collect();
            local.sort_by(|&a, &b| cmp_rows(&key_cols, a, b));
            local.truncate(self.k);
            for row in local {
                let key: Vec<Value> = key_cols.iter().map(|(c, _)| c.value(row)).collect();
                buffer.push((key, batch.row(row)));
            }
            buffer.sort_by(|a, b| cmp_keys(&a.0, &b.0));
            buffer.truncate(self.k);
        }

        let rows: Vec<Vec<Value>> = buffer.into_iter().map(|(_, row)| row).collect();
        Ok(Some(RecordBatch::from_rows(self.schema.clone(), &rows)?))
    }

    fn name(&self) -> &'static str {
        "TopK"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::col;
    use crate::logical::{asc, desc};
    use crate::physical::drain_one;
    use crate::physical::test_util::{int_batch, BatchSource};
    use crate::physical::SortExec;

    #[test]
    fn keeps_best_k() {
        let batch = int_batch(&[("x", vec![5, 3, 9, 1, 7])]);
        let mut t = TopKExec::new(Box::new(BatchSource::single(batch)), vec![asc(col("x"))], 2);
        let out = drain_one(&mut t).unwrap();
        assert_eq!(out.column(0).i64_data().unwrap(), &[1, 3]);
    }

    #[test]
    fn descending_top_k() {
        let batch = int_batch(&[("x", vec![5, 3, 9, 1, 7])]);
        let mut t = TopKExec::new(
            Box::new(BatchSource::single(batch)),
            vec![desc(col("x"))],
            3,
        );
        let out = drain_one(&mut t).unwrap();
        assert_eq!(out.column(0).i64_data().unwrap(), &[9, 7, 5]);
    }

    #[test]
    fn k_larger_than_input() {
        let batch = int_batch(&[("x", vec![2, 1])]);
        let mut t = TopKExec::new(
            Box::new(BatchSource::single(batch)),
            vec![asc(col("x"))],
            10,
        );
        let out = drain_one(&mut t).unwrap();
        assert_eq!(out.column(0).i64_data().unwrap(), &[1, 2]);
    }

    #[test]
    fn zero_k() {
        let batch = int_batch(&[("x", vec![1])]);
        let mut t = TopKExec::new(Box::new(BatchSource::single(batch)), vec![asc(col("x"))], 0);
        let out = drain_one(&mut t).unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn matches_sort_plus_limit_across_batches() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        let batches: Vec<_> = (0..5)
            .map(|_| {
                let vals: Vec<i64> = (0..50).map(|_| rng.gen_range(0..1000)).collect();
                int_batch(&[("x", vals)])
            })
            .collect();
        let schema = batches[0].schema().clone();
        let mut topk = TopKExec::new(
            Box::new(BatchSource::new(schema.clone(), batches.clone())),
            vec![asc(col("x"))],
            7,
        );
        let a = drain_one(&mut topk).unwrap();
        let mut sort = SortExec::new(
            Box::new(BatchSource::new(schema, batches)),
            vec![asc(col("x"))],
        );
        let full = drain_one(&mut sort).unwrap();
        let b = full.slice(0, 7).unwrap();
        assert_eq!(a.to_rows(), b.to_rows());
    }
}
