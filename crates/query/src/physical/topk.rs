//! Top-K operator: `ORDER BY ... LIMIT k` without a full sort.

use super::Operator;
use crate::error::Result;
use crate::eval::eval_arc;
use crate::logical::SortKey;
use crate::physical::sort::cmp_rows;
use backbone_storage::{Column, RecordBatch, Schema, Value};
use std::cmp::Ordering;
use std::sync::Arc;

/// Keeps only the best `k` rows under the sort keys, using a bounded
/// selection buffer instead of sorting the whole input. The planner fuses
/// `Limit(Sort(x))` into this operator.
pub struct TopKExec {
    input: Option<Box<dyn Operator>>,
    keys: Vec<SortKey>,
    k: usize,
    schema: Arc<Schema>,
    done: bool,
}

impl TopKExec {
    /// Keep the best `k` rows of `input` under `keys`.
    pub fn new(input: Box<dyn Operator>, keys: Vec<SortKey>, k: usize) -> TopKExec {
        let schema = input.schema();
        TopKExec {
            input: Some(input),
            keys,
            k,
            schema,
            done: false,
        }
    }
}

impl Operator for TopKExec {
    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn next(&mut self) -> Result<Option<RecordBatch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        if self.k == 0 {
            return Ok(Some(RecordBatch::empty(self.schema.clone())));
        }
        let mut input = self.input.take().expect("run once");

        // Candidates are (key values, batch index, base row): rows stay in
        // their source batches until the final gather (late materialization),
        // so evicted candidates never cost a row copy. Kept sorted and
        // truncated to k after each batch: selection cost is O(n log(buffer))
        // and memory O(k + retained batches).
        let mut kept: Vec<RecordBatch> = Vec::new();
        let mut buffer: Vec<(Vec<Value>, usize, usize)> = Vec::new();
        let descending: Vec<bool> = self.keys.iter().map(|k| k.descending).collect();
        let cmp_keys = |a: &[Value], b: &[Value]| -> Ordering {
            for (i, (va, vb)) in a.iter().zip(b).enumerate() {
                let ord = va.sql_cmp(vb);
                let ord = if descending[i] { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        };

        while let Some(batch) = input.next()? {
            if batch.is_empty() {
                continue;
            }
            let key_cols: Vec<(Arc<Column>, bool)> = self
                .keys
                .iter()
                .map(|k| Ok((eval_arc(&k.expr, &batch)?, k.descending)))
                .collect::<Result<_>>()?;
            // Pre-rank this batch's lanes (key columns are base-length, so
            // sort base indices), take its local top-k, merge.
            let mut local: Vec<usize> =
                (0..batch.num_rows()).map(|i| batch.base_index(i)).collect();
            local.sort_by(|&a, &b| cmp_rows(&key_cols, a, b));
            local.truncate(self.k);
            let bi = kept.len();
            for base_row in local {
                let key: Vec<Value> = key_cols.iter().map(|(c, _)| c.value(base_row)).collect();
                buffer.push((key, bi, base_row));
            }
            kept.push(batch);
            buffer.sort_by(|a, b| cmp_keys(&a.0, &b.0));
            buffer.truncate(self.k);
        }

        // Gather the surviving rows column-by-column with typed appends.
        let mut columns = Vec::with_capacity(self.schema.len());
        for (ci, f) in self.schema.fields().iter().enumerate() {
            let mut col = Column::empty(f.data_type);
            for (_, bi, base_row) in &buffer {
                col.push_from(kept[*bi].column(ci), *base_row)?;
            }
            columns.push(Arc::new(col));
        }
        Ok(Some(RecordBatch::try_new(self.schema.clone(), columns)?))
    }

    fn name(&self) -> &'static str {
        "TopK"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::col;
    use crate::logical::{asc, desc};
    use crate::physical::drain_one;
    use crate::physical::test_util::{int_batch, BatchSource};
    use crate::physical::SortExec;

    #[test]
    fn keeps_best_k() {
        let batch = int_batch(&[("x", vec![5, 3, 9, 1, 7])]);
        let mut t = TopKExec::new(Box::new(BatchSource::single(batch)), vec![asc(col("x"))], 2);
        let out = drain_one(&mut t).unwrap();
        assert_eq!(out.column(0).i64_data().unwrap(), &[1, 3]);
    }

    #[test]
    fn descending_top_k() {
        let batch = int_batch(&[("x", vec![5, 3, 9, 1, 7])]);
        let mut t = TopKExec::new(
            Box::new(BatchSource::single(batch)),
            vec![desc(col("x"))],
            3,
        );
        let out = drain_one(&mut t).unwrap();
        assert_eq!(out.column(0).i64_data().unwrap(), &[9, 7, 5]);
    }

    #[test]
    fn k_larger_than_input() {
        let batch = int_batch(&[("x", vec![2, 1])]);
        let mut t = TopKExec::new(
            Box::new(BatchSource::single(batch)),
            vec![asc(col("x"))],
            10,
        );
        let out = drain_one(&mut t).unwrap();
        assert_eq!(out.column(0).i64_data().unwrap(), &[1, 2]);
    }

    #[test]
    fn zero_k() {
        let batch = int_batch(&[("x", vec![1])]);
        let mut t = TopKExec::new(Box::new(BatchSource::single(batch)), vec![asc(col("x"))], 0);
        let out = drain_one(&mut t).unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn respects_selection_views() {
        // Select lanes {1, 3, 4} -> values {3, 1, 7}; top-2 asc = [1, 3].
        let batch = int_batch(&[("x", vec![5, 3, 9, 1, 7])])
            .with_selection(Arc::new(vec![1, 3, 4]))
            .unwrap();
        let mut t = TopKExec::new(Box::new(BatchSource::single(batch)), vec![asc(col("x"))], 2);
        let out = drain_one(&mut t).unwrap();
        assert_eq!(out.column(0).i64_data().unwrap(), &[1, 3]);
    }

    #[test]
    fn matches_sort_plus_limit_across_batches() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        let batches: Vec<_> = (0..5)
            .map(|_| {
                let vals: Vec<i64> = (0..50).map(|_| rng.gen_range(0..1000)).collect();
                int_batch(&[("x", vals)])
            })
            .collect();
        let schema = batches[0].schema().clone();
        let mut topk = TopKExec::new(
            Box::new(BatchSource::new(schema.clone(), batches.clone())),
            vec![asc(col("x"))],
            7,
        );
        let a = drain_one(&mut topk).unwrap();
        let mut sort = SortExec::new(
            Box::new(BatchSource::new(schema, batches)),
            vec![asc(col("x"))],
        );
        let full = drain_one(&mut sort).unwrap();
        let b = full.slice(0, 7).unwrap();
        assert_eq!(a.to_rows(), b.to_rows());
    }
}
