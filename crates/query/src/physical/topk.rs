//! Top-K operator: `ORDER BY ... LIMIT k` without a full sort.

use super::parallel::{record_worker, ParallelProfile, SharedSource};
use super::Operator;
use crate::error::Result;
use crate::eval::eval_arc;
use crate::logical::SortKey;
use crate::physical::sort::cmp_rows;
use backbone_storage::{Column, Metrics, RecordBatch, Schema, Value};
use std::cmp::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Compare two candidate key tuples under per-key sort direction.
fn cmp_keys(descending: &[bool], a: &[Value], b: &[Value]) -> Ordering {
    for (i, (va, vb)) in a.iter().zip(b).enumerate() {
        let ord = va.sql_cmp(vb);
        let ord = if descending[i] { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// One selection buffer: candidates are (key values, kept-batch index, base
/// row). Rows stay in their source batches until the final gather (late
/// materialization), so evicted candidates never cost a row copy. Serial
/// top-k uses one; each parallel worker keeps its own and the buffers merge
/// — in worker order, keeping the merge deterministic — at drain.
#[derive(Default)]
struct TopKState {
    kept: Vec<RecordBatch>,
    buffer: Vec<(Vec<Value>, usize, usize)>,
    morsels: u64,
    rows: u64,
}

impl TopKState {
    /// Fold one batch: pre-rank its lanes, take the local top-k, merge into
    /// the buffer, re-truncate to k. Selection cost is O(n log(buffer)) and
    /// memory O(k + retained batches).
    fn consume(
        &mut self,
        keys: &[SortKey],
        descending: &[bool],
        k: usize,
        batch: RecordBatch,
    ) -> Result<()> {
        self.morsels += 1;
        self.rows += batch.num_rows() as u64;
        if batch.is_empty() {
            return Ok(());
        }
        let key_cols: Vec<(Arc<Column>, bool)> = keys
            .iter()
            .map(|key| Ok((eval_arc(&key.expr, &batch)?, key.descending)))
            .collect::<Result<_>>()?;
        // Key columns are base-length, so sort base indices.
        let mut local: Vec<usize> = (0..batch.num_rows()).map(|i| batch.base_index(i)).collect();
        local.sort_by(|&a, &b| cmp_rows(&key_cols, a, b));
        local.truncate(k);
        let bi = self.kept.len();
        for base_row in local {
            let key: Vec<Value> = key_cols.iter().map(|(c, _)| c.value(base_row)).collect();
            self.buffer.push((key, bi, base_row));
        }
        self.kept.push(batch);
        self.buffer.sort_by(|a, b| cmp_keys(descending, &a.0, &b.0));
        self.buffer.truncate(k);
        Ok(())
    }

    /// Append another worker's survivors (batch indices re-based), then
    /// re-select the global top-k.
    fn absorb(&mut self, other: TopKState, descending: &[bool], k: usize) {
        self.morsels += other.morsels;
        self.rows += other.rows;
        let offset = self.kept.len();
        self.kept.extend(other.kept);
        self.buffer.extend(
            other
                .buffer
                .into_iter()
                .map(|(key, bi, row)| (key, bi + offset, row)),
        );
        self.buffer.sort_by(|a, b| cmp_keys(descending, &a.0, &b.0));
        self.buffer.truncate(k);
    }
}

/// Keeps only the best `k` rows under the sort keys, using a bounded
/// selection buffer instead of sorting the whole input. The planner fuses
/// `Limit(Sort(x))` into this operator.
pub struct TopKExec {
    input: Option<Box<dyn Operator>>,
    keys: Vec<SortKey>,
    k: usize,
    schema: Arc<Schema>,
    metrics: Option<Metrics>,
    workers: usize,
    profile: Option<ParallelProfile>,
    done: bool,
}

impl TopKExec {
    /// Keep the best `k` rows of `input` under `keys`.
    pub fn new(input: Box<dyn Operator>, keys: Vec<SortKey>, k: usize) -> TopKExec {
        let schema = input.schema();
        TopKExec {
            input: Some(input),
            keys,
            k,
            schema,
            metrics: None,
            workers: 0,
            profile: None,
            done: false,
        }
    }

    /// Record merge-phase time into `metrics` under `op.topk.kernel.*`
    /// (plus `op.topk.worker.*` when parallel).
    pub fn with_metrics(mut self, metrics: Option<Metrics>) -> Self {
        self.metrics = metrics;
        self
    }

    /// Select with `n` worker threads (0 = serial, on the calling thread).
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Attach shared parallel counters for EXPLAIN ANALYZE.
    pub fn with_parallel_profile(mut self, profile: Option<ParallelProfile>) -> Self {
        self.profile = profile;
        self
    }

    /// Per-worker selection buffers over a shared source, merged in worker
    /// order.
    fn parallel_state(&self, input: &mut dyn Operator, descending: &[bool]) -> Result<TopKState> {
        let workers = self.workers;
        let keys = &self.keys;
        let k = self.k;
        let metrics = &self.metrics;
        let source = SharedSource::new(input);
        let states: Vec<Result<TopKState>> = super::pool::run_workers(workers, |w| {
            let _kernel = crate::kernel_metrics::install(metrics.clone());
            let mut st = TopKState::default();
            while let Some(batch) = source.next()? {
                st.consume(keys, descending, k, batch)?;
            }
            record_worker(metrics.as_ref(), "topk", w, st.morsels, st.rows);
            Ok(st)
        });
        if let Some(p) = &self.profile {
            p.workers.add(workers as u64);
        }
        let t0 = Instant::now();
        let mut merged: Option<TopKState> = None;
        for st in states {
            let st = st?;
            match &mut merged {
                None => merged = Some(st),
                Some(m) => m.absorb(st, descending, k),
            }
        }
        let merge_ns = t0.elapsed().as_nanos() as u64;
        let merged = merged.expect("at least one worker");
        if let Some(p) = &self.profile {
            p.morsels.add(merged.morsels);
            p.merge_ns.add(merge_ns);
        }
        if let Some(m) = &self.metrics {
            m.counter("op.topk.kernel.merge_ns").add(merge_ns);
        }
        Ok(merged)
    }
}

impl Operator for TopKExec {
    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn next(&mut self) -> Result<Option<RecordBatch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        if self.k == 0 {
            return Ok(Some(RecordBatch::empty(self.schema.clone())));
        }
        let mut input = self.input.take().expect("run once");
        let descending: Vec<bool> = self.keys.iter().map(|k| k.descending).collect();

        let state = if self.workers == 0 {
            let mut st = TopKState::default();
            while let Some(batch) = input.next()? {
                st.consume(&self.keys, &descending, self.k, batch)?;
            }
            st
        } else {
            self.parallel_state(input.as_mut(), &descending)?
        };

        // Gather the surviving rows column-by-column with typed appends.
        let mut columns = Vec::with_capacity(self.schema.len());
        for (ci, f) in self.schema.fields().iter().enumerate() {
            let mut col = Column::empty(f.data_type);
            for (_, bi, base_row) in &state.buffer {
                col.push_from(state.kept[*bi].column(ci), *base_row)?;
            }
            columns.push(Arc::new(col));
        }
        Ok(Some(RecordBatch::try_new(self.schema.clone(), columns)?))
    }

    fn name(&self) -> &'static str {
        "TopK"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::col;
    use crate::logical::{asc, desc};
    use crate::physical::drain_one;
    use crate::physical::test_util::{int_batch, BatchSource};
    use crate::physical::SortExec;

    #[test]
    fn keeps_best_k() {
        let batch = int_batch(&[("x", vec![5, 3, 9, 1, 7])]);
        let mut t = TopKExec::new(Box::new(BatchSource::single(batch)), vec![asc(col("x"))], 2);
        let out = drain_one(&mut t).unwrap();
        assert_eq!(out.column(0).i64_data().unwrap(), &[1, 3]);
    }

    #[test]
    fn descending_top_k() {
        let batch = int_batch(&[("x", vec![5, 3, 9, 1, 7])]);
        let mut t = TopKExec::new(
            Box::new(BatchSource::single(batch)),
            vec![desc(col("x"))],
            3,
        );
        let out = drain_one(&mut t).unwrap();
        assert_eq!(out.column(0).i64_data().unwrap(), &[9, 7, 5]);
    }

    #[test]
    fn k_larger_than_input() {
        let batch = int_batch(&[("x", vec![2, 1])]);
        let mut t = TopKExec::new(
            Box::new(BatchSource::single(batch)),
            vec![asc(col("x"))],
            10,
        );
        let out = drain_one(&mut t).unwrap();
        assert_eq!(out.column(0).i64_data().unwrap(), &[1, 2]);
    }

    #[test]
    fn zero_k() {
        let batch = int_batch(&[("x", vec![1])]);
        let mut t = TopKExec::new(Box::new(BatchSource::single(batch)), vec![asc(col("x"))], 0);
        let out = drain_one(&mut t).unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn respects_selection_views() {
        // Select lanes {1, 3, 4} -> values {3, 1, 7}; top-2 asc = [1, 3].
        let batch = int_batch(&[("x", vec![5, 3, 9, 1, 7])])
            .with_selection(Arc::new(vec![1, 3, 4]))
            .unwrap();
        let mut t = TopKExec::new(Box::new(BatchSource::single(batch)), vec![asc(col("x"))], 2);
        let out = drain_one(&mut t).unwrap();
        assert_eq!(out.column(0).i64_data().unwrap(), &[1, 3]);
    }

    #[test]
    fn matches_sort_plus_limit_across_batches() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        let batches: Vec<_> = (0..5)
            .map(|_| {
                let vals: Vec<i64> = (0..50).map(|_| rng.gen_range(0..1000)).collect();
                int_batch(&[("x", vals)])
            })
            .collect();
        let schema = batches[0].schema().clone();
        let mut topk = TopKExec::new(
            Box::new(BatchSource::new(schema.clone(), batches.clone())),
            vec![asc(col("x"))],
            7,
        );
        let a = drain_one(&mut topk).unwrap();
        let mut sort = SortExec::new(
            Box::new(BatchSource::new(schema, batches)),
            vec![asc(col("x"))],
        );
        let full = drain_one(&mut sort).unwrap();
        let b = full.slice(0, 7).unwrap();
        assert_eq!(a.to_rows(), b.to_rows());
    }

    #[test]
    fn parallel_matches_serial() {
        use rand::prelude::*;
        let make = |workers: usize| {
            let mut rng = StdRng::seed_from_u64(11);
            let batches: Vec<_> = (0..6)
                .map(|_| {
                    let vals: Vec<i64> = (0..40).map(|_| rng.gen_range(0..10_000)).collect();
                    int_batch(&[("x", vals)])
                })
                .collect();
            TopKExec::new(
                Box::new(BatchSource::new(batches[0].schema().clone(), batches)),
                vec![asc(col("x"))],
                9,
            )
            .with_workers(workers)
        };
        let serial = drain_one(&mut make(0)).unwrap().to_rows();
        assert_eq!(serial, drain_one(&mut make(1)).unwrap().to_rows());
        assert_eq!(serial, drain_one(&mut make(4)).unwrap().to_rows());
    }

    #[test]
    fn parallel_zero_k_skips_workers() {
        let batch = int_batch(&[("x", vec![1, 2])]);
        let mut t = TopKExec::new(Box::new(BatchSource::single(batch)), vec![asc(col("x"))], 0)
            .with_workers(4);
        let out = drain_one(&mut t).unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn parallel_records_profile() {
        let profile = ParallelProfile::default();
        let batches: Vec<_> = (0..5)
            .map(|b| int_batch(&[("x", vec![b, b + 1])]))
            .collect();
        let mut t = TopKExec::new(
            Box::new(BatchSource::new(batches[0].schema().clone(), batches)),
            vec![asc(col("x"))],
            3,
        )
        .with_workers(2)
        .with_parallel_profile(Some(profile.clone()));
        drain_one(&mut t).unwrap();
        assert_eq!(profile.workers.get(), 2);
        assert_eq!(profile.morsels.get(), 5);
    }
}
