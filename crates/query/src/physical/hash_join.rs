//! Hash equi-join operator.
//!
//! Vectorized two-phase implementation: the build side is hashed column-wise
//! into a chained bucket table (head + next arrays of `u32` row ids, no
//! `Value` keys), the probe side hashes its key columns over the selected
//! lanes, and matches accumulate as `u32` row-id lists that turn into **one
//! gather per output column** instead of per-row pushes.
//!
//! With `workers >= 1` the build table is split into hash partitions linked
//! in parallel and probe batches are pulled by worker threads. Equal keys
//! have equal hashes, so they land in one partition and one bucket whose
//! chain lists build rows in ascending order exactly like the serial table —
//! per-batch join output is identical either way.

use super::parallel::{record_worker, ParallelProfile, SharedSource};
use super::spill::{BudgetAccountant, BudgetLease, SpillFile, SpillSet, MAX_SPILL_DEPTH};
use super::{for_each_lane, Operator};
use crate::error::{QueryError, Result};
use crate::logical::JoinType;
use backbone_storage::{Column, Metrics, RecordBatch, Schema};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Classic two-phase hash join: materialize and hash the left (build) side,
/// then stream the right (probe) side. Supports inner and left-outer joins.
pub struct HashJoinExec {
    left: Option<Box<dyn Operator>>,
    right: Box<dyn Operator>,
    on: Vec<(String, String)>,
    join_type: JoinType,
    schema: Arc<Schema>,
    build: Option<BuildSide>,
    metrics: Option<Metrics>,
    workers: usize,
    profile: Option<ParallelProfile>,
    pending: VecDeque<RecordBatch>,
    done_probe: bool,
    /// Left-outer padding emitted (at most once, after the probe drains).
    left_emitted: bool,
    /// Shared memory budget; the build side spills to a Grace partition
    /// join when collecting it would cross the ceiling.
    budget: Option<Arc<BudgetAccountant>>,
    /// Reservation for the resident build table (in-memory mode).
    lease: Option<BudgetLease>,
    grace: Option<GraceJoin>,
}

/// State for a Grace (partitioned, out-of-core) hash join: both inputs were
/// hash-partitioned into spill files and the pairs are joined one at a time.
/// Equal keys hash equally, so a partition pair is self-contained — and
/// distinct partitions are key-disjoint, which makes per-partition
/// left-outer padding sound.
struct GraceJoin {
    /// (build partition, probe partition, repartition depth) work queue.
    parts: VecDeque<(SpillFile, SpillFile, usize)>,
    lschema: Arc<Schema>,
    rschema: Arc<Schema>,
    build_keys: Vec<usize>,
    probe_keys: Vec<usize>,
}

struct BuildSide {
    batch: RecordBatch,
    /// Per-partition chained hash tables: `heads[part][bucket]` and
    /// `next[row]` hold `row + 1` (0 terminates). Rows with NULL keys are
    /// never linked in. Serial builds use a single partition, reproducing
    /// the classic one-table layout.
    heads: Vec<Vec<u32>>,
    next: Vec<AtomicU32>,
    /// Per-row key hash, for cheap pre-checks before typed comparison.
    hashes: Vec<u64>,
    bucket_mask: usize,
    /// Hash → partition: top `part_bits` bits, independent of the low bits
    /// that pick the bucket.
    part_bits: u32,
    matched: Vec<AtomicBool>,
    /// Probe-side key column ordinals.
    probe_keys: Vec<usize>,
    /// Build-side key column ordinals.
    build_keys: Vec<usize>,
}

impl BuildSide {
    #[inline]
    fn partition(&self, hash: u64) -> usize {
        if self.part_bits == 0 {
            0
        } else {
            (hash >> (64 - self.part_bits)) as usize
        }
    }
}

/// Per-batch probe counters, folded into the metrics registry by the caller.
#[derive(Default)]
struct ProbeStats {
    probe_ns: u64,
    gather_ns: u64,
    out_rows: u64,
    dict_shared_rows: u64,
    dict_mixed: u64,
}

impl ProbeStats {
    fn merge(&mut self, other: &ProbeStats) {
        self.probe_ns += other.probe_ns;
        self.gather_ns += other.gather_ns;
        self.out_rows += other.out_rows;
        self.dict_shared_rows += other.dict_shared_rows;
        self.dict_mixed += other.dict_mixed;
    }

    fn record(&self, metrics: &Option<Metrics>) {
        if let Some(m) = metrics {
            m.counter("op.hash_join.kernel.probe_ns").add(self.probe_ns);
            if self.gather_ns > 0 {
                m.counter("op.hash_join.kernel.gather_ns")
                    .add(self.gather_ns);
            }
            if self.out_rows > 0 {
                m.counter("op.hash_join.kernel.out_rows").add(self.out_rows);
            }
            if self.dict_shared_rows > 0 {
                m.counter("op.hash_join.kernel.dict_code_probe_rows")
                    .add(self.dict_shared_rows);
            }
            if self.dict_mixed > 0 {
                m.counter("op.hash_join.kernel.dict_fallback")
                    .add(self.dict_mixed);
            }
        }
    }
}

/// Probe one batch against the build table. Takes `&BuildSide` (match flags
/// are atomic) so parallel workers can probe concurrently.
fn probe_batch(
    build: &BuildSide,
    probe: &RecordBatch,
    schema: &Arc<Schema>,
) -> Result<(Option<RecordBatch>, ProbeStats)> {
    let mut stats = ProbeStats::default();
    let t0 = Instant::now();
    let sel = probe.selection();
    let n = probe.num_rows();
    let base = probe.base_rows();
    let probe_cols: Vec<&Arc<Column>> = build.probe_keys.iter().map(|&c| probe.column(c)).collect();

    // Column-wise probe hashing over the selected lanes.
    let mut hashes = vec![0u64; base];
    for pc in &probe_cols {
        pc.hash_combine(sel, &mut hashes);
    }
    // Classify key encodings once per batch: a shared dictionary means
    // `eq_rows_null_eq` verifies candidates by u32 code compare; any other
    // dict pairing falls back to per-row string comparison and must be
    // visible in the counters.
    for (&bc, pc) in build.build_keys.iter().zip(&probe_cols) {
        match (build.batch.column(bc).dict_parts(), pc.dict_parts()) {
            (Some((bd, _, _)), Some((pd, _, _))) if Arc::ptr_eq(bd, pd) => {
                stats.dict_shared_rows += n as u64;
            }
            (None, None) => {}
            _ => stats.dict_mixed += 1,
        }
    }

    // Row-id match lists: one (build_row, probe_base_row) pair per hit.
    let mut left_rows: Vec<u32> = Vec::new();
    let mut right_rows: Vec<u32> = Vec::new();
    // Run-aware fast path: a single all-valid RLE-encoded probe key with no
    // selection walks the build chain once per *run* — every row in a run
    // shares the key, hence the candidate set. Pair emission order matches
    // the per-row loop exactly (probe rows ascending, candidates in chain
    // order), so results are bit-for-bit identical.
    let probe_runs = if build.probe_keys.len() == 1 && sel.is_none() {
        match probe_cols[0].as_ref() {
            Column::Int64Encoded { data, validity } if validity.all_set() => data.runs(),
            _ => None,
        }
    } else {
        None
    };
    if let Some(runs) = probe_runs {
        let bcol = build.batch.column(build.build_keys[0]);
        let mut matches: Vec<u32> = Vec::new();
        let mut pos = 0usize;
        for &(_, cnt) in runs {
            let end = pos + cnt as usize;
            let h = hashes[pos];
            let heads = &build.heads[build.partition(h)];
            let mut cand = heads[(h as usize) & build.bucket_mask];
            matches.clear();
            while cand != 0 {
                let r = (cand - 1) as usize;
                if build.hashes[r] == h && bcol.eq_rows_null_eq(r, probe_cols[0], pos) {
                    matches.push(r as u32);
                }
                cand = build.next[r].load(Ordering::Relaxed);
            }
            if !matches.is_empty() {
                for &r in &matches {
                    build.matched[r as usize].store(true, Ordering::Relaxed);
                }
                for row in pos..end {
                    for &r in &matches {
                        left_rows.push(r);
                        right_rows.push(row as u32);
                    }
                }
            }
            pos = end;
        }
        stats.probe_ns = t0.elapsed().as_nanos() as u64;
        return finish_probe(build, probe, schema, left_rows, right_rows, stats);
    }
    for_each_lane(sel, n, |_, base_row| {
        if probe_cols.iter().any(|pc| pc.is_null(base_row)) {
            return;
        }
        let h = hashes[base_row];
        let heads = &build.heads[build.partition(h)];
        let mut cand = heads[(h as usize) & build.bucket_mask];
        while cand != 0 {
            let r = (cand - 1) as usize;
            if build.hashes[r] == h
                && build
                    .build_keys
                    .iter()
                    .zip(&probe_cols)
                    .all(|(&bc, pc)| build.batch.column(bc).eq_rows_null_eq(r, pc, base_row))
            {
                build.matched[r].store(true, Ordering::Relaxed);
                left_rows.push(r as u32);
                right_rows.push(base_row as u32);
            }
            cand = build.next[r].load(Ordering::Relaxed);
        }
    });
    stats.probe_ns = t0.elapsed().as_nanos() as u64;
    finish_probe(build, probe, schema, left_rows, right_rows, stats)
}

/// Gather the matched (build_row, probe_row) pairs into an output batch.
fn finish_probe(
    build: &BuildSide,
    probe: &RecordBatch,
    schema: &Arc<Schema>,
    left_rows: Vec<u32>,
    right_rows: Vec<u32>,
    mut stats: ProbeStats,
) -> Result<(Option<RecordBatch>, ProbeStats)> {
    if left_rows.is_empty() {
        return Ok((None, stats));
    }

    // One gather per output column.
    let t1 = Instant::now();
    let mut cols: Vec<Arc<Column>> =
        Vec::with_capacity(build.batch.num_columns() + probe.num_columns());
    for c in build.batch.columns() {
        cols.push(Arc::new(c.gather(&left_rows)));
    }
    for c in probe.columns() {
        cols.push(Arc::new(c.gather(&right_rows)));
    }
    stats.gather_ns = t1.elapsed().as_nanos() as u64;
    stats.out_rows = left_rows.len() as u64;
    Ok((Some(RecordBatch::try_new(schema.clone(), cols)?), stats))
}

/// Hash, partition, and link one dense build batch into a [`BuildSide`].
/// `workers >= 2` links hash partitions in parallel; otherwise the classic
/// single-partition table is produced (grace partitions always link
/// serially — they are already small by construction).
fn link_build_side(
    batch: RecordBatch,
    build_keys: Vec<usize>,
    probe_keys: Vec<usize>,
    workers: usize,
    metrics: &Option<Metrics>,
) -> BuildSide {
    let t0 = Instant::now();
    let rows = batch.num_rows();
    // Column-wise key hashing over the dense build batch.
    let mut hashes = vec![0u64; rows];
    for &c in &build_keys {
        batch.column(c).hash_combine(None, &mut hashes);
    }
    // Partition by the top hash bits so the low bits that pick a bucket
    // stay independent. Serial builds use one partition — the classic
    // single-table layout.
    let npart = if workers >= 2 {
        workers.next_power_of_two().min(64)
    } else {
        1
    };
    let part_bits = npart.trailing_zeros();
    let buckets = ((rows / npart).max(8) * 2).next_power_of_two();
    let bucket_mask = buckets - 1;
    // One pass assigning linkable rows to partitions, in ascending row
    // order so reverse-linking below leaves every chain ascending.
    let mut part_rows: Vec<Vec<u32>> = vec![Vec::new(); npart];
    for (row, &hash) in hashes.iter().enumerate() {
        // SQL join semantics: NULL keys never match — leave unlinked.
        if build_keys.iter().any(|&c| batch.column(c).is_null(row)) {
            continue;
        }
        let part = if part_bits == 0 {
            0
        } else {
            (hash >> (64 - part_bits)) as usize
        };
        part_rows[part].push(row as u32);
    }

    let next: Vec<AtomicU32> = (0..rows).map(|_| AtomicU32::new(0)).collect();
    let link = |rows_in_part: &[u32]| -> Vec<u32> {
        let mut heads = vec![0u32; buckets];
        // Insert in reverse so each chain lists build rows in ascending
        // order, matching the map-based implementation's match order.
        for &row in rows_in_part.iter().rev() {
            let b = (hashes[row as usize] as usize) & bucket_mask;
            next[row as usize].store(heads[b], Ordering::Relaxed);
            heads[b] = row + 1;
        }
        heads
    };
    let heads: Vec<Vec<u32>> = if npart == 1 {
        vec![link(&part_rows[0])]
    } else {
        // Workers claim partitions off a shared counter; each row is in
        // exactly one partition, so `next` writes never overlap.
        let cursor = AtomicUsize::new(0);
        let mut heads: Vec<Vec<u32>> = (0..npart).map(|_| Vec::new()).collect();
        let slots: Vec<std::sync::Mutex<&mut Vec<u32>>> =
            heads.iter_mut().map(std::sync::Mutex::new).collect();
        super::pool::run_workers(workers.min(npart), |_| loop {
            let p = cursor.fetch_add(1, Ordering::Relaxed);
            if p >= part_rows.len() {
                break;
            }
            let linked = link(&part_rows[p]);
            **slots[p].lock().expect("partition slot") = linked;
        });
        drop(slots);
        heads
    };

    if let Some(m) = metrics {
        m.counter("op.hash_join.kernel.build_ns")
            .add(t0.elapsed().as_nanos() as u64);
        m.counter("op.hash_join.kernel.build_rows").add(rows as u64);
        if npart > 1 {
            m.counter("op.hash_join.kernel.build_partitions")
                .add(npart as u64);
        }
    }
    BuildSide {
        batch,
        heads,
        next,
        hashes,
        bucket_mask,
        part_bits,
        matched: (0..rows).map(|_| AtomicBool::new(false)).collect(),
        probe_keys,
        build_keys,
    }
}

/// Left-outer padding for one build table: every never-matched build row,
/// right-side columns all NULL.
fn unmatched_left_batch(
    build: &BuildSide,
    rschema: &Arc<Schema>,
    schema: &Arc<Schema>,
) -> Result<Option<RecordBatch>> {
    let unmatched: Vec<u32> = build
        .matched
        .iter()
        .enumerate()
        .filter_map(|(i, m)| (!m.load(Ordering::Relaxed)).then_some(i as u32))
        .collect();
    if unmatched.is_empty() {
        return Ok(None);
    }
    let n = unmatched.len();
    let mut cols: Vec<Arc<Column>> = build
        .batch
        .columns()
        .iter()
        .map(|c| Arc::new(c.gather(&unmatched)))
        .collect();
    for f in rschema.fields() {
        cols.push(Arc::new(Column::nulls(f.data_type, n)));
    }
    Ok(Some(RecordBatch::try_new(schema.clone(), cols)?))
}

impl HashJoinExec {
    /// Build a hash join of `left` and `right` on `(left_col, right_col)`
    /// pairs.
    pub fn new(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        on: Vec<(String, String)>,
        join_type: JoinType,
    ) -> Result<HashJoinExec> {
        if on.is_empty() {
            return Err(QueryError::InvalidPlan(
                "hash join requires at least one key".into(),
            ));
        }
        let lschema = left.schema();
        let rschema = right.schema();
        for (l, r) in &on {
            lschema.index_of(l)?;
            rschema.index_of(r)?;
        }
        let mut schema = lschema.join(&rschema);
        if join_type == JoinType::Left {
            // Right-side fields become nullable in the output.
            let fields = schema
                .fields()
                .iter()
                .enumerate()
                .map(|(i, f)| {
                    let mut f = f.clone();
                    if i >= lschema.len() {
                        f.nullable = true;
                    }
                    f
                })
                .collect();
            schema = Schema::new(fields);
        }
        Ok(HashJoinExec {
            left: Some(left),
            right,
            on,
            join_type,
            schema,
            build: None,
            metrics: None,
            workers: 0,
            profile: None,
            pending: VecDeque::new(),
            done_probe: false,
            left_emitted: false,
            budget: None,
            lease: None,
            grace: None,
        })
    }

    /// Record per-kernel timers into `metrics` under `op.hash_join.kernel.*`
    /// (plus `op.hash_join.worker.*` when parallel).
    pub fn with_metrics(mut self, metrics: Option<Metrics>) -> Self {
        self.metrics = metrics;
        self
    }

    /// Join with `n` worker threads (0 = serial, on the calling thread).
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Attach shared parallel counters for EXPLAIN ANALYZE.
    pub fn with_parallel_profile(mut self, profile: Option<ParallelProfile>) -> Self {
        self.profile = profile;
        self
    }

    /// Attach the query's shared memory budget. When collecting the build
    /// side would cross the ceiling, the join switches to Grace mode:
    /// both inputs are hash-partitioned to spill files and the partition
    /// pairs are joined one at a time.
    pub fn with_budget(mut self, budget: Option<Arc<BudgetAccountant>>) -> Self {
        self.budget = budget;
        self
    }

    fn ensure_built(&mut self) -> Result<()> {
        if self.build.is_some() || self.grace.is_some() {
            return Ok(());
        }
        let mut left = self.left.take().expect("build side consumed once");
        let lschema = left.schema();
        let rschema = self.right.schema();
        let build_keys: Vec<usize> = self
            .on
            .iter()
            .map(|(l, _)| lschema.index_of(l).expect("validated in new"))
            .collect();
        let probe_keys: Vec<usize> = self
            .on
            .iter()
            .map(|(_, r)| rschema.index_of(r).expect("validated in new"))
            .collect();

        // Drain the build side under the shared budget. Batches are
        // densified up front so spill partitioning and concat both see
        // plain rows.
        let mut lease = self.budget.as_ref().map(|b| BudgetLease::new(b.clone()));
        let mut batches: Vec<RecordBatch> = Vec::new();
        let mut held = 0usize;
        let mut overflow = false;
        while let Some(b) = left.next()? {
            let b = b.materialize();
            held += b.byte_size();
            batches.push(b);
            if let Some(l) = &mut lease {
                l.set(held);
                if l.over() {
                    overflow = true;
                    break;
                }
            }
        }

        if overflow {
            // Grace mode. What was collected goes to the partitions first,
            // then the rest of both inputs streams straight through without
            // ever being held whole.
            let mut build_spill = SpillSet::new();
            for b in batches.drain(..) {
                build_spill.append_partitioned(&b, &build_keys, 0, self.metrics.as_ref())?;
            }
            if let Some(l) = &mut lease {
                l.set(0);
            }
            while let Some(b) = left.next()? {
                build_spill.append_partitioned(
                    &b.materialize(),
                    &build_keys,
                    0,
                    self.metrics.as_ref(),
                )?;
            }
            let mut probe_spill = SpillSet::new();
            while let Some(p) = self.right.next()? {
                probe_spill.append_partitioned(
                    &p.materialize(),
                    &probe_keys,
                    0,
                    self.metrics.as_ref(),
                )?;
            }
            self.done_probe = true;
            self.grace = Some(GraceJoin {
                parts: build_spill
                    .into_files()
                    .into_iter()
                    .zip(probe_spill.into_files())
                    .map(|(b, p)| (b, p, 1))
                    .collect(),
                lschema,
                rschema,
                build_keys,
                probe_keys,
            });
            return Ok(());
        }

        let any_dict_key: Vec<bool> = build_keys
            .iter()
            .map(|&c| batches.iter().any(|b| b.column(c).is_dict()))
            .collect();
        let batch = RecordBatch::concat(lschema, &batches)?;
        drop(batches);
        // Mixed-encoding inputs force the concat to decode: count it rather
        // than silently eating the cost.
        let decode_fallbacks = build_keys
            .iter()
            .zip(&any_dict_key)
            .filter(|&(&c, &was_dict)| was_dict && !batch.column(c).is_dict())
            .count() as u64;
        if decode_fallbacks > 0 {
            if let Some(m) = &self.metrics {
                m.counter("op.hash_join.kernel.dict_fallback")
                    .add(decode_fallbacks);
            }
        }
        if let Some(l) = &mut lease {
            l.set(batch.byte_size());
        }
        self.build = Some(link_build_side(
            batch,
            build_keys,
            probe_keys,
            self.workers,
            &self.metrics,
        ));
        // Hold the reservation as long as the build table is resident.
        self.lease = lease;
        Ok(())
    }

    /// Join one spilled partition pair, or repartition it with deeper hash
    /// bits when the build half alone still exceeds the budget. Returns
    /// `false` once the grace queue is exhausted.
    fn grace_step(&mut self) -> Result<bool> {
        let (lschema, rschema, build_keys, probe_keys) = {
            let g = self.grace.as_ref().expect("grace mode");
            (
                g.lschema.clone(),
                g.rschema.clone(),
                g.build_keys.clone(),
                g.probe_keys.clone(),
            )
        };
        let popped = self.grace.as_mut().expect("grace mode").parts.pop_front();
        let Some((mut bf, mut pf, depth)) = popped else {
            return Ok(false);
        };
        if bf.is_empty() {
            // No build rows: inner joins emit nothing, and a left join has
            // no left rows here to pad either.
            return Ok(true);
        }
        let build_batches = bf.read_all(&lschema, self.metrics.as_ref())?;
        let bytes: usize = build_batches.iter().map(|b| b.byte_size()).sum();
        let over = self.budget.as_ref().is_some_and(|b| bytes > b.limit());
        if over && depth < MAX_SPILL_DEPTH {
            // This partition alone overflows: carve both halves into
            // sub-partitions by the next hash bits and requeue. Past
            // MAX_SPILL_DEPTH it is joined in memory anyway — correctness
            // wins over the ceiling on adversarial key distributions.
            let mut bsub = SpillSet::new();
            for b in &build_batches {
                bsub.append_partitioned(b, &build_keys, depth, self.metrics.as_ref())?;
            }
            let mut psub = SpillSet::new();
            for p in pf.read_all(&rschema, self.metrics.as_ref())? {
                psub.append_partitioned(&p, &probe_keys, depth, self.metrics.as_ref())?;
            }
            let g = self.grace.as_mut().expect("grace mode");
            for (b, p) in bsub.into_files().into_iter().zip(psub.into_files()) {
                g.parts.push_back((b, p, depth + 1));
            }
            return Ok(true);
        }
        let mut lease = self.budget.as_ref().map(|b| BudgetLease::new(b.clone()));
        let batch = RecordBatch::concat(lschema, &build_batches)?;
        if let Some(l) = &mut lease {
            l.set(batch.byte_size());
        }
        let build = link_build_side(batch, build_keys, probe_keys, 0, &self.metrics);
        let mut stats = ProbeStats::default();
        for probe in pf.read_all(&rschema, self.metrics.as_ref())? {
            let (out, st) = probe_batch(&build, &probe, &self.schema)?;
            stats.merge(&st);
            if let Some(b) = out {
                self.pending.push_back(b);
            }
        }
        stats.record(&self.metrics);
        if self.join_type == JoinType::Left {
            // Partitions are key-disjoint, so a build row unmatched here can
            // never match another partition's probes: pad it now.
            if let Some(b) = unmatched_left_batch(&build, &rschema, &self.schema)? {
                self.pending.push_back(b);
            }
        }
        Ok(true)
    }

    /// Drain the whole probe side with worker threads, queueing output
    /// batches in worker order.
    fn parallel_probe(&mut self) -> Result<()> {
        let workers = self.workers.max(1);
        let build = self.build.as_ref().expect("built before probe");
        let schema = &self.schema;
        let metrics = &self.metrics;
        let source = SharedSource::new(self.right.as_mut());
        let results: Vec<Result<(Vec<RecordBatch>, ProbeStats, u64)>> =
            super::pool::run_workers(workers, |w| {
                let _kernel = crate::kernel_metrics::install(metrics.clone());
                let mut out = Vec::new();
                let mut stats = ProbeStats::default();
                let mut morsels = 0u64;
                let mut rows = 0u64;
                while let Some(probe) = source.next()? {
                    morsels += 1;
                    rows += probe.num_rows() as u64;
                    let (batch, st) = probe_batch(build, &probe, schema)?;
                    stats.merge(&st);
                    out.extend(batch);
                }
                record_worker(metrics.as_ref(), "hash_join", w, morsels, rows);
                Ok((out, stats, morsels))
            });
        if let Some(p) = &self.profile {
            p.workers.add(workers as u64);
        }
        let mut stats = ProbeStats::default();
        for r in results {
            let (batches, st, morsels) = r?;
            self.pending.extend(batches);
            stats.merge(&st);
            if let Some(p) = &self.profile {
                p.morsels.add(morsels);
            }
        }
        stats.record(&self.metrics);
        self.done_probe = true;
        Ok(())
    }

    fn emit_unmatched_left(&mut self) -> Result<Option<RecordBatch>> {
        let build = self.build.as_ref().expect("built before probe finished");
        unmatched_left_batch(build, &self.right.schema(), &self.schema)
    }
}

impl Operator for HashJoinExec {
    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn next(&mut self) -> Result<Option<RecordBatch>> {
        self.ensure_built()?;
        loop {
            if let Some(b) = self.pending.pop_front() {
                return Ok(Some(b));
            }
            if self.grace.is_some() {
                // Grace mode drained both inputs up front; unmatched-left
                // padding happens per partition inside grace_step.
                if self.grace_step()? {
                    continue;
                }
                return Ok(None);
            }
            if self.done_probe {
                if self.join_type == JoinType::Left && !self.left_emitted {
                    self.left_emitted = true;
                    return self.emit_unmatched_left();
                }
                return Ok(None);
            }
            if self.workers >= 1 {
                self.parallel_probe()?;
                continue;
            }
            let Some(probe) = self.right.next()? else {
                self.done_probe = true;
                continue;
            };
            let build = self.build.as_ref().expect("built above");
            let (out, stats) = probe_batch(build, &probe, &self.schema)?;
            stats.record(&self.metrics);
            if let Some(b) = out {
                return Ok(Some(b));
            }
        }
    }

    fn name(&self) -> &'static str {
        "HashJoin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::drain_one;
    use crate::physical::test_util::{int_batch, BatchSource};
    use backbone_storage::Value;

    fn join(
        left: Vec<(&'static str, Vec<i64>)>,
        right: Vec<(&'static str, Vec<i64>)>,
        on: (&str, &str),
        jt: JoinType,
    ) -> RecordBatch {
        let lb = int_batch(&left);
        let rb = int_batch(&right);
        let mut j = HashJoinExec::new(
            Box::new(BatchSource::single(lb)),
            Box::new(BatchSource::single(rb)),
            vec![(on.0.to_string(), on.1.to_string())],
            jt,
        )
        .unwrap();
        drain_one(&mut j).unwrap()
    }

    #[test]
    fn inner_join_matches() {
        let out = join(
            vec![("id", vec![1, 2, 3]), ("lv", vec![10, 20, 30])],
            vec![("rid", vec![2, 3, 4]), ("rv", vec![200, 300, 400])],
            ("id", "rid"),
            JoinType::Inner,
        );
        assert_eq!(out.num_rows(), 2);
        let ids: Vec<i64> = out.column(0).i64_data().unwrap().to_vec();
        assert!(ids.contains(&2) && ids.contains(&3));
        assert_eq!(out.num_columns(), 4);
    }

    #[test]
    fn duplicate_keys_fan_out() {
        let out = join(
            vec![("id", vec![1, 1]), ("lv", vec![10, 11])],
            vec![("rid", vec![1, 1, 1]), ("rv", vec![100, 101, 102])],
            ("id", "rid"),
            JoinType::Inner,
        );
        assert_eq!(out.num_rows(), 6); // 2 x 3 cross product on the key
    }

    #[test]
    fn left_join_pads_unmatched() {
        let out = join(
            vec![("id", vec![1, 2, 3])],
            vec![("rid", vec![2])],
            ("id", "rid"),
            JoinType::Left,
        );
        assert_eq!(out.num_rows(), 3);
        // Find the row with id=1: its rid must be NULL.
        let rows = out.to_rows();
        let row1 = rows.iter().find(|r| r[0] == Value::Int(1)).unwrap();
        assert!(row1[1].is_null());
        let row2 = rows.iter().find(|r| r[0] == Value::Int(2)).unwrap();
        assert_eq!(row2[1], Value::Int(2));
    }

    #[test]
    fn empty_probe_side() {
        let out = join(
            vec![("id", vec![1, 2])],
            vec![("rid", vec![])],
            ("id", "rid"),
            JoinType::Inner,
        );
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn left_join_empty_probe_keeps_all_left() {
        let out = join(
            vec![("id", vec![1, 2])],
            vec![("rid", vec![])],
            ("id", "rid"),
            JoinType::Left,
        );
        assert_eq!(out.num_rows(), 2);
        assert!(out.to_rows().iter().all(|r| r[1].is_null()));
    }

    #[test]
    fn null_keys_never_match() {
        use backbone_storage::{Column, DataType, Field};
        let schema = Schema::new(vec![Field::nullable("id", DataType::Int64)]);
        let lb = RecordBatch::try_new(
            schema.clone(),
            vec![Arc::new(Column::from_opt_i64(vec![Some(1), None]))],
        )
        .unwrap();
        let rschema = Schema::new(vec![Field::nullable("rid", DataType::Int64)]);
        let rb = RecordBatch::try_new(
            rschema,
            vec![Arc::new(Column::from_opt_i64(vec![Some(1), None]))],
        )
        .unwrap();
        let mut j = HashJoinExec::new(
            Box::new(BatchSource::single(lb)),
            Box::new(BatchSource::single(rb)),
            vec![("id".to_string(), "rid".to_string())],
            JoinType::Inner,
        )
        .unwrap();
        let out = drain_one(&mut j).unwrap();
        assert_eq!(out.num_rows(), 1, "NULL = NULL must not join");
    }

    #[test]
    fn multi_key_join() {
        let lb = int_batch(&[("a", vec![1, 1, 2]), ("b", vec![1, 2, 1])]);
        let rb = int_batch(&[("c", vec![1, 1]), ("d", vec![2, 9])]);
        let mut j = HashJoinExec::new(
            Box::new(BatchSource::single(lb)),
            Box::new(BatchSource::single(rb)),
            vec![
                ("a".to_string(), "c".to_string()),
                ("b".to_string(), "d".to_string()),
            ],
            JoinType::Inner,
        )
        .unwrap();
        let out = drain_one(&mut j).unwrap();
        assert_eq!(out.num_rows(), 1); // only (1,2) matches
    }

    #[test]
    fn probe_side_selection_respected() {
        let lb = int_batch(&[("id", vec![1, 2, 3])]);
        let rb = int_batch(&[("rid", vec![1, 2, 3]), ("rv", vec![10, 20, 30])]);
        // Select only probe rows 0 and 2.
        let view = rb.with_selection(Arc::new(vec![0, 2])).unwrap();
        let mut j = HashJoinExec::new(
            Box::new(BatchSource::single(lb)),
            Box::new(BatchSource::new(view.schema().clone(), vec![view])),
            vec![("id".to_string(), "rid".to_string())],
            JoinType::Inner,
        )
        .unwrap();
        let out = drain_one(&mut j).unwrap();
        assert_eq!(out.num_rows(), 2);
        let rvs: Vec<i64> = out.column(2).i64_data().unwrap().to_vec();
        assert!(rvs.contains(&10) && rvs.contains(&30));
    }

    #[test]
    fn missing_key_column_rejected() {
        let lb = int_batch(&[("a", vec![1])]);
        let rb = int_batch(&[("b", vec![1])]);
        assert!(HashJoinExec::new(
            Box::new(BatchSource::single(lb)),
            Box::new(BatchSource::single(rb)),
            vec![("zzz".to_string(), "b".to_string())],
            JoinType::Inner,
        )
        .is_err());
    }

    /// Sorted row images for order-insensitive comparison.
    fn sorted_rows(b: &RecordBatch) -> Vec<String> {
        let mut rows: Vec<String> = b.to_rows().iter().map(|r| format!("{r:?}")).collect();
        rows.sort();
        rows
    }

    #[test]
    fn parallel_inner_join_matches_serial() {
        let make = |workers: usize| {
            let lb = int_batch(&[
                ("id", (0..200).map(|i| i % 37).collect()),
                ("lv", (0..200).collect()),
            ]);
            let rbs: Vec<_> = (0..6)
                .map(|b| {
                    int_batch(&[
                        ("rid", (0..50).map(|i| (b * 11 + i) % 41).collect()),
                        ("rv", (0..50).map(|i| b * 50 + i).collect()),
                    ])
                })
                .collect();
            HashJoinExec::new(
                Box::new(BatchSource::single(lb)),
                Box::new(BatchSource::new(rbs[0].schema().clone(), rbs)),
                vec![("id".to_string(), "rid".to_string())],
                JoinType::Inner,
            )
            .unwrap()
            .with_workers(workers)
        };
        let serial = sorted_rows(&drain_one(&mut make(0)).unwrap());
        assert_eq!(serial, sorted_rows(&drain_one(&mut make(1)).unwrap()));
        assert_eq!(serial, sorted_rows(&drain_one(&mut make(4)).unwrap()));
    }

    #[test]
    fn parallel_left_join_matches_serial() {
        let make = |workers: usize| {
            let lb = int_batch(&[("id", (0..60).collect()), ("lv", (100..160).collect())]);
            let rb = int_batch(&[
                ("rid", (0..30).map(|i| i * 2).collect()),
                ("rv", (0..30).collect()),
            ]);
            HashJoinExec::new(
                Box::new(BatchSource::single(lb)),
                Box::new(BatchSource::single(rb)),
                vec![("id".to_string(), "rid".to_string())],
                JoinType::Left,
            )
            .unwrap()
            .with_workers(workers)
        };
        let serial = sorted_rows(&drain_one(&mut make(0)).unwrap());
        assert_eq!(serial, sorted_rows(&drain_one(&mut make(3)).unwrap()));
    }

    #[test]
    fn parallel_join_records_profile() {
        let profile = ParallelProfile::default();
        let metrics = Metrics::new();
        let lb = int_batch(&[("id", vec![1, 2, 3])]);
        let rbs: Vec<_> = (0..3)
            .map(|b| int_batch(&[("rid", vec![b, b + 1])]))
            .collect();
        let mut j = HashJoinExec::new(
            Box::new(BatchSource::single(lb)),
            Box::new(BatchSource::new(rbs[0].schema().clone(), rbs)),
            vec![("id".to_string(), "rid".to_string())],
            JoinType::Inner,
        )
        .unwrap()
        .with_workers(2)
        .with_metrics(Some(metrics.clone()))
        .with_parallel_profile(Some(profile.clone()));
        drain_one(&mut j).unwrap();
        assert_eq!(profile.workers.get(), 2);
        assert_eq!(profile.morsels.get(), 3);
        assert_eq!(metrics.value("op.hash_join.kernel.build_partitions"), 2);
        let worker_morsels: u64 = (0..2)
            .map(|w| metrics.value(&format!("op.hash_join.worker.{w}.morsels")))
            .sum();
        assert_eq!(worker_morsels, 3);
    }

    /// 320 build rows over 97 keys joined against 240 probe rows over 113
    /// keys, with duplicates on both sides.
    fn budget_join(
        workers: usize,
        budget: Option<usize>,
        jt: JoinType,
        metrics: Option<Metrics>,
    ) -> RecordBatch {
        let lbs: Vec<_> = (0..4)
            .map(|b| {
                int_batch(&[
                    ("id", (0..80).map(|i| (b * 80 + i) % 97).collect()),
                    ("lv", (0..80).map(|i| b * 80 + i).collect()),
                ])
            })
            .collect();
        let rbs: Vec<_> = (0..4)
            .map(|b| {
                int_batch(&[
                    ("rid", (0..60).map(|i| (b * 31 + i) % 113).collect()),
                    ("rv", (0..60).map(|i| b * 60 + i).collect()),
                ])
            })
            .collect();
        let mut j = HashJoinExec::new(
            Box::new(BatchSource::new(lbs[0].schema().clone(), lbs)),
            Box::new(BatchSource::new(rbs[0].schema().clone(), rbs)),
            vec![("id".to_string(), "rid".to_string())],
            jt,
        )
        .unwrap()
        .with_workers(workers)
        .with_metrics(metrics)
        .with_budget(budget.map(BudgetAccountant::new));
        drain_one(&mut j).unwrap()
    }

    #[test]
    fn grace_inner_join_matches_in_memory() {
        let expect = sorted_rows(&budget_join(0, None, JoinType::Inner, None));
        let metrics = Metrics::new();
        let out = budget_join(0, Some(2048), JoinType::Inner, Some(metrics.clone()));
        assert_eq!(sorted_rows(&out), expect);
        assert!(
            metrics.value("storage.spill.partitions") > 0,
            "a 2 KiB budget must force a grace join"
        );
        assert!(metrics.value("storage.spill.bytes_read") > 0);
    }

    #[test]
    fn grace_left_join_pads_per_partition() {
        let expect = sorted_rows(&budget_join(0, None, JoinType::Left, None));
        let out = budget_join(0, Some(2048), JoinType::Left, None);
        assert_eq!(sorted_rows(&out), expect);
    }

    #[test]
    fn one_byte_budget_grace_recursion_stays_correct() {
        // Every partition is always "over", so both sides repartition down
        // to MAX_SPILL_DEPTH and join in memory there.
        let expect = sorted_rows(&budget_join(0, None, JoinType::Inner, None));
        assert_eq!(
            sorted_rows(&budget_join(0, Some(1), JoinType::Inner, None)),
            expect
        );
    }

    #[test]
    fn generous_budget_join_never_spills() {
        let metrics = Metrics::new();
        let out = budget_join(0, Some(64 << 20), JoinType::Inner, Some(metrics.clone()));
        assert_eq!(
            sorted_rows(&out),
            sorted_rows(&budget_join(0, None, JoinType::Inner, None))
        );
        assert_eq!(metrics.value("storage.spill.partitions"), 0);
    }

    #[test]
    fn grace_left_join_null_keys_padded() {
        use backbone_storage::{DataType, Field};
        let lschema = Schema::new(vec![Field::nullable("id", DataType::Int64)]);
        let lb = RecordBatch::try_new(
            lschema,
            vec![Arc::new(Column::from_opt_i64(vec![Some(1), None, Some(2)]))],
        )
        .unwrap();
        let rschema = Schema::new(vec![Field::nullable("rid", DataType::Int64)]);
        let rb = RecordBatch::try_new(
            rschema,
            vec![Arc::new(Column::from_opt_i64(vec![Some(1), None]))],
        )
        .unwrap();
        let make = |budget: Option<usize>| {
            let mut j = HashJoinExec::new(
                Box::new(BatchSource::single(lb.clone())),
                Box::new(BatchSource::single(rb.clone())),
                vec![("id".to_string(), "rid".to_string())],
                JoinType::Left,
            )
            .unwrap()
            .with_budget(budget.map(BudgetAccountant::new));
            drain_one(&mut j).unwrap()
        };
        let expect = sorted_rows(&make(None));
        let out = make(Some(1));
        // NULL build keys never match; the NULL-key left row still shows up
        // padded exactly once from whichever partition it landed in.
        assert_eq!(out.num_rows(), 3);
        assert_eq!(sorted_rows(&out), expect);
    }
}
