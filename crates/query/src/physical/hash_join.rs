//! Hash equi-join operator.

use super::{drain, Operator};
use crate::error::{QueryError, Result};
use crate::logical::JoinType;
use backbone_storage::{Column, RecordBatch, Schema, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Classic two-phase hash join: materialize and hash the left (build) side,
/// then stream the right (probe) side. Supports inner and left-outer joins.
pub struct HashJoinExec {
    left: Option<Box<dyn Operator>>,
    right: Box<dyn Operator>,
    on: Vec<(String, String)>,
    join_type: JoinType,
    schema: Arc<Schema>,
    build: Option<BuildSide>,
    /// Unmatched-left output pending after the probe side is exhausted.
    done_probe: bool,
}

struct BuildSide {
    batch: RecordBatch,
    index: HashMap<Vec<Value>, Vec<usize>>,
    matched: Vec<bool>,
    key_cols: Vec<usize>,
}

impl HashJoinExec {
    /// Build a hash join of `left` and `right` on `(left_col, right_col)`
    /// pairs.
    pub fn new(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        on: Vec<(String, String)>,
        join_type: JoinType,
    ) -> Result<HashJoinExec> {
        if on.is_empty() {
            return Err(QueryError::InvalidPlan(
                "hash join requires at least one key".into(),
            ));
        }
        let lschema = left.schema();
        let rschema = right.schema();
        for (l, r) in &on {
            lschema.index_of(l)?;
            rschema.index_of(r)?;
        }
        let mut schema = lschema.join(&rschema);
        if join_type == JoinType::Left {
            // Right-side fields become nullable in the output.
            let fields = schema
                .fields()
                .iter()
                .enumerate()
                .map(|(i, f)| {
                    let mut f = f.clone();
                    if i >= lschema.len() {
                        f.nullable = true;
                    }
                    f
                })
                .collect();
            schema = Schema::new(fields);
        }
        Ok(HashJoinExec {
            left: Some(left),
            right,
            on,
            join_type,
            schema,
            build: None,
            done_probe: false,
        })
    }

    fn ensure_built(&mut self) -> Result<()> {
        if self.build.is_some() {
            return Ok(());
        }
        let mut left = self.left.take().expect("build side consumed once");
        let lschema = left.schema();
        let batches = drain(left.as_mut())?;
        let batch = RecordBatch::concat(lschema.clone(), &batches)?;
        let key_cols: Vec<usize> = self
            .on
            .iter()
            .map(|(l, _)| lschema.index_of(l).expect("validated in new"))
            .collect();
        let mut index: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for row in 0..batch.num_rows() {
            let key: Vec<Value> = key_cols
                .iter()
                .map(|&c| batch.column(c).value(row))
                .collect();
            // SQL join semantics: NULL keys never match.
            if key.iter().any(|v| v.is_null()) {
                continue;
            }
            index.entry(key).or_default().push(row);
        }
        let matched = vec![false; batch.num_rows()];
        self.build = Some(BuildSide {
            batch,
            index,
            matched,
            key_cols: self
                .on
                .iter()
                .map(|(_, r)| self.right.schema().index_of(r).expect("validated in new"))
                .collect(),
        });
        Ok(())
    }

    fn emit_unmatched_left(&mut self) -> Result<Option<RecordBatch>> {
        let build = self.build.as_ref().expect("built before probe finished");
        let unmatched: Vec<usize> = build
            .matched
            .iter()
            .enumerate()
            .filter_map(|(i, &m)| (!m).then_some(i))
            .collect();
        if unmatched.is_empty() {
            return Ok(None);
        }
        let left_part = build.batch.take(&unmatched)?;
        // Right side: all-NULL columns of the right schema.
        let rschema = self.right.schema();
        let n = unmatched.len();
        let mut cols: Vec<Arc<Column>> = left_part.columns().to_vec();
        for f in rschema.fields() {
            let mut c = Column::empty(f.data_type);
            for _ in 0..n {
                c.push_value(&Value::Null)?;
            }
            cols.push(Arc::new(c));
        }
        Ok(Some(RecordBatch::try_new(self.schema.clone(), cols)?))
    }
}

impl Operator for HashJoinExec {
    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn next(&mut self) -> Result<Option<RecordBatch>> {
        self.ensure_built()?;
        loop {
            if self.done_probe {
                return Ok(None);
            }
            let Some(probe) = self.right.next()? else {
                self.done_probe = true;
                if self.join_type == JoinType::Left {
                    return self.emit_unmatched_left();
                }
                return Ok(None);
            };
            let build = self.build.as_mut().expect("built above");
            let mut left_rows = Vec::new();
            let mut right_rows = Vec::new();
            for row in 0..probe.num_rows() {
                let key: Vec<Value> = build
                    .key_cols
                    .iter()
                    .map(|&c| probe.column(c).value(row))
                    .collect();
                if key.iter().any(|v| v.is_null()) {
                    continue;
                }
                if let Some(matches) = build.index.get(&key) {
                    for &l in matches {
                        build.matched[l] = true;
                        left_rows.push(l);
                        right_rows.push(row);
                    }
                }
            }
            if left_rows.is_empty() {
                continue;
            }
            let left_part = build.batch.take(&left_rows)?;
            let right_part = probe.take(&right_rows)?;
            let mut cols: Vec<Arc<Column>> = left_part.columns().to_vec();
            cols.extend(right_part.columns().iter().cloned());
            return Ok(Some(RecordBatch::try_new(self.schema.clone(), cols)?));
        }
    }

    fn name(&self) -> &'static str {
        "HashJoin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::drain_one;
    use crate::physical::test_util::{int_batch, BatchSource};

    fn join(
        left: Vec<(&'static str, Vec<i64>)>,
        right: Vec<(&'static str, Vec<i64>)>,
        on: (&str, &str),
        jt: JoinType,
    ) -> RecordBatch {
        let lb = int_batch(&left);
        let rb = int_batch(&right);
        let mut j = HashJoinExec::new(
            Box::new(BatchSource::single(lb)),
            Box::new(BatchSource::single(rb)),
            vec![(on.0.to_string(), on.1.to_string())],
            jt,
        )
        .unwrap();
        drain_one(&mut j).unwrap()
    }

    #[test]
    fn inner_join_matches() {
        let out = join(
            vec![("id", vec![1, 2, 3]), ("lv", vec![10, 20, 30])],
            vec![("rid", vec![2, 3, 4]), ("rv", vec![200, 300, 400])],
            ("id", "rid"),
            JoinType::Inner,
        );
        assert_eq!(out.num_rows(), 2);
        let ids: Vec<i64> = out.column(0).i64_data().unwrap().to_vec();
        assert!(ids.contains(&2) && ids.contains(&3));
        assert_eq!(out.num_columns(), 4);
    }

    #[test]
    fn duplicate_keys_fan_out() {
        let out = join(
            vec![("id", vec![1, 1]), ("lv", vec![10, 11])],
            vec![("rid", vec![1, 1, 1]), ("rv", vec![100, 101, 102])],
            ("id", "rid"),
            JoinType::Inner,
        );
        assert_eq!(out.num_rows(), 6); // 2 x 3 cross product on the key
    }

    #[test]
    fn left_join_pads_unmatched() {
        let out = join(
            vec![("id", vec![1, 2, 3])],
            vec![("rid", vec![2])],
            ("id", "rid"),
            JoinType::Left,
        );
        assert_eq!(out.num_rows(), 3);
        // Find the row with id=1: its rid must be NULL.
        let rows = out.to_rows();
        let row1 = rows.iter().find(|r| r[0] == Value::Int(1)).unwrap();
        assert!(row1[1].is_null());
        let row2 = rows.iter().find(|r| r[0] == Value::Int(2)).unwrap();
        assert_eq!(row2[1], Value::Int(2));
    }

    #[test]
    fn empty_probe_side() {
        let out = join(
            vec![("id", vec![1, 2])],
            vec![("rid", vec![])],
            ("id", "rid"),
            JoinType::Inner,
        );
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn left_join_empty_probe_keeps_all_left() {
        let out = join(
            vec![("id", vec![1, 2])],
            vec![("rid", vec![])],
            ("id", "rid"),
            JoinType::Left,
        );
        assert_eq!(out.num_rows(), 2);
        assert!(out.to_rows().iter().all(|r| r[1].is_null()));
    }

    #[test]
    fn null_keys_never_match() {
        use backbone_storage::{Column, DataType, Field};
        let schema = Schema::new(vec![Field::nullable("id", DataType::Int64)]);
        let lb = RecordBatch::try_new(
            schema.clone(),
            vec![Arc::new(Column::from_opt_i64(vec![Some(1), None]))],
        )
        .unwrap();
        let rschema = Schema::new(vec![Field::nullable("rid", DataType::Int64)]);
        let rb = RecordBatch::try_new(
            rschema,
            vec![Arc::new(Column::from_opt_i64(vec![Some(1), None]))],
        )
        .unwrap();
        let mut j = HashJoinExec::new(
            Box::new(BatchSource::single(lb)),
            Box::new(BatchSource::single(rb)),
            vec![("id".to_string(), "rid".to_string())],
            JoinType::Inner,
        )
        .unwrap();
        let out = drain_one(&mut j).unwrap();
        assert_eq!(out.num_rows(), 1, "NULL = NULL must not join");
    }

    #[test]
    fn multi_key_join() {
        let lb = int_batch(&[("a", vec![1, 1, 2]), ("b", vec![1, 2, 1])]);
        let rb = int_batch(&[("c", vec![1, 1]), ("d", vec![2, 9])]);
        let mut j = HashJoinExec::new(
            Box::new(BatchSource::single(lb)),
            Box::new(BatchSource::single(rb)),
            vec![
                ("a".to_string(), "c".to_string()),
                ("b".to_string(), "d".to_string()),
            ],
            JoinType::Inner,
        )
        .unwrap();
        let out = drain_one(&mut j).unwrap();
        assert_eq!(out.num_rows(), 1); // only (1,2) matches
    }

    #[test]
    fn missing_key_column_rejected() {
        let lb = int_batch(&[("a", vec![1])]);
        let rb = int_batch(&[("b", vec![1])]);
        assert!(HashJoinExec::new(
            Box::new(BatchSource::single(lb)),
            Box::new(BatchSource::single(rb)),
            vec![("zzz".to_string(), "b".to_string())],
            JoinType::Inner,
        )
        .is_err());
    }
}
