//! Out-of-core support: memory-budget accounting and Grace-style spill files.
//!
//! A query with [`ExecOptions::mem_budget`](crate::executor::ExecOptions) set
//! gets one shared [`BudgetAccountant`]; every memory-hungry operator (hash
//! aggregate, hash join build) and every morsel worker reports its resident
//! state through a [`BudgetLease`]. When the shared total crosses the limit,
//! the operator partitions its state by key hash into [`SpillFile`]s —
//! serialized with the checkpoint codec's `put_batch`/`read_batch` — and
//! re-reads one partition at a time. Partitions that are still too big
//! repartition recursively with deeper hash bits, up to [`MAX_SPILL_DEPTH`].
//!
//! Partition bits come from the *upper* half of the 64-bit key hash
//! (`(hash >> 32) >> (3 * depth)`), leaving the low bits free for the hash
//! table's bucket index, so one partition's keys still spread across buckets.

use crate::error::{QueryError, Result};
use backbone_storage::checkpoint::{put_batch, read_batch};
use backbone_storage::codec::Cursor;
use backbone_storage::{Metrics, RecordBatch, Schema, StorageError};
use std::fs::File;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Fan-out of one partitioning pass.
pub const SPILL_PARTITIONS: usize = 8;

/// Hash bits consumed per recursion level (`log2(SPILL_PARTITIONS)`).
const PART_BITS: usize = 3;

/// Deepest recursive repartitioning. A partition that still exceeds the
/// budget at this depth is processed in memory anyway: correctness wins over
/// the ceiling (adversarial key distributions could otherwise recurse
/// forever on one hot key).
pub const MAX_SPILL_DEPTH: usize = 4;

/// Partition index for a key hash at the given recursion depth.
#[inline]
pub fn partition_of(hash: u64, depth: usize) -> usize {
    (((hash >> 32) >> (PART_BITS * depth)) as usize) & (SPILL_PARTITIONS - 1)
}

/// Shared memory-budget accountant: one per query, shared by every spilling
/// operator and every morsel worker, so parallel workers collectively stay
/// under one ceiling instead of each claiming the full budget.
#[derive(Debug)]
pub struct BudgetAccountant {
    limit: usize,
    used: AtomicUsize,
}

impl BudgetAccountant {
    /// A fresh accountant with the given byte limit.
    pub fn new(limit: usize) -> Arc<BudgetAccountant> {
        Arc::new(BudgetAccountant {
            limit,
            used: AtomicUsize::new(0),
        })
    }

    /// The configured ceiling in bytes.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Bytes currently reserved across all leases.
    pub fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// Whether reservations currently exceed the ceiling.
    pub fn over(&self) -> bool {
        self.used() > self.limit
    }

    fn add(&self, bytes: usize) {
        self.used.fetch_add(bytes, Ordering::Relaxed);
    }

    fn sub(&self, bytes: usize) {
        // Saturate rather than wrap if a lease over-releases.
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self
                .used
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// One holder's slice of the shared budget. `set` reports the holder's
/// current resident bytes (adjusting the accountant by the delta); dropping
/// the lease releases whatever it still holds.
#[derive(Debug)]
pub struct BudgetLease {
    acct: Arc<BudgetAccountant>,
    held: usize,
}

impl BudgetLease {
    /// A lease holding zero bytes.
    pub fn new(acct: Arc<BudgetAccountant>) -> BudgetLease {
        BudgetLease { acct, held: 0 }
    }

    /// Report this holder's current resident size.
    pub fn set(&mut self, bytes: usize) {
        if bytes >= self.held {
            self.acct.add(bytes - self.held);
        } else {
            self.acct.sub(self.held - bytes);
        }
        self.held = bytes;
    }

    /// Whether the *shared* total is over the ceiling.
    pub fn over(&self) -> bool {
        self.acct.over()
    }

    /// The shared accountant backing this lease.
    pub fn accountant(&self) -> &Arc<BudgetAccountant> {
        &self.acct
    }
}

impl Drop for BudgetLease {
    fn drop(&mut self) {
        self.acct.sub(self.held);
    }
}

/// Monotonic spill-file sequence: unique names without touching the clock.
static FILE_SEQ: AtomicU64 = AtomicU64::new(0);

fn spill_dir() -> PathBuf {
    std::env::temp_dir().join(format!("backbone-spill-{}", std::process::id()))
}

fn io_err(e: std::io::Error) -> QueryError {
    QueryError::Storage(StorageError::Io(e.to_string()))
}

/// One spill partition on disk: a sequence of length-prefixed `put_batch`
/// payloads. Created lazily on first append, deleted on drop.
#[derive(Debug)]
pub struct SpillFile {
    path: PathBuf,
    writer: Option<File>,
    rows: u64,
    batches: u64,
}

impl SpillFile {
    /// A handle to a not-yet-created partition file.
    pub fn new() -> SpillFile {
        let seq = FILE_SEQ.fetch_add(1, Ordering::Relaxed);
        SpillFile {
            path: spill_dir().join(format!("part-{seq}.spill")),
            writer: None,
            rows: 0,
            batches: 0,
        }
    }

    /// Rows appended so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Whether nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Append one batch (dense; selections are materialized here). Counts
    /// `storage.spill.partitions` on the first write and
    /// `storage.spill.bytes_written` on every write.
    pub fn append(&mut self, batch: &RecordBatch, metrics: Option<&Metrics>) -> Result<()> {
        if batch.num_rows() == 0 {
            return Ok(());
        }
        let dense;
        let batch = if batch.selection().is_some() {
            dense = batch.materialize();
            &dense
        } else {
            batch
        };
        let mut buf = Vec::new();
        put_batch(&mut buf, batch);
        let writer = match &mut self.writer {
            Some(w) => w,
            None => {
                std::fs::create_dir_all(spill_dir()).map_err(io_err)?;
                if let Some(m) = metrics {
                    m.counter("storage.spill.partitions").add(1);
                }
                self.writer
                    .insert(File::create(&self.path).map_err(io_err)?)
            }
        };
        let len = (buf.len() as u32).to_le_bytes();
        writer.write_all(&len).map_err(io_err)?;
        writer.write_all(&buf).map_err(io_err)?;
        self.rows += batch.num_rows() as u64;
        self.batches += 1;
        if let Some(m) = metrics {
            m.counter("storage.spill.bytes_written")
                .add((buf.len() + 4) as u64);
        }
        Ok(())
    }

    /// Read every batch back. Counts `storage.spill.bytes_read`.
    pub fn read_all(
        &mut self,
        schema: &Arc<Schema>,
        metrics: Option<&Metrics>,
    ) -> Result<Vec<RecordBatch>> {
        if self.rows == 0 {
            return Ok(Vec::new());
        }
        // Flush and drop the write handle before re-opening for read.
        if let Some(mut w) = self.writer.take() {
            w.flush().map_err(io_err)?;
        }
        let mut bytes = Vec::new();
        File::open(&self.path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(io_err)?;
        if let Some(m) = metrics {
            m.counter("storage.spill.bytes_read")
                .add(bytes.len() as u64);
        }
        let mut out = Vec::with_capacity(self.batches as usize);
        let mut pos = 0usize;
        while pos < bytes.len() {
            let end = pos + 4;
            if end > bytes.len() {
                return Err(StorageError::Corrupt("truncated spill frame header".into()).into());
            }
            let len = u32::from_le_bytes(bytes[pos..end].try_into().expect("4 bytes")) as usize;
            let Some(frame) = bytes.get(end..end + len) else {
                return Err(StorageError::Corrupt("truncated spill frame".into()).into());
            };
            let mut cur = Cursor::new(frame);
            out.push(read_batch(&mut cur, schema)?);
            pos = end + len;
        }
        Ok(out)
    }
}

impl Default for SpillFile {
    fn default() -> Self {
        SpillFile::new()
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        if self.writer.take().is_some() || self.rows > 0 {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// A full fan-out of [`SPILL_PARTITIONS`] partition files at one depth.
#[derive(Debug, Default)]
pub struct SpillSet {
    files: Vec<SpillFile>,
}

impl SpillSet {
    /// Fresh (lazily created) partition files.
    pub fn new() -> SpillSet {
        SpillSet {
            files: (0..SPILL_PARTITIONS).map(|_| SpillFile::new()).collect(),
        }
    }

    /// Whether every partition is still empty.
    pub fn is_empty(&self) -> bool {
        self.files.iter().all(|f| f.is_empty())
    }

    /// Hash `key_idx` columns of a dense view of `batch` and append each
    /// row to its partition at `depth`.
    pub fn append_partitioned(
        &mut self,
        batch: &RecordBatch,
        key_idx: &[usize],
        depth: usize,
        metrics: Option<&Metrics>,
    ) -> Result<()> {
        for (p, part) in partition_batch(batch, key_idx, depth)?
            .into_iter()
            .enumerate()
        {
            if let Some(b) = part {
                self.files[p].append(&b, metrics)?;
            }
        }
        Ok(())
    }

    /// Consume the set, yielding its partition files.
    pub fn into_files(self) -> Vec<SpillFile> {
        self.files
    }
}

/// Split a batch into per-partition dense batches by hashing `key_idx`
/// columns with [`Column::hash_combine`](backbone_storage::Column) and
/// taking the depth-appropriate bits. `None` marks an empty partition.
pub fn partition_batch(
    batch: &RecordBatch,
    key_idx: &[usize],
    depth: usize,
) -> Result<Vec<Option<RecordBatch>>> {
    let dense = batch.materialize();
    let n = dense.num_rows();
    let mut hashes = vec![0u64; n];
    for &k in key_idx {
        dense.column(k).hash_combine(None, &mut hashes);
    }
    let mut parts: Vec<Vec<u32>> = vec![Vec::new(); SPILL_PARTITIONS];
    for (row, &h) in hashes.iter().enumerate() {
        parts[partition_of(h, depth)].push(row as u32);
    }
    parts
        .into_iter()
        .map(|rows| {
            if rows.is_empty() {
                return Ok(None);
            }
            let cols = dense
                .columns()
                .iter()
                .map(|c| Arc::new(c.gather(&rows)))
                .collect();
            Ok(Some(RecordBatch::try_new(dense.schema().clone(), cols)?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::test_util::int_batch;

    #[test]
    fn accountant_tracks_leases_across_holders() {
        let acct = BudgetAccountant::new(100);
        let mut a = BudgetLease::new(acct.clone());
        let mut b = BudgetLease::new(acct.clone());
        a.set(60);
        assert!(!acct.over());
        b.set(50);
        assert!(a.over() && b.over(), "budget is shared, not per-lease");
        a.set(10);
        assert!(!acct.over());
        assert_eq!(acct.used(), 60);
        drop(b);
        assert_eq!(acct.used(), 10);
        drop(a);
        assert_eq!(acct.used(), 0);
    }

    #[test]
    fn lease_over_release_saturates() {
        let acct = BudgetAccountant::new(10);
        let mut a = BudgetLease::new(acct.clone());
        let mut b = BudgetLease::new(acct.clone());
        a.set(5);
        b.set(5);
        drop(a);
        b.set(0);
        b.set(3);
        assert_eq!(acct.used(), 3);
    }

    #[test]
    fn spill_file_round_trips_batches() {
        let b1 = int_batch(&[("k", vec![1, 2, 3]), ("v", vec![10, 20, 30])]);
        let b2 = int_batch(&[("k", vec![4]), ("v", vec![40])]);
        let metrics = Metrics::new();
        let mut f = SpillFile::new();
        f.append(&b1, Some(&metrics)).unwrap();
        f.append(&b2, Some(&metrics)).unwrap();
        assert_eq!(f.rows(), 4);
        let back = f.read_all(&b1.schema().clone(), Some(&metrics)).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].to_rows(), b1.to_rows());
        assert_eq!(back[1].to_rows(), b2.to_rows());
        assert_eq!(metrics.value("storage.spill.partitions"), 1);
        assert!(metrics.value("storage.spill.bytes_written") > 0);
        assert!(metrics.value("storage.spill.bytes_read") > 0);
        let path = f.path.clone();
        assert!(path.exists());
        drop(f);
        assert!(!path.exists(), "spill files are deleted on drop");
    }

    #[test]
    fn empty_append_creates_nothing() {
        let b = int_batch(&[("k", vec![])]);
        let mut f = SpillFile::new();
        f.append(&b, None).unwrap();
        assert!(f.is_empty());
        assert!(!f.path.exists());
        assert!(f.read_all(&b.schema().clone(), None).unwrap().is_empty());
    }

    #[test]
    fn partition_batch_covers_all_rows_consistently() {
        let b = int_batch(&[
            ("k", (0..256).map(|i| i % 37).collect()),
            ("v", (0..256).collect()),
        ]);
        let parts = partition_batch(&b, &[0], 0).unwrap();
        let total: usize = parts.iter().flatten().map(|p| p.num_rows()).sum();
        assert_eq!(total, 256);
        // Same key always lands in the same partition; distinct partitions
        // are key-disjoint.
        let mut key_part: std::collections::HashMap<i64, usize> = Default::default();
        for (p, part) in parts.iter().enumerate() {
            let Some(part) = part else { continue };
            for &k in part.column(0).i64_data().unwrap() {
                assert_eq!(*key_part.entry(k).or_insert(p), p, "key {k} split");
            }
        }
        // Deeper depths shift to different bits but stay consistent per key.
        let deep = partition_batch(&b, &[0], 2).unwrap();
        let total: usize = deep.iter().flatten().map(|p| p.num_rows()).sum();
        assert_eq!(total, 256);
    }

    #[test]
    fn selection_views_are_densified_before_spilling() {
        let b = int_batch(&[("k", vec![1, 2, 3, 4]), ("v", vec![10, 20, 30, 40])]);
        let view = b.with_selection(Arc::new(vec![1, 3])).unwrap();
        let mut f = SpillFile::new();
        f.append(&view, None).unwrap();
        let back = f.read_all(&b.schema().clone(), None).unwrap();
        assert_eq!(back[0].num_rows(), 2);
        assert_eq!(back[0].column(1).i64_data().unwrap(), &[20, 40]);
    }
}
