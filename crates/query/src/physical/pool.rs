//! A process-wide, growing pool of reusable worker threads for
//! morsel-driven operators.
//!
//! Why not `std::thread::scope` per query: on short queries the dominant
//! parallel overhead is not thread *creation* (tens of microseconds) but
//! allocator churn — a fresh thread lands on a fresh malloc arena, so every
//! query re-faults pages for its batch and hash-table allocations, and the
//! memory freed on the consumer side never returns to a warm arena. Reusing
//! threads keeps arenas warm and cuts measured per-query overhead several
//! fold (see `BENCH_exec.json`'s `*_p1_ms` rungs).
//!
//! Design: every worker thread owns a dedicated job channel. Dispatch pops
//! an idle worker (or spawns a new thread when none is parked), so a job
//! never waits behind another job — the pool has plain `thread::spawn`
//! semantics, including for long-running producer jobs like parallel scans,
//! and can never deadlock on its own queueing. Threads park forever when
//! idle; the pool's high-water mark is bounded by peak concurrent jobs.
//!
//! Two entry points:
//! - [`run_workers`]: run `f(0), .., f(workers-1)` concurrently and block
//!   until all return (the breaker-operator shape: aggregate, join probe,
//!   top-k). Borrows non-`'static` state; panics propagate to the caller.
//! - [`spawn_detached`]: fire one `'static` job and get a join handle back
//!   (the scan-producer shape).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Mutex, OnceLock};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    /// Parked workers, each addressed by its private job channel.
    idle: Mutex<Vec<Sender<Job>>>,
    /// Threads ever spawned (observability + reuse tests).
    spawned: AtomicUsize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        idle: Mutex::new(Vec::new()),
        spawned: AtomicUsize::new(0),
    })
}

/// Total worker threads this process has ever spawned.
#[cfg(test)]
pub(crate) fn threads_spawned() -> usize {
    pool().spawned.load(Ordering::Relaxed)
}

/// Hand `job` to a parked worker, or grow the pool by one thread.
fn dispatch(job: Job) {
    let p = pool();
    let parked = p.idle.lock().expect("pool idle lock").pop();
    match parked {
        // A send only fails if the worker's receiver is gone, which the
        // worker loop never allows; fall back to a fresh thread anyway.
        Some(tx) => {
            if let Err(std::sync::mpsc::SendError(job)) = tx.send(job) {
                spawn_worker(p, job);
            }
        }
        None => spawn_worker(p, job),
    }
}

fn spawn_worker(p: &'static Pool, first: Job) {
    p.spawned.fetch_add(1, Ordering::Relaxed);
    let (tx, rx): (Sender<Job>, Receiver<Job>) = channel();
    std::thread::Builder::new()
        .name("backbone-worker".into())
        .spawn(move || {
            let mut job = Some(first);
            loop {
                let j = match job.take() {
                    Some(j) => j,
                    None => match rx.recv() {
                        Ok(j) => j,
                        Err(_) => break,
                    },
                };
                j();
                // Park: re-register only after the job is fully done, so a
                // worker never holds more than one job.
                let p_idle = &mut *p.idle.lock().expect("pool idle lock");
                p_idle.push(tx.clone());
            }
        })
        .expect("spawn pool worker");
}

/// Run `f(0), .., f(workers-1)` concurrently on pooled threads and collect
/// the results in worker order. Blocks until every worker returns; a worker
/// panic resumes on the calling thread.
///
/// Public because the whole engine shares one pool: the vector indexes
/// (`backbone-vector`) partition ANN probes and query batches across the
/// same warm worker threads the relational operators use, instead of
/// spawning their own.
pub fn run_workers<R, F>(workers: usize, f: F) -> Vec<R>
where
    F: Fn(usize) -> R + Sync,
    R: Send,
{
    // A single worker needs no thread: the caller would only block waiting
    // for it, so run it inline. This makes 1-worker plans cost within a
    // shared-source mutex of serial ones — no handoff, no cross-thread
    // allocator traffic, nothing for the scheduler to preempt.
    if workers == 1 {
        return vec![f(0)];
    }
    let slots: Vec<Mutex<Option<R>>> = (0..workers).map(|_| Mutex::new(None)).collect();
    {
        let run = |w: usize| {
            let r = f(w);
            *slots[w].lock().expect("result slot lock") = Some(r);
        };
        scoped_raw(workers, &run);
    }
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot lock")
                .expect("worker completed")
        })
        .collect()
}

/// Dispatch `workers` calls of a borrowed closure and block until all have
/// completed.
///
/// Safety of the lifetime erasure: every dispatched job sends on `done`
/// exactly once, *after* its last use of `f` (the `catch_unwind` wrapper
/// sends even when `f` panics), and this function returns only after
/// receiving all `workers` completions — so the borrow of `f` strictly
/// outlives every use on the pool threads. The channel's happens-before
/// edge also makes all worker writes visible to the caller.
fn scoped_raw<'env>(workers: usize, f: &(dyn Fn(usize) + Sync + 'env)) {
    let f: &'static (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync + 'env), &'static (dyn Fn(usize) + Sync)>(f)
    };
    let (done_tx, done_rx) = channel::<std::thread::Result<()>>();
    for w in 0..workers {
        let done = done_tx.clone();
        dispatch(Box::new(move || {
            let r = catch_unwind(AssertUnwindSafe(|| f(w)));
            let _ = done.send(r);
        }));
    }
    drop(done_tx);
    let mut panicked = None;
    for _ in 0..workers {
        match done_rx.recv() {
            Ok(Ok(())) => {}
            Ok(Err(p)) => panicked = Some(p),
            // Disconnect implies every job already completed (and sent).
            Err(_) => break,
        }
    }
    if let Some(p) = panicked {
        resume_unwind(p);
    }
}

/// A handle to one detached pool job; mirrors `std::thread::JoinHandle`.
pub(crate) struct PoolHandle {
    done: Receiver<std::thread::Result<()>>,
}

impl PoolHandle {
    /// Block until the job finishes; `Err` carries the job's panic payload.
    pub fn join(self) -> std::thread::Result<()> {
        self.done.recv().unwrap_or(Ok(()))
    }
}

/// Run `f` once on a pooled thread without blocking the caller — the
/// long-running producer shape (parallel scan workers).
pub(crate) fn spawn_detached(f: impl FnOnce() + Send + 'static) -> PoolHandle {
    let (tx, rx) = channel();
    dispatch(Box::new(move || {
        let r = catch_unwind(AssertUnwindSafe(f));
        let _ = tx.send(r);
    }));
    PoolHandle { done: rx }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_worker_order() {
        let out = run_workers(8, |w| w * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn borrowed_state_is_visible_to_workers() {
        let total = AtomicU64::new(0);
        run_workers(4, |w| {
            total.fetch_add(w as u64 + 1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            run_workers(3, |w| {
                if w == 1 {
                    panic!("boom from worker 1");
                }
                w
            })
        }));
        let payload = r.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("boom"), "unexpected payload: {msg}");
        // The pool survives a panicking job.
        assert_eq!(run_workers(2, |w| w), vec![0, 1]);
    }

    #[test]
    fn detached_jobs_join_and_propagate_panics() {
        let h = spawn_detached(|| {});
        assert!(h.join().is_ok());
        let h = spawn_detached(|| panic!("detached boom"));
        assert!(h.join().is_err());
    }

    #[test]
    fn single_worker_runs_inline_on_the_caller() {
        let caller = std::thread::current().id();
        let out = run_workers(1, |_| std::thread::current().id());
        assert_eq!(out, vec![caller]);
    }

    #[test]
    fn threads_are_reused_across_runs() {
        // Warm the pool, then run 20 sequential two-worker jobs: far fewer
        // than 40 fresh threads may appear (other tests share the pool, so
        // assert reuse, not an exact count).
        run_workers(2, |_| {});
        let mut ids = HashSet::new();
        for _ in 0..20 {
            let id = run_workers(2, |_| format!("{:?}", std::thread::current().id()));
            ids.extend(id);
        }
        assert!(ids.len() < 40, "no thread reuse across {} runs", ids.len());
    }

    #[test]
    fn nested_dispatch_from_a_pool_thread() {
        // A pooled job dispatching its own sub-jobs (aggregate over a
        // parallel scan) must not deadlock.
        let out = run_workers(2, |w| {
            let inner = run_workers(2, move |v| w * 10 + v);
            inner.iter().sum::<usize>()
        });
        assert_eq!(out, vec![1, 21]);
        assert!(threads_spawned() >= 2);
    }
}
