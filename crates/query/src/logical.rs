//! Logical query plans: the declarative algebra.
//!
//! A [`LogicalPlan`] says *what* rows to produce. The optimizer rewrites it
//! and the planner lowers it to physical operators — callers never choose
//! join algorithms, scan orders, or parallelism. This is the paper's
//! "independence between physical and logical" made concrete.

use crate::catalog::Catalog;
use crate::error::{QueryError, Result};
use crate::expr::{AggExpr, Expr};
use backbone_storage::{Field, Schema, Value};
use std::fmt;
use std::sync::Arc;

/// Join variants supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Inner equi-join.
    Inner,
    /// Left outer equi-join (unmatched left rows padded with NULLs).
    Left,
}

impl fmt::Display for JoinType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinType::Inner => write!(f, "INNER"),
            JoinType::Left => write!(f, "LEFT"),
        }
    }
}

/// A sort key: an expression plus direction.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// The expression to sort by.
    pub expr: Expr,
    /// Descending order when true.
    pub descending: bool,
}

/// Ascending sort key.
pub fn asc(expr: Expr) -> SortKey {
    SortKey {
        expr,
        descending: false,
    }
}

/// Descending sort key.
pub fn desc(expr: Expr) -> SortKey {
    SortKey {
        expr,
        descending: true,
    }
}

/// A node in the logical plan tree.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan a named table, optionally projecting columns and applying pushed-
    /// down filters (filled in by the optimizer, not by callers).
    Scan {
        /// Table name in the catalog.
        table: String,
        /// The table's full schema at plan-build time.
        table_schema: Arc<Schema>,
        /// Columns to read, `None` = all.
        projection: Option<Vec<String>>,
        /// Conjunctive predicates evaluated during the scan.
        filters: Vec<Expr>,
    },
    /// Keep rows satisfying the predicate.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Boolean predicate.
        predicate: Expr,
    },
    /// Compute output columns.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// One expression per output column.
        exprs: Vec<Expr>,
    },
    /// Equi-join two inputs.
    Join {
        /// Left input (build side candidate).
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Pairs of (left column, right column) equated by the join.
        on: Vec<(String, String)>,
        /// Inner or left outer.
        join_type: JoinType,
    },
    /// Group and aggregate.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Grouping expressions (column references in practice).
        group_by: Vec<Expr>,
        /// Aggregates to compute.
        aggs: Vec<AggExpr>,
    },
    /// Sort rows.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys, major first.
        keys: Vec<SortKey>,
    },
    /// Keep the first `n` rows.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Row budget.
        n: usize,
    },
}

impl LogicalPlan {
    /// Start a plan by scanning a table registered in `catalog`.
    pub fn scan(table: impl Into<String>, catalog: &dyn Catalog) -> Result<LogicalPlan> {
        let table = table.into();
        let t = catalog
            .table(&table)
            .ok_or_else(|| QueryError::TableNotFound(table.clone()))?;
        Ok(LogicalPlan::Scan {
            table,
            table_schema: t.schema().clone(),
            projection: None,
            filters: Vec::new(),
        })
    }

    /// Keep rows satisfying `predicate`.
    pub fn filter(self, predicate: Expr) -> LogicalPlan {
        LogicalPlan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Compute the given output expressions.
    pub fn project(self, exprs: Vec<Expr>) -> LogicalPlan {
        LogicalPlan::Project {
            input: Box::new(self),
            exprs,
        }
    }

    /// Inner equi-join with `right` on `(left_col, right_col)` pairs.
    pub fn join_on(self, right: LogicalPlan, on: Vec<(&str, &str)>) -> LogicalPlan {
        self.join(right, on, JoinType::Inner)
    }

    /// Equi-join with an explicit join type.
    pub fn join(
        self,
        right: LogicalPlan,
        on: Vec<(&str, &str)>,
        join_type: JoinType,
    ) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            on: on
                .into_iter()
                .map(|(l, r)| (l.to_string(), r.to_string()))
                .collect(),
            join_type,
        }
    }

    /// Group by `group_by` and compute `aggs`.
    pub fn aggregate(self, group_by: Vec<Expr>, aggs: Vec<AggExpr>) -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(self),
            group_by,
            aggs,
        }
    }

    /// Sort by `keys`.
    pub fn sort(self, keys: Vec<SortKey>) -> LogicalPlan {
        LogicalPlan::Sort {
            input: Box::new(self),
            keys,
        }
    }

    /// Keep the first `n` rows.
    pub fn limit(self, n: usize) -> LogicalPlan {
        LogicalPlan::Limit {
            input: Box::new(self),
            n,
        }
    }

    /// The plan's output schema.
    pub fn schema(&self) -> Result<Arc<Schema>> {
        match self {
            LogicalPlan::Scan {
                table_schema,
                projection,
                ..
            } => match projection {
                None => Ok(table_schema.clone()),
                Some(cols) => {
                    let mut fields = Vec::with_capacity(cols.len());
                    for c in cols {
                        fields.push(table_schema.field_by_name(c)?.clone());
                    }
                    Ok(Schema::new(fields))
                }
            },
            LogicalPlan::Filter { input, .. } => input.schema(),
            LogicalPlan::Project { input, exprs } => {
                let in_schema = input.schema()?;
                let mut fields = Vec::with_capacity(exprs.len());
                for e in exprs {
                    fields.push(Field::nullable(e.output_name(), e.data_type(&in_schema)?));
                }
                Ok(Schema::new(fields))
            }
            LogicalPlan::Join {
                left,
                right,
                join_type,
                ..
            } => {
                let l = left.schema()?;
                let r = right.schema()?;
                let mut fields = l.fields().to_vec();
                for f in r.fields() {
                    let mut f = f.clone();
                    if *join_type == JoinType::Left {
                        f.nullable = true;
                    }
                    fields.push(f);
                }
                Ok(Schema::new(fields))
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let in_schema = input.schema()?;
                let mut fields = Vec::with_capacity(group_by.len() + aggs.len());
                for g in group_by {
                    fields.push(Field::nullable(g.output_name(), g.data_type(&in_schema)?));
                }
                for a in aggs {
                    fields.push(Field::nullable(a.name.clone(), a.data_type(&in_schema)?));
                }
                Ok(Schema::new(fields))
            }
            LogicalPlan::Sort { input, .. } | LogicalPlan::Limit { input, .. } => input.schema(),
        }
    }

    /// Child plans (0 for scans, 2 for joins, 1 otherwise).
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
        }
    }

    /// Names of every table this plan scans, deduplicated and sorted.
    /// The serving-path result cache keys entries by the content version of
    /// each referenced table, so this is the invalidation footprint.
    pub fn referenced_tables(&self) -> Vec<String> {
        let mut out = std::collections::BTreeSet::new();
        self.collect_tables(&mut out);
        out.into_iter().collect()
    }

    fn collect_tables(&self, out: &mut std::collections::BTreeSet<String>) {
        if let LogicalPlan::Scan { table, .. } = self {
            out.insert(table.clone());
        }
        for child in self.children() {
            child.collect_tables(out);
        }
    }

    /// The number of parameter slots this plan needs: one past the highest
    /// `$n` placeholder anywhere in the tree, or 0 when there are none.
    pub fn param_count(&self) -> usize {
        let own = match self {
            LogicalPlan::Scan { filters, .. } => {
                filters.iter().map(Expr::param_count).max().unwrap_or(0)
            }
            LogicalPlan::Filter { predicate, .. } => predicate.param_count(),
            LogicalPlan::Project { exprs, .. } => {
                exprs.iter().map(Expr::param_count).max().unwrap_or(0)
            }
            LogicalPlan::Join { .. } | LogicalPlan::Limit { .. } => 0,
            LogicalPlan::Aggregate { group_by, aggs, .. } => group_by
                .iter()
                .map(Expr::param_count)
                .chain(aggs.iter().map(|a| a.input.param_count()))
                .max()
                .unwrap_or(0),
            LogicalPlan::Sort { keys, .. } => {
                keys.iter().map(|k| k.expr.param_count()).max().unwrap_or(0)
            }
        };
        self.children()
            .iter()
            .map(|c| c.param_count())
            .fold(own, usize::max)
    }

    /// Substitute every `$n` placeholder in the tree with the matching
    /// literal from `params` (`$1` takes `params[0]`). The plan's shape is
    /// untouched, so a plan optimized once with placeholders can be bound
    /// and executed many times. Errors when a placeholder has no value.
    pub fn bind_params(&self, params: &[Value]) -> Result<LogicalPlan> {
        Ok(match self {
            LogicalPlan::Scan {
                table,
                table_schema,
                projection,
                filters,
            } => LogicalPlan::Scan {
                table: table.clone(),
                table_schema: table_schema.clone(),
                projection: projection.clone(),
                filters: filters
                    .iter()
                    .map(|f| f.bind_params(params))
                    .collect::<Result<Vec<_>>>()?,
            },
            LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
                input: Box::new(input.bind_params(params)?),
                predicate: predicate.bind_params(params)?,
            },
            LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
                input: Box::new(input.bind_params(params)?),
                exprs: exprs
                    .iter()
                    .map(|e| e.bind_params(params))
                    .collect::<Result<Vec<_>>>()?,
            },
            LogicalPlan::Join {
                left,
                right,
                on,
                join_type,
            } => LogicalPlan::Join {
                left: Box::new(left.bind_params(params)?),
                right: Box::new(right.bind_params(params)?),
                on: on.clone(),
                join_type: *join_type,
            },
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => LogicalPlan::Aggregate {
                input: Box::new(input.bind_params(params)?),
                group_by: group_by
                    .iter()
                    .map(|e| e.bind_params(params))
                    .collect::<Result<Vec<_>>>()?,
                aggs: aggs
                    .iter()
                    .map(|a| {
                        Ok(AggExpr {
                            func: a.func,
                            input: a.input.bind_params(params)?,
                            name: a.name.clone(),
                        })
                    })
                    .collect::<Result<Vec<_>>>()?,
            },
            LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
                input: Box::new(input.bind_params(params)?),
                keys: keys
                    .iter()
                    .map(|k| {
                        Ok(SortKey {
                            expr: k.expr.bind_params(params)?,
                            descending: k.descending,
                        })
                    })
                    .collect::<Result<Vec<_>>>()?,
            },
            LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
                input: Box::new(input.bind_params(params)?),
                n: *n,
            },
        })
    }

    /// Render the plan as an indented tree (EXPLAIN output).
    pub fn display_indent(&self) -> String {
        let mut out = String::new();
        self.fmt_node(&mut out, 0);
        out
    }

    fn fmt_node(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::Scan {
                table,
                projection,
                filters,
                ..
            } => {
                out.push_str(&format!("{pad}Scan: {table}"));
                if let Some(p) = projection {
                    out.push_str(&format!(" project=[{}]", p.join(", ")));
                }
                if !filters.is_empty() {
                    let fs: Vec<String> = filters.iter().map(|f| f.to_string()).collect();
                    out.push_str(&format!(" filters=[{}]", fs.join(" AND ")));
                }
                out.push('\n');
            }
            LogicalPlan::Filter { input, predicate } => {
                out.push_str(&format!("{pad}Filter: {predicate}\n"));
                input.fmt_node(out, depth + 1);
            }
            LogicalPlan::Project { input, exprs } => {
                let es: Vec<String> = exprs.iter().map(|e| e.to_string()).collect();
                out.push_str(&format!("{pad}Project: {}\n", es.join(", ")));
                input.fmt_node(out, depth + 1);
            }
            LogicalPlan::Join {
                left,
                right,
                on,
                join_type,
            } => {
                let keys: Vec<String> = on.iter().map(|(l, r)| format!("{l} = {r}")).collect();
                out.push_str(&format!("{pad}{join_type} Join: {}\n", keys.join(", ")));
                left.fmt_node(out, depth + 1);
                right.fmt_node(out, depth + 1);
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let gs: Vec<String> = group_by.iter().map(|g| g.to_string()).collect();
                let as_: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
                out.push_str(&format!(
                    "{pad}Aggregate: group=[{}] aggs=[{}]\n",
                    gs.join(", "),
                    as_.join(", ")
                ));
                input.fmt_node(out, depth + 1);
            }
            LogicalPlan::Sort { input, keys } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|k| format!("{}{}", k.expr, if k.descending { " DESC" } else { " ASC" }))
                    .collect();
                out.push_str(&format!("{pad}Sort: {}\n", ks.join(", ")));
                input.fmt_node(out, depth + 1);
            }
            LogicalPlan::Limit { input, n } => {
                out.push_str(&format!("{pad}Limit: {n}\n"));
                input.fmt_node(out, depth + 1);
            }
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_indent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::MemCatalog;
    use crate::expr::{col, lit, sum};
    use backbone_storage::{DataType, Table, Value};

    fn catalog() -> MemCatalog {
        let cat = MemCatalog::new();
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("amount", DataType::Float64),
            Field::new("tag", DataType::Utf8),
        ]);
        let mut t = Table::new(schema);
        for i in 0..10 {
            t.append_row(vec![
                Value::Int(i),
                Value::Float(i as f64 * 1.5),
                Value::str(if i % 2 == 0 { "even" } else { "odd" }),
            ])
            .unwrap();
        }
        cat.register("t", t);
        cat
    }

    #[test]
    fn scan_schema() {
        let cat = catalog();
        let plan = LogicalPlan::scan("t", &cat).unwrap();
        assert_eq!(plan.schema().unwrap().len(), 3);
        assert!(LogicalPlan::scan("missing", &cat).is_err());
    }

    #[test]
    fn project_schema_inference() {
        let cat = catalog();
        let plan = LogicalPlan::scan("t", &cat)
            .unwrap()
            .project(vec![col("id"), col("amount").mul(lit(2.0)).alias("double")]);
        let s = plan.schema().unwrap();
        assert_eq!(s.field(0).name, "id");
        assert_eq!(s.field(1).name, "double");
        assert_eq!(s.field(1).data_type, DataType::Float64);
    }

    #[test]
    fn aggregate_schema() {
        let cat = catalog();
        let plan = LogicalPlan::scan("t", &cat)
            .unwrap()
            .aggregate(vec![col("tag")], vec![sum(col("amount")).alias("total")]);
        let s = plan.schema().unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.field(1).name, "total");
        assert_eq!(s.field(1).data_type, DataType::Float64);
    }

    #[test]
    fn join_schema_nullability() {
        let cat = catalog();
        let l = LogicalPlan::scan("t", &cat).unwrap();
        let r = LogicalPlan::scan("t", &cat).unwrap();
        let inner = l
            .clone()
            .join(r.clone(), vec![("id", "id")], JoinType::Inner);
        assert_eq!(inner.schema().unwrap().len(), 6);
        let left = l.join(r, vec![("id", "id")], JoinType::Left);
        assert!(left.schema().unwrap().field(3).nullable);
    }

    #[test]
    fn display_tree() {
        let cat = catalog();
        let plan = LogicalPlan::scan("t", &cat)
            .unwrap()
            .filter(col("id").gt(lit(3i64)))
            .project(vec![col("id")])
            .limit(5);
        let text = plan.display_indent();
        assert!(text.contains("Limit: 5"));
        assert!(text.contains("Filter: (id > 3)"));
        assert!(text.contains("Scan: t"));
        // Tree ordering: limit above project above filter above scan.
        let li = text.find("Limit").unwrap();
        let si = text.find("Scan").unwrap();
        assert!(li < si);
    }

    #[test]
    fn referenced_tables_and_param_binding() {
        let cat = catalog();
        let plan = LogicalPlan::scan("t", &cat)
            .unwrap()
            .filter(col("id").gt(Expr::Param(0)))
            .aggregate(vec![col("tag")], vec![sum(col("amount")).alias("total")]);
        assert_eq!(plan.referenced_tables(), vec!["t".to_string()]);
        assert_eq!(plan.param_count(), 1);
        let join = LogicalPlan::scan("t", &cat)
            .unwrap()
            .join_on(LogicalPlan::scan("t", &cat).unwrap(), vec![("id", "id")]);
        assert_eq!(join.referenced_tables(), vec!["t".to_string()]);

        let bound = plan.bind_params(&[Value::Int(3)]).unwrap();
        assert_eq!(bound.param_count(), 0);
        assert!(bound.display_indent().contains("(id > 3)"));
        // Original is untouched; missing values error.
        assert_eq!(plan.param_count(), 1);
        assert!(plan.bind_params(&[]).is_err());
    }

    #[test]
    fn children_counts() {
        let cat = catalog();
        let scan = LogicalPlan::scan("t", &cat).unwrap();
        assert_eq!(scan.children().len(), 0);
        let join = scan.clone().join_on(scan.clone(), vec![("id", "id")]);
        assert_eq!(join.children().len(), 2);
        assert_eq!(scan.filter(lit(true)).children().len(), 1);
    }
}
