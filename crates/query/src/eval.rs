//! Vectorized expression evaluation over record batches.
//!
//! Kernels are **selection-aware**: when a batch carries a selection vector,
//! every computed column still has the batch's *base* row count, but only the
//! selected lanes are evaluated (and marked valid). That keeps column indices
//! aligned across stacked operators without compaction, and it preserves
//! error semantics — a division by zero on a row the filter already dropped
//! must not fail the query.

use crate::error::{QueryError, Result};
use crate::expr::{BinOp, Expr, UnOp};
use crate::kernel_metrics;
use backbone_storage::{Bitmap, Column, RecordBatch, Value};
use std::sync::Arc;
use std::time::Instant;

/// Visit base-row indices: the selected lanes when `sel` is present, else all
/// of `0..n`.
macro_rules! lanes {
    ($sel:expr, $n:expr, $i:ident => $body:block) => {
        match $sel {
            Some(s) => {
                for &lane in s {
                    let $i = lane as usize;
                    $body
                }
            }
            None => {
                for $i in 0..$n {
                    $body
                }
            }
        }
    };
}

/// Evaluate an expression against a batch, producing one column of the
/// batch's **base** row count. On a selected batch only the selected lanes
/// are computed; other lanes are NULL and must not be read.
pub fn eval(expr: &Expr, batch: &RecordBatch) -> Result<Column> {
    eval_lanes(expr, batch, batch.selection())
}

/// Evaluate like [`eval`], but bare column references (and aliases of them)
/// return the batch's shared column handle instead of deep-cloning the data —
/// the difference between O(1) and re-allocating every string in a Utf8
/// column on each batch.
pub fn eval_arc(expr: &Expr, batch: &RecordBatch) -> Result<std::sync::Arc<Column>> {
    let mut e = expr;
    while let Expr::Alias(inner, _) = e {
        e = inner;
    }
    if let Expr::Column(name) = e {
        let col = batch
            .column_by_name(name)
            .map_err(|_| QueryError::InvalidExpression(format!("unknown column '{name}'")))?;
        return Ok(col.clone());
    }
    Ok(std::sync::Arc::new(eval(expr, batch)?))
}

fn eval_lanes(expr: &Expr, batch: &RecordBatch, sel: Option<&[u32]>) -> Result<Column> {
    match expr {
        Expr::Column(name) => {
            let col = batch
                .column_by_name(name)
                .map_err(|_| QueryError::InvalidExpression(format!("unknown column '{name}'")))?;
            Ok(col.as_ref().clone())
        }
        Expr::Literal(v) => broadcast(v, batch.base_rows()),
        Expr::Param(i) => Err(QueryError::InvalidExpression(format!(
            "parameter ${} is not bound",
            i + 1
        ))),
        Expr::Alias(inner, _) => eval_lanes(inner, batch, sel),
        Expr::Unary { op, expr } => {
            let input = eval_lanes(expr, batch, sel)?;
            eval_unary(*op, &input)
        }
        Expr::Binary { left, op, right } => {
            // Dictionary fast path: `dict_col <cmp> 'literal'` compares once
            // per dictionary entry instead of once per row. Must intercept
            // before the literal broadcasts into a full column.
            if op.is_comparison() {
                if let Some(out) = try_dict_compare(left, *op, right, batch, sel)? {
                    return Ok(out);
                }
                if let Some(out) = try_encoded_compare(left, *op, right, batch, sel)? {
                    return Ok(out);
                }
            }
            let l = eval_lanes(left, batch, sel)?;
            let r = eval_lanes(right, batch, sel)?;
            eval_binary(&l, *op, &r, sel)
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let input = eval_lanes(expr, batch, sel)?;
            eval_like(&input, pattern, *negated, sel)
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => eval_in_list(expr, list, *negated, batch, sel),
    }
}

/// Strip alias wrappers to the underlying expression.
fn strip_alias(mut e: &Expr) -> &Expr {
    while let Expr::Alias(inner, _) = e {
        e = inner;
    }
    e
}

/// `keep(ordering)` verdict for a comparison operator.
#[inline]
fn cmp_keep(op: BinOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering;
    match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::NotEq => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::LtEq => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::GtEq => ord != Ordering::Less,
        _ => unreachable!("not a comparison"),
    }
}

/// Code-space comparison kernel: when one side is a dictionary-encoded
/// column reference and the other a string literal, evaluate the comparison
/// over the O(distinct) dictionary and scan the u32 codes against the
/// resulting accept set. Returns `None` when the shape doesn't apply (the
/// caller falls through to the generic row-wise path).
fn try_dict_compare(
    left: &Expr,
    op: BinOp,
    right: &Expr,
    batch: &RecordBatch,
    sel: Option<&[u32]>,
) -> Result<Option<Column>> {
    let (name, needle, flipped) = match (strip_alias(left), strip_alias(right)) {
        (Expr::Column(n), Expr::Literal(Value::Str(s))) => (n, s, false),
        (Expr::Literal(Value::Str(s)), Expr::Column(n)) => (n, s, true),
        _ => return Ok(None),
    };
    let Ok(col) = batch.column_by_name(name) else {
        return Ok(None); // unknown column: let the generic path report it
    };
    let Some((dict, codes, validity)) = col.dict_parts() else {
        return Ok(None);
    };
    let t0 = Instant::now();
    let accept: Vec<bool> = dict
        .iter()
        .map(|entry| {
            let ord = if flipped {
                (**needle).cmp(entry.as_str())
            } else {
                entry.as_str().cmp(needle)
            };
            cmp_keep(op, ord)
        })
        .collect();
    let n = codes.len();
    let mut vals = vec![false; n];
    let mut out_validity = Bitmap::all_null(n);
    lanes!(sel, n, i => {
        if validity.get(i) {
            vals[i] = accept[codes[i] as usize];
            out_validity.set(i, true);
        }
    });
    kernel_metrics::record(|m| {
        m.counter("op.eval.kernel.dict_cmp_ns").add_elapsed(t0);
        m.counter("op.eval.kernel.dict_rows").add(n as u64);
    });
    Ok(Some(Column::Bool(vals, out_validity)))
}

/// Code-space comparison kernel for encoded integers: when one side is an
/// [`Column::Int64Encoded`] column reference and the other a numeric
/// literal, RLE columns get one verdict per run (filled across the whole
/// span) and bit-packed columns compare unpacked words lane by lane —
/// neither materializes a plain vector. Returns `None` when the shape
/// doesn't apply.
fn try_encoded_compare(
    left: &Expr,
    op: BinOp,
    right: &Expr,
    batch: &RecordBatch,
    sel: Option<&[u32]>,
) -> Result<Option<Column>> {
    #[derive(Clone, Copy)]
    enum Needle {
        I(i64),
        F(f64),
    }
    let (name, needle, flipped) = match (strip_alias(left), strip_alias(right)) {
        (Expr::Column(n), Expr::Literal(Value::Int(v))) => (n, Needle::I(*v), false),
        (Expr::Literal(Value::Int(v)), Expr::Column(n)) => (n, Needle::I(*v), true),
        (Expr::Column(n), Expr::Literal(Value::Float(v))) => (n, Needle::F(*v), false),
        (Expr::Literal(Value::Float(v)), Expr::Column(n)) => (n, Needle::F(*v), true),
        _ => return Ok(None),
    };
    let Ok(col) = batch.column_by_name(name) else {
        return Ok(None); // unknown column: let the generic path report it
    };
    let Some((data, validity)) = col.encoded_parts() else {
        return Ok(None);
    };
    let t0 = Instant::now();
    // `None` mirrors the float kernels' NaN behavior: no ordering, row NULL.
    let verdict = |v: i64| -> Option<bool> {
        let ord = match needle {
            Needle::I(x) => {
                if flipped {
                    x.cmp(&v)
                } else {
                    v.cmp(&x)
                }
            }
            Needle::F(x) => {
                if flipped {
                    x.partial_cmp(&(v as f64))?
                } else {
                    (v as f64).partial_cmp(&x)?
                }
            }
        };
        Some(cmp_keep(op, ord))
    };
    let n = col.len();
    let mut vals = vec![false; n];
    let mut out_validity = Bitmap::all_null(n);
    match (data.runs(), sel) {
        (Some(runs), None) => {
            let mut pos = 0usize;
            for &(v, cnt) in runs {
                let end = pos + cnt as usize;
                if let Some(k) = verdict(v) {
                    for (slot, i) in vals[pos..end].iter_mut().zip(pos..) {
                        if validity.get(i) {
                            *slot = k;
                            out_validity.set(i, true);
                        }
                    }
                }
                pos = end;
            }
        }
        _ => {
            lanes!(sel, n, i => {
                if validity.get(i) {
                    if let Some(k) = verdict(data.get(i)) {
                        vals[i] = k;
                        out_validity.set(i, true);
                    }
                }
            });
        }
    }
    kernel_metrics::record(|m| {
        m.counter("op.eval.kernel.enc_cmp_ns").add_elapsed(t0);
        m.counter("op.eval.kernel.enc_rows").add(n as u64);
    });
    Ok(Some(Column::Bool(vals, out_validity)))
}

/// SQL `IN (...)`: OR-chain three-valued semantics. Dictionary columns with
/// all-literal string lists build an accept set once per dictionary entry.
fn eval_in_list(
    expr: &Expr,
    list: &[Expr],
    negated: bool,
    batch: &RecordBatch,
    sel: Option<&[u32]>,
) -> Result<Column> {
    if let Some(out) = try_dict_in_list(expr, list, negated, batch, sel)? {
        return Ok(out);
    }
    let input = eval_lanes(expr, batch, sel)?;
    let n = input.len();
    // Fold `input = item` comparisons with three-valued OR, starting from
    // definite FALSE (the SQL verdict of `x IN ()`).
    let mut vals = vec![false; n];
    let mut validity = Bitmap::all_valid(n);
    for item in list {
        if matches!(strip_alias(item), Expr::Literal(Value::Null)) {
            // `x = NULL` is NULL for every row: a definite TRUE survives the
            // OR, everything else degrades to NULL.
            lanes!(sel, n, i => {
                if !(validity.get(i) && vals[i]) {
                    vals[i] = false;
                    validity.set(i, false);
                }
            });
            continue;
        }
        let item_col = eval_lanes(item, batch, sel)?;
        let cmp = eval_comparison(&input, BinOp::Eq, &item_col, sel)?;
        let Column::Bool(cv, cb) = cmp else {
            unreachable!("comparison yields Bool")
        };
        lanes!(sel, n, i => {
            let acc = validity.get(i).then_some(vals[i]);
            let item_v = cb.get(i).then_some(cv[i]);
            let out = match (acc, item_v) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            };
            match out {
                Some(v) => {
                    vals[i] = v;
                    validity.set(i, true);
                }
                None => {
                    vals[i] = false;
                    validity.set(i, false);
                }
            }
        });
    }
    if negated {
        lanes!(sel, n, i => {
            if validity.get(i) {
                vals[i] = !vals[i];
            }
        });
    }
    Ok(Column::Bool(vals, validity))
}

/// Accept-set membership for `dict_col IN ('a', 'b', ...)`. Returns `None`
/// unless the probe is a dictionary column reference and every list item is
/// a string (or NULL) literal.
fn try_dict_in_list(
    expr: &Expr,
    list: &[Expr],
    negated: bool,
    batch: &RecordBatch,
    sel: Option<&[u32]>,
) -> Result<Option<Column>> {
    let Expr::Column(name) = strip_alias(expr) else {
        return Ok(None);
    };
    let mut items: std::collections::HashSet<&str> = std::collections::HashSet::new();
    let mut has_null_item = false;
    for e in list {
        match strip_alias(e) {
            Expr::Literal(Value::Str(s)) => {
                items.insert(s);
            }
            Expr::Literal(Value::Null) => has_null_item = true,
            _ => return Ok(None),
        }
    }
    let Ok(col) = batch.column_by_name(name) else {
        return Ok(None);
    };
    let Some((dict, codes, validity)) = col.dict_parts() else {
        return Ok(None);
    };
    let t0 = Instant::now();
    let accept: Vec<bool> = dict.iter().map(|e| items.contains(e.as_str())).collect();
    let n = codes.len();
    let mut vals = vec![false; n];
    let mut out_validity = Bitmap::all_null(n);
    lanes!(sel, n, i => {
        if validity.get(i) {
            if accept[codes[i] as usize] {
                vals[i] = !negated;
                out_validity.set(i, true);
            } else if !has_null_item {
                vals[i] = negated;
                out_validity.set(i, true);
            }
            // else: no match but a NULL item — verdict is NULL.
        }
    });
    kernel_metrics::record(|m| {
        m.counter("op.eval.kernel.dict_in_ns").add_elapsed(t0);
        m.counter("op.eval.kernel.dict_rows").add(n as u64);
    });
    Ok(Some(Column::Bool(vals, out_validity)))
}

/// A LIKE pattern compiled once per column. Patterns whose only wildcards
/// are leading/trailing `%` dispatch to `str` fast paths; everything else
/// uses segment search: the pattern splits on `%` into fixed-length
/// segments (`_` matches any one char), the first and last segments anchor
/// to the text's ends, and middle segments are found leftmost-first — no
/// char-by-char backtracking.
enum LikePattern {
    Exact(String),
    Prefix(String),
    Suffix(String),
    Contains(String),
    Segmented(Vec<Vec<char>>),
}

impl LikePattern {
    fn compile(pattern: &str) -> LikePattern {
        if !pattern.contains('_') {
            let inner_pct = |s: &str| s.contains('%');
            let starts = pattern.starts_with('%');
            let ends = pattern.ends_with('%') && pattern.len() >= 2 || pattern == "%";
            match (starts, ends) {
                (false, false) if !inner_pct(pattern) => {
                    return LikePattern::Exact(pattern.to_string())
                }
                (false, true) => {
                    let body = &pattern[..pattern.len() - 1];
                    if !inner_pct(body) {
                        return LikePattern::Prefix(body.to_string());
                    }
                }
                (true, false) => {
                    let body = &pattern[1..];
                    if !inner_pct(body) {
                        return LikePattern::Suffix(body.to_string());
                    }
                }
                (true, true) => {
                    let body = &pattern[1..pattern.len().saturating_sub(1).max(1)];
                    if !inner_pct(body) {
                        return LikePattern::Contains(body.to_string());
                    }
                }
                _ => {}
            }
        }
        // `%`-delimited segments; empty segments at the edges encode a
        // leading/trailing `%` (they anchor trivially).
        LikePattern::Segmented(pattern.split('%').map(|s| s.chars().collect()).collect())
    }

    fn matches(&self, text: &str, buf: &mut Vec<char>) -> bool {
        match self {
            LikePattern::Exact(p) => text == p,
            LikePattern::Prefix(p) => text.starts_with(p.as_str()),
            LikePattern::Suffix(p) => text.ends_with(p.as_str()),
            LikePattern::Contains(p) => text.contains(p.as_str()),
            LikePattern::Segmented(segs) => {
                buf.clear();
                buf.extend(text.chars());
                seg_match(buf, segs)
            }
        }
    }
}

/// SQL LIKE: `%` matches any run (including empty), `_` exactly one char.
/// NULL inputs yield NULL (excluded by predicate semantics). Dictionary
/// columns match once per dictionary entry, then scan codes.
fn eval_like(input: &Column, pattern: &str, negated: bool, sel: Option<&[u32]>) -> Result<Column> {
    let (vals, validity) = match input {
        Column::Utf8(v, b) => (v, b),
        Column::DictUtf8 { .. } => {
            let (dict, codes, validity) = input.dict_parts().expect("matched dict");
            let t0 = Instant::now();
            let pat = LikePattern::compile(pattern);
            let mut buf: Vec<char> = Vec::new();
            let accept: Vec<bool> = dict.iter().map(|e| pat.matches(e, &mut buf)).collect();
            let n = codes.len();
            let mut out = vec![false; n];
            let mut out_validity = Bitmap::all_null(n);
            lanes!(sel, n, i => {
                if validity.get(i) {
                    out[i] = accept[codes[i] as usize] != negated;
                    out_validity.set(i, true);
                }
            });
            kernel_metrics::record(|m| {
                m.counter("op.eval.kernel.dict_like_ns").add_elapsed(t0);
                m.counter("op.eval.kernel.dict_rows").add(n as u64);
            });
            return Ok(Column::Bool(out, out_validity));
        }
        other => {
            return Err(QueryError::InvalidExpression(format!(
                "LIKE over {}",
                other.data_type()
            )))
        }
    };
    let pat = LikePattern::compile(pattern);
    let n = vals.len();
    let mut out = vec![false; n];
    let mut out_validity = Bitmap::all_null(n);
    let mut buf: Vec<char> = Vec::new();
    lanes!(sel, n, i => {
        if validity.get(i) {
            let m = pat.matches(&vals[i], &mut buf);
            out[i] = m != negated;
            out_validity.set(i, true);
        }
    });
    Ok(Column::Bool(out, out_validity))
}

/// Whether `seg` matches at `text[at..at + seg.len()]` (`_` = any one char).
#[inline]
fn seg_eq_at(text: &[char], at: usize, seg: &[char]) -> bool {
    at + seg.len() <= text.len()
        && seg
            .iter()
            .zip(&text[at..])
            .all(|(p, t)| *p == '_' || p == t)
}

/// Leftmost occurrence of `seg` starting at or after `from` and ending at or
/// before `limit`.
fn find_seg(text: &[char], from: usize, limit: usize, seg: &[char]) -> Option<usize> {
    let mut p = from;
    while p + seg.len() <= limit {
        if seg_eq_at(text, p, seg) {
            return Some(p);
        }
        p += 1;
    }
    None
}

/// Segment-search LIKE matcher over `%`-split segments. The first segment
/// anchors at the start, the last at the end (empty edge segments — from
/// leading/trailing `%` — anchor trivially), and middle segments are
/// matched leftmost-first, which is optimal for fixed-length segments:
/// consuming a middle match as early as possible leaves a superset of text
/// for the rest.
fn seg_match(text: &[char], segs: &[Vec<char>]) -> bool {
    if segs.len() == 1 {
        // No `%` at all: exact length, `_` wildcards only.
        return text.len() == segs[0].len() && seg_eq_at(text, 0, &segs[0]);
    }
    let first = &segs[0];
    let last = &segs[segs.len() - 1];
    if !seg_eq_at(text, 0, first) {
        return false;
    }
    let mut pos = first.len();
    let Some(tail_start) = text.len().checked_sub(last.len()) else {
        return false;
    };
    if tail_start < pos || !seg_eq_at(text, tail_start, last) {
        return false;
    }
    for seg in &segs[1..segs.len() - 1] {
        if seg.is_empty() {
            continue;
        }
        match find_seg(text, pos, tail_start, seg) {
            Some(p) => pos = p + seg.len(),
            None => return false,
        }
    }
    true
}

/// Evaluate a predicate to a **logical-row** mask: `true` where the result is
/// TRUE (not NULL, not FALSE) — SQL `WHERE` semantics. On a selected batch
/// the mask has one entry per selection lane, aligned with `num_rows()`.
pub fn eval_predicate(expr: &Expr, batch: &RecordBatch) -> Result<Vec<bool>> {
    let col = eval(expr, batch)?;
    match col {
        Column::Bool(vals, validity) => Ok(match batch.selection() {
            Some(s) => s
                .iter()
                .map(|&i| vals[i as usize] && validity.get(i as usize))
                .collect(),
            None => vals
                .iter()
                .enumerate()
                .map(|(i, &b)| b && validity.get(i))
                .collect(),
        }),
        other => Err(QueryError::InvalidExpression(format!(
            "predicate must be boolean, got {}",
            other.data_type()
        ))),
    }
}

fn broadcast(v: &Value, n: usize) -> Result<Column> {
    Ok(match v {
        Value::Int(x) => Column::Int64(vec![*x; n], Bitmap::all_valid(n)),
        Value::Float(x) => Column::Float64(vec![*x; n], Bitmap::all_valid(n)),
        Value::Str(s) => Column::Utf8(vec![s.to_string(); n], Bitmap::all_valid(n)),
        Value::Bool(b) => Column::Bool(vec![*b; n], Bitmap::all_valid(n)),
        Value::Null => Column::Int64(vec![0; n], Bitmap::all_null(n)),
    })
}

fn eval_unary(op: UnOp, input: &Column) -> Result<Column> {
    let n = input.len();
    match op {
        UnOp::IsNull => {
            let vals: Vec<bool> = (0..n).map(|i| input.is_null(i)).collect();
            Ok(Column::Bool(vals, Bitmap::all_valid(n)))
        }
        UnOp::IsNotNull => {
            let vals: Vec<bool> = (0..n).map(|i| !input.is_null(i)).collect();
            Ok(Column::Bool(vals, Bitmap::all_valid(n)))
        }
        UnOp::Not => match input {
            Column::Bool(vals, validity) => Ok(Column::Bool(
                vals.iter().map(|b| !b).collect(),
                validity.clone(),
            )),
            other => Err(QueryError::InvalidExpression(format!(
                "NOT over {}",
                other.data_type()
            ))),
        },
        UnOp::Neg => match input {
            Column::Int64(vals, validity) => Ok(Column::Int64(
                vals.iter().map(|v| v.wrapping_neg()).collect(),
                validity.clone(),
            )),
            Column::Int64Encoded { data, validity } => Ok(Column::Int64(
                data.decode()
                    .into_iter()
                    .map(|v| v.wrapping_neg())
                    .collect(),
                validity.clone(),
            )),
            Column::Float64(vals, validity) => Ok(Column::Float64(
                vals.iter().map(|v| -v).collect(),
                validity.clone(),
            )),
            other => Err(QueryError::InvalidExpression(format!(
                "negation over {}",
                other.data_type()
            ))),
        },
    }
}

fn eval_binary(l: &Column, op: BinOp, r: &Column, sel: Option<&[u32]>) -> Result<Column> {
    if l.len() != r.len() {
        return Err(QueryError::InvalidExpression(format!(
            "operand length mismatch: {} vs {}",
            l.len(),
            r.len()
        )));
    }
    if op.is_logical() {
        return eval_logical(l, op, r, sel);
    }
    if op.is_comparison() {
        return eval_comparison(l, op, r, sel);
    }
    eval_arithmetic(l, op, r, sel)
}

/// Three-valued AND/OR per the SQL standard.
fn eval_logical(l: &Column, op: BinOp, r: &Column, sel: Option<&[u32]>) -> Result<Column> {
    let (lv, lb) = match l {
        Column::Bool(v, b) => (v, b),
        other => {
            return Err(QueryError::InvalidExpression(format!(
                "{op} over {}",
                other.data_type()
            )))
        }
    };
    let (rv, rb) = match r {
        Column::Bool(v, b) => (v, b),
        other => {
            return Err(QueryError::InvalidExpression(format!(
                "{op} over {}",
                other.data_type()
            )))
        }
    };
    let n = lv.len();
    let mut vals = vec![false; n];
    let mut validity = Bitmap::all_null(n);
    lanes!(sel, n, i => {
        let a = lb.get(i).then_some(lv[i]);
        let b = rb.get(i).then_some(rv[i]);
        let out = match op {
            BinOp::And => match (a, b) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            BinOp::Or => match (a, b) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
            _ => unreachable!(),
        };
        if let Some(v) = out {
            vals[i] = v;
            validity.set(i, true);
        }
    });
    Ok(Column::Bool(vals, validity))
}

fn eval_comparison(l: &Column, op: BinOp, r: &Column, sel: Option<&[u32]>) -> Result<Column> {
    use std::cmp::Ordering;
    let n = l.len();
    let keep = |ord: Ordering| -> bool {
        match op {
            BinOp::Eq => ord == Ordering::Equal,
            BinOp::NotEq => ord != Ordering::Equal,
            BinOp::Lt => ord == Ordering::Less,
            BinOp::LtEq => ord != Ordering::Greater,
            BinOp::Gt => ord == Ordering::Greater,
            BinOp::GtEq => ord != Ordering::Less,
            _ => unreachable!(),
        }
    };

    let mut vals = vec![false; n];
    let mut validity = Bitmap::all_null(n);

    // Fast paths for the hot numeric/string cases; generic fallback via Value.
    match (l, r) {
        (Column::Int64(lv, lb), Column::Int64(rv, rb)) => {
            lanes!(sel, n, i => {
                if lb.get(i) && rb.get(i) {
                    vals[i] = keep(lv[i].cmp(&rv[i]));
                    validity.set(i, true);
                }
            });
        }
        (Column::Float64(lv, lb), Column::Float64(rv, rb)) => {
            lanes!(sel, n, i => {
                if lb.get(i) && rb.get(i) {
                    if let Some(ord) = lv[i].partial_cmp(&rv[i]) {
                        vals[i] = keep(ord);
                        validity.set(i, true);
                    }
                }
            });
        }
        (Column::Int64(lv, lb), Column::Float64(rv, rb)) => {
            lanes!(sel, n, i => {
                if lb.get(i) && rb.get(i) {
                    if let Some(ord) = (lv[i] as f64).partial_cmp(&rv[i]) {
                        vals[i] = keep(ord);
                        validity.set(i, true);
                    }
                }
            });
        }
        (Column::Float64(lv, lb), Column::Int64(rv, rb)) => {
            lanes!(sel, n, i => {
                if lb.get(i) && rb.get(i) {
                    if let Some(ord) = lv[i].partial_cmp(&(rv[i] as f64)) {
                        vals[i] = keep(ord);
                        validity.set(i, true);
                    }
                }
            });
        }
        (Column::Utf8(lv, lb), Column::Utf8(rv, rb)) => {
            lanes!(sel, n, i => {
                if lb.get(i) && rb.get(i) {
                    vals[i] = keep(lv[i].cmp(&rv[i]));
                    validity.set(i, true);
                }
            });
        }
        (
            Column::Int64Encoded {
                data: ld,
                validity: lb,
            },
            Column::Int64(rv, rb),
        ) => {
            lanes!(sel, n, i => {
                if lb.get(i) && rb.get(i) {
                    vals[i] = keep(ld.get(i).cmp(&rv[i]));
                    validity.set(i, true);
                }
            });
        }
        (
            Column::Int64(lv, lb),
            Column::Int64Encoded {
                data: rd,
                validity: rb,
            },
        ) => {
            lanes!(sel, n, i => {
                if lb.get(i) && rb.get(i) {
                    vals[i] = keep(lv[i].cmp(&rd.get(i)));
                    validity.set(i, true);
                }
            });
        }
        (
            Column::Int64Encoded {
                data: ld,
                validity: lb,
            },
            Column::Int64Encoded {
                data: rd,
                validity: rb,
            },
        ) => {
            lanes!(sel, n, i => {
                if lb.get(i) && rb.get(i) {
                    vals[i] = keep(ld.get(i).cmp(&rd.get(i)));
                    validity.set(i, true);
                }
            });
        }
        (
            Column::Int64Encoded {
                data: ld,
                validity: lb,
            },
            Column::Float64(rv, rb),
        ) => {
            lanes!(sel, n, i => {
                if lb.get(i) && rb.get(i) {
                    if let Some(ord) = (ld.get(i) as f64).partial_cmp(&rv[i]) {
                        vals[i] = keep(ord);
                        validity.set(i, true);
                    }
                }
            });
        }
        (
            Column::Float64(lv, lb),
            Column::Int64Encoded {
                data: rd,
                validity: rb,
            },
        ) => {
            lanes!(sel, n, i => {
                if lb.get(i) && rb.get(i) {
                    if let Some(ord) = lv[i].partial_cmp(&(rd.get(i) as f64)) {
                        vals[i] = keep(ord);
                        validity.set(i, true);
                    }
                }
            });
        }
        (Column::Bool(lv, lb), Column::Bool(rv, rb)) => {
            lanes!(sel, n, i => {
                if lb.get(i) && rb.get(i) {
                    vals[i] = keep(lv[i].cmp(&rv[i]));
                    validity.set(i, true);
                }
            });
        }
        (
            Column::DictUtf8 {
                dict: ld,
                codes: lc,
                validity: lb,
            },
            Column::DictUtf8 {
                dict: rd,
                codes: rc,
                validity: rb,
            },
        ) => {
            if Arc::ptr_eq(ld, rd) && matches!(op, BinOp::Eq | BinOp::NotEq) {
                // Shared dictionary: equality is code equality — no string
                // comparisons at all.
                lanes!(sel, n, i => {
                    if lb.get(i) && rb.get(i) {
                        vals[i] = keep(lc[i].cmp(&rc[i]));
                        validity.set(i, true);
                    }
                });
            } else {
                kernel_metrics::record(|m| m.counter("op.eval.kernel.dict_fallback").add(1));
                lanes!(sel, n, i => {
                    if lb.get(i) && rb.get(i) {
                        vals[i] =
                            keep(ld[lc[i] as usize].as_str().cmp(rd[rc[i] as usize].as_str()));
                        validity.set(i, true);
                    }
                });
            }
        }
        (
            Column::DictUtf8 {
                dict: ld,
                codes: lc,
                validity: lb,
            },
            Column::Utf8(rv, rb),
        ) => {
            kernel_metrics::record(|m| m.counter("op.eval.kernel.dict_fallback").add(1));
            lanes!(sel, n, i => {
                if lb.get(i) && rb.get(i) {
                    vals[i] = keep(ld[lc[i] as usize].as_str().cmp(rv[i].as_str()));
                    validity.set(i, true);
                }
            });
        }
        (
            Column::Utf8(lv, lb),
            Column::DictUtf8 {
                dict: rd,
                codes: rc,
                validity: rb,
            },
        ) => {
            kernel_metrics::record(|m| m.counter("op.eval.kernel.dict_fallback").add(1));
            lanes!(sel, n, i => {
                if lb.get(i) && rb.get(i) {
                    vals[i] = keep(lv[i].as_str().cmp(rd[rc[i] as usize].as_str()));
                    validity.set(i, true);
                }
            });
        }
        _ => {
            return Err(QueryError::InvalidExpression(format!(
                "cannot compare {} with {}",
                l.data_type(),
                r.data_type()
            )))
        }
    }
    Ok(Column::Bool(vals, validity))
}

fn eval_arithmetic(l: &Column, op: BinOp, r: &Column, sel: Option<&[u32]>) -> Result<Column> {
    // Encoded integer inputs decode once and recurse: arithmetic writes a
    // fresh output vector per lane anyway, so there is no code-space win.
    if l.is_encoded() || r.is_encoded() {
        let ld = if l.is_encoded() { l.decoded() } else { None };
        let rd = if r.is_encoded() { r.decoded() } else { None };
        return eval_arithmetic(ld.as_ref().unwrap_or(l), op, rd.as_ref().unwrap_or(r), sel);
    }
    let n = l.len();
    match (l, r) {
        // Int op Int: stays integer, except Div which widens to float.
        (Column::Int64(lv, lb), Column::Int64(rv, rb)) if op != BinOp::Div => {
            let mut vals = vec![0i64; n];
            let mut validity = Bitmap::all_null(n);
            lanes!(sel, n, i => {
                if lb.get(i) && rb.get(i) {
                    let out = match op {
                        BinOp::Add => lv[i].checked_add(rv[i]),
                        BinOp::Sub => lv[i].checked_sub(rv[i]),
                        BinOp::Mul => lv[i].checked_mul(rv[i]),
                        BinOp::Mod => lv[i].checked_rem(rv[i]),
                        _ => unreachable!(),
                    };
                    match out {
                        Some(v) => {
                            vals[i] = v;
                            validity.set(i, true);
                        }
                        None => {
                            return Err(QueryError::Arithmetic(format!(
                                "integer overflow or zero modulus in {} {op} {}",
                                lv[i], rv[i]
                            )))
                        }
                    }
                }
            });
            Ok(Column::Int64(vals, validity))
        }
        // Everything else numeric: compute in f64.
        _ => {
            let (lv, lb) = to_f64_parts(l)?;
            let (rv, rb) = to_f64_parts(r)?;
            let mut vals = vec![0f64; n];
            let mut validity = Bitmap::all_null(n);
            lanes!(sel, n, i => {
                if lb.get(i) && rb.get(i) {
                    let a = lv.get_f64(i);
                    let b = rv.get_f64(i);
                    let v = match op {
                        BinOp::Add => a + b,
                        BinOp::Sub => a - b,
                        BinOp::Mul => a * b,
                        BinOp::Div => {
                            if b == 0.0 {
                                return Err(QueryError::Arithmetic("division by zero".into()));
                            }
                            a / b
                        }
                        BinOp::Mod => {
                            if b == 0.0 {
                                return Err(QueryError::Arithmetic("modulo by zero".into()));
                            }
                            a % b
                        }
                        _ => unreachable!(),
                    };
                    vals[i] = v;
                    validity.set(i, true);
                }
            });
            Ok(Column::Float64(vals, validity))
        }
    }
}

/// A numeric slice readable as `f64` without copying the column.
enum F64Lanes<'a> {
    F(&'a [f64]),
    I(&'a [i64]),
}

impl F64Lanes<'_> {
    #[inline]
    fn get_f64(&self, i: usize) -> f64 {
        match self {
            F64Lanes::F(v) => v[i],
            F64Lanes::I(v) => v[i] as f64,
        }
    }
}

fn to_f64_parts(c: &Column) -> Result<(F64Lanes<'_>, &Bitmap)> {
    match c {
        Column::Float64(v, b) => Ok((F64Lanes::F(v), b)),
        Column::Int64(v, b) => Ok((F64Lanes::I(v), b)),
        other => Err(QueryError::InvalidExpression(format!(
            "arithmetic over {}",
            other.data_type()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use backbone_storage::{DataType, Field, Schema};
    use std::sync::Arc;

    fn batch() -> RecordBatch {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::nullable("b", DataType::Int64),
            Field::new("f", DataType::Float64),
            Field::new("s", DataType::Utf8),
        ]);
        let cols = vec![
            Arc::new(Column::from_i64(vec![1, 2, 3, 4])),
            Arc::new(Column::from_opt_i64(vec![Some(10), None, Some(30), None])),
            Arc::new(Column::from_f64(vec![0.5, 1.5, 2.5, 3.5])),
            Arc::new(Column::from_strings(vec![
                "x".into(),
                "y".into(),
                "x".into(),
                "z".into(),
            ])),
        ];
        RecordBatch::try_new(schema, cols).unwrap()
    }

    #[test]
    fn column_and_literal() {
        let b = batch();
        let c = eval(&col("a"), &b).unwrap();
        assert_eq!(c.i64_data().unwrap(), &[1, 2, 3, 4]);
        let l = eval(&lit(7i64), &b).unwrap();
        assert_eq!(l.i64_data().unwrap(), &[7, 7, 7, 7]);
    }

    #[test]
    fn arithmetic_int() {
        let b = batch();
        let c = eval(&col("a").add(lit(10i64)).mul(lit(2i64)), &b).unwrap();
        assert_eq!(c.i64_data().unwrap(), &[22, 24, 26, 28]);
    }

    #[test]
    fn arithmetic_null_propagates() {
        let b = batch();
        let c = eval(&col("b").add(lit(1i64)), &b).unwrap();
        assert_eq!(c.value(0), Value::Int(11));
        assert!(c.is_null(1));
        assert!(c.is_null(3));
    }

    #[test]
    fn int_division_gives_float() {
        let b = batch();
        let c = eval(&col("a").div(lit(2i64)), &b).unwrap();
        assert_eq!(c.data_type(), DataType::Float64);
        assert_eq!(c.value(1), Value::Float(1.0));
        assert_eq!(c.value(2), Value::Float(1.5));
    }

    #[test]
    fn division_by_zero_errors() {
        let b = batch();
        assert!(matches!(
            eval(&col("a").div(lit(0i64)), &b),
            Err(QueryError::Arithmetic(_))
        ));
    }

    #[test]
    fn mixed_numeric_comparison() {
        let b = batch();
        let mask = eval_predicate(&col("a").gt(col("f")), &b).unwrap();
        assert_eq!(mask, vec![true, true, true, true]);
        let mask = eval_predicate(&col("f").gt(lit(2i64)), &b).unwrap();
        assert_eq!(mask, vec![false, false, true, true]);
    }

    #[test]
    fn string_comparison() {
        let b = batch();
        let mask = eval_predicate(&col("s").eq(lit("x")), &b).unwrap();
        assert_eq!(mask, vec![true, false, true, false]);
    }

    #[test]
    fn null_comparison_is_not_true() {
        let b = batch();
        // b is NULL on rows 1 and 3: comparisons with NULL are never TRUE.
        let mask = eval_predicate(&col("b").gt_eq(lit(0i64)), &b).unwrap();
        assert_eq!(mask, vec![true, false, true, false]);
    }

    #[test]
    fn three_valued_and_or() {
        let b = batch();
        // (b > 0) is NULL on rows 1,3. FALSE AND NULL = FALSE; TRUE OR NULL = TRUE.
        let and_mask =
            eval_predicate(&col("a").gt(lit(100i64)).and(col("b").gt(lit(0i64))), &b).unwrap();
        assert_eq!(and_mask, vec![false; 4]);
        let or_mask =
            eval_predicate(&col("a").gt(lit(0i64)).or(col("b").gt(lit(0i64))), &b).unwrap();
        assert_eq!(or_mask, vec![true; 4]);
        // NULL AND TRUE = NULL -> not kept by predicate semantics.
        let m = eval_predicate(&col("b").gt(lit(0i64)).and(col("a").gt(lit(0i64))), &b).unwrap();
        assert_eq!(m, vec![true, false, true, false]);
    }

    #[test]
    fn not_inverts_with_null_passthrough() {
        let b = batch();
        let m = eval_predicate(&col("b").gt(lit(0i64)).not(), &b).unwrap();
        // NOT NULL is still NULL -> excluded.
        assert_eq!(m, vec![false, false, false, false]);
    }

    #[test]
    fn is_null_predicates() {
        let b = batch();
        let m = eval_predicate(&col("b").is_null(), &b).unwrap();
        assert_eq!(m, vec![false, true, false, true]);
        let m = eval_predicate(&col("b").is_not_null(), &b).unwrap();
        assert_eq!(m, vec![true, false, true, false]);
    }

    #[test]
    fn negation() {
        let b = batch();
        let c = eval(&col("a").neg(), &b).unwrap();
        assert_eq!(c.i64_data().unwrap(), &[-1, -2, -3, -4]);
    }

    #[test]
    fn unknown_column_errors() {
        let b = batch();
        assert!(eval(&col("nope"), &b).is_err());
    }

    #[test]
    fn predicate_must_be_boolean() {
        let b = batch();
        assert!(eval_predicate(&col("a"), &b).is_err());
    }

    #[test]
    fn like_matching_semantics() {
        let b = batch();
        // s = ["x","y","x","z"]
        let m = eval_predicate(&col("s").like("x"), &b).unwrap();
        assert_eq!(m, vec![true, false, true, false]);
        let m = eval_predicate(&col("s").like("%"), &b).unwrap();
        assert_eq!(m, vec![true; 4]);
        let m = eval_predicate(&col("s").not_like("x"), &b).unwrap();
        assert_eq!(m, vec![false, true, false, true]);
        assert!(eval(&col("a").like("%"), &b).is_err());
    }

    /// One low-cardinality string column, dict-encoded, next to its plain
    /// twin — every dict kernel must agree with the plain path over it.
    fn dict_batch() -> RecordBatch {
        let strs = vec![
            Value::Str("ash".into()),
            Value::Str("birch".into()),
            Value::Null,
            Value::Str("ash".into()),
            Value::Str("cedar".into()),
            Value::Str("birch".into()),
        ];
        let plain = Column::from_values(DataType::Utf8, &strs).unwrap();
        let dict = plain.dict_encode().expect("string column encodes");
        assert!(dict.is_dict());
        let schema = Schema::new(vec![
            Field::nullable("d", DataType::Utf8),
            Field::nullable("p", DataType::Utf8),
        ]);
        RecordBatch::try_new(schema, vec![Arc::new(dict), Arc::new(plain)]).unwrap()
    }

    #[test]
    fn dict_compare_agrees_with_plain() {
        let b = dict_batch();
        type MakeExpr = fn(Expr) -> Expr;
        let cases: [(MakeExpr, &str); 4] = [
            (|c| c.eq(lit("birch")), "eq"),
            (|c| c.not_eq(lit("birch")), "neq"),
            (|c| c.lt(lit("birch")), "lt"),
            (|c| c.gt_eq(lit("birch")), "gte"),
        ];
        for (make, _name) in cases {
            let dm = eval_predicate(&make(col("d")), &b).unwrap();
            let pm = eval_predicate(&make(col("p")), &b).unwrap();
            assert_eq!(dm, pm);
        }
        // Flipped literal orientation takes the same fast path.
        let dm = eval_predicate(&lit("birch").lt(col("d")), &b).unwrap();
        let pm = eval_predicate(&lit("birch").lt(col("p")), &b).unwrap();
        assert_eq!(dm, pm);
    }

    #[test]
    fn dict_compare_records_kernel_metrics() {
        let b = dict_batch();
        let m = crate::Metrics::new();
        {
            let _g = kernel_metrics::install(Some(m.clone()));
            eval_predicate(&col("d").eq(lit("ash")), &b).unwrap();
            eval_predicate(&col("d").like("%ir%"), &b).unwrap();
        }
        assert_eq!(m.value("op.eval.kernel.dict_rows"), 12);
        assert_eq!(m.value("op.eval.kernel.dict_fallback"), 0);
    }

    #[test]
    fn dict_like_agrees_with_plain() {
        let b = dict_batch();
        for pat in ["ash", "%ir%", "b_rch", "%h", "c%r", "%"] {
            let dm = eval_predicate(&col("d").like(pat), &b).unwrap();
            let pm = eval_predicate(&col("p").like(pat), &b).unwrap();
            assert_eq!(dm, pm, "LIKE {pat}");
            let dm = eval_predicate(&col("d").not_like(pat), &b).unwrap();
            let pm = eval_predicate(&col("p").not_like(pat), &b).unwrap();
            assert_eq!(dm, pm, "NOT LIKE {pat}");
        }
    }

    /// One compressible Int64 column, encoded, next to its plain twin —
    /// every encoded kernel must agree with the plain path over it.
    fn encoded_batch() -> RecordBatch {
        let ints = vec![
            Some(3),
            Some(3),
            None,
            Some(7),
            Some(7),
            Some(7),
            Some(-2),
            None,
        ];
        let plain = Column::from_opt_i64(ints);
        let enc = plain.int64_encode().expect("int column encodes");
        assert!(enc.is_encoded());
        let schema = Schema::new(vec![
            Field::nullable("e", DataType::Int64),
            Field::nullable("p", DataType::Int64),
        ]);
        RecordBatch::try_new(schema, vec![Arc::new(enc), Arc::new(plain)]).unwrap()
    }

    #[test]
    fn encoded_compare_agrees_with_plain() {
        let b = encoded_batch();
        type MakeExpr = fn(Expr) -> Expr;
        let cases: [MakeExpr; 6] = [
            |c| c.eq(lit(7i64)),
            |c| c.not_eq(lit(7i64)),
            |c| c.lt(lit(3i64)),
            |c| c.lt_eq(lit(3i64)),
            |c| c.gt(lit(-2i64)),
            |c| c.gt_eq(lit(7.0)),
        ];
        for make in cases {
            let em = eval_predicate(&make(col("e")), &b).unwrap();
            let pm = eval_predicate(&make(col("p")), &b).unwrap();
            assert_eq!(em, pm);
        }
        // Flipped literal orientation takes the same fast path.
        let em = eval_predicate(&lit(3i64).lt(col("e")), &b).unwrap();
        let pm = eval_predicate(&lit(3i64).lt(col("p")), &b).unwrap();
        assert_eq!(em, pm);
        // Column-vs-column comparisons exercise the typed arms.
        let em = eval_predicate(&col("e").eq(col("p")), &b).unwrap();
        assert_eq!(em, vec![true, true, false, true, true, true, true, false]);
        let em = eval_predicate(&col("e").lt_eq(col("e")), &b).unwrap();
        let pm = eval_predicate(&col("p").lt_eq(col("p")), &b).unwrap();
        assert_eq!(em, pm);
    }

    #[test]
    fn encoded_compare_records_kernel_metrics() {
        let b = encoded_batch();
        let m = crate::Metrics::new();
        {
            let _g = kernel_metrics::install(Some(m.clone()));
            eval_predicate(&col("e").gt(lit(0i64)), &b).unwrap();
        }
        assert_eq!(m.value("op.eval.kernel.enc_rows"), 8);
    }

    #[test]
    fn encoded_arithmetic_and_misc_agree_with_plain() {
        let b = encoded_batch();
        let ec = eval(&col("e").add(lit(5i64)).mul(lit(2i64)), &b).unwrap();
        let pc = eval(&col("p").add(lit(5i64)).mul(lit(2i64)), &b).unwrap();
        for i in 0..b.num_rows() {
            assert_eq!(ec.value(i), pc.value(i), "arith row {i}");
        }
        let en = eval(&col("e").neg(), &b).unwrap();
        let pn = eval(&col("p").neg(), &b).unwrap();
        for i in 0..b.num_rows() {
            assert_eq!(en.value(i), pn.value(i), "neg row {i}");
        }
        let em = eval_predicate(&col("e").is_null(), &b).unwrap();
        let pm = eval_predicate(&col("p").is_null(), &b).unwrap();
        assert_eq!(em, pm);
        let em = eval_predicate(&col("e").in_list(vec![lit(3i64), lit(-2i64)]), &b).unwrap();
        let pm = eval_predicate(&col("p").in_list(vec![lit(3i64), lit(-2i64)]), &b).unwrap();
        assert_eq!(em, pm);
    }

    #[test]
    fn encoded_compare_respects_selection() {
        let b = encoded_batch();
        let sel = b.with_selection(Arc::new(vec![0, 3, 6])).unwrap();
        let em = eval_predicate(&col("e").gt(lit(0i64)), &sel).unwrap();
        let pm = eval_predicate(&col("p").gt(lit(0i64)), &sel).unwrap();
        assert_eq!(em, pm);
        assert_eq!(em, vec![true, true, false]);
    }

    #[test]
    fn in_list_semantics() {
        let b = batch();
        // a = [1,2,3,4]
        let m = eval_predicate(&col("a").in_list(vec![lit(1), lit(3)]), &b).unwrap();
        assert_eq!(m, vec![true, false, true, false]);
        let m = eval_predicate(&col("a").not_in_list(vec![lit(1), lit(3)]), &b).unwrap();
        assert_eq!(m, vec![false, true, false, true]);
        // NULL item: matches stay TRUE, non-matches become NULL (filtered).
        let m = eval_predicate(
            &col("a").in_list(vec![lit(1), Expr::Literal(Value::Null)]),
            &b,
        )
        .unwrap();
        assert_eq!(m, vec![true, false, false, false]);
        // NOT IN with a NULL item can never be TRUE.
        let m = eval_predicate(
            &col("a").not_in_list(vec![lit(1), Expr::Literal(Value::Null)]),
            &b,
        )
        .unwrap();
        assert_eq!(m, vec![false; 4]);
        // NULL probe rows are NULL.
        let m = eval_predicate(&col("b").in_list(vec![lit(10), lit(30)]), &b).unwrap();
        assert_eq!(m, vec![true, false, true, false]);
        // Empty list is vacuously FALSE; NOT IN () is TRUE.
        let m = eval_predicate(&col("a").not_in_list(vec![]), &b).unwrap();
        assert_eq!(m, vec![true; 4]);
    }

    #[test]
    fn dict_in_list_agrees_with_plain() {
        let b = dict_batch();
        let items = || vec![lit("ash"), lit("cedar")];
        let dm = eval_predicate(&col("d").in_list(items()), &b).unwrap();
        let pm = eval_predicate(&col("p").in_list(items()), &b).unwrap();
        assert_eq!(dm, pm);
        assert_eq!(dm, vec![true, false, false, true, true, false]);
        let dm = eval_predicate(&col("d").not_in_list(items()), &b).unwrap();
        let pm = eval_predicate(&col("p").not_in_list(items()), &b).unwrap();
        assert_eq!(dm, pm);
        // NULL list item: non-members become NULL, members stay TRUE.
        let with_null = || vec![lit("ash"), Expr::Literal(Value::Null)];
        let dm = eval_predicate(&col("d").in_list(with_null()), &b).unwrap();
        let pm = eval_predicate(&col("p").in_list(with_null()), &b).unwrap();
        assert_eq!(dm, pm);
        assert_eq!(dm, vec![true, false, false, true, false, false]);
    }

    /// Reference LIKE matcher: the classic greedy-with-backtracking
    /// two-pointer algorithm. Kept as a test oracle for the segmented
    /// production matcher.
    fn like_oracle(text: &[char], pat: &[char]) -> bool {
        let (mut t, mut p) = (0usize, 0usize);
        let mut star: Option<(usize, usize)> = None;
        while t < text.len() {
            if p < pat.len() && (pat[p] == '_' || pat[p] == text[t]) {
                t += 1;
                p += 1;
            } else if p < pat.len() && pat[p] == '%' {
                star = Some((p + 1, t));
                p += 1;
            } else if let Some((sp, st)) = star {
                p = sp;
                t = st + 1;
                star = Some((sp, st + 1));
            } else {
                return false;
            }
        }
        while p < pat.len() && pat[p] == '%' {
            p += 1;
        }
        p == pat.len()
    }

    #[test]
    fn like_match_wildcards() {
        let cases = [
            ("hello", "h%o", true),
            ("hello", "h_llo", true),
            ("hello", "h_lo", false),
            ("hello", "%ell%", true),
            ("hello", "", false),
            ("", "", true),
            ("", "%", true),
            ("abc", "a%b%c", true),
            ("abc", "%a", false),
            ("aaa", "a%a", true),
            ("a", "a%a", false),
            ("mississippi", "m%iss%pi", true),
            ("mississippi", "m%iss%pj", false),
            ("ab", "a%_b", false),
            ("axb", "a%_b", true),
        ];
        for (text, pat, want) in cases {
            let t: Vec<char> = text.chars().collect();
            let segs: Vec<Vec<char>> = pat.split('%').map(|s| s.chars().collect()).collect();
            assert_eq!(seg_match(&t, &segs), want, "{text} LIKE {pat}");
            let p: Vec<char> = pat.chars().collect();
            assert_eq!(like_oracle(&t, &p), want, "oracle: {text} LIKE {pat}");
        }
    }

    #[test]
    fn like_fast_paths_agree_with_generic() {
        // Every compiled class must match the oracle matcher's verdict.
        let texts = ["", "a", "ab", "abc", "hello", "aXb", "xx%yy", "aab", "abab"];
        let patterns = [
            "abc", "a%", "%c", "%b%", "%", "%%", "a%c", "_b_", "a_", "%_%", "ab%", "%ab", "",
            "a%_b", "a%b%", "%a%b", "_%_", "a__b",
        ];
        for pat in patterns {
            let compiled = LikePattern::compile(pat);
            let generic: Vec<char> = pat.chars().collect();
            let mut buf = Vec::new();
            for text in texts {
                let t: Vec<char> = text.chars().collect();
                assert_eq!(
                    compiled.matches(text, &mut buf),
                    like_oracle(&t, &generic),
                    "'{text}' LIKE '{pat}'"
                );
            }
        }
    }

    #[test]
    fn selected_batch_evaluates_only_lanes() {
        // Row 1 would divide by zero, but it is deselected — must not error.
        let schema = Schema::new(vec![
            Field::new("x", DataType::Int64),
            Field::new("d", DataType::Int64),
        ]);
        let cols = vec![
            Arc::new(Column::from_i64(vec![10, 20, 30])),
            Arc::new(Column::from_i64(vec![2, 0, 5])),
        ];
        let b = RecordBatch::try_new(schema, cols).unwrap();
        let sel = b.with_selection(Arc::new(vec![0, 2])).unwrap();
        let c = eval(&col("x").div(col("d")), &sel).unwrap();
        assert_eq!(c.value(0), Value::Float(5.0));
        assert_eq!(c.value(2), Value::Float(6.0));
        // Dense evaluation of the same expression must still error.
        assert!(eval(&col("x").div(col("d")), &b).is_err());
    }

    #[test]
    fn predicate_mask_is_logical_on_selected_batch() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int64)]);
        let cols = vec![Arc::new(Column::from_i64(vec![1, 2, 3, 4, 5]))];
        let b = RecordBatch::try_new(schema, cols).unwrap();
        let sel = b.with_selection(Arc::new(vec![1, 3, 4])).unwrap();
        let m = eval_predicate(&col("x").gt(lit(2i64)), &sel).unwrap();
        // Logical rows are x = [2, 4, 5].
        assert_eq!(m, vec![false, true, true]);
    }

    #[test]
    fn integer_overflow_detected() {
        let b = batch();
        assert!(matches!(
            eval(&col("a").mul(lit(i64::MAX)), &b),
            Err(QueryError::Arithmetic(_))
        ));
    }
}
