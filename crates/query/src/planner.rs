//! Lowers logical plans to physical operator trees.

use crate::catalog::Catalog;
use crate::error::{QueryError, Result};
use crate::executor::ExecOptions;
use crate::logical::LogicalPlan;
use crate::physical::{
    BudgetAccountant, FilterExec, HashAggregateExec, HashJoinExec, LimitExec, NestedLoopJoinExec,
    Operator, ParallelProfile, ProjectExec, SortExec, TableScanExec, TopKExec,
};
use crate::profile::{InstrumentedExec, OpStats, ProfileNode};
use std::sync::Arc;

/// Lower `plan` to a physical operator tree.
///
/// Physical choices made here — hash vs nested-loop join, top-k fusion,
/// parallel scans — are invisible to the logical plan: this function is the
/// boundary where "logical/physical independence" lives.
pub fn create_physical_plan(
    plan: &LogicalPlan,
    catalog: &dyn Catalog,
    opts: &ExecOptions,
) -> Result<Box<dyn Operator>> {
    let budget = opts.mem_budget.map(BudgetAccountant::new);
    Ok(build(plan, catalog, opts, budget.as_ref(), false)?.0)
}

/// Lower `plan` with every operator wrapped in an [`InstrumentedExec`],
/// returning the operator tree plus the matching [`ProfileNode`] tree whose
/// counters fill in as the plan runs (EXPLAIN ANALYZE).
pub fn create_instrumented_plan(
    plan: &LogicalPlan,
    catalog: &dyn Catalog,
    opts: &ExecOptions,
) -> Result<(Box<dyn Operator>, ProfileNode)> {
    let budget = opts.mem_budget.map(BudgetAccountant::new);
    let (op, node) = build(plan, catalog, opts, budget.as_ref(), true)?;
    Ok((op, node.expect("instrumented build returns a profile")))
}

/// One level of lowering. When `instrument` is set the returned operator is
/// wrapped and a profile node (with the children's profiles attached) is
/// returned alongside.
fn build(
    plan: &LogicalPlan,
    catalog: &dyn Catalog,
    opts: &ExecOptions,
    budget: Option<&Arc<BudgetAccountant>>,
    instrument: bool,
) -> Result<(Box<dyn Operator>, Option<ProfileNode>)> {
    let threads = opts.parallelism.worker_threads();
    // Parallel operators get a live counter block only when instrumenting:
    // EXPLAIN ANALYZE reads it, plain execution skips the bookkeeping.
    let new_pprof = || (instrument && threads > 0).then(ParallelProfile::default);
    let mut parallel: Option<ParallelProfile> = None;
    let (op, detail, children): (Box<dyn Operator>, String, Vec<Option<ProfileNode>>) = match plan {
        LogicalPlan::Scan {
            table,
            projection,
            filters,
            ..
        } => {
            let t = catalog
                .table(table)
                .ok_or_else(|| QueryError::TableNotFound(table.clone()))?;
            parallel = new_pprof();
            let op: Box<dyn Operator> = Box::new(
                TableScanExec::new(t, projection.clone(), filters.clone(), threads)?
                    .with_snapshot(opts.snapshot_epoch)
                    .with_batch_rows(opts.batch_rows)
                    .with_metrics(opts.metrics.clone())
                    .with_parallel_profile(parallel.clone()),
            );
            (op, table.clone(), vec![])
        }
        LogicalPlan::Filter { input, predicate } => {
            let (child, prof) = build(input, catalog, opts, budget, instrument)?;
            let op: Box<dyn Operator> = Box::new(FilterExec::new(child, predicate.clone()));
            (op, predicate.to_string(), vec![prof])
        }
        LogicalPlan::Project { input, exprs } => {
            let (child, prof) = build(input, catalog, opts, budget, instrument)?;
            let detail = exprs
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            let op: Box<dyn Operator> = Box::new(ProjectExec::new(child, exprs.clone())?);
            (op, detail, vec![prof])
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            join_type,
        } => {
            let (l, lprof) = build(left, catalog, opts, budget, instrument)?;
            let (r, rprof) = build(right, catalog, opts, budget, instrument)?;
            let detail = on
                .iter()
                .map(|(a, b)| format!("{a} = {b}"))
                .collect::<Vec<_>>()
                .join(", ");
            let op: Box<dyn Operator> = if on.is_empty() {
                // No equi-keys: fall back to a (cross) nested-loop join.
                if *join_type != crate::logical::JoinType::Inner {
                    return Err(QueryError::InvalidPlan(
                        "outer join requires equi-join keys".into(),
                    ));
                }
                Box::new(NestedLoopJoinExec::new(l, r, None))
            } else {
                parallel = new_pprof();
                Box::new(
                    HashJoinExec::new(l, r, on.clone(), *join_type)?
                        .with_metrics(opts.metrics.clone())
                        .with_workers(threads)
                        .with_budget(budget.cloned())
                        .with_parallel_profile(parallel.clone()),
                )
            };
            (op, detail, vec![lprof, rprof])
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let (child, prof) = build(input, catalog, opts, budget, instrument)?;
            let detail = format!("group=[{}]", group_by.len());
            parallel = new_pprof();
            let op: Box<dyn Operator> = Box::new(
                HashAggregateExec::new(child, group_by.clone(), aggs.clone())?
                    .with_metrics(opts.metrics.clone())
                    .with_workers(threads)
                    .with_budget(budget.cloned())
                    .with_parallel_profile(parallel.clone()),
            );
            (op, detail, vec![prof])
        }
        // Limit directly over Sort fuses into TopK: no full sort needed.
        LogicalPlan::Limit { input, n } => {
            if let LogicalPlan::Sort {
                input: sort_input,
                keys,
            } = input.as_ref()
            {
                let (child, prof) = build(sort_input, catalog, opts, budget, instrument)?;
                let pprof = new_pprof();
                let op: Box<dyn Operator> = Box::new(
                    TopKExec::new(child, keys.clone(), *n)
                        .with_metrics(opts.metrics.clone())
                        .with_workers(threads)
                        .with_parallel_profile(pprof.clone()),
                );
                return Ok(finish(
                    op,
                    format!("k={n}"),
                    vec![prof],
                    pprof,
                    opts,
                    instrument,
                ));
            }
            let (child, prof) = build(input, catalog, opts, budget, instrument)?;
            let op: Box<dyn Operator> = Box::new(LimitExec::new(child, *n));
            (op, format!("n={n}"), vec![prof])
        }
        LogicalPlan::Sort { input, keys } => {
            let (child, prof) = build(input, catalog, opts, budget, instrument)?;
            let detail = keys
                .iter()
                .map(|k| format!("{}{}", k.expr, if k.descending { " DESC" } else { "" }))
                .collect::<Vec<_>>()
                .join(", ");
            let op: Box<dyn Operator> = Box::new(SortExec::new(child, keys.clone()));
            (op, detail, vec![prof])
        }
    };
    Ok(finish(op, detail, children, parallel, opts, instrument))
}

/// Wrap a lowered operator when instrumenting, threading the children's
/// rows-out counters in so the wrapper can report rows-in deltas.
fn finish(
    op: Box<dyn Operator>,
    detail: String,
    children: Vec<Option<ProfileNode>>,
    parallel: Option<ParallelProfile>,
    opts: &ExecOptions,
    instrument: bool,
) -> (Box<dyn Operator>, Option<ProfileNode>) {
    if !instrument {
        return (op, None);
    }
    let children: Vec<ProfileNode> = children
        .into_iter()
        .map(|c| c.expect("instrumented children carry profiles"))
        .collect();
    let stats = OpStats::default();
    let child_rows = children.iter().map(|c| c.stats.rows_out.clone()).collect();
    let node = ProfileNode {
        name: op.name(),
        detail,
        stats: stats.clone(),
        parallel,
        children,
    };
    let wrapped = Box::new(InstrumentedExec::new(
        op,
        stats,
        opts.metrics.as_ref(),
        child_rows,
    ));
    (wrapped, Some(node))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::logical::asc;
    use crate::optimizer::test_fixtures::catalog;

    #[test]
    fn limit_sort_fuses_to_topk() {
        let cat = catalog();
        let plan = LogicalPlan::scan("big", &cat)
            .unwrap()
            .sort(vec![asc(col("big_v"))])
            .limit(5);
        let op = create_physical_plan(&plan, &cat, &ExecOptions::serial()).unwrap();
        assert_eq!(op.name(), "TopK");
    }

    #[test]
    fn sort_without_limit_stays_sort() {
        let cat = catalog();
        let plan = LogicalPlan::scan("big", &cat)
            .unwrap()
            .sort(vec![asc(col("big_v"))]);
        let op = create_physical_plan(&plan, &cat, &ExecOptions::serial()).unwrap();
        assert_eq!(op.name(), "Sort");
    }

    #[test]
    fn join_without_keys_becomes_nested_loop() {
        let cat = catalog();
        let plan = LogicalPlan::Join {
            left: Box::new(LogicalPlan::scan("small", &cat).unwrap()),
            right: Box::new(LogicalPlan::scan("small", &cat).unwrap()),
            on: vec![],
            join_type: crate::logical::JoinType::Inner,
        };
        let op = create_physical_plan(&plan, &cat, &ExecOptions::serial()).unwrap();
        assert_eq!(op.name(), "NestedLoopJoin");
    }

    #[test]
    fn missing_table_at_execution() {
        let cat = catalog();
        let plan = LogicalPlan::Scan {
            table: "ghost".into(),
            table_schema: backbone_storage::Schema::empty(),
            projection: None,
            filters: vec![],
        };
        assert!(matches!(
            create_physical_plan(&plan, &cat, &ExecOptions::serial()),
            Err(QueryError::TableNotFound(_))
        ));
    }

    #[test]
    fn filter_lowered() {
        let cat = catalog();
        let plan = LogicalPlan::scan("big", &cat)
            .unwrap()
            .filter(col("big_v").lt(lit(3i64)));
        let op = create_physical_plan(&plan, &cat, &ExecOptions::serial()).unwrap();
        assert_eq!(op.name(), "Filter");
    }
}
