//! Lowers logical plans to physical operator trees.

use crate::catalog::Catalog;
use crate::error::{QueryError, Result};
use crate::executor::ExecOptions;
use crate::logical::LogicalPlan;
use crate::physical::{
    FilterExec, HashAggregateExec, HashJoinExec, LimitExec, NestedLoopJoinExec, Operator,
    ProjectExec, SortExec, TableScanExec, TopKExec,
};

/// Lower `plan` to a physical operator tree.
///
/// Physical choices made here — hash vs nested-loop join, top-k fusion,
/// parallel scans — are invisible to the logical plan: this function is the
/// boundary where "logical/physical independence" lives.
pub fn create_physical_plan(
    plan: &LogicalPlan,
    catalog: &dyn Catalog,
    opts: &ExecOptions,
) -> Result<Box<dyn Operator>> {
    match plan {
        LogicalPlan::Scan {
            table,
            projection,
            filters,
            ..
        } => {
            let t = catalog
                .table(table)
                .ok_or_else(|| QueryError::TableNotFound(table.clone()))?;
            Ok(Box::new(TableScanExec::new(
                t,
                projection.clone(),
                filters.clone(),
                opts.parallelism,
            )?))
        }
        LogicalPlan::Filter { input, predicate } => {
            let child = create_physical_plan(input, catalog, opts)?;
            Ok(Box::new(FilterExec::new(child, predicate.clone())))
        }
        LogicalPlan::Project { input, exprs } => {
            let child = create_physical_plan(input, catalog, opts)?;
            Ok(Box::new(ProjectExec::new(child, exprs.clone())?))
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            join_type,
        } => {
            let l = create_physical_plan(left, catalog, opts)?;
            let r = create_physical_plan(right, catalog, opts)?;
            if on.is_empty() {
                // No equi-keys: fall back to a (cross) nested-loop join.
                if *join_type != crate::logical::JoinType::Inner {
                    return Err(QueryError::InvalidPlan(
                        "outer join requires equi-join keys".into(),
                    ));
                }
                Ok(Box::new(NestedLoopJoinExec::new(l, r, None)))
            } else {
                Ok(Box::new(HashJoinExec::new(l, r, on.clone(), *join_type)?))
            }
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let child = create_physical_plan(input, catalog, opts)?;
            Ok(Box::new(HashAggregateExec::new(
                child,
                group_by.clone(),
                aggs.clone(),
            )?))
        }
        // Limit directly over Sort fuses into TopK: no full sort needed.
        LogicalPlan::Limit { input, n } => {
            if let LogicalPlan::Sort {
                input: sort_input,
                keys,
            } = input.as_ref()
            {
                let child = create_physical_plan(sort_input, catalog, opts)?;
                return Ok(Box::new(TopKExec::new(child, keys.clone(), *n)));
            }
            let child = create_physical_plan(input, catalog, opts)?;
            Ok(Box::new(LimitExec::new(child, *n)))
        }
        LogicalPlan::Sort { input, keys } => {
            let child = create_physical_plan(input, catalog, opts)?;
            Ok(Box::new(SortExec::new(child, keys.clone())))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::logical::asc;
    use crate::optimizer::test_fixtures::catalog;

    #[test]
    fn limit_sort_fuses_to_topk() {
        let cat = catalog();
        let plan = LogicalPlan::scan("big", &cat)
            .unwrap()
            .sort(vec![asc(col("big_v"))])
            .limit(5);
        let op = create_physical_plan(&plan, &cat, &ExecOptions::default()).unwrap();
        assert_eq!(op.name(), "TopK");
    }

    #[test]
    fn sort_without_limit_stays_sort() {
        let cat = catalog();
        let plan = LogicalPlan::scan("big", &cat).unwrap().sort(vec![asc(col("big_v"))]);
        let op = create_physical_plan(&plan, &cat, &ExecOptions::default()).unwrap();
        assert_eq!(op.name(), "Sort");
    }

    #[test]
    fn join_without_keys_becomes_nested_loop() {
        let cat = catalog();
        let plan = LogicalPlan::Join {
            left: Box::new(LogicalPlan::scan("small", &cat).unwrap()),
            right: Box::new(LogicalPlan::scan("small", &cat).unwrap()),
            on: vec![],
            join_type: crate::logical::JoinType::Inner,
        };
        let op = create_physical_plan(&plan, &cat, &ExecOptions::default()).unwrap();
        assert_eq!(op.name(), "NestedLoopJoin");
    }

    #[test]
    fn missing_table_at_execution() {
        let cat = catalog();
        let plan = LogicalPlan::Scan {
            table: "ghost".into(),
            table_schema: backbone_storage::Schema::empty(),
            projection: None,
            filters: vec![],
        };
        assert!(matches!(
            create_physical_plan(&plan, &cat, &ExecOptions::default()),
            Err(QueryError::TableNotFound(_))
        ));
    }

    #[test]
    fn filter_lowered() {
        let cat = catalog();
        let plan = LogicalPlan::scan("big", &cat)
            .unwrap()
            .filter(col("big_v").lt(lit(3i64)));
        let op = create_physical_plan(&plan, &cat, &ExecOptions::default()).unwrap();
        assert_eq!(op.name(), "Filter");
    }
}
