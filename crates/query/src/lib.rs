//! # backbone-query
//!
//! The declarative query layer of `backbone` — the crate that turns the three
//! principles the paper credits to the database community into code:
//!
//! - **Declarativeness**: callers build a [`logical::LogicalPlan`] describing
//!   *what* they want ([`expr`] provides the expression algebra).
//! - **Logical/physical independence**: the [`optimizer`] rewrites logical
//!   plans (predicate pushdown, projection pruning, constant folding, join
//!   reordering) and the [`planner`] lowers them to interchangeable
//!   [`physical`] operators; the same logical query admits many physical
//!   executions.
//! - **Automatic scalability**: scans are morsel-parallel — the executor
//!   splits row groups across threads without any change to the query.

//!
//! Observability rides along: [`profile`] instruments physical operators
//! (per-operator rows/batches/time, the engine behind `EXPLAIN ANALYZE`) and
//! the shared [`Metrics`] counter registry — re-exported from
//! `backbone_storage` so one registry spans storage and query — accumulates
//! engine-truth totals.

pub mod catalog;
pub mod error;
pub mod eval;
pub mod executor;
pub mod expr;
pub mod kernel_metrics;
pub mod logical;
pub mod optimizer;
pub mod physical;
pub mod planner;
pub mod profile;
pub mod sql;
pub mod stats;

pub use catalog::{Catalog, MemCatalog};
pub use error::QueryError;
pub use executor::{
    execute, execute_optimized, execute_plan, explain_analyze, optimize_plan, ExecOptions,
    Parallelism,
};
pub use expr::{avg, col, count, count_star, lit, max, min, sum, AggExpr, BinOp, Expr, UnOp};
pub use logical::{JoinType, LogicalPlan, SortKey};
pub use optimizer::Optimizer;
pub use physical::pool;
pub use profile::{OpStats, ProfileNode};
pub use sql::{normalize, parse_select, parse_statement, Statement};

// One registry type spans every layer; see `backbone_storage::metrics`.
pub use backbone_storage::metrics::{Counter, Metrics};
