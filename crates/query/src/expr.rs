//! The expression algebra: how callers say *what* they want.

use crate::error::{QueryError, Result};
use backbone_storage::{DataType, Schema, Value};
use std::collections::BTreeSet;
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// Logical AND (three-valued).
    And,
    /// Logical OR (three-valued).
    Or,
}

impl BinOp {
    /// Whether this is a comparison producing a boolean.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }

    /// Whether this is `AND`/`OR`.
    pub fn is_logical(&self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// Whether this is arithmetic.
    pub fn is_arithmetic(&self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
        )
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Logical NOT (three-valued).
    Not,
    /// Numeric negation.
    Neg,
    /// `IS NULL`.
    IsNull,
    /// `IS NOT NULL`.
    IsNotNull,
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference by name.
    Column(String),
    /// A literal value.
    Literal(Value),
    /// A prepared-statement parameter placeholder (zero-based; `$1` is
    /// `Param(0)`). Substituted with a literal by [`Expr::bind_params`]
    /// before execution; evaluating an unbound parameter is an error.
    Param(usize),
    /// A binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Rename the result of an expression.
    Alias(Box<Expr>, String),
    /// SQL `LIKE` pattern match (`%` = any run, `_` = any one char).
    Like {
        /// The string expression to match.
        expr: Box<Expr>,
        /// The pattern.
        pattern: String,
        /// `NOT LIKE` when true.
        negated: bool,
    },
    /// SQL `IN (v1, v2, ...)` membership. Semantically equivalent to an
    /// OR-chain of equalities (same three-valued NULL behavior), but kept
    /// first-class so dictionary columns can evaluate membership once per
    /// distinct entry.
    InList {
        /// The probe expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// `NOT IN` when true.
        negated: bool,
    },
}

/// Reference a column by name.
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Column(name.into())
}

/// A literal value.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Literal(v.into())
}

macro_rules! binop_method {
    ($method:ident, $op:expr) => {
        /// Combine with another expression using this operator.
        pub fn $method(self, other: Expr) -> Expr {
            Expr::Binary {
                left: Box::new(self),
                op: $op,
                right: Box::new(other),
            }
        }
    };
}

#[allow(clippy::should_implement_trait)] // builder methods mirror SQL, not std ops
impl Expr {
    binop_method!(add, BinOp::Add);
    binop_method!(sub, BinOp::Sub);
    binop_method!(mul, BinOp::Mul);
    binop_method!(div, BinOp::Div);
    binop_method!(modulo, BinOp::Mod);
    binop_method!(eq, BinOp::Eq);
    binop_method!(not_eq, BinOp::NotEq);
    binop_method!(lt, BinOp::Lt);
    binop_method!(lt_eq, BinOp::LtEq);
    binop_method!(gt, BinOp::Gt);
    binop_method!(gt_eq, BinOp::GtEq);
    binop_method!(and, BinOp::And);
    binop_method!(or, BinOp::Or);

    /// Logical negation.
    pub fn not(self) -> Expr {
        Expr::Unary {
            op: UnOp::Not,
            expr: Box::new(self),
        }
    }

    /// Numeric negation.
    pub fn neg(self) -> Expr {
        Expr::Unary {
            op: UnOp::Neg,
            expr: Box::new(self),
        }
    }

    /// `IS NULL` predicate.
    pub fn is_null(self) -> Expr {
        Expr::Unary {
            op: UnOp::IsNull,
            expr: Box::new(self),
        }
    }

    /// `IS NOT NULL` predicate.
    pub fn is_not_null(self) -> Expr {
        Expr::Unary {
            op: UnOp::IsNotNull,
            expr: Box::new(self),
        }
    }

    /// `low <= self AND self <= high`.
    pub fn between(self, low: Expr, high: Expr) -> Expr {
        self.clone().gt_eq(low).and(self.lt_eq(high))
    }

    /// SQL `LIKE` (`%` matches any run, `_` any single character).
    pub fn like(self, pattern: impl Into<String>) -> Expr {
        Expr::Like {
            expr: Box::new(self),
            pattern: pattern.into(),
            negated: false,
        }
    }

    /// SQL `NOT LIKE`.
    pub fn not_like(self, pattern: impl Into<String>) -> Expr {
        Expr::Like {
            expr: Box::new(self),
            pattern: pattern.into(),
            negated: true,
        }
    }

    /// SQL `IN (...)` membership test.
    pub fn in_list(self, list: Vec<Expr>) -> Expr {
        Expr::InList {
            expr: Box::new(self),
            list,
            negated: false,
        }
    }

    /// SQL `NOT IN (...)`.
    pub fn not_in_list(self, list: Vec<Expr>) -> Expr {
        Expr::InList {
            expr: Box::new(self),
            list,
            negated: true,
        }
    }

    /// Rename this expression's output column.
    pub fn alias(self, name: impl Into<String>) -> Expr {
        Expr::Alias(Box::new(self), name.into())
    }

    /// The output column name this expression produces.
    pub fn output_name(&self) -> String {
        match self {
            Expr::Column(n) => n.clone(),
            Expr::Alias(_, n) => n.clone(),
            Expr::Literal(v) => v.to_string(),
            Expr::Param(i) => format!("${}", i + 1),
            Expr::Binary { left, op, right } => {
                format!("({} {op} {})", left.output_name(), right.output_name())
            }
            Expr::Unary { op, expr } => format!("{op:?}({})", expr.output_name()),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => format!(
                "({} {}LIKE '{pattern}')",
                expr.output_name(),
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList {
                expr,
                list,
                negated,
            } => format!(
                "({} {}IN ({}))",
                expr.output_name(),
                if *negated { "NOT " } else { "" },
                list.iter()
                    .map(|e| e.output_name())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        }
    }

    /// All column names this expression references.
    pub fn referenced_columns(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Column(n) => {
                out.insert(n.clone());
            }
            Expr::Literal(_) | Expr::Param(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Unary { expr, .. } => expr.collect_columns(out),
            Expr::Alias(expr, _) => expr.collect_columns(out),
            Expr::Like { expr, .. } => expr.collect_columns(out),
            Expr::InList { expr, list, .. } => {
                expr.collect_columns(out);
                for e in list {
                    e.collect_columns(out);
                }
            }
        }
    }

    /// Infer the output type against an input schema.
    pub fn data_type(&self, schema: &Schema) -> Result<DataType> {
        match self {
            Expr::Column(n) => Ok(schema
                .field_by_name(n)
                .map_err(|_| QueryError::InvalidExpression(format!("unknown column '{n}'")))?
                .data_type),
            Expr::Literal(v) => v.data_type().ok_or_else(|| {
                QueryError::InvalidExpression(
                    "untyped NULL literal; alias it via a typed column".into(),
                )
            }),
            Expr::Param(i) => Err(QueryError::InvalidExpression(format!(
                "parameter ${} is not bound",
                i + 1
            ))),
            Expr::Binary { left, op, right } => {
                if op.is_comparison() || op.is_logical() {
                    return Ok(DataType::Bool);
                }
                let lt = left.data_type(schema)?;
                let rt = right.data_type(schema)?;
                match (lt, rt) {
                    (DataType::Int64, DataType::Int64) => {
                        // Division always yields float to avoid surprising
                        // truncation in analytics.
                        if *op == BinOp::Div {
                            Ok(DataType::Float64)
                        } else {
                            Ok(DataType::Int64)
                        }
                    }
                    (DataType::Int64, DataType::Float64)
                    | (DataType::Float64, DataType::Int64)
                    | (DataType::Float64, DataType::Float64) => Ok(DataType::Float64),
                    (l, r) => Err(QueryError::InvalidExpression(format!(
                        "cannot apply {op} to {l} and {r}"
                    ))),
                }
            }
            Expr::Unary { op, expr } => match op {
                UnOp::Not => Ok(DataType::Bool),
                UnOp::IsNull | UnOp::IsNotNull => Ok(DataType::Bool),
                UnOp::Neg => expr.data_type(schema),
            },
            Expr::Alias(expr, _) => expr.data_type(schema),
            Expr::Like { expr, .. } => match expr.data_type(schema)? {
                DataType::Utf8 => Ok(DataType::Bool),
                other => Err(QueryError::InvalidExpression(format!("LIKE over {other}"))),
            },
            Expr::InList { expr, list, .. } => {
                let probe = expr.data_type(schema)?;
                for e in list {
                    let item = e.data_type(schema)?;
                    let compatible = item == probe
                        || matches!(
                            (probe, item),
                            (DataType::Int64, DataType::Float64)
                                | (DataType::Float64, DataType::Int64)
                        );
                    if !compatible {
                        return Err(QueryError::InvalidExpression(format!(
                            "IN list item of type {item} against {probe}"
                        )));
                    }
                }
                Ok(DataType::Bool)
            }
        }
    }

    /// Split a conjunction into its AND-ed parts (`a AND b AND c` → `[a,b,c]`).
    pub fn split_conjunction(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        self.split_into(&mut out);
        out
    }

    fn split_into<'a>(&'a self, out: &mut Vec<&'a Expr>) {
        match self {
            Expr::Binary {
                left,
                op: BinOp::And,
                right,
            } => {
                left.split_into(out);
                right.split_into(out);
            }
            other => out.push(other),
        }
    }

    /// Re-join predicates with AND. Returns `None` for an empty slice.
    pub fn conjunction(parts: Vec<Expr>) -> Option<Expr> {
        parts.into_iter().reduce(|acc, e| acc.and(e))
    }

    /// The number of parameter slots this expression needs: one past the
    /// highest `$n` placeholder, or 0 when the expression has none.
    pub fn param_count(&self) -> usize {
        match self {
            Expr::Param(i) => i + 1,
            Expr::Column(_) | Expr::Literal(_) => 0,
            Expr::Binary { left, right, .. } => left.param_count().max(right.param_count()),
            Expr::Unary { expr, .. } => expr.param_count(),
            Expr::Alias(expr, _) => expr.param_count(),
            Expr::Like { expr, .. } => expr.param_count(),
            Expr::InList { expr, list, .. } => list
                .iter()
                .map(Expr::param_count)
                .fold(expr.param_count(), usize::max),
        }
    }

    /// Substitute every `$n` placeholder with the matching literal from
    /// `params` (`$1` takes `params[0]`). Errors when a placeholder has no
    /// matching value.
    pub fn bind_params(&self, params: &[Value]) -> Result<Expr> {
        Ok(match self {
            Expr::Param(i) => match params.get(*i) {
                Some(v) => Expr::Literal(v.clone()),
                None => {
                    return Err(QueryError::InvalidExpression(format!(
                        "parameter ${} has no bound value ({} provided)",
                        i + 1,
                        params.len()
                    )))
                }
            },
            Expr::Column(_) | Expr::Literal(_) => self.clone(),
            Expr::Binary { left, op, right } => Expr::Binary {
                left: Box::new(left.bind_params(params)?),
                op: *op,
                right: Box::new(right.bind_params(params)?),
            },
            Expr::Unary { op, expr } => Expr::Unary {
                op: *op,
                expr: Box::new(expr.bind_params(params)?),
            },
            Expr::Alias(expr, name) => {
                Expr::Alias(Box::new(expr.bind_params(params)?), name.clone())
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(expr.bind_params(params)?),
                pattern: pattern.clone(),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(expr.bind_params(params)?),
                list: list
                    .iter()
                    .map(|e| e.bind_params(params))
                    .collect::<Result<Vec<_>>>()?,
                negated: *negated,
            },
        })
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(n) => write!(f, "{n}"),
            Expr::Literal(v) => match v {
                Value::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::Param(i) => write!(f, "${}", i + 1),
            Expr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
            Expr::Unary { op, expr } => match op {
                UnOp::Not => write!(f, "NOT {expr}"),
                UnOp::Neg => write!(f, "-{expr}"),
                UnOp::IsNull => write!(f, "{expr} IS NULL"),
                UnOp::IsNotNull => write!(f, "{expr} IS NOT NULL"),
            },
            Expr::Alias(expr, name) => write!(f, "{expr} AS {name}"),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "({expr} {}LIKE '{pattern}')",
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(expr)` — non-null rows.
    Count,
    /// `COUNT(*)` — all rows.
    CountStar,
    /// `SUM(expr)`.
    Sum,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `AVG(expr)`.
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::CountStar => "COUNT(*)",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        };
        write!(f, "{s}")
    }
}

/// An aggregate expression: a function over an input expression, plus an
/// output name.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// The aggregate function.
    pub func: AggFunc,
    /// Input expression (ignored for `COUNT(*)`).
    pub input: Expr,
    /// Output column name.
    pub name: String,
}

impl AggExpr {
    /// Rename the aggregate's output column.
    pub fn alias(mut self, name: impl Into<String>) -> AggExpr {
        self.name = name.into();
        self
    }

    /// The aggregate's output type against an input schema.
    pub fn data_type(&self, schema: &Schema) -> Result<DataType> {
        match self.func {
            AggFunc::Count | AggFunc::CountStar => Ok(DataType::Int64),
            AggFunc::Avg => Ok(DataType::Float64),
            AggFunc::Sum => match self.input.data_type(schema)? {
                DataType::Int64 => Ok(DataType::Int64),
                DataType::Float64 => Ok(DataType::Float64),
                other => Err(QueryError::InvalidExpression(format!("SUM over {other}"))),
            },
            AggFunc::Min | AggFunc::Max => self.input.data_type(schema),
        }
    }
}

impl fmt::Display for AggExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.func {
            AggFunc::CountStar => write!(f, "COUNT(*) AS {}", self.name),
            func => write!(f, "{func}({}) AS {}", self.input, self.name),
        }
    }
}

/// `SUM(expr)`.
pub fn sum(input: Expr) -> AggExpr {
    let name = format!("sum({})", input.output_name());
    AggExpr {
        func: AggFunc::Sum,
        input,
        name,
    }
}

/// `COUNT(expr)` over non-null rows.
pub fn count(input: Expr) -> AggExpr {
    let name = format!("count({})", input.output_name());
    AggExpr {
        func: AggFunc::Count,
        input,
        name,
    }
}

/// `COUNT(*)`.
pub fn count_star() -> AggExpr {
    AggExpr {
        func: AggFunc::CountStar,
        input: lit(1i64),
        name: "count(*)".to_string(),
    }
}

/// `MIN(expr)`.
pub fn min(input: Expr) -> AggExpr {
    let name = format!("min({})", input.output_name());
    AggExpr {
        func: AggFunc::Min,
        input,
        name,
    }
}

/// `MAX(expr)`.
pub fn max(input: Expr) -> AggExpr {
    let name = format!("max({})", input.output_name());
    AggExpr {
        func: AggFunc::Max,
        input,
        name,
    }
}

/// `AVG(expr)`.
pub fn avg(input: Expr) -> AggExpr {
    let name = format!("avg({})", input.output_name());
    AggExpr {
        func: AggFunc::Avg,
        input,
        name,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backbone_storage::Field;

    fn schema() -> std::sync::Arc<Schema> {
        Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Float64),
            Field::new("s", DataType::Utf8),
        ])
    }

    #[test]
    fn builder_shapes() {
        let e = col("a")
            .add(lit(1i64))
            .gt(lit(10i64))
            .and(col("s").eq(lit("x")));
        assert_eq!(e.to_string(), "(((a + 1) > 10) AND (s = 'x'))");
    }

    #[test]
    fn referenced_columns() {
        let e = col("a").add(col("b")).lt(col("a"));
        let cols = e.referenced_columns();
        assert_eq!(cols.into_iter().collect::<Vec<_>>(), vec!["a", "b"]);
    }

    #[test]
    fn type_inference() {
        let s = schema();
        assert_eq!(
            col("a").add(lit(1i64)).data_type(&s).unwrap(),
            DataType::Int64
        );
        assert_eq!(
            col("a").add(col("b")).data_type(&s).unwrap(),
            DataType::Float64
        );
        assert_eq!(
            col("a").div(lit(2i64)).data_type(&s).unwrap(),
            DataType::Float64
        );
        assert_eq!(
            col("a").lt(lit(3i64)).data_type(&s).unwrap(),
            DataType::Bool
        );
        assert!(col("s").add(lit(1i64)).data_type(&s).is_err());
        assert!(col("zzz").data_type(&s).is_err());
    }

    #[test]
    fn split_and_rejoin_conjunction() {
        let e = col("a")
            .gt(lit(1i64))
            .and(col("b").lt(lit(2i64)))
            .and(col("s").eq(lit("k")));
        let parts = e.split_conjunction();
        assert_eq!(parts.len(), 3);
        let rejoined = Expr::conjunction(parts.into_iter().cloned().collect()).unwrap();
        assert_eq!(rejoined, e);
    }

    #[test]
    fn between_desugars() {
        let e = col("a").between(lit(1i64), lit(5i64));
        assert_eq!(e.to_string(), "((a >= 1) AND (a <= 5))");
    }

    #[test]
    fn agg_output_types() {
        let s = schema();
        assert_eq!(sum(col("a")).data_type(&s).unwrap(), DataType::Int64);
        assert_eq!(sum(col("b")).data_type(&s).unwrap(), DataType::Float64);
        assert_eq!(avg(col("a")).data_type(&s).unwrap(), DataType::Float64);
        assert_eq!(count_star().data_type(&s).unwrap(), DataType::Int64);
        assert_eq!(min(col("s")).data_type(&s).unwrap(), DataType::Utf8);
        assert!(sum(col("s")).data_type(&s).is_err());
    }

    #[test]
    fn params_bind_and_count() {
        let e = col("a").eq(Expr::Param(0)).and(col("b").lt(Expr::Param(2)));
        assert_eq!(e.param_count(), 3);
        assert_eq!(e.to_string(), "((a = $1) AND (b < $3))");
        let bound = e
            .bind_params(&[Value::Int(7), Value::Int(0), Value::Float(1.5)])
            .unwrap();
        assert_eq!(bound.to_string(), "((a = 7) AND (b < 1.5))");
        assert_eq!(bound.param_count(), 0);
        // Too few values -> error; unbound params don't type-check.
        assert!(e.bind_params(&[Value::Int(7)]).is_err());
        assert!(Expr::Param(0).data_type(&schema()).is_err());
    }

    #[test]
    fn alias_changes_output_name() {
        let e = sum(col("a")).alias("total");
        assert_eq!(e.name, "total");
        let e2 = col("a").alias("x");
        assert_eq!(e2.output_name(), "x");
    }
}
