//! Product-catalog generator for the hybrid relational+vector+keyword
//! experiments (E3).

use backbone_storage::{DataType, Field, Schema, Table, Value};
use rand::prelude::*;

/// Product categories; each has an embedding centroid and a vocabulary.
pub const CATEGORIES: &[&str] = &["audio", "camera", "kitchen", "outdoor", "office", "gaming"];

const VOCAB: &[(&str, &[&str])] = &[
    (
        "audio",
        &[
            "headphone",
            "speaker",
            "bass",
            "wireless",
            "noise",
            "cancelling",
        ],
    ),
    (
        "camera",
        &["lens", "zoom", "sensor", "tripod", "aperture", "mirrorless"],
    ),
    (
        "kitchen",
        &["blender", "knife", "oven", "steel", "nonstick", "espresso"],
    ),
    (
        "outdoor",
        &[
            "tent",
            "hiking",
            "waterproof",
            "trail",
            "sleeping",
            "thermal",
        ],
    ),
    (
        "office",
        &[
            "ergonomic",
            "desk",
            "monitor",
            "keyboard",
            "mesh",
            "standing",
        ],
    ),
    (
        "gaming",
        &[
            "console",
            "controller",
            "rgb",
            "latency",
            "fps",
            "mechanical",
        ],
    ),
];

const FILLER: &[&str] = &[
    "premium",
    "quality",
    "durable",
    "lightweight",
    "portable",
    "compact",
    "professional",
    "classic",
    "modern",
    "versatile",
];

/// One generated product.
#[derive(Debug, Clone)]
pub struct Product {
    /// Product id (also the row/vector/document id everywhere).
    pub id: u64,
    /// Category name.
    pub category: &'static str,
    /// Price in currency units.
    pub price: f64,
    /// Rating in [1, 5].
    pub rating: f64,
    /// Stock flag.
    pub in_stock: bool,
    /// Description text.
    pub description: String,
    /// Embedding vector.
    pub embedding: Vec<f32>,
}

/// A generated catalog: products plus a relational table view.
#[derive(Debug)]
pub struct ProductCatalog {
    /// All products.
    pub products: Vec<Product>,
    /// Embedding dimensionality.
    pub dim: usize,
}

impl ProductCatalog {
    /// The relational table (`id, category, price, rating, in_stock`).
    pub fn to_table(&self) -> Table {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("category", DataType::Utf8),
            Field::new("price", DataType::Float64),
            Field::new("rating", DataType::Float64),
            Field::new("in_stock", DataType::Bool),
        ]);
        let mut t = Table::new(schema);
        for p in &self.products {
            t.append_row(vec![
                Value::Int(p.id as i64),
                Value::str(p.category),
                Value::Float(p.price),
                Value::Float(p.rating),
                Value::Bool(p.in_stock),
            ])
            .unwrap();
        }
        t.flush().unwrap();
        t
    }
}

/// Deterministically generate `n` products with `dim`-dimensional
/// embeddings. Embeddings cluster by category (centroid + noise), and
/// descriptions draw most words from the category vocabulary — so vector
/// similarity, keyword relevance, and the `category` column all correlate,
/// like a real catalog.
pub fn generate(n: usize, dim: usize, seed: u64) -> ProductCatalog {
    assert!(
        dim >= CATEGORIES.len(),
        "dim must be >= number of categories"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut products = Vec::with_capacity(n);
    for id in 0..n as u64 {
        let cat_idx = rng.gen_range(0..CATEGORIES.len());
        let category = CATEGORIES[cat_idx];
        // Centroid: one-hot on the category axis, scaled; noise elsewhere.
        let mut embedding = vec![0f32; dim];
        for e in embedding.iter_mut() {
            *e = rng.gen::<f32>() * 0.3;
        }
        embedding[cat_idx] += 1.0;

        let vocab = VOCAB[cat_idx].1;
        let words: Vec<&str> = (0..8)
            .map(|_| {
                if rng.gen::<f64>() < 0.7 {
                    vocab[rng.gen_range(0..vocab.len())]
                } else {
                    FILLER[rng.gen_range(0..FILLER.len())]
                }
            })
            .collect();
        let description = format!("{} {}", category, words.join(" "));

        products.push(Product {
            id,
            category,
            price: (rng.gen_range(500..50_000) as f64) / 100.0,
            rating: (rng.gen_range(10..=50) as f64) / 10.0,
            in_stock: rng.gen::<f64>() < 0.8,
            description,
            embedding,
        });
    }
    ProductCatalog { products, dim }
}

/// A hybrid query: "find k products like this vector, matching this keyword,
/// under this price".
#[derive(Debug, Clone)]
pub struct HybridQuery {
    /// Query embedding.
    pub embedding: Vec<f32>,
    /// Required keyword.
    pub keyword: String,
    /// Maximum price.
    pub max_price: f64,
    /// Result size.
    pub k: usize,
}

/// Generate `n` hybrid queries aimed at random categories.
pub fn generate_queries(
    n: usize,
    dim: usize,
    max_price: f64,
    k: usize,
    seed: u64,
) -> Vec<HybridQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let cat_idx = rng.gen_range(0..CATEGORIES.len());
            let mut embedding = vec![0f32; dim];
            for e in embedding.iter_mut() {
                *e = rng.gen::<f32>() * 0.3;
            }
            embedding[cat_idx] += 1.0;
            let vocab = VOCAB[cat_idx].1;
            HybridQuery {
                embedding,
                keyword: vocab[rng.gen_range(0..vocab.len())].to_string(),
                max_price,
                k,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let a = generate(100, 8, 3);
        let b = generate(100, 8, 3);
        assert_eq!(a.products.len(), 100);
        assert_eq!(a.products[5].description, b.products[5].description);
        assert_eq!(a.products[5].embedding, b.products[5].embedding);
    }

    #[test]
    fn embeddings_cluster_by_category() {
        let cat = generate(500, 8, 4);
        // The category axis must carry the largest component.
        for p in &cat.products {
            let cat_idx = CATEGORIES.iter().position(|&c| c == p.category).unwrap();
            let max_idx = p
                .embedding
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            assert_eq!(max_idx, cat_idx);
        }
    }

    #[test]
    fn descriptions_lean_on_category_vocab() {
        let cat = generate(200, 8, 5);
        let mut in_vocab = 0usize;
        let mut total = 0usize;
        for p in &cat.products {
            let cat_idx = CATEGORIES.iter().position(|&c| c == p.category).unwrap();
            let vocab = VOCAB[cat_idx].1;
            for w in p.description.split_whitespace().skip(1) {
                total += 1;
                if vocab.contains(&w) {
                    in_vocab += 1;
                }
            }
        }
        assert!(in_vocab as f64 / total as f64 > 0.5);
    }

    #[test]
    fn table_view_matches() {
        let cat = generate(50, 8, 6);
        let t = cat.to_table();
        assert_eq!(t.num_rows(), 50);
        assert_eq!(t.schema().len(), 5);
    }

    #[test]
    fn queries_target_categories() {
        let qs = generate_queries(20, 8, 100.0, 5, 7);
        assert_eq!(qs.len(), 20);
        for q in &qs {
            assert_eq!(q.embedding.len(), 8);
            assert!(!q.keyword.is_empty());
        }
    }
}
