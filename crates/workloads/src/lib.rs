//! # backbone-workloads
//!
//! Synthetic workload generators for every experiment in EXPERIMENTS.md:
//!
//! - [`tpch`]: a TPC-H-*like* schema and data generator (E1, E6). The
//!   substitution from real dbgen data is documented in DESIGN.md: value
//!   distributions are synthetic but selectivities and join fan-outs match
//!   the spec's shape.
//! - [`queries`]: TPC-H-like analytical queries Q1/Q3/Q5/Q6 as logical
//!   plans.
//! - [`orm`]: the ORM N+1 anti-pattern vs a set-oriented join (E2).
//! - [`hybrid`]: a product catalog with relational attributes, description
//!   text, and embedding vectors (E3).
//! - [`disciplines`]: a generator + classifier for the paper's Figure 1
//!   taxonomy of multi/inter/cross/trans-disciplinary research (E7).

pub mod disciplines;
pub mod hybrid;
pub mod orm;
pub mod queries;
pub mod tpch;
