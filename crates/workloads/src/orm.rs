//! The ORM N+1 anti-pattern vs one set-oriented join (E2).
//!
//! The panel: *"many performance problems are due to the ORM and never arise
//! at the DBMS."* This module plays the ORM: it fetches a list of orders,
//! then issues one point query per order for its customer — N+1 round trips
//! — and compares against the single join a database would run.

use backbone_query::{col, lit, Catalog, ExecOptions, LogicalPlan, QueryError};
use backbone_storage::Value;

/// Result rows: `(order key, total price, customer name)`.
pub type OrderWithCustomer = (i64, f64, String);

/// The ORM way: query orders, then one query per order for the customer.
/// Returns the rows plus the number of queries issued.
pub fn n_plus_one(
    catalog: &dyn Catalog,
    max_orders: usize,
) -> Result<(Vec<OrderWithCustomer>, usize), QueryError> {
    let opts = ExecOptions::default();
    let mut queries = 0usize;

    let orders = backbone_query::execute(
        LogicalPlan::scan("orders", catalog)?
            .project(vec![
                col("o_orderkey"),
                col("o_custkey"),
                col("o_totalprice"),
            ])
            .limit(max_orders),
        catalog,
        &opts,
    )?;
    queries += 1;

    let mut out = Vec::with_capacity(orders.num_rows());
    for i in 0..orders.num_rows() {
        let orderkey = orders.column(0).value(i).as_int().unwrap_or(0);
        let custkey = orders.column(1).value(i).as_int().unwrap_or(0);
        let total = orders.column(2).value(i).as_float().unwrap_or(0.0);
        // The N+1 part: a fresh point query per row.
        let customer = backbone_query::execute(
            LogicalPlan::scan("customer", catalog)?
                .filter(col("c_custkey").eq(lit(custkey)))
                .project(vec![col("c_name")]),
            catalog,
            &opts,
        )?;
        queries += 1;
        let name = match customer.num_rows() {
            0 => String::new(),
            _ => customer.column(0).value(0).to_string(),
        };
        out.push((orderkey, total, name));
    }
    Ok((out, queries))
}

/// The database way: one join.
pub fn set_oriented(
    catalog: &dyn Catalog,
    max_orders: usize,
) -> Result<(Vec<OrderWithCustomer>, usize), QueryError> {
    let plan = LogicalPlan::scan("orders", catalog)?
        .project(vec![
            col("o_orderkey"),
            col("o_custkey"),
            col("o_totalprice"),
        ])
        .limit(max_orders)
        .join_on(
            LogicalPlan::scan("customer", catalog)?,
            vec![("o_custkey", "c_custkey")],
        )
        .project(vec![col("o_orderkey"), col("o_totalprice"), col("c_name")]);
    let batch = backbone_query::execute(plan, catalog, &ExecOptions::default())?;
    let mut out = Vec::with_capacity(batch.num_rows());
    for i in 0..batch.num_rows() {
        let row = batch.row(i);
        let name = match &row[2] {
            Value::Str(s) => s.to_string(),
            _ => String::new(),
        };
        out.push((
            row[0].as_int().unwrap_or(0),
            row[1].as_float().unwrap_or(0.0),
            name,
        ));
    }
    Ok((out, 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::generate;

    #[test]
    fn both_paths_return_same_rows() {
        let cat = generate(0.001, 5);
        let (mut a, qa) = n_plus_one(&cat, 50).unwrap();
        let (mut b, qb) = set_oriented(&cat, 50).unwrap();
        a.sort_by_key(|x| x.0);
        b.sort_by_key(|x| x.0);
        assert_eq!(a.len(), 50);
        // Compare keys and names; floats bitwise-equal since same source.
        assert_eq!(a, b);
        assert_eq!(qa, 51, "N+1 must issue N+1 queries");
        assert_eq!(qb, 1);
    }

    #[test]
    fn handles_more_orders_than_exist() {
        let cat = generate(0.0005, 6);
        let total = cat.table("orders").unwrap().num_rows();
        let (rows, _) = n_plus_one(&cat, total + 100).unwrap();
        assert_eq!(rows.len(), total);
    }
}
