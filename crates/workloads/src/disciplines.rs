//! The paper's Figure 1: multi-, inter-, cross-, and trans-disciplinary
//! research, as an executable taxonomy (E7).
//!
//! The figure is definitional, so the reproduction is: (a) a generator that
//! instantiates collaboration projects according to each definition, and
//! (b) a structural classifier that recovers the mode from the
//! collaboration graph alone. EXPERIMENTS.md reports the resulting
//! confusion matrix.

use rand::prelude::*;

/// The four collaboration modes of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Disciplines work in parallel on a common goal without crossing
    /// boundaries.
    Multi,
    /// Boundaries are crossed; approaches are pooled and modified.
    Inter,
    /// One discipline is viewed through another's perspective (methods
    /// borrowed, people mostly from one side).
    Cross,
    /// Researchers, practitioners, and policy makers collaborate on a
    /// real-world problem.
    Trans,
}

impl Mode {
    /// All modes.
    pub fn all() -> [Mode; 4] {
        [Mode::Multi, Mode::Inter, Mode::Cross, Mode::Trans]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Mode::Multi => "multi",
            Mode::Inter => "inter",
            Mode::Cross => "cross",
            Mode::Trans => "trans",
        }
    }
}

/// A project member: an academic in a discipline, or a practitioner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Member {
    /// Academic with a discipline id.
    Academic(usize),
    /// Practitioner / policy maker / community stakeholder.
    Practitioner,
}

/// A collaboration project.
#[derive(Debug, Clone)]
pub struct Project {
    /// Members.
    pub members: Vec<Member>,
    /// Active collaboration edges (indices into `members`) — pairs that
    /// integrate their approaches, not mere co-presence.
    pub collaborations: Vec<(usize, usize)>,
    /// Methods borrowed across disciplines: `(from_discipline, to_discipline)`.
    pub borrowed_methods: Vec<(usize, usize)>,
    /// Ground-truth mode (generator label).
    pub label: Mode,
}

/// Generate one project of the given mode.
pub fn generate_project(mode: Mode, disciplines: usize, rng: &mut StdRng) -> Project {
    assert!(disciplines >= 2);
    let d1 = rng.gen_range(0..disciplines);
    let mut d2 = rng.gen_range(0..disciplines);
    while d2 == d1 {
        d2 = rng.gen_range(0..disciplines);
    }
    let team = |d: usize, n: usize| -> Vec<Member> { vec![Member::Academic(d); n] };

    match mode {
        Mode::Multi => {
            // Two disciplinary subteams working in parallel: collaborations
            // only within a discipline.
            let n1 = rng.gen_range(2..=4);
            let n2 = rng.gen_range(2..=4);
            let mut members = team(d1, n1);
            members.extend(team(d2, n2));
            let mut collaborations = Vec::new();
            for i in 0..n1 {
                for j in (i + 1)..n1 {
                    collaborations.push((i, j));
                }
            }
            for i in 0..n2 {
                for j in (i + 1)..n2 {
                    collaborations.push((n1 + i, n1 + j));
                }
            }
            Project {
                members,
                collaborations,
                borrowed_methods: Vec::new(),
                label: mode,
            }
        }
        Mode::Inter => {
            // Mixed team with cross-discipline collaboration and mutual
            // method exchange.
            let n1 = rng.gen_range(2..=3);
            let n2 = rng.gen_range(2..=3);
            let mut members = team(d1, n1);
            members.extend(team(d2, n2));
            let mut collaborations = Vec::new();
            for i in 0..n1 {
                for j in 0..n2 {
                    if rng.gen::<f64>() < 0.8 {
                        collaborations.push((i, n1 + j));
                    }
                }
            }
            collaborations.push((0, n1)); // at least one crossing edge
            Project {
                members,
                collaborations,
                borrowed_methods: vec![(d1, d2), (d2, d1)],
                label: mode,
            }
        }
        Mode::Cross => {
            // A single-discipline team borrowing another field's
            // perspective: methods flow one way, no outside members.
            let n1 = rng.gen_range(3..=5);
            let members = team(d1, n1);
            let mut collaborations = Vec::new();
            for i in 0..n1 {
                for j in (i + 1)..n1 {
                    collaborations.push((i, j));
                }
            }
            Project {
                members,
                collaborations,
                borrowed_methods: vec![(d2, d1)],
                label: mode,
            }
        }
        Mode::Trans => {
            // Academics plus practitioners, all blended.
            let n1 = rng.gen_range(2..=3);
            let np = rng.gen_range(1..=2);
            let mut members = team(d1, n1);
            members.extend(team(d2, 1));
            members.extend(vec![Member::Practitioner; np]);
            let total = members.len();
            let mut collaborations = Vec::new();
            for i in 0..total {
                for j in (i + 1)..total {
                    if rng.gen::<f64>() < 0.7 {
                        collaborations.push((i, j));
                    }
                }
            }
            collaborations.push((0, total - 1)); // academic-practitioner edge
            Project {
                members,
                collaborations,
                borrowed_methods: vec![(d1, d2), (d2, d1)],
                label: mode,
            }
        }
    }
}

/// Generate a corpus with `per_mode` projects of each mode.
pub fn generate_corpus(per_mode: usize, disciplines: usize, seed: u64) -> Vec<Project> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(per_mode * 4);
    for mode in Mode::all() {
        for _ in 0..per_mode {
            out.push(generate_project(mode, disciplines, &mut rng));
        }
    }
    out.shuffle(&mut rng);
    out
}

/// Classify a project from structure alone, mirroring the figure's
/// definitions:
///
/// 1. practitioners involved → **trans** ("transcends academic and work
///    realms"),
/// 2. cross-discipline collaboration edges → **inter** ("boundaries ...
///    are crossed"),
/// 3. borrowed methods without mixed teams → **cross** ("perspectives and
///    methods borrowed from other disciplines"),
/// 4. otherwise → **multi** ("working in parallel ... following their
///    individual disciplinary precepts").
pub fn classify(p: &Project) -> Mode {
    let has_practitioner = p.members.iter().any(|m| matches!(m, Member::Practitioner));
    if has_practitioner {
        return Mode::Trans;
    }
    let crossing =
        p.collaborations
            .iter()
            .any(|&(a, b)| match (p.members.get(a), p.members.get(b)) {
                (Some(Member::Academic(x)), Some(Member::Academic(y))) => x != y,
                _ => false,
            });
    if crossing {
        return Mode::Inter;
    }
    if !p.borrowed_methods.is_empty() {
        return Mode::Cross;
    }
    Mode::Multi
}

/// A 4×4 confusion matrix: `matrix[truth][predicted]`.
#[derive(Debug, Clone, Default)]
pub struct Confusion {
    /// Counts indexed by `[truth][predicted]` in `Mode::all()` order.
    pub matrix: [[usize; 4]; 4],
}

impl Confusion {
    /// Classify a corpus and tally.
    pub fn evaluate(projects: &[Project]) -> Confusion {
        let idx = |m: Mode| Mode::all().iter().position(|&x| x == m).unwrap();
        let mut c = Confusion::default();
        for p in projects {
            c.matrix[idx(p.label)][idx(classify(p))] += 1;
        }
        c
    }

    /// Fraction classified correctly.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..4).map(|i| self.matrix[i][i]).sum();
        let total: usize = self.matrix.iter().flatten().sum();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_structures_match_definitions() {
        let mut rng = StdRng::seed_from_u64(1);
        let multi = generate_project(Mode::Multi, 5, &mut rng);
        assert!(multi.borrowed_methods.is_empty());
        let trans = generate_project(Mode::Trans, 5, &mut rng);
        assert!(trans
            .members
            .iter()
            .any(|m| matches!(m, Member::Practitioner)));
        let cross = generate_project(Mode::Cross, 5, &mut rng);
        assert_eq!(cross.borrowed_methods.len(), 1);
    }

    #[test]
    fn classifier_recovers_labels_perfectly_on_clean_data() {
        let corpus = generate_corpus(50, 6, 42);
        let c = Confusion::evaluate(&corpus);
        assert_eq!(c.accuracy(), 1.0, "confusion: {:?}", c.matrix);
    }

    #[test]
    fn confusion_diagonal_counts() {
        let corpus = generate_corpus(10, 4, 7);
        let c = Confusion::evaluate(&corpus);
        for i in 0..4 {
            assert_eq!(c.matrix[i][i], 10);
        }
    }

    #[test]
    fn classify_edge_cases() {
        // Single-discipline, no borrowing: multi (degenerate).
        let p = Project {
            members: vec![Member::Academic(0), Member::Academic(0)],
            collaborations: vec![(0, 1)],
            borrowed_methods: vec![],
            label: Mode::Multi,
        };
        assert_eq!(classify(&p), Mode::Multi);
        // One practitioner trumps everything.
        let p = Project {
            members: vec![Member::Academic(0), Member::Practitioner],
            collaborations: vec![],
            borrowed_methods: vec![(0, 1)],
            label: Mode::Trans,
        };
        assert_eq!(classify(&p), Mode::Trans);
    }

    #[test]
    fn corpus_is_shuffled_and_complete() {
        let corpus = generate_corpus(5, 3, 9);
        assert_eq!(corpus.len(), 20);
        for mode in Mode::all() {
            assert_eq!(corpus.iter().filter(|p| p.label == mode).count(), 5);
        }
    }
}
