//! TPC-H-like data generation.
//!
//! Same schema shape and cardinality ratios as TPC-H, deterministic
//! synthetic value distributions (dbgen's text pools are not available
//! offline). Dates are integer day offsets from 1992-01-01; the classic
//! 7-year window spans days `0..=2405`.

use backbone_query::MemCatalog;
use backbone_storage::{DataType, Field, Schema, Table, Value};
use rand::prelude::*;

/// Day offset of 1998-12-01 minus 90 days — Q1's classic cutoff.
pub const Q1_CUTOFF_DAY: i64 = 2406 - 120;
/// Total days in the order-date window.
pub const DATE_DAYS: i64 = 2406;

/// Market segments (TPC-H has 5).
pub const SEGMENTS: &[&str] = &[
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];
/// Region names.
pub const REGIONS: &[&str] = &["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDEAST"];
/// Return flags.
pub const RETURN_FLAGS: &[&str] = &["A", "N", "R"];
/// Line statuses.
pub const LINE_STATUSES: &[&str] = &["F", "O"];

/// Row counts at a given scale factor (TPC-H ratios, fractional SF allowed).
#[derive(Debug, Clone, Copy)]
pub struct TpchSizes {
    /// `supplier` rows.
    pub supplier: usize,
    /// `customer` rows.
    pub customer: usize,
    /// `part` rows.
    pub part: usize,
    /// `orders` rows.
    pub orders: usize,
    /// Expected `lineitem` rows (actual count varies ±, avg 4 lines/order).
    pub lineitem_approx: usize,
}

impl TpchSizes {
    /// Sizes at scale factor `sf`.
    pub fn at(sf: f64) -> TpchSizes {
        let n = |base: f64| ((base * sf).round() as usize).max(1);
        TpchSizes {
            supplier: n(10_000.0),
            customer: n(150_000.0),
            part: n(200_000.0),
            orders: n(1_500_000.0),
            lineitem_approx: n(6_000_000.0),
        }
    }
}

/// Generate all eight tables at scale factor `sf` into a fresh catalog.
///
/// Deterministic for a given `(sf, seed)`.
pub fn generate(sf: f64, seed: u64) -> MemCatalog {
    let sizes = TpchSizes::at(sf);
    let mut rng = StdRng::seed_from_u64(seed);
    let catalog = MemCatalog::new();

    // region
    let region_schema = Schema::new(vec![
        Field::new("r_regionkey", DataType::Int64),
        Field::new("r_name", DataType::Utf8),
    ]);
    let mut region = Table::new(region_schema);
    for (i, name) in REGIONS.iter().enumerate() {
        region
            .append_row(vec![Value::Int(i as i64), Value::str(*name)])
            .unwrap();
    }
    catalog.register("region", region);

    // nation: 25 nations, 5 per region.
    let nation_schema = Schema::new(vec![
        Field::new("n_nationkey", DataType::Int64),
        Field::new("n_name", DataType::Utf8),
        Field::new("n_regionkey", DataType::Int64),
    ]);
    let mut nation = Table::new(nation_schema);
    for i in 0..25i64 {
        nation
            .append_row(vec![
                Value::Int(i),
                Value::str(format!("NATION_{i:02}")),
                Value::Int(i % 5),
            ])
            .unwrap();
    }
    catalog.register("nation", nation);

    // supplier
    let supplier_schema = Schema::new(vec![
        Field::new("s_suppkey", DataType::Int64),
        Field::new("s_name", DataType::Utf8),
        Field::new("s_nationkey", DataType::Int64),
        Field::new("s_acctbal", DataType::Float64),
    ]);
    let mut supplier = Table::new(supplier_schema);
    for i in 0..sizes.supplier as i64 {
        supplier
            .append_row(vec![
                Value::Int(i),
                Value::str(format!("Supplier#{i:09}")),
                Value::Int(rng.gen_range(0..25)),
                Value::Float((rng.gen_range(-99_999..1_000_000) as f64) / 100.0),
            ])
            .unwrap();
    }
    catalog.register("supplier", supplier);

    // part
    let part_schema = Schema::new(vec![
        Field::new("p_partkey", DataType::Int64),
        Field::new("p_name", DataType::Utf8),
        Field::new("p_retailprice", DataType::Float64),
        Field::new("p_size", DataType::Int64),
    ]);
    let mut part = Table::new(part_schema);
    for i in 0..sizes.part as i64 {
        part.append_row(vec![
            Value::Int(i),
            Value::str(format!("part {} {}", COLORS[i as usize % COLORS.len()], i)),
            Value::Float(900.0 + (i % 1000) as f64 / 10.0),
            Value::Int(rng.gen_range(1..=50)),
        ])
        .unwrap();
    }
    catalog.register("part", part);

    // customer
    let customer_schema = Schema::new(vec![
        Field::new("c_custkey", DataType::Int64),
        Field::new("c_name", DataType::Utf8),
        Field::new("c_nationkey", DataType::Int64),
        Field::new("c_acctbal", DataType::Float64),
        Field::new("c_mktsegment", DataType::Utf8),
    ]);
    let mut customer = Table::new(customer_schema);
    for i in 0..sizes.customer as i64 {
        customer
            .append_row(vec![
                Value::Int(i),
                Value::str(format!("Customer#{i:09}")),
                Value::Int(rng.gen_range(0..25)),
                Value::Float((rng.gen_range(-99_999..1_000_000) as f64) / 100.0),
                Value::str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
            ])
            .unwrap();
    }
    catalog.register("customer", customer);

    // orders + lineitem
    let orders_schema = Schema::new(vec![
        Field::new("o_orderkey", DataType::Int64),
        Field::new("o_custkey", DataType::Int64),
        Field::new("o_orderdate", DataType::Int64),
        Field::new("o_totalprice", DataType::Float64),
        Field::new("o_orderstatus", DataType::Utf8),
        Field::new("o_shippriority", DataType::Int64),
    ]);
    let lineitem_schema = Schema::new(vec![
        Field::new("l_orderkey", DataType::Int64),
        Field::new("l_partkey", DataType::Int64),
        Field::new("l_suppkey", DataType::Int64),
        Field::new("l_linenumber", DataType::Int64),
        Field::new("l_quantity", DataType::Float64),
        Field::new("l_extendedprice", DataType::Float64),
        Field::new("l_discount", DataType::Float64),
        Field::new("l_tax", DataType::Float64),
        Field::new("l_returnflag", DataType::Utf8),
        Field::new("l_linestatus", DataType::Utf8),
        Field::new("l_shipdate", DataType::Int64),
    ]);
    let mut orders = Table::new(orders_schema);
    let mut lineitem = Table::new(lineitem_schema);
    for o in 0..sizes.orders as i64 {
        let orderdate = rng.gen_range(0..DATE_DAYS - 151);
        let custkey = rng.gen_range(0..sizes.customer as i64);
        let lines = rng.gen_range(1..=7);
        let mut total = 0.0;
        for l in 0..lines {
            let quantity = rng.gen_range(1..=50) as f64;
            let partkey = rng.gen_range(0..sizes.part as i64);
            let price = quantity * (900.0 + (partkey % 1000) as f64 / 10.0) / 10.0;
            let discount = rng.gen_range(0..=10) as f64 / 100.0;
            let tax = rng.gen_range(0..=8) as f64 / 100.0;
            let shipdate = orderdate + rng.gen_range(1..=121);
            // Past shipments skew to returned/filled like the spec's
            // date-correlated flags.
            let returnflag = if shipdate < DATE_DAYS / 2 {
                RETURN_FLAGS[rng.gen_range(0..2)]
            } else {
                "N"
            };
            let linestatus = if shipdate < DATE_DAYS - 200 { "F" } else { "O" };
            total += price * (1.0 - discount) * (1.0 + tax);
            lineitem
                .append_row(vec![
                    Value::Int(o),
                    Value::Int(partkey),
                    Value::Int(rng.gen_range(0..sizes.supplier as i64)),
                    Value::Int(l + 1),
                    Value::Float(quantity),
                    Value::Float(price),
                    Value::Float(discount),
                    Value::Float(tax),
                    Value::str(returnflag),
                    Value::str(linestatus),
                    Value::Int(shipdate),
                ])
                .unwrap();
        }
        orders
            .append_row(vec![
                Value::Int(o),
                Value::Int(custkey),
                Value::Int(orderdate),
                Value::Float(total),
                Value::str(if orderdate < DATE_DAYS / 2 { "F" } else { "O" }),
                Value::Int(rng.gen_range(0..5)),
            ])
            .unwrap();
    }
    catalog.register("orders", orders);
    catalog.register("lineitem", lineitem);
    catalog
}

const COLORS: &[&str] = &[
    "almond",
    "azure",
    "beige",
    "blush",
    "chiffon",
    "coral",
    "cream",
    "drab",
    "firebrick",
    "forest",
    "ghost",
    "honeydew",
    "ivory",
    "khaki",
    "lace",
    "lavender",
];

#[cfg(test)]
mod tests {
    use super::*;
    use backbone_query::Catalog;

    #[test]
    fn sizes_scale_linearly() {
        let s1 = TpchSizes::at(0.01);
        let s10 = TpchSizes::at(0.1);
        assert_eq!(s1.customer, 1500);
        assert_eq!(s10.customer, 15_000);
        assert_eq!(s10.orders, 150_000);
    }

    #[test]
    fn generates_all_tables() {
        let cat = generate(0.001, 1);
        for t in [
            "region", "nation", "supplier", "part", "customer", "orders", "lineitem",
        ] {
            assert!(cat.table(t).is_some(), "missing table {t}");
        }
        assert_eq!(cat.table("region").unwrap().num_rows(), 5);
        assert_eq!(cat.table("nation").unwrap().num_rows(), 25);
        assert_eq!(cat.table("orders").unwrap().num_rows(), 1500);
        // Avg 4 lines per order.
        let li = cat.table("lineitem").unwrap().num_rows();
        assert!((4500..=7500).contains(&li), "lineitem rows {li}");
    }

    #[test]
    fn deterministic_for_seed() {
        let a = generate(0.001, 7);
        let b = generate(0.001, 7);
        let batch_a = a.table("orders").unwrap().to_batch().unwrap();
        let batch_b = b.table("orders").unwrap().to_batch().unwrap();
        assert_eq!(batch_a.to_rows(), batch_b.to_rows());
    }

    #[test]
    fn foreign_keys_in_range() {
        let cat = generate(0.001, 2);
        let cust = cat.table("customer").unwrap().num_rows() as i64;
        let orders = cat.table("orders").unwrap().to_batch().unwrap();
        let custkeys = orders.column_by_name("o_custkey").unwrap();
        for i in 0..orders.num_rows() {
            let k = custkeys.value(i).as_int().unwrap();
            assert!((0..cust).contains(&k));
        }
        let nations = cat.table("nation").unwrap().to_batch().unwrap();
        let regkeys = nations.column_by_name("n_regionkey").unwrap();
        for i in 0..nations.num_rows() {
            assert!((0..5).contains(&regkeys.value(i).as_int().unwrap()));
        }
    }

    #[test]
    fn shipdate_follows_orderdate() {
        let cat = generate(0.001, 3);
        // Every lineitem ships after day 0 and within the window + 121.
        let li = cat.table("lineitem").unwrap().to_batch().unwrap();
        let ship = li.column_by_name("l_shipdate").unwrap();
        for i in 0..li.num_rows() {
            let d = ship.value(i).as_int().unwrap();
            assert!(d > 0 && d < DATE_DAYS + 121);
        }
    }
}
