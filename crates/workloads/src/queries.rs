//! TPC-H-like analytical queries as logical plans (E1, E6).
//!
//! Shapes follow the spec's Q1/Q3/Q5/Q6; literals are adapted to the
//! synthetic value distributions in [`crate::tpch`].

use backbone_query::logical::{asc, desc};
use backbone_query::{avg, col, count_star, lit, sum, Catalog, LogicalPlan, QueryError};

use crate::tpch::Q1_CUTOFF_DAY;

/// Q1 — pricing summary report: scan `lineitem`, filter by ship date, group
/// by return flag and line status, compute the classic aggregate battery.
pub fn q1(catalog: &dyn Catalog) -> Result<LogicalPlan, QueryError> {
    Ok(LogicalPlan::scan("lineitem", catalog)?
        .filter(col("l_shipdate").lt_eq(lit(Q1_CUTOFF_DAY)))
        .aggregate(
            vec![col("l_returnflag"), col("l_linestatus")],
            vec![
                sum(col("l_quantity")).alias("sum_qty"),
                sum(col("l_extendedprice")).alias("sum_base_price"),
                sum(col("l_extendedprice").mul(lit(1.0).sub(col("l_discount"))))
                    .alias("sum_disc_price"),
                sum(col("l_extendedprice")
                    .mul(lit(1.0).sub(col("l_discount")))
                    .mul(lit(1.0).add(col("l_tax"))))
                .alias("sum_charge"),
                avg(col("l_quantity")).alias("avg_qty"),
                avg(col("l_extendedprice")).alias("avg_price"),
                avg(col("l_discount")).alias("avg_disc"),
                count_star().alias("count_order"),
            ],
        )
        .sort(vec![asc(col("l_returnflag")), asc(col("l_linestatus"))]))
}

/// Q3 — shipping priority: customer ⋈ orders ⋈ lineitem with segment and
/// date filters, top 10 orders by revenue.
pub fn q3(catalog: &dyn Catalog, segment: &str, date: i64) -> Result<LogicalPlan, QueryError> {
    // Written the way SQL reads: joins first, one WHERE on top. Pushing the
    // predicates to the scans is the optimizer's job (E6 measures it).
    let customer = LogicalPlan::scan("customer", catalog)?;
    let orders = LogicalPlan::scan("orders", catalog)?;
    let lineitem = LogicalPlan::scan("lineitem", catalog)?;
    Ok(customer
        .join_on(orders, vec![("c_custkey", "o_custkey")])
        .join_on(lineitem, vec![("o_orderkey", "l_orderkey")])
        .filter(
            col("c_mktsegment")
                .eq(lit(segment))
                .and(col("o_orderdate").lt(lit(date)))
                .and(col("l_shipdate").gt(lit(date))),
        )
        .aggregate(
            vec![col("o_orderkey"), col("o_orderdate"), col("o_shippriority")],
            vec![sum(col("l_extendedprice").mul(lit(1.0).sub(col("l_discount")))).alias("revenue")],
        )
        .sort(vec![desc(col("revenue")), asc(col("o_orderdate"))])
        .limit(10))
}

/// Q5 — local supplier volume: six-way join restricted to one region,
/// revenue grouped by nation.
pub fn q5(
    catalog: &dyn Catalog,
    region: &str,
    date_lo: i64,
    date_hi: i64,
) -> Result<LogicalPlan, QueryError> {
    let customer = LogicalPlan::scan("customer", catalog)?;
    let orders = LogicalPlan::scan("orders", catalog)?;
    let lineitem = LogicalPlan::scan("lineitem", catalog)?;
    let supplier = LogicalPlan::scan("supplier", catalog)?;
    let nation = LogicalPlan::scan("nation", catalog)?;
    let region_plan = LogicalPlan::scan("region", catalog)?;

    Ok(customer
        .join_on(orders, vec![("c_custkey", "o_custkey")])
        .join_on(lineitem, vec![("o_orderkey", "l_orderkey")])
        .join_on(
            supplier,
            vec![("l_suppkey", "s_suppkey"), ("c_nationkey", "s_nationkey")],
        )
        .join_on(nation, vec![("s_nationkey", "n_nationkey")])
        .join_on(region_plan, vec![("n_regionkey", "r_regionkey")])
        .filter(
            col("r_name")
                .eq(lit(region))
                .and(col("o_orderdate").gt_eq(lit(date_lo)))
                .and(col("o_orderdate").lt(lit(date_hi))),
        )
        .aggregate(
            vec![col("n_name")],
            vec![sum(col("l_extendedprice").mul(lit(1.0).sub(col("l_discount")))).alias("revenue")],
        )
        .sort(vec![desc(col("revenue"))]))
}

/// Q6 — forecasting revenue change: a pure scan-filter-aggregate over
/// `lineitem`.
pub fn q6(catalog: &dyn Catalog, date_lo: i64, date_hi: i64) -> Result<LogicalPlan, QueryError> {
    Ok(LogicalPlan::scan("lineitem", catalog)?
        .filter(
            col("l_shipdate")
                .gt_eq(lit(date_lo))
                .and(col("l_shipdate").lt(lit(date_hi)))
                .and(col("l_discount").between(lit(0.05), lit(0.07)))
                .and(col("l_quantity").lt(lit(24.0))),
        )
        .aggregate(
            vec![],
            vec![sum(col("l_extendedprice").mul(col("l_discount"))).alias("revenue")],
        ))
}

/// All four queries with canonical parameters, labeled.
pub fn all_queries(catalog: &dyn Catalog) -> Result<Vec<(&'static str, LogicalPlan)>, QueryError> {
    Ok(vec![
        ("Q1", q1(catalog)?),
        ("Q3", q3(catalog, "BUILDING", 1200)?),
        ("Q5", q5(catalog, "ASIA", 730, 1095)?),
        ("Q6", q6(catalog, 730, 1095)?),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::generate;
    use backbone_query::{execute, ExecOptions};
    use backbone_storage::Value;

    fn catalog() -> backbone_query::MemCatalog {
        generate(0.002, 11)
    }

    #[test]
    fn q1_produces_flag_status_groups() {
        let cat = catalog();
        let out = execute(q1(&cat).unwrap(), &cat, &ExecOptions::default()).unwrap();
        assert!(out.num_rows() >= 2 && out.num_rows() <= 6);
        // count_order must sum to the number of filtered lineitems.
        let total: i64 = (0..out.num_rows())
            .map(|i| {
                out.column_by_name("count_order")
                    .unwrap()
                    .value(i)
                    .as_int()
                    .unwrap()
            })
            .sum();
        assert!(total > 0);
        // sorted by flag then status
        let flags: Vec<String> = (0..out.num_rows())
            .map(|i| out.column(0).value(i).to_string())
            .collect();
        let mut sorted = flags.clone();
        sorted.sort();
        assert_eq!(flags, sorted);
    }

    #[test]
    fn q1_matches_manual_computation() {
        let cat = catalog();
        let out = execute(q1(&cat).unwrap(), &cat, &ExecOptions::default()).unwrap();
        // Manually compute sum_qty per (flag, status).
        let li = cat.table("lineitem").unwrap().to_batch().unwrap();
        let mut manual: std::collections::HashMap<(String, String), f64> = Default::default();
        for i in 0..li.num_rows() {
            let ship = li
                .column_by_name("l_shipdate")
                .unwrap()
                .value(i)
                .as_int()
                .unwrap();
            if ship <= Q1_CUTOFF_DAY {
                let f = li
                    .column_by_name("l_returnflag")
                    .unwrap()
                    .value(i)
                    .to_string();
                let s = li
                    .column_by_name("l_linestatus")
                    .unwrap()
                    .value(i)
                    .to_string();
                let q = li
                    .column_by_name("l_quantity")
                    .unwrap()
                    .value(i)
                    .as_float()
                    .unwrap();
                *manual.entry((f, s)).or_insert(0.0) += q;
            }
        }
        for i in 0..out.num_rows() {
            let key = (
                out.column(0).value(i).to_string(),
                out.column(1).value(i).to_string(),
            );
            let got = out
                .column_by_name("sum_qty")
                .unwrap()
                .value(i)
                .as_float()
                .unwrap();
            let want = manual[&key];
            assert!((got - want).abs() < 1e-6, "group {key:?}: {got} != {want}");
        }
    }

    #[test]
    fn q3_returns_at_most_ten_sorted_by_revenue() {
        let cat = catalog();
        let out = execute(
            q3(&cat, "BUILDING", 1200).unwrap(),
            &cat,
            &ExecOptions::default(),
        )
        .unwrap();
        assert!(out.num_rows() <= 10);
        let rev = out.column_by_name("revenue").unwrap();
        for i in 1..out.num_rows() {
            assert!(rev.value(i - 1).as_float().unwrap() >= rev.value(i).as_float().unwrap());
        }
    }

    #[test]
    fn q5_groups_by_nation_in_region() {
        let cat = catalog();
        let out = execute(
            q5(&cat, "ASIA", 0, 2500).unwrap(),
            &cat,
            &ExecOptions::default(),
        )
        .unwrap();
        // At most 5 nations per region.
        assert!(out.num_rows() <= 5);
        for i in 0..out.num_rows() {
            let n = out.column(0).value(i).to_string();
            assert!(n.starts_with("NATION_"));
        }
    }

    #[test]
    fn q6_single_revenue_number() {
        let cat = catalog();
        let out = execute(q6(&cat, 0, 2500).unwrap(), &cat, &ExecOptions::default()).unwrap();
        assert_eq!(out.num_rows(), 1);
        match out.row(0)[0] {
            Value::Float(f) => assert!(f >= 0.0),
            Value::Null => {} // possible at tiny SF if no row qualifies
            ref other => panic!("unexpected revenue value {other:?}"),
        }
    }

    #[test]
    fn optimized_equals_unoptimized_on_all_queries() {
        let cat = catalog();
        for (name, _) in all_queries(&cat).unwrap() {
            let plan = match name {
                "Q1" => q1(&cat).unwrap(),
                "Q3" => q3(&cat, "BUILDING", 1200).unwrap(),
                "Q5" => q5(&cat, "ASIA", 730, 1095).unwrap(),
                "Q6" => q6(&cat, 730, 1095).unwrap(),
                _ => unreachable!(),
            };
            let a = execute(plan.clone(), &cat, &ExecOptions::default()).unwrap();
            let b = execute(plan, &cat, &ExecOptions::unoptimized()).unwrap();
            // Join reordering changes float summation order: compare with
            // relative tolerance.
            let (ra, rb) = (a.to_rows(), b.to_rows());
            assert_eq!(ra.len(), rb.len(), "{name} row count differs");
            for (x, y) in ra.iter().zip(&rb) {
                for (vx, vy) in x.iter().zip(y) {
                    match (vx.as_float(), vy.as_float()) {
                        (Some(fx), Some(fy)) => assert!(
                            (fx - fy).abs() <= 1e-9 * fx.abs().max(1.0),
                            "{name}: {fx} vs {fy}"
                        ),
                        _ => assert_eq!(vx, vy, "{name} differs when optimized"),
                    }
                }
            }
        }
    }
}
