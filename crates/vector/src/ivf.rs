//! IVF-Flat: inverted file index over k-means partitions.

use crate::dataset::Dataset;
use crate::distance::Metric;
use crate::exact::top_k;
use crate::{Hit, VectorIndex};
use rand::prelude::*;

/// IVF-Flat index: vectors are partitioned by k-means into `nlist` cells; a
/// query probes only the `nprobe` nearest cells. Trades recall for speed —
/// [`crate::recall`] quantifies the trade.
pub struct IvfIndex {
    dim: usize,
    metric: Metric,
    centroids: Vec<Vec<f32>>,
    /// Per-cell vector slots (indices into `data`).
    cells: Vec<Vec<usize>>,
    data: Dataset,
    nprobe: usize,
}

/// Build parameters for [`IvfIndex`].
#[derive(Debug, Clone)]
pub struct IvfParams {
    /// Number of k-means cells.
    pub nlist: usize,
    /// Cells probed per query.
    pub nprobe: usize,
    /// Lloyd iterations during training.
    pub train_iters: usize,
    /// RNG seed (deterministic builds).
    pub seed: u64,
}

impl Default for IvfParams {
    fn default() -> Self {
        IvfParams {
            nlist: 64,
            nprobe: 8,
            train_iters: 10,
            seed: 42,
        }
    }
}

impl IvfIndex {
    /// Train and build the index over `data`.
    ///
    /// `nlist` is clamped to the dataset size; an empty dataset yields an
    /// empty index that returns no hits.
    pub fn build(data: Dataset, metric: Metric, params: IvfParams) -> IvfIndex {
        let dim = data.dim();
        let n = data.len();
        if n == 0 {
            return IvfIndex {
                dim,
                metric,
                centroids: Vec::new(),
                cells: Vec::new(),
                data,
                nprobe: params.nprobe.max(1),
            };
        }
        let nlist = params.nlist.clamp(1, n);
        let mut rng = StdRng::seed_from_u64(params.seed);

        // Init: sample distinct vectors as seeds.
        let mut slots: Vec<usize> = (0..n).collect();
        slots.shuffle(&mut rng);
        let mut centroids: Vec<Vec<f32>> = slots[..nlist]
            .iter()
            .map(|&i| data.vector(i).to_vec())
            .collect();

        // Lloyd iterations. Assignment always uses L2 (standard for IVF
        // training even under cosine; vectors should be pre-normalized for
        // cosine workloads).
        let mut assignment = vec![0usize; n];
        for _ in 0..params.train_iters.max(1) {
            for (i, slot) in assignment.iter_mut().enumerate() {
                *slot = nearest_centroid(&centroids, data.vector(i));
            }
            let mut sums = vec![vec![0f32; dim]; nlist];
            let mut counts = vec![0usize; nlist];
            for (i, &c) in assignment.iter().enumerate() {
                counts[c] += 1;
                for (s, v) in sums[c].iter_mut().zip(data.vector(i)) {
                    *s += v;
                }
            }
            for c in 0..nlist {
                if counts[c] > 0 {
                    for s in sums[c].iter_mut() {
                        *s /= counts[c] as f32;
                    }
                    centroids[c] = sums[c].clone();
                } else {
                    // Re-seed empty cells with a random vector.
                    let i = rng.gen_range(0..n);
                    centroids[c] = data.vector(i).to_vec();
                }
            }
        }

        let mut cells = vec![Vec::new(); nlist];
        for i in 0..n {
            cells[nearest_centroid(&centroids, data.vector(i))].push(i);
        }

        IvfIndex {
            dim,
            metric,
            centroids,
            cells,
            data,
            nprobe: params.nprobe.max(1),
        }
    }

    /// Change the probe width at query time (recall/latency knob).
    pub fn set_nprobe(&mut self, nprobe: usize) {
        self.nprobe = nprobe.max(1);
    }

    /// Number of cells.
    pub fn nlist(&self) -> usize {
        self.centroids.len()
    }

    fn probe_order(&self, query: &[f32]) -> Vec<usize> {
        let mut order: Vec<(f32, usize)> = self
            .centroids
            .iter()
            .enumerate()
            .map(|(i, c)| (crate::distance::l2_sq(query, c), i))
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0));
        order.into_iter().map(|(_, i)| i).collect()
    }
}

fn nearest_centroid(centroids: &[Vec<f32>], v: &[f32]) -> usize {
    centroids
        .iter()
        .enumerate()
        .min_by(|a, b| crate::distance::l2_sq(a.1, v).total_cmp(&crate::distance::l2_sq(b.1, v)))
        .map(|(i, _)| i)
        .expect("nlist >= 1")
}

impl VectorIndex for IvfIndex {
    fn metric(&self) -> Metric {
        self.metric
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn distance_of(&self, query: &[f32], id: u64) -> Option<f32> {
        self.data
            .vector_by_id(id)
            .map(|v| self.metric.distance(query, v))
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        if self.centroids.is_empty() {
            return Vec::new();
        }
        let probes = self.probe_order(query);
        let candidates = probes
            .iter()
            .take(self.nprobe)
            .flat_map(|&cell| self.cells[cell].iter())
            .map(|&slot| Hit {
                id: self.data.id(slot),
                distance: self.metric.distance(query, self.data.vector(slot)),
            });
        top_k(candidates, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered_dataset(n_per_cluster: usize) -> Dataset {
        // Four well-separated clusters in 2D.
        let mut rng = StdRng::seed_from_u64(7);
        let centers = [[0.0f32, 0.0], [100.0, 0.0], [0.0, 100.0], [100.0, 100.0]];
        let mut d = Dataset::new(2);
        let mut id = 0;
        for c in centers {
            for _ in 0..n_per_cluster {
                let v = [c[0] + rng.gen::<f32>(), c[1] + rng.gen::<f32>()];
                d.push(id, &v);
                id += 1;
            }
        }
        d
    }

    #[test]
    fn finds_cluster_members() {
        let d = clustered_dataset(50);
        let ix = IvfIndex::build(
            d,
            Metric::L2,
            IvfParams {
                nlist: 4,
                nprobe: 1,
                ..Default::default()
            },
        );
        // Query near cluster 1 (ids 50..100).
        let hits = ix.search(&[100.0, 0.5], 10);
        assert_eq!(hits.len(), 10);
        assert!(hits.iter().all(|h| (50..100).contains(&h.id)));
    }

    #[test]
    fn full_probe_equals_exact() {
        use crate::exact::ExactIndex;
        let d = clustered_dataset(25);
        let exact = ExactIndex::from_dataset(d.clone(), Metric::L2);
        let ix = IvfIndex::build(
            d,
            Metric::L2,
            IvfParams {
                nlist: 8,
                nprobe: 8,
                ..Default::default()
            },
        );
        let q = [50.0, 50.0];
        let a: Vec<u64> = ix.search(&q, 5).iter().map(|h| h.id).collect();
        let b: Vec<u64> = exact.search(&q, 5).iter().map(|h| h.id).collect();
        assert_eq!(a, b, "probing every cell must match brute force");
    }

    #[test]
    fn nlist_clamped_to_dataset() {
        let mut d = Dataset::new(1);
        d.push(1, &[1.0]);
        d.push(2, &[2.0]);
        let ix = IvfIndex::build(
            d,
            Metric::L2,
            IvfParams {
                nlist: 100,
                ..Default::default()
            },
        );
        assert!(ix.nlist() <= 2);
        assert_eq!(ix.search(&[1.1], 1)[0].id, 1);
    }

    #[test]
    fn empty_dataset() {
        let ix = IvfIndex::build(Dataset::new(4), Metric::L2, IvfParams::default());
        assert!(ix.search(&[0.0; 4], 5).is_empty());
        assert!(ix.is_empty());
    }

    #[test]
    fn nprobe_monotone_recall() {
        use crate::exact::ExactIndex;
        let d = clustered_dataset(100);
        let exact = ExactIndex::from_dataset(d.clone(), Metric::L2);
        let q = [55.0, 45.0];
        let truth: std::collections::HashSet<u64> =
            exact.search(&q, 10).iter().map(|h| h.id).collect();
        let mut ix = IvfIndex::build(
            d,
            Metric::L2,
            IvfParams {
                nlist: 16,
                nprobe: 1,
                ..Default::default()
            },
        );
        let recall = |ix: &IvfIndex| {
            let got: std::collections::HashSet<u64> =
                ix.search(&q, 10).iter().map(|h| h.id).collect();
            got.intersection(&truth).count()
        };
        let r1 = recall(&ix);
        ix.set_nprobe(16);
        let r16 = recall(&ix);
        assert!(r16 >= r1);
        assert_eq!(r16, 10, "probing all cells must reach full recall");
    }
}
