//! IVF-Flat: inverted file index over k-means partitions.

use crate::dataset::Dataset;
use crate::distance::{norm, Metric};
use crate::exact::TopK;
use crate::{DimensionMismatch, Hit, Parallelism, VectorIndex};
use backbone_query::pool::run_workers;
use rand::prelude::*;

/// IVF-Flat index: vectors are partitioned by k-means into `nlist` cells; a
/// query probes only the `nprobe` nearest cells. Trades recall for speed —
/// [`crate::recall`] quantifies the trade.
///
/// Probed cells are independent, so [`VectorIndex::search_with`] splits them
/// across the shared worker pool with a top-k heap per worker, merged at
/// drain — the identical shape to the relational top-k operator.
pub struct IvfIndex {
    dim: usize,
    metric: Metric,
    centroids: Vec<Vec<f32>>,
    /// Per-cell vector slots (indices into `data`).
    cells: Vec<Vec<usize>>,
    data: Dataset,
    nprobe: usize,
}

/// Build parameters for [`IvfIndex`].
#[derive(Debug, Clone)]
pub struct IvfParams {
    /// Number of k-means cells.
    pub nlist: usize,
    /// Cells probed per query.
    pub nprobe: usize,
    /// Lloyd iterations during training.
    pub train_iters: usize,
    /// RNG seed (deterministic builds).
    pub seed: u64,
}

impl Default for IvfParams {
    fn default() -> Self {
        IvfParams {
            nlist: 64,
            nprobe: 8,
            train_iters: 10,
            seed: 42,
        }
    }
}

impl IvfIndex {
    /// Train and build the index over `data`.
    ///
    /// `nlist` is clamped to the dataset size; an empty dataset yields an
    /// empty index that returns no hits.
    pub fn build(data: Dataset, metric: Metric, params: IvfParams) -> IvfIndex {
        let dim = data.dim();
        let n = data.len();
        if n == 0 {
            return IvfIndex {
                dim,
                metric,
                centroids: Vec::new(),
                cells: Vec::new(),
                data,
                nprobe: params.nprobe.max(1),
            };
        }
        let nlist = params.nlist.clamp(1, n);
        let mut rng = StdRng::seed_from_u64(params.seed);

        // Init: sample distinct vectors as seeds.
        let mut slots: Vec<usize> = (0..n).collect();
        slots.shuffle(&mut rng);
        let mut centroids: Vec<Vec<f32>> = slots[..nlist]
            .iter()
            .map(|&i| data.vector(i).to_vec())
            .collect();

        // Lloyd iterations. Assignment always uses L2 (standard for IVF
        // training even under cosine; vectors should be pre-normalized for
        // cosine workloads).
        let mut assignment = vec![0usize; n];
        for _ in 0..params.train_iters.max(1) {
            for (i, slot) in assignment.iter_mut().enumerate() {
                *slot = nearest_centroid(&centroids, data.vector(i));
            }
            let mut sums = vec![vec![0f32; dim]; nlist];
            let mut counts = vec![0usize; nlist];
            for (i, &c) in assignment.iter().enumerate() {
                counts[c] += 1;
                for (s, v) in sums[c].iter_mut().zip(data.vector(i)) {
                    *s += v;
                }
            }
            for c in 0..nlist {
                if counts[c] > 0 {
                    for s in sums[c].iter_mut() {
                        *s /= counts[c] as f32;
                    }
                    centroids[c] = sums[c].clone();
                } else {
                    // Re-seed empty cells with a random vector.
                    let i = rng.gen_range(0..n);
                    centroids[c] = data.vector(i).to_vec();
                }
            }
        }

        let mut cells = vec![Vec::new(); nlist];
        for i in 0..n {
            cells[nearest_centroid(&centroids, data.vector(i))].push(i);
        }

        IvfIndex {
            dim,
            metric,
            centroids,
            cells,
            data,
            nprobe: params.nprobe.max(1),
        }
    }

    /// Change the probe width at query time (recall/latency knob).
    pub fn set_nprobe(&mut self, nprobe: usize) {
        self.nprobe = nprobe.max(1);
    }

    /// Number of cells.
    pub fn nlist(&self) -> usize {
        self.centroids.len()
    }

    /// Insert one vector without retraining: it joins the cell of its
    /// nearest centroid. Centroids are *not* moved — after heavy churn the
    /// partition drifts from the data and recall sags until a rebuild, which
    /// is exactly the trade the incremental-insert recall test pins down.
    /// Panics on dimension mismatch; the typed alternative is
    /// [`IvfIndex::try_insert`].
    pub fn insert(&mut self, id: u64, vector: &[f32]) {
        self.try_insert(id, vector)
            .expect("vector dimension mismatch");
    }

    /// [`IvfIndex::insert`] with a typed dimension error.
    pub fn try_insert(&mut self, id: u64, vector: &[f32]) -> Result<(), DimensionMismatch> {
        if vector.len() != self.dim {
            return Err(DimensionMismatch {
                expected: self.dim,
                got: vector.len(),
            });
        }
        // First vector into an empty (untrained) index seeds a single cell.
        if self.centroids.is_empty() {
            self.centroids.push(vector.to_vec());
            self.cells.push(Vec::new());
        }
        let cell = nearest_centroid(&self.centroids, vector);
        let slot = self.data.len();
        self.data.try_push(id, vector)?;
        self.cells[cell].push(slot);
        Ok(())
    }

    fn probe_order(&self, query: &[f32]) -> Vec<usize> {
        let mut order: Vec<(f32, usize)> = self
            .centroids
            .iter()
            .enumerate()
            .map(|(i, c)| (crate::distance::l2_sq(query, c), i))
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0));
        order.into_iter().map(|(_, i)| i).collect()
    }

    /// Score every slot of `cell` into `acc` using cached row norms.
    fn scan_cell(&self, cell: usize, query: &[f32], query_norm: f32, acc: &mut TopK) {
        for &slot in &self.cells[cell] {
            let d = self.metric.distance_prenorm(
                query,
                self.data.vector(slot),
                query_norm,
                self.data.norm_of_slot(slot),
            );
            acc.push(self.data.id(slot), d);
        }
    }
}

fn nearest_centroid(centroids: &[Vec<f32>], v: &[f32]) -> usize {
    centroids
        .iter()
        .enumerate()
        .min_by(|a, b| crate::distance::l2_sq(a.1, v).total_cmp(&crate::distance::l2_sq(b.1, v)))
        .map(|(i, _)| i)
        .expect("nlist >= 1")
}

impl VectorIndex for IvfIndex {
    fn metric(&self) -> Metric {
        self.metric
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn distance_of(&self, query: &[f32], id: u64) -> Option<f32> {
        self.data
            .vector_by_id(id)
            .map(|v| self.metric.distance(query, v))
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        self.search_with(query, k, Parallelism::Serial)
    }

    fn search_with(&self, query: &[f32], k: usize, parallel: Parallelism) -> Vec<Hit> {
        if self.centroids.is_empty() {
            return Vec::new();
        }
        let probes: Vec<usize> = self
            .probe_order(query)
            .into_iter()
            .take(self.nprobe)
            .collect();
        let qn = norm(query);
        // One worker per probed cell is the natural grain; fewer probes than
        // workers just idles the surplus.
        let workers = parallel.worker_threads().min(probes.len()).max(1);
        if workers <= 1 {
            let mut acc = TopK::new(k);
            for &cell in &probes {
                self.scan_cell(cell, query, qn, &mut acc);
            }
            return acc.into_hits();
        }
        // Strided cell assignment balances uneven cell sizes better than
        // contiguous chunks (nearest cells tend to be the largest).
        let heaps = run_workers(workers, |w| {
            let mut acc = TopK::new(k);
            for &cell in probes.iter().skip(w).step_by(workers) {
                self.scan_cell(cell, query, qn, &mut acc);
            }
            acc
        });
        let mut merged = TopK::new(k);
        for h in heaps {
            merged.merge(h);
        }
        merged.into_hits()
    }

    fn search_masked(&self, query: &[f32], k: usize, filter: &dyn Fn(u64) -> bool) -> Vec<Hit> {
        if self.centroids.is_empty() {
            return Vec::new();
        }
        let qn = norm(query);
        let mut acc = TopK::new(k);
        for cell in self.probe_order(query).into_iter().take(self.nprobe) {
            for &slot in &self.cells[cell] {
                let id = self.data.id(slot);
                if !filter(id) {
                    continue;
                }
                let d = self.metric.distance_prenorm(
                    query,
                    self.data.vector(slot),
                    qn,
                    self.data.norm_of_slot(slot),
                );
                acc.push(id, d);
            }
        }
        acc.into_hits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered_dataset(n_per_cluster: usize) -> Dataset {
        // Four well-separated clusters in 2D.
        let mut rng = StdRng::seed_from_u64(7);
        let centers = [[0.0f32, 0.0], [100.0, 0.0], [0.0, 100.0], [100.0, 100.0]];
        let mut d = Dataset::new(2);
        let mut id = 0;
        for c in centers {
            for _ in 0..n_per_cluster {
                let v = [c[0] + rng.gen::<f32>(), c[1] + rng.gen::<f32>()];
                d.push(id, &v);
                id += 1;
            }
        }
        d
    }

    #[test]
    fn finds_cluster_members() {
        let d = clustered_dataset(50);
        let ix = IvfIndex::build(
            d,
            Metric::L2,
            IvfParams {
                nlist: 4,
                nprobe: 1,
                ..Default::default()
            },
        );
        // Query near cluster 1 (ids 50..100).
        let hits = ix.search(&[100.0, 0.5], 10);
        assert_eq!(hits.len(), 10);
        assert!(hits.iter().all(|h| (50..100).contains(&h.id)));
    }

    #[test]
    fn full_probe_equals_exact() {
        use crate::exact::ExactIndex;
        let d = clustered_dataset(25);
        let exact = ExactIndex::from_dataset(d.clone(), Metric::L2);
        let ix = IvfIndex::build(
            d,
            Metric::L2,
            IvfParams {
                nlist: 8,
                nprobe: 8,
                ..Default::default()
            },
        );
        let q = [50.0, 50.0];
        let a: Vec<u64> = ix.search(&q, 5).iter().map(|h| h.id).collect();
        let b: Vec<u64> = exact.search(&q, 5).iter().map(|h| h.id).collect();
        assert_eq!(a, b, "probing every cell must match brute force");
    }

    #[test]
    fn nlist_clamped_to_dataset() {
        let mut d = Dataset::new(1);
        d.push(1, &[1.0]);
        d.push(2, &[2.0]);
        let ix = IvfIndex::build(
            d,
            Metric::L2,
            IvfParams {
                nlist: 100,
                ..Default::default()
            },
        );
        assert!(ix.nlist() <= 2);
        assert_eq!(ix.search(&[1.1], 1)[0].id, 1);
    }

    #[test]
    fn empty_dataset() {
        let ix = IvfIndex::build(Dataset::new(4), Metric::L2, IvfParams::default());
        assert!(ix.search(&[0.0; 4], 5).is_empty());
        assert!(ix.is_empty());
    }

    #[test]
    fn nprobe_monotone_recall() {
        use crate::exact::ExactIndex;
        let d = clustered_dataset(100);
        let exact = ExactIndex::from_dataset(d.clone(), Metric::L2);
        let q = [55.0, 45.0];
        let truth: std::collections::HashSet<u64> =
            exact.search(&q, 10).iter().map(|h| h.id).collect();
        let mut ix = IvfIndex::build(
            d,
            Metric::L2,
            IvfParams {
                nlist: 16,
                nprobe: 1,
                ..Default::default()
            },
        );
        let recall = |ix: &IvfIndex| {
            let got: std::collections::HashSet<u64> =
                ix.search(&q, 10).iter().map(|h| h.id).collect();
            got.intersection(&truth).count()
        };
        let r1 = recall(&ix);
        ix.set_nprobe(16);
        let r16 = recall(&ix);
        assert!(r16 >= r1);
        assert_eq!(r16, 10, "probing all cells must reach full recall");
    }

    #[test]
    fn parallel_probes_match_serial() {
        let d = clustered_dataset(100);
        let mut ix = IvfIndex::build(
            d,
            Metric::L2,
            IvfParams {
                nlist: 16,
                nprobe: 8,
                ..Default::default()
            },
        );
        ix.set_nprobe(8);
        for q in [[55.0f32, 45.0], [1.0, 1.0], [99.0, 99.0]] {
            let serial = ix.search(&q, 10);
            for workers in [2usize, 4, 8] {
                let par = ix.search_with(&q, 10, Parallelism::Fixed(workers));
                assert_eq!(serial, par, "workers={workers}");
            }
        }
    }

    #[test]
    fn incremental_insert_lands_in_nearest_cell() {
        let d = clustered_dataset(50);
        let mut ix = IvfIndex::build(
            d,
            Metric::L2,
            IvfParams {
                nlist: 4,
                nprobe: 1,
                ..Default::default()
            },
        );
        // New vector inside cluster 1's region must be findable with a
        // single probe (its cell is the one the query probes).
        ix.insert(9_000, &[100.4, 0.4]);
        let hits = ix.search(&[100.4, 0.4], 1);
        assert_eq!(hits[0].id, 9_000);
        assert_eq!(ix.len(), 201);
    }

    #[test]
    fn insert_into_empty_index_seeds_a_cell() {
        let mut ix = IvfIndex::build(Dataset::new(2), Metric::L2, IvfParams::default());
        ix.insert(1, &[5.0, 5.0]);
        ix.insert(2, &[6.0, 6.0]);
        assert_eq!(ix.nlist(), 1);
        assert_eq!(ix.search(&[5.1, 5.1], 1)[0].id, 1);
    }

    #[test]
    fn try_insert_rejects_wrong_dimension() {
        let mut ix = IvfIndex::build(clustered_dataset(5), Metric::L2, IvfParams::default());
        let err = ix.try_insert(999, &[1.0, 2.0, 3.0]).unwrap_err();
        assert_eq!((err.expected, err.got), (2, 3));
        assert_eq!(ix.len(), 20, "failed insert must not grow the index");
    }

    #[test]
    fn masked_search_respects_filter() {
        let d = clustered_dataset(50);
        let ix = IvfIndex::build(
            d,
            Metric::L2,
            IvfParams {
                nlist: 4,
                nprobe: 4,
                ..Default::default()
            },
        );
        let hits = ix.search_masked(&[0.5, 0.5], 5, &|id| id >= 10);
        assert_eq!(hits.len(), 5);
        assert!(hits.iter().all(|h| h.id >= 10));
    }
}
