//! Brute-force exact nearest-neighbour search.
//!
//! The scan is the fused hot loop the other indexes reuse: distances are
//! computed block-at-a-time with the blocked kernels
//! ([`crate::distance::score_block`]) into a small stack buffer, and each
//! block drains straight into a bounded [`TopK`] heap — the full distance
//! array is never materialized. Under [`Parallelism::Fixed`]/`Auto` the slot
//! range splits across the shared worker pool with one heap per worker,
//! merged at drain (the same shape as the relational top-k operator).

use crate::dataset::Dataset;
use crate::distance::{norm, score_block, Metric};
use crate::{Hit, Parallelism, VectorIndex};
use backbone_query::pool::run_workers;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Rows scored per fused block: enough to amortize heap checks, small
/// enough to stay in L1 (64 distances = 256 bytes).
const BLOCK: usize = 64;

/// A max-heap entry so the heap root is the *worst* of the current top-k.
#[derive(Debug, PartialEq)]
struct HeapHit(Hit);

impl Eq for HeapHit {}

impl Ord for HeapHit {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .distance
            .total_cmp(&other.0.distance)
            .then(self.0.id.cmp(&other.0.id))
    }
}

impl PartialOrd for HeapHit {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A bounded best-`k` accumulator: push candidates as they are scored, drain
/// sorted hits at the end. Per-worker instances merge cheaply, which is how
/// every parallel search path in this crate combines worker results.
#[derive(Debug)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<HeapHit>,
}

impl TopK {
    /// An empty accumulator for the best `k` hits.
    pub fn new(k: usize) -> TopK {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Current admission threshold: a candidate at or past this distance
    /// cannot enter. `INFINITY` until the heap fills.
    #[inline]
    pub fn threshold(&self) -> f32 {
        if self.heap.len() < self.k {
            f32::INFINITY
        } else {
            self.heap
                .peek()
                .map(|h| h.0.distance)
                .unwrap_or(f32::INFINITY)
        }
    }

    /// Offer one candidate.
    #[inline]
    pub fn push(&mut self, id: u64, distance: f32) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(HeapHit(Hit { id, distance }));
        } else if let Some(worst) = self.heap.peek() {
            if distance < worst.0.distance {
                self.heap.pop();
                self.heap.push(HeapHit(Hit { id, distance }));
            }
        }
    }

    /// Fold another accumulator's survivors in (parallel drain merge).
    pub fn merge(&mut self, other: TopK) {
        for h in other.heap {
            self.push(h.0.id, h.0.distance);
        }
    }

    /// Sorted hits, best first; ties break by id for determinism.
    pub fn into_hits(self) -> Vec<Hit> {
        let mut out: Vec<Hit> = self.heap.into_iter().map(|h| h.0).collect();
        out.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
        out
    }
}

/// Select the `k` best hits from an iterator of candidates, best first.
pub(crate) fn top_k(candidates: impl Iterator<Item = Hit>, k: usize) -> Vec<Hit> {
    let mut acc = TopK::new(k);
    for hit in candidates {
        acc.push(hit.id, hit.distance);
    }
    acc.into_hits()
}

/// Fused score+select over a contiguous slot range of `data`: blocked
/// distance evaluation into a stack buffer, drained into `acc` — no full
/// distance array. Shared by the exact scan and IVF's per-cell scans.
pub(crate) fn scan_slots_into(
    data: &Dataset,
    metric: Metric,
    query: &[f32],
    query_norm: f32,
    lo: usize,
    hi: usize,
    acc: &mut TopK,
) {
    let dim = data.dim();
    let mut dists = [0f32; BLOCK];
    let mut start = lo;
    while start < hi {
        let rows = (hi - start).min(BLOCK);
        let block = &data.values()[start * dim..(start + rows) * dim];
        let norms = metric
            .uses_norms()
            .then(|| &data.norms()[start..start + rows]);
        score_block(
            metric,
            query,
            block,
            dim,
            norms,
            query_norm,
            &mut dists[..rows],
        );
        for (off, &d) in dists[..rows].iter().enumerate() {
            acc.push(data.id(start + off), d);
        }
        start += rows;
    }
}

/// Exact (brute-force) index: scans every vector. The recall ground truth
/// for IVF/HNSW, and the honest baseline for small collections.
pub struct ExactIndex {
    data: Dataset,
    metric: Metric,
}

impl ExactIndex {
    /// An empty exact index.
    pub fn new(dim: usize, metric: Metric) -> ExactIndex {
        ExactIndex {
            data: Dataset::new(dim),
            metric,
        }
    }

    /// Build from a dataset.
    pub fn from_dataset(data: Dataset, metric: Metric) -> ExactIndex {
        ExactIndex { data, metric }
    }

    /// Insert a vector. Panics on dimension mismatch; the typed alternative
    /// is [`ExactIndex::try_insert`].
    pub fn insert(&mut self, id: u64, vector: &[f32]) {
        self.data.push(id, vector);
    }

    /// Insert a vector, rejecting wrong dimensions with a typed error.
    pub fn try_insert(&mut self, id: u64, vector: &[f32]) -> Result<(), crate::DimensionMismatch> {
        self.data.try_push(id, vector)
    }

    /// Filtered scan that evaluates the predicate *before* computing
    /// distances — the "unified" behaviour a real engine wants, as opposed
    /// to the over-fetching default of [`VectorIndex::search_filtered`].
    pub fn search_prefiltered(
        &self,
        query: &[f32],
        k: usize,
        filter: &dyn Fn(u64) -> bool,
    ) -> Vec<Hit> {
        self.search_masked(query, k, filter)
    }
}

impl VectorIndex for ExactIndex {
    fn metric(&self) -> Metric {
        self.metric
    }

    fn dim(&self) -> usize {
        self.data.dim()
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn distance_of(&self, query: &[f32], id: u64) -> Option<f32> {
        self.data
            .vector_by_id(id)
            .map(|v| self.metric.distance(query, v))
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        let mut acc = TopK::new(k);
        scan_slots_into(
            &self.data,
            self.metric,
            query,
            norm(query),
            0,
            self.data.len(),
            &mut acc,
        );
        acc.into_hits()
    }

    fn search_with(&self, query: &[f32], k: usize, parallel: Parallelism) -> Vec<Hit> {
        let n = self.data.len();
        // Below ~4 blocks per worker the merge overhead dominates.
        let workers = parallel.worker_threads().min(n / (BLOCK * 4)).max(1);
        if workers <= 1 {
            return self.search(query, k);
        }
        let qn = norm(query);
        let per = n.div_ceil(workers);
        let heaps = run_workers(workers, |w| {
            let lo = w * per;
            let hi = ((w + 1) * per).min(n);
            let mut acc = TopK::new(k);
            scan_slots_into(&self.data, self.metric, query, qn, lo, hi, &mut acc);
            acc
        });
        let mut merged = TopK::new(k);
        for h in heaps {
            merged.merge(h);
        }
        merged.into_hits()
    }

    fn search_masked(&self, query: &[f32], k: usize, filter: &dyn Fn(u64) -> bool) -> Vec<Hit> {
        let qn = norm(query);
        let mut acc = TopK::new(k);
        for i in 0..self.data.len() {
            let id = self.data.id(i);
            if !filter(id) {
                continue;
            }
            let d = self.metric.distance_prenorm(
                query,
                self.data.vector(i),
                qn,
                self.data.norm_of_slot(i),
            );
            acc.push(id, d);
        }
        acc.into_hits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> ExactIndex {
        let mut ix = ExactIndex::new(2, Metric::L2);
        ix.insert(1, &[0.0, 0.0]);
        ix.insert(2, &[1.0, 0.0]);
        ix.insert(3, &[10.0, 10.0]);
        ix.insert(4, &[0.5, 0.5]);
        ix
    }

    #[test]
    fn nearest_first() {
        let hits = index().search(&[0.1, 0.0], 3);
        assert_eq!(hits.len(), 3);
        // d(1)=0.01, d(4)=0.41, d(2)=0.81
        assert_eq!(hits[0].id, 1);
        assert_eq!(hits[1].id, 4);
        assert_eq!(hits[2].id, 2);
        assert!(hits[0].distance <= hits[1].distance);
    }

    #[test]
    fn k_exceeds_len() {
        let hits = index().search(&[0.0, 0.0], 100);
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn zero_k() {
        assert!(index().search(&[0.0, 0.0], 0).is_empty());
    }

    #[test]
    fn prefiltered_matches_postfiltered_when_enough_results() {
        let ix = index();
        let filter = |id: u64| id.is_multiple_of(2);
        let pre = ix.search_prefiltered(&[0.0, 0.0], 2, &filter);
        let post = ix.search_filtered(&[0.0, 0.0], 2, &filter);
        assert_eq!(pre.len(), 2);
        assert_eq!(
            pre.iter().map(|h| h.id).collect::<Vec<_>>(),
            post.iter().map(|h| h.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ties_break_by_id_deterministically() {
        let mut ix = ExactIndex::new(1, Metric::L2);
        ix.insert(5, &[1.0]);
        ix.insert(3, &[1.0]);
        ix.insert(9, &[1.0]);
        let hits = ix.search(&[1.0], 2);
        assert_eq!(hits[0].id, 3);
        assert_eq!(hits[1].id, 5);
    }

    #[test]
    fn parallel_search_matches_serial() {
        let mut ix = ExactIndex::new(4, Metric::L2);
        for i in 0..3000u64 {
            let f = i as f32;
            ix.insert(i, &[f.sin(), (f * 0.7).cos(), f % 13.0, -f % 7.0]);
        }
        let q = [0.3, -0.2, 6.0, -3.0];
        let serial = ix.search(&q, 10);
        for workers in [1usize, 2, 4, 8] {
            let par = ix.search_with(&q, 10, Parallelism::Fixed(workers));
            assert_eq!(serial, par, "workers={workers}");
        }
        assert_eq!(serial, ix.search_with(&q, 10, Parallelism::Auto));
    }

    #[test]
    fn cosine_search_uses_cached_norms() {
        let mut ix = ExactIndex::new(3, Metric::Cosine);
        ix.insert(1, &[1.0, 0.0, 0.0]);
        ix.insert(2, &[0.0, 1.0, 0.0]);
        ix.insert(3, &[0.9, 0.1, 0.0]);
        ix.insert(4, &[0.0, 0.0, 0.0]); // zero vector: maximally distant
        let hits = ix.search(&[1.0, 0.05, 0.0], 4);
        assert_eq!(hits[0].id, 1);
        assert_eq!(hits[1].id, 3);
        assert_eq!(hits.last().unwrap().id, 4);
        assert!((hits.last().unwrap().distance - 1.0).abs() < 1e-6);
    }

    #[test]
    fn try_search_rejects_wrong_dimension() {
        let ix = index();
        let err = ix.try_search(&[1.0, 2.0, 3.0], 2).unwrap_err();
        assert_eq!((err.expected, err.got), (2, 3));
        assert_eq!(ix.try_search(&[1.0, 2.0], 2).unwrap().len(), 2);
    }

    #[test]
    fn topk_threshold_and_merge() {
        let mut a = TopK::new(2);
        assert_eq!(a.threshold(), f32::INFINITY);
        a.push(1, 5.0);
        a.push(2, 3.0);
        assert_eq!(a.threshold(), 5.0);
        a.push(3, 4.0); // evicts 5.0
        assert_eq!(a.threshold(), 4.0);
        let mut b = TopK::new(2);
        b.push(9, 0.5);
        b.merge(a);
        let hits = b.into_hits();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, 9);
        assert_eq!(hits[1].id, 2);
    }
}
