//! Brute-force exact nearest-neighbour search.

use crate::dataset::Dataset;
use crate::distance::Metric;
use crate::{Hit, VectorIndex};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A max-heap entry so the heap root is the *worst* of the current top-k.
#[derive(Debug, PartialEq)]
struct HeapHit(Hit);

impl Eq for HeapHit {}

impl Ord for HeapHit {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .distance
            .total_cmp(&other.0.distance)
            .then(self.0.id.cmp(&other.0.id))
    }
}

impl PartialOrd for HeapHit {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Select the `k` best hits from an iterator of candidates, best first.
pub(crate) fn top_k(candidates: impl Iterator<Item = Hit>, k: usize) -> Vec<Hit> {
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<HeapHit> = BinaryHeap::with_capacity(k + 1);
    for hit in candidates {
        if heap.len() < k {
            heap.push(HeapHit(hit));
        } else if let Some(worst) = heap.peek() {
            if hit.distance < worst.0.distance {
                heap.pop();
                heap.push(HeapHit(hit));
            }
        }
    }
    let mut out: Vec<Hit> = heap.into_iter().map(|h| h.0).collect();
    out.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
    out
}

/// Exact (brute-force) index: scans every vector. The recall ground truth
/// for IVF/HNSW, and the honest baseline for small collections.
pub struct ExactIndex {
    data: Dataset,
    metric: Metric,
}

impl ExactIndex {
    /// An empty exact index.
    pub fn new(dim: usize, metric: Metric) -> ExactIndex {
        ExactIndex {
            data: Dataset::new(dim),
            metric,
        }
    }

    /// Build from a dataset.
    pub fn from_dataset(data: Dataset, metric: Metric) -> ExactIndex {
        ExactIndex { data, metric }
    }

    /// Insert a vector.
    pub fn insert(&mut self, id: u64, vector: &[f32]) {
        self.data.push(id, vector);
    }

    /// Filtered scan that evaluates the predicate *before* computing
    /// distances — the "unified" behaviour a real engine wants, as opposed
    /// to the over-fetching default of [`VectorIndex::search_filtered`].
    pub fn search_prefiltered(
        &self,
        query: &[f32],
        k: usize,
        filter: &dyn Fn(u64) -> bool,
    ) -> Vec<Hit> {
        top_k(
            self.data
                .iter()
                .filter(|(id, _)| filter(*id))
                .map(|(id, v)| Hit {
                    id,
                    distance: self.metric.distance(query, v),
                }),
            k,
        )
    }
}

impl VectorIndex for ExactIndex {
    fn metric(&self) -> Metric {
        self.metric
    }

    fn dim(&self) -> usize {
        self.data.dim()
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn distance_of(&self, query: &[f32], id: u64) -> Option<f32> {
        self.data
            .vector_by_id(id)
            .map(|v| self.metric.distance(query, v))
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        top_k(
            self.data.iter().map(|(id, v)| Hit {
                id,
                distance: self.metric.distance(query, v),
            }),
            k,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> ExactIndex {
        let mut ix = ExactIndex::new(2, Metric::L2);
        ix.insert(1, &[0.0, 0.0]);
        ix.insert(2, &[1.0, 0.0]);
        ix.insert(3, &[10.0, 10.0]);
        ix.insert(4, &[0.5, 0.5]);
        ix
    }

    #[test]
    fn nearest_first() {
        let hits = index().search(&[0.1, 0.0], 3);
        assert_eq!(hits.len(), 3);
        // d(1)=0.01, d(4)=0.41, d(2)=0.81
        assert_eq!(hits[0].id, 1);
        assert_eq!(hits[1].id, 4);
        assert_eq!(hits[2].id, 2);
        assert!(hits[0].distance <= hits[1].distance);
    }

    #[test]
    fn k_exceeds_len() {
        let hits = index().search(&[0.0, 0.0], 100);
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn zero_k() {
        assert!(index().search(&[0.0, 0.0], 0).is_empty());
    }

    #[test]
    fn prefiltered_matches_postfiltered_when_enough_results() {
        let ix = index();
        let filter = |id: u64| id.is_multiple_of(2);
        let pre = ix.search_prefiltered(&[0.0, 0.0], 2, &filter);
        let post = ix.search_filtered(&[0.0, 0.0], 2, &filter);
        assert_eq!(pre.len(), 2);
        assert_eq!(
            pre.iter().map(|h| h.id).collect::<Vec<_>>(),
            post.iter().map(|h| h.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ties_break_by_id_deterministically() {
        let mut ix = ExactIndex::new(1, Metric::L2);
        ix.insert(5, &[1.0]);
        ix.insert(3, &[1.0]);
        ix.insert(9, &[1.0]);
        let hits = ix.search(&[1.0], 2);
        assert_eq!(hits[0].id, 3);
        assert_eq!(hits[1].id, 5);
    }
}
