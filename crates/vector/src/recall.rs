//! Recall evaluation: how much accuracy an approximate index trades away.

use crate::{ExactIndex, VectorIndex};
use std::collections::HashSet;

/// Mean recall@k of `index` against brute-force ground truth over the given
/// queries.
pub fn recall_at_k(
    index: &dyn VectorIndex,
    exact: &ExactIndex,
    queries: &[Vec<f32>],
    k: usize,
) -> f64 {
    if queries.is_empty() || k == 0 {
        return 0.0;
    }
    let mut found = 0usize;
    let mut total = 0usize;
    for q in queries {
        let truth: HashSet<u64> = exact.search(q, k).iter().map(|h| h.id).collect();
        let got: HashSet<u64> = index.search(q, k).iter().map(|h| h.id).collect();
        found += truth.intersection(&got).count();
        total += truth.len();
    }
    if total == 0 {
        0.0
    } else {
        found as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::distance::Metric;

    #[test]
    fn exact_vs_itself_is_perfect() {
        let mut d = Dataset::new(2);
        for i in 0..50 {
            d.push(i, &[i as f32, (i * 7 % 13) as f32]);
        }
        let exact = ExactIndex::from_dataset(d, Metric::L2);
        let queries = vec![vec![3.0, 4.0], vec![40.0, 1.0]];
        let r = recall_at_k(&exact, &exact, &queries, 5);
        assert_eq!(r, 1.0);
    }

    #[test]
    fn empty_inputs() {
        let exact = ExactIndex::new(2, Metric::L2);
        assert_eq!(recall_at_k(&exact, &exact, &[], 5), 0.0);
        assert_eq!(recall_at_k(&exact, &exact, &[vec![0.0, 0.0]], 0), 0.0);
    }
}
