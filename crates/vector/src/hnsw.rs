//! HNSW: hierarchical navigable small-world graph (Malkov & Yashunin).
//!
//! A simplified but faithful implementation: geometric level assignment,
//! greedy descent through upper layers, beam search (`ef`) at the base
//! layer, and neighbour-list pruning to `M` (2·M at layer 0).

use crate::dataset::Dataset;
use crate::distance::Metric;
use crate::exact::top_k;
use crate::{Hit, VectorIndex};
use rand::prelude::*;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Build/search parameters for [`HnswIndex`].
#[derive(Debug, Clone)]
pub struct HnswParams {
    /// Max neighbours per node per layer (layer 0 allows 2·M).
    pub m: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// Beam width during search (raised to `k` automatically).
    pub ef_search: usize,
    /// RNG seed for level assignment.
    pub seed: u64,
}

impl Default for HnswParams {
    fn default() -> Self {
        HnswParams {
            m: 16,
            ef_construction: 100,
            ef_search: 50,
            seed: 42,
        }
    }
}

/// Min-heap entry ordered by distance (closest first).
#[derive(PartialEq)]
struct Closest(f32, usize);
impl Eq for Closest {}
impl Ord for Closest {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.total_cmp(&self.0) // reversed: BinaryHeap is a max-heap
    }
}
impl PartialOrd for Closest {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Max-heap entry ordered by distance (farthest first).
#[derive(PartialEq)]
struct Farthest(f32, usize);
impl Eq for Farthest {}
impl Ord for Farthest {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl PartialOrd for Farthest {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// An HNSW approximate nearest-neighbour index.
pub struct HnswIndex {
    dim: usize,
    metric: Metric,
    data: Dataset,
    /// links[node][layer] = neighbour slots.
    links: Vec<Vec<Vec<usize>>>,
    entry: Option<usize>,
    max_layer: usize,
    params: HnswParams,
    level_mult: f64,
    rng: StdRng,
}

impl HnswIndex {
    /// An empty index.
    pub fn new(dim: usize, metric: Metric, params: HnswParams) -> HnswIndex {
        assert!(params.m >= 2, "HNSW needs M >= 2");
        HnswIndex {
            dim,
            metric,
            data: Dataset::new(dim),
            links: Vec::new(),
            entry: None,
            max_layer: 0,
            level_mult: 1.0 / (params.m as f64).ln(),
            rng: StdRng::seed_from_u64(params.seed),
            params,
        }
    }

    /// Build an index from a dataset.
    pub fn build(data: Dataset, metric: Metric, params: HnswParams) -> HnswIndex {
        let mut ix = HnswIndex::new(data.dim(), metric, params);
        for (id, v) in data.iter() {
            ix.insert(id, v);
        }
        ix
    }

    /// Adjust the search beam width (recall/latency knob).
    pub fn set_ef_search(&mut self, ef: usize) {
        self.params.ef_search = ef.max(1);
    }

    fn dist_to(&self, query: &[f32], slot: usize) -> f32 {
        self.metric.distance(query, self.data.vector(slot))
    }

    /// Beam search within one layer, returning up to `ef` closest slots.
    fn search_layer(
        &self,
        query: &[f32],
        entries: &[usize],
        ef: usize,
        layer: usize,
    ) -> Vec<(f32, usize)> {
        let mut visited: HashSet<usize> = entries.iter().copied().collect();
        let mut candidates: BinaryHeap<Closest> = BinaryHeap::new();
        let mut results: BinaryHeap<Farthest> = BinaryHeap::new();
        for &e in entries {
            let d = self.dist_to(query, e);
            candidates.push(Closest(d, e));
            results.push(Farthest(d, e));
        }
        while results.len() > ef {
            results.pop();
        }
        while let Some(Closest(d, node)) = candidates.pop() {
            let worst = results.peek().map(|f| f.0).unwrap_or(f32::INFINITY);
            if d > worst && results.len() >= ef {
                break;
            }
            for &nb in &self.links[node][layer] {
                if !visited.insert(nb) {
                    continue;
                }
                let dn = self.dist_to(query, nb);
                let worst = results.peek().map(|f| f.0).unwrap_or(f32::INFINITY);
                if results.len() < ef || dn < worst {
                    candidates.push(Closest(dn, nb));
                    results.push(Farthest(dn, nb));
                    while results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out: Vec<(f32, usize)> = results.into_iter().map(|f| (f.0, f.1)).collect();
        out.sort_by(|a, b| a.0.total_cmp(&b.0));
        out
    }

    fn max_links(&self, layer: usize) -> usize {
        if layer == 0 {
            self.params.m * 2
        } else {
            self.params.m
        }
    }

    /// Neighbour selection heuristic (Malkov & Yashunin, Alg. 4): keep a
    /// candidate only if it is closer to the base than to every neighbour
    /// already kept. This preserves edges *between* clusters — naive
    /// closest-only pruning disconnects tightly clustered data and recall
    /// collapses. Skipped candidates backfill remaining slots
    /// (keepPrunedConnections).
    fn select_heuristic(&self, candidates: &[(f32, usize)], m: usize) -> Vec<usize> {
        let mut kept: Vec<(f32, usize)> = Vec::with_capacity(m);
        let mut skipped: Vec<usize> = Vec::new();
        for &(d_base, cand) in candidates {
            if kept.len() >= m {
                break;
            }
            let diverse = kept.iter().all(|&(_, k)| {
                self.metric
                    .distance(self.data.vector(cand), self.data.vector(k))
                    > d_base
            });
            if diverse {
                kept.push((d_base, cand));
            } else {
                skipped.push(cand);
            }
        }
        let mut out: Vec<usize> = kept.into_iter().map(|(_, s)| s).collect();
        for s in skipped {
            if out.len() >= m {
                break;
            }
            out.push(s);
        }
        out
    }

    /// Insert a vector.
    pub fn insert(&mut self, id: u64, vector: &[f32]) {
        assert_eq!(vector.len(), self.dim, "vector dimension mismatch");
        let slot = self.data.len();
        self.data.push(id, vector);
        let level = (-self.rng.gen::<f64>().ln() * self.level_mult).floor() as usize;
        self.links.push(vec![Vec::new(); level + 1]);

        let Some(mut ep) = self.entry else {
            self.entry = Some(slot);
            self.max_layer = level;
            return;
        };

        // Greedy descent through layers above the insertion level.
        let query = self.data.vector(slot).to_vec();
        for layer in ((level + 1)..=self.max_layer).rev() {
            ep = self.search_layer(&query, &[ep], 1, layer)[0].1;
        }

        // Connect at each layer from min(level, max_layer) down to 0.
        let mut entries = vec![ep];
        for layer in (0..=level.min(self.max_layer)).rev() {
            let found = self.search_layer(&query, &entries, self.params.ef_construction, layer);
            let m = self.max_links(layer);
            let neighbours = self.select_heuristic(&found, m);
            for &nb in &neighbours {
                self.links[slot][layer].push(nb);
                self.links[nb][layer].push(slot);
                // Prune over-full neighbour lists with the same diversity
                // heuristic.
                if self.links[nb][layer].len() > self.max_links(layer) {
                    let centre = self.data.vector(nb).to_vec();
                    let mut scored: Vec<(f32, usize)> = self.links[nb][layer]
                        .iter()
                        .map(|&s| (self.dist_to(&centre, s), s))
                        .collect();
                    scored.sort_by(|a, b| a.0.total_cmp(&b.0));
                    self.links[nb][layer] = self.select_heuristic(&scored, self.max_links(layer));
                }
            }
            entries = found.into_iter().map(|(_, s)| s).collect();
            if entries.is_empty() {
                entries = vec![ep];
            }
        }

        if level > self.max_layer {
            self.max_layer = level;
            self.entry = Some(slot);
        }
    }
}

impl VectorIndex for HnswIndex {
    fn metric(&self) -> Metric {
        self.metric
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn distance_of(&self, query: &[f32], id: u64) -> Option<f32> {
        self.data
            .vector_by_id(id)
            .map(|v| self.metric.distance(query, v))
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        let Some(mut ep) = self.entry else {
            return Vec::new();
        };
        if k == 0 {
            return Vec::new();
        }
        for layer in (1..=self.max_layer).rev() {
            ep = self.search_layer(query, &[ep], 1, layer)[0].1;
        }
        let ef = self.params.ef_search.max(k);
        let found = self.search_layer(query, &[ep], ef, 0);
        top_k(
            found.into_iter().map(|(d, s)| Hit {
                id: self.data.id(s),
                distance: d,
            }),
            k,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactIndex;

    fn random_dataset(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(dim);
        for i in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen::<f32>()).collect();
            d.push(i as u64, &v);
        }
        d
    }

    #[test]
    fn empty_index() {
        let ix = HnswIndex::new(4, Metric::L2, HnswParams::default());
        assert!(ix.search(&[0.0; 4], 5).is_empty());
    }

    #[test]
    fn single_vector() {
        let mut ix = HnswIndex::new(2, Metric::L2, HnswParams::default());
        ix.insert(99, &[1.0, 1.0]);
        let hits = ix.search(&[1.0, 1.0], 3);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 99);
        assert_eq!(hits[0].distance, 0.0);
    }

    #[test]
    fn exact_match_found() {
        let d = random_dataset(500, 8, 1);
        let q = d.vector(123).to_vec();
        let ix = HnswIndex::build(d, Metric::L2, HnswParams::default());
        let hits = ix.search(&q, 1);
        assert_eq!(hits[0].id, 123);
        assert!(hits[0].distance < 1e-9);
    }

    #[test]
    fn recall_at_10_reasonable() {
        let d = random_dataset(2000, 16, 2);
        let exact = ExactIndex::from_dataset(d.clone(), Metric::L2);
        let ix = HnswIndex::build(d, Metric::L2, HnswParams::default());
        let mut rng = StdRng::seed_from_u64(3);
        let mut found = 0usize;
        let mut total = 0usize;
        for _ in 0..20 {
            let q: Vec<f32> = (0..16).map(|_| rng.gen::<f32>()).collect();
            let truth: HashSet<u64> = exact.search(&q, 10).iter().map(|h| h.id).collect();
            let got: HashSet<u64> = ix.search(&q, 10).iter().map(|h| h.id).collect();
            found += truth.intersection(&got).count();
            total += truth.len();
        }
        let recall = found as f64 / total as f64;
        assert!(recall >= 0.9, "HNSW recall@10 too low: {recall}");
    }

    #[test]
    fn higher_ef_does_not_reduce_recall_much() {
        let d = random_dataset(1000, 8, 4);
        let exact = ExactIndex::from_dataset(d.clone(), Metric::L2);
        let mut ix = HnswIndex::build(
            d,
            Metric::L2,
            HnswParams {
                ef_search: 4,
                ..Default::default()
            },
        );
        let q = vec![0.5f32; 8];
        let truth: HashSet<u64> = exact.search(&q, 10).iter().map(|h| h.id).collect();
        let recall = |ix: &HnswIndex| {
            let got: HashSet<u64> = ix.search(&q, 10).iter().map(|h| h.id).collect();
            got.intersection(&truth).count()
        };
        let low = recall(&ix);
        ix.set_ef_search(200);
        let high = recall(&ix);
        assert!(high >= low, "ef=200 recall {high} < ef=4 recall {low}");
        assert!(high >= 9);
    }

    #[test]
    fn results_sorted_by_distance() {
        let d = random_dataset(300, 4, 5);
        let ix = HnswIndex::build(d, Metric::L2, HnswParams::default());
        let hits = ix.search(&[0.5; 4], 10);
        for w in hits.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn cosine_metric_supported() {
        let mut ix = HnswIndex::new(2, Metric::Cosine, HnswParams::default());
        ix.insert(1, &[1.0, 0.0]);
        ix.insert(2, &[0.0, 1.0]);
        ix.insert(3, &[0.7, 0.7]);
        let hits = ix.search(&[1.0, 0.1], 1);
        assert_eq!(hits[0].id, 1);
    }
}
