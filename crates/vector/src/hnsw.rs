//! HNSW: hierarchical navigable small-world graph (Malkov & Yashunin).
//!
//! A simplified but faithful implementation: geometric level assignment,
//! greedy descent through upper layers, beam search (`ef`) at the base
//! layer, and neighbour-list pruning to `M` (2·M at layer 0).
//!
//! Per-query traversal is inherently sequential (each hop depends on the
//! last), so single-query speed comes from kernel work: epoch-stamped
//! visited marks reused across queries (no per-query hash set), neighbour
//! distances evaluated in batches through the blocked kernels, and cosine
//! served from norms cached at insert. Multi-query parallelism rides the
//! default [`VectorIndex::search_many`], which partitions *queries* across
//! the shared worker pool.

use crate::dataset::Dataset;
use crate::distance::{norm, Metric};
use crate::exact::top_k;
use crate::{DimensionMismatch, Hit, VectorIndex};
use rand::prelude::*;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Mutex;

/// Build/search parameters for [`HnswIndex`].
#[derive(Debug, Clone)]
pub struct HnswParams {
    /// Max neighbours per node per layer (layer 0 allows 2·M).
    pub m: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// Beam width during search (raised to `k` automatically).
    pub ef_search: usize,
    /// RNG seed for level assignment.
    pub seed: u64,
}

impl Default for HnswParams {
    fn default() -> Self {
        HnswParams {
            m: 16,
            ef_construction: 100,
            ef_search: 50,
            seed: 42,
        }
    }
}

/// Min-heap entry ordered by distance (closest first).
#[derive(PartialEq)]
struct Closest(f32, usize);
impl Eq for Closest {}
impl Ord for Closest {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.total_cmp(&self.0) // reversed: BinaryHeap is a max-heap
    }
}
impl PartialOrd for Closest {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Max-heap entry ordered by distance (farthest first).
#[derive(PartialEq)]
struct Farthest(f32, usize);
impl Eq for Farthest {}
impl Ord for Farthest {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl PartialOrd for Farthest {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable per-traversal scratch: an epoch-stamped visited array (clearing
/// is an epoch bump, not a wipe) plus a neighbour batch buffer. Borrowed
/// from a pool per search so concurrent queries each get their own, and the
/// allocation survives across queries — the per-query `HashSet` this
/// replaces was the dominant non-kernel cost of a traversal.
#[derive(Default)]
struct Scratch {
    stamp: Vec<u32>,
    epoch: u32,
    /// Unvisited neighbours of the node being expanded, gathered before any
    /// distance is computed so the kernel loop stays tight.
    batch: Vec<usize>,
    /// Distances for `batch`, same order.
    dists: Vec<f32>,
}

impl Scratch {
    /// Start a fresh traversal over `n` slots.
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // u32 wrapped: old stamps could alias the new epoch. Once per
            // 4 billion traversals, pay the wipe.
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Mark `slot` visited; returns false if it already was this traversal.
    #[inline]
    fn visit(&mut self, slot: usize) -> bool {
        if self.stamp[slot] == self.epoch {
            return false;
        }
        self.stamp[slot] = self.epoch;
        true
    }
}

/// An HNSW approximate nearest-neighbour index.
pub struct HnswIndex {
    dim: usize,
    metric: Metric,
    data: Dataset,
    /// links[node][layer] = neighbour slots.
    links: Vec<Vec<Vec<usize>>>,
    entry: Option<usize>,
    max_layer: usize,
    params: HnswParams,
    level_mult: f64,
    rng: StdRng,
    /// Pool of traversal scratches; one is checked out per in-flight query.
    scratch: Mutex<Vec<Scratch>>,
}

impl HnswIndex {
    /// An empty index.
    pub fn new(dim: usize, metric: Metric, params: HnswParams) -> HnswIndex {
        assert!(params.m >= 2, "HNSW needs M >= 2");
        HnswIndex {
            dim,
            metric,
            data: Dataset::new(dim),
            links: Vec::new(),
            entry: None,
            max_layer: 0,
            level_mult: 1.0 / (params.m as f64).ln(),
            rng: StdRng::seed_from_u64(params.seed),
            params,
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// Build an index from a dataset.
    pub fn build(data: Dataset, metric: Metric, params: HnswParams) -> HnswIndex {
        let mut ix = HnswIndex::new(data.dim(), metric, params);
        for (id, v) in data.iter() {
            ix.insert(id, v);
        }
        ix
    }

    /// Adjust the search beam width (recall/latency knob).
    pub fn set_ef_search(&mut self, ef: usize) {
        self.params.ef_search = ef.max(1);
    }

    fn take_scratch(&self) -> Scratch {
        self.scratch
            .lock()
            .expect("scratch pool lock")
            .pop()
            .unwrap_or_default()
    }

    fn return_scratch(&self, s: Scratch) {
        self.scratch.lock().expect("scratch pool lock").push(s);
    }

    #[inline]
    fn dist_to(&self, query: &[f32], query_norm: f32, slot: usize) -> f32 {
        self.metric.distance_prenorm(
            query,
            self.data.vector(slot),
            query_norm,
            self.data.norm_of_slot(slot),
        )
    }

    /// Beam search within one layer, returning up to `ef` closest slots.
    fn search_layer(
        &self,
        query: &[f32],
        query_norm: f32,
        entries: &[usize],
        ef: usize,
        layer: usize,
        scratch: &mut Scratch,
    ) -> Vec<(f32, usize)> {
        scratch.begin(self.data.len());
        let mut candidates: BinaryHeap<Closest> = BinaryHeap::new();
        let mut results: BinaryHeap<Farthest> = BinaryHeap::new();
        for &e in entries {
            if !scratch.visit(e) {
                continue;
            }
            let d = self.dist_to(query, query_norm, e);
            candidates.push(Closest(d, e));
            results.push(Farthest(d, e));
        }
        while results.len() > ef {
            results.pop();
        }
        while let Some(Closest(d, node)) = candidates.pop() {
            let worst = results.peek().map(|f| f.0).unwrap_or(f32::INFINITY);
            if d > worst && results.len() >= ef {
                break;
            }
            // Gather this node's unvisited neighbours, then score them as
            // one batch: the distance loop runs back-to-back kernel calls
            // with no heap bookkeeping interleaved.
            scratch.batch.clear();
            for &nb in &self.links[node][layer] {
                if scratch.visit(nb) {
                    scratch.batch.push(nb);
                }
            }
            scratch.dists.clear();
            scratch.dists.extend(
                scratch
                    .batch
                    .iter()
                    .map(|&nb| self.dist_to(query, query_norm, nb)),
            );
            for (&nb, &dn) in scratch.batch.iter().zip(&scratch.dists) {
                let worst = results.peek().map(|f| f.0).unwrap_or(f32::INFINITY);
                if results.len() < ef || dn < worst {
                    candidates.push(Closest(dn, nb));
                    results.push(Farthest(dn, nb));
                    while results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out: Vec<(f32, usize)> = results.into_iter().map(|f| (f.0, f.1)).collect();
        out.sort_by(|a, b| a.0.total_cmp(&b.0));
        out
    }

    fn max_links(&self, layer: usize) -> usize {
        if layer == 0 {
            self.params.m * 2
        } else {
            self.params.m
        }
    }

    /// Neighbour selection heuristic (Malkov & Yashunin, Alg. 4): keep a
    /// candidate only if it is closer to the base than to every neighbour
    /// already kept. This preserves edges *between* clusters — naive
    /// closest-only pruning disconnects tightly clustered data and recall
    /// collapses. Skipped candidates backfill remaining slots
    /// (keepPrunedConnections).
    fn select_heuristic(&self, candidates: &[(f32, usize)], m: usize) -> Vec<usize> {
        let mut kept: Vec<(f32, usize)> = Vec::with_capacity(m);
        let mut skipped: Vec<usize> = Vec::new();
        for &(d_base, cand) in candidates {
            if kept.len() >= m {
                break;
            }
            let diverse = kept.iter().all(|&(_, k)| {
                self.metric
                    .distance(self.data.vector(cand), self.data.vector(k))
                    > d_base
            });
            if diverse {
                kept.push((d_base, cand));
            } else {
                skipped.push(cand);
            }
        }
        let mut out: Vec<usize> = kept.into_iter().map(|(_, s)| s).collect();
        for s in skipped {
            if out.len() >= m {
                break;
            }
            out.push(s);
        }
        out
    }

    /// Insert a vector. Panics on dimension mismatch; the typed alternative
    /// is [`HnswIndex::try_insert`].
    pub fn insert(&mut self, id: u64, vector: &[f32]) {
        self.try_insert(id, vector)
            .expect("vector dimension mismatch");
    }

    /// [`HnswIndex::insert`] with a typed dimension error.
    pub fn try_insert(&mut self, id: u64, vector: &[f32]) -> Result<(), DimensionMismatch> {
        let slot = self.data.len();
        self.data.try_push(id, vector)?;
        let level = (-self.rng.gen::<f64>().ln() * self.level_mult).floor() as usize;
        self.links.push(vec![Vec::new(); level + 1]);

        let Some(mut ep) = self.entry else {
            self.entry = Some(slot);
            self.max_layer = level;
            return Ok(());
        };

        // Greedy descent through layers above the insertion level.
        let query = self.data.vector(slot).to_vec();
        let qn = self.data.norm_of_slot(slot);
        let mut scratch = self.take_scratch();
        for layer in ((level + 1)..=self.max_layer).rev() {
            ep = self.search_layer(&query, qn, &[ep], 1, layer, &mut scratch)[0].1;
        }

        // Connect at each layer from min(level, max_layer) down to 0.
        let mut entries = vec![ep];
        for layer in (0..=level.min(self.max_layer)).rev() {
            let found = self.search_layer(
                &query,
                qn,
                &entries,
                self.params.ef_construction,
                layer,
                &mut scratch,
            );
            let m = self.max_links(layer);
            let neighbours = self.select_heuristic(&found, m);
            for &nb in &neighbours {
                self.links[slot][layer].push(nb);
                self.links[nb][layer].push(slot);
                // Prune over-full neighbour lists with the same diversity
                // heuristic.
                if self.links[nb][layer].len() > self.max_links(layer) {
                    let centre = self.data.vector(nb).to_vec();
                    let centre_norm = self.data.norm_of_slot(nb);
                    let mut scored: Vec<(f32, usize)> = self.links[nb][layer]
                        .iter()
                        .map(|&s| (self.dist_to(&centre, centre_norm, s), s))
                        .collect();
                    scored.sort_by(|a, b| a.0.total_cmp(&b.0));
                    self.links[nb][layer] = self.select_heuristic(&scored, self.max_links(layer));
                }
            }
            entries = found.into_iter().map(|(_, s)| s).collect();
            if entries.is_empty() {
                entries = vec![ep];
            }
        }

        if level > self.max_layer {
            self.max_layer = level;
            self.entry = Some(slot);
        }
        self.return_scratch(scratch);
        Ok(())
    }
}

impl VectorIndex for HnswIndex {
    fn metric(&self) -> Metric {
        self.metric
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn distance_of(&self, query: &[f32], id: u64) -> Option<f32> {
        self.data
            .vector_by_id(id)
            .map(|v| self.metric.distance(query, v))
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        let Some(mut ep) = self.entry else {
            return Vec::new();
        };
        if k == 0 {
            return Vec::new();
        }
        let qn = norm(query);
        let mut scratch = self.take_scratch();
        for layer in (1..=self.max_layer).rev() {
            ep = self.search_layer(query, qn, &[ep], 1, layer, &mut scratch)[0].1;
        }
        let ef = self.params.ef_search.max(k);
        let found = self.search_layer(query, qn, &[ep], ef, 0, &mut scratch);
        self.return_scratch(scratch);
        top_k(
            found.into_iter().map(|(d, s)| Hit {
                id: self.data.id(s),
                distance: d,
            }),
            k,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactIndex;
    use std::collections::HashSet;

    fn random_dataset(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(dim);
        for i in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen::<f32>()).collect();
            d.push(i as u64, &v);
        }
        d
    }

    #[test]
    fn empty_index() {
        let ix = HnswIndex::new(4, Metric::L2, HnswParams::default());
        assert!(ix.search(&[0.0; 4], 5).is_empty());
    }

    #[test]
    fn single_vector() {
        let mut ix = HnswIndex::new(2, Metric::L2, HnswParams::default());
        ix.insert(99, &[1.0, 1.0]);
        let hits = ix.search(&[1.0, 1.0], 3);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 99);
        assert_eq!(hits[0].distance, 0.0);
    }

    #[test]
    fn exact_match_found() {
        let d = random_dataset(500, 8, 1);
        let q = d.vector(123).to_vec();
        let ix = HnswIndex::build(d, Metric::L2, HnswParams::default());
        let hits = ix.search(&q, 1);
        assert_eq!(hits[0].id, 123);
        assert!(hits[0].distance < 1e-9);
    }

    #[test]
    fn recall_at_10_reasonable() {
        let d = random_dataset(2000, 16, 2);
        let exact = ExactIndex::from_dataset(d.clone(), Metric::L2);
        let ix = HnswIndex::build(d, Metric::L2, HnswParams::default());
        let mut rng = StdRng::seed_from_u64(3);
        let mut found = 0usize;
        let mut total = 0usize;
        for _ in 0..20 {
            let q: Vec<f32> = (0..16).map(|_| rng.gen::<f32>()).collect();
            let truth: HashSet<u64> = exact.search(&q, 10).iter().map(|h| h.id).collect();
            let got: HashSet<u64> = ix.search(&q, 10).iter().map(|h| h.id).collect();
            found += truth.intersection(&got).count();
            total += truth.len();
        }
        let recall = found as f64 / total as f64;
        assert!(recall >= 0.9, "HNSW recall@10 too low: {recall}");
    }

    #[test]
    fn higher_ef_does_not_reduce_recall_much() {
        let d = random_dataset(1000, 8, 4);
        let exact = ExactIndex::from_dataset(d.clone(), Metric::L2);
        let mut ix = HnswIndex::build(
            d,
            Metric::L2,
            HnswParams {
                ef_search: 4,
                ..Default::default()
            },
        );
        let q = vec![0.5f32; 8];
        let truth: HashSet<u64> = exact.search(&q, 10).iter().map(|h| h.id).collect();
        let recall = |ix: &HnswIndex| {
            let got: HashSet<u64> = ix.search(&q, 10).iter().map(|h| h.id).collect();
            got.intersection(&truth).count()
        };
        let low = recall(&ix);
        ix.set_ef_search(200);
        let high = recall(&ix);
        assert!(high >= low, "ef=200 recall {high} < ef=4 recall {low}");
        assert!(high >= 9);
    }

    #[test]
    fn results_sorted_by_distance() {
        let d = random_dataset(300, 4, 5);
        let ix = HnswIndex::build(d, Metric::L2, HnswParams::default());
        let hits = ix.search(&[0.5; 4], 10);
        for w in hits.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn cosine_metric_supported() {
        let mut ix = HnswIndex::new(2, Metric::Cosine, HnswParams::default());
        ix.insert(1, &[1.0, 0.0]);
        ix.insert(2, &[0.0, 1.0]);
        ix.insert(3, &[0.7, 0.7]);
        let hits = ix.search(&[1.0, 0.1], 1);
        assert_eq!(hits[0].id, 1);
    }

    #[test]
    fn try_insert_rejects_wrong_dimension() {
        let mut ix = HnswIndex::new(2, Metric::L2, HnswParams::default());
        ix.insert(1, &[1.0, 0.0]);
        let err = ix.try_insert(2, &[1.0, 0.0, 0.0]).unwrap_err();
        assert_eq!((err.expected, err.got), (2, 3));
        assert_eq!(ix.len(), 1, "failed insert must not grow the index");
        // Graph state untouched: search still works.
        assert_eq!(ix.search(&[1.0, 0.0], 1)[0].id, 1);
    }

    #[test]
    fn repeated_searches_reuse_scratch() {
        let d = random_dataset(500, 8, 9);
        let ix = HnswIndex::build(d, Metric::L2, HnswParams::default());
        let q = vec![0.5f32; 8];
        let first = ix.search(&q, 5);
        for _ in 0..50 {
            assert_eq!(ix.search(&q, 5), first, "search must be deterministic");
        }
        // Only one scratch should exist after serial reuse.
        assert_eq!(ix.scratch.lock().unwrap().len(), 1);
    }

    #[test]
    fn search_many_matches_serial_searches() {
        use crate::Parallelism;
        let d = random_dataset(800, 8, 11);
        let ix = HnswIndex::build(d, Metric::L2, HnswParams::default());
        let mut rng = StdRng::seed_from_u64(12);
        let queries: Vec<Vec<f32>> = (0..16)
            .map(|_| (0..8).map(|_| rng.gen::<f32>()).collect())
            .collect();
        let serial: Vec<Vec<Hit>> = queries.iter().map(|q| ix.search(q, 5)).collect();
        for par in [
            Parallelism::Serial,
            Parallelism::Fixed(4),
            Parallelism::Auto,
        ] {
            assert_eq!(ix.search_many(&queries, 5, par), serial);
        }
    }
}
