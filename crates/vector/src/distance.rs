//! Distance kernels.
//!
//! Two tiers live here:
//!
//! - **Blocked kernels** ([`l2_sq`], [`dot`], [`cosine_distance`]): the hot
//!   path. Each loop runs [`LANES`] independent f32 accumulators over
//!   `chunks_exact` blocks, so LLVM autovectorizes it (no sequential
//!   float-add dependency chain) and drops the per-element bounds checks.
//! - **Scalar references** ([`scalar`]): the original one-accumulator loops,
//!   kept as the correctness oracle. `tests/ann_equivalence.rs` pins
//!   blocked == scalar (within reassociation tolerance) on NaN, zero-vector
//!   and odd-length inputs, and `BENCH_ann.json` floors blocked ≥ 2× scalar.
//!
//! Cosine additionally has a *pre-normed* entry point
//! ([`Metric::distance_prenorm`]) so index scans that store per-row norms
//! (see [`crate::dataset::Dataset::norm_of_slot`]) stop recomputing
//! `norm(b)` on every comparison — that recomputation doubled the FLOPs of
//! every cosine scan.

/// f32 lanes per blocked-loop iteration. Eight lanes keep two full SSE
/// vectors (or one AVX vector) of independent accumulators in flight.
pub const LANES: usize = 8;

/// Distance/similarity metric. All metrics are exposed as *distances*
/// (smaller = closer); similarities are negated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Squared Euclidean distance (monotone in L2; cheaper — no sqrt).
    L2,
    /// Cosine distance: `1 - cos(a, b)`.
    Cosine,
    /// Negative inner product (for maximum-inner-product search).
    Dot,
}

impl Metric {
    /// Distance between two equal-length vectors.
    ///
    /// Dimensions are the caller's contract: the typed
    /// [`crate::DimensionMismatch`] check lives at the index insert/search
    /// boundary ([`crate::VectorIndex::try_search`],
    /// [`crate::dataset::Dataset::try_push`]), not in this hot loop.
    #[inline]
    pub fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Metric::L2 => l2_sq(a, b),
            Metric::Cosine => cosine_distance(a, b),
            Metric::Dot => -dot(a, b),
        }
    }

    /// Like [`Metric::distance`], but with both norms supplied by the
    /// caller. Only cosine consumes them; the other metrics ignore the
    /// hints, so scans can call this unconditionally with cached norms.
    #[inline]
    pub fn distance_prenorm(&self, a: &[f32], b: &[f32], norm_a: f32, norm_b: f32) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Metric::L2 => l2_sq(a, b),
            Metric::Cosine => {
                if norm_a == 0.0 || norm_b == 0.0 {
                    return 1.0;
                }
                1.0 - dot(a, b) / (norm_a * norm_b)
            }
            Metric::Dot => -dot(a, b),
        }
    }

    /// Whether scans benefit from cached row norms (cosine only).
    #[inline]
    pub fn uses_norms(&self) -> bool {
        matches!(self, Metric::Cosine)
    }
}

/// Squared Euclidean distance (blocked, autovectorizable).
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0f32; LANES];
    let chunks_a = a.chunks_exact(LANES);
    let chunks_b = b.chunks_exact(LANES);
    let tail_a = chunks_a.remainder();
    let tail_b = chunks_b.remainder();
    for (ca, cb) in chunks_a.zip(chunks_b) {
        for i in 0..LANES {
            let d = ca[i] - cb[i];
            acc[i] += d * d;
        }
    }
    let mut tail = 0f32;
    for (x, y) in tail_a.iter().zip(tail_b) {
        let d = x - y;
        tail += d * d;
    }
    acc.iter().sum::<f32>() + tail
}

/// Inner product (blocked, autovectorizable).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0f32; LANES];
    let chunks_a = a.chunks_exact(LANES);
    let chunks_b = b.chunks_exact(LANES);
    let tail_a = chunks_a.remainder();
    let tail_b = chunks_b.remainder();
    for (ca, cb) in chunks_a.zip(chunks_b) {
        for i in 0..LANES {
            acc[i] += ca[i] * cb[i];
        }
    }
    let mut tail = 0f32;
    for (x, y) in tail_a.iter().zip(tail_b) {
        tail += x * y;
    }
    acc.iter().sum::<f32>() + tail
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine distance `1 - cos`; zero vectors are maximally distant.
#[inline]
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - dot(a, b) / (na * nb)
}

/// Normalize a vector in place to unit length (no-op for zero vectors).
pub fn normalize(v: &mut [f32]) {
    let n = norm(v);
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

/// One-query-vs-many-rows batched scoring over contiguous row storage.
///
/// `rows` holds `out.len()` vectors of `dim` floats back to back (the
/// [`crate::dataset::Dataset`] layout); `row_norms`, when present, carries
/// one precomputed Euclidean norm per row (only cosine reads it).
/// `query_norm` is the query's norm, computed once per scan by the caller.
///
/// Writing a bounded block of distances (the callers hand in a stack
/// buffer, not an n-sized array) keeps the scoring loop free of top-k heap
/// branches while never materializing a full distance array.
#[inline]
pub fn score_block(
    metric: Metric,
    query: &[f32],
    rows: &[f32],
    dim: usize,
    row_norms: Option<&[f32]>,
    query_norm: f32,
    out: &mut [f32],
) {
    debug_assert_eq!(rows.len(), out.len() * dim);
    match (metric, row_norms) {
        (Metric::Cosine, Some(norms)) => {
            debug_assert_eq!(norms.len(), out.len());
            for (i, row) in rows.chunks_exact(dim).enumerate() {
                out[i] = metric.distance_prenorm(query, row, query_norm, norms[i]);
            }
        }
        _ => {
            for (i, row) in rows.chunks_exact(dim).enumerate() {
                out[i] = metric.distance(query, row);
            }
        }
    }
}

/// The original single-accumulator loops, kept verbatim as the correctness
/// oracle for the blocked kernels (and the baseline `BENCH_ann.json`
/// measures the blocked speedup against).
pub mod scalar {
    /// Reference squared Euclidean distance.
    #[inline]
    pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| {
                let d = x - y;
                d * d
            })
            .sum()
    }

    /// Reference inner product.
    #[inline]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// Reference cosine distance.
    #[inline]
    pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
        let na = dot(a, a).sqrt();
        let nb = dot(b, b).sqrt();
        if na == 0.0 || nb == 0.0 {
            return 1.0;
        }
        1.0 - dot(a, b) / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_basics() {
        assert_eq!(l2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(l2_sq(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn cosine_range() {
        assert!((cosine_distance(&[1.0, 0.0], &[1.0, 0.0])).abs() < 1e-6);
        assert!((cosine_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-6);
        assert!((cosine_distance(&[1.0, 0.0], &[-1.0, 0.0]) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector() {
        assert_eq!(cosine_distance(&[0.0, 0.0], &[1.0, 0.0]), 1.0);
    }

    #[test]
    fn cosine_scale_invariant() {
        let a = [0.3, -0.7, 0.2];
        let b = [1.1, 0.4, -0.9];
        let scaled: Vec<f32> = a.iter().map(|x| x * 42.0).collect();
        assert!((cosine_distance(&a, &b) - cosine_distance(&scaled, &b)).abs() < 1e-5);
    }

    #[test]
    fn dot_metric_is_negated() {
        // Larger inner product => smaller "distance".
        let q = [1.0, 1.0];
        let close = [2.0, 2.0];
        let far = [0.1, 0.1];
        assert!(Metric::Dot.distance(&q, &close) < Metric::Dot.distance(&q, &far));
    }

    #[test]
    fn normalize_unit_length() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn blocked_matches_scalar_past_one_lane_block() {
        // 19 elements: two full 8-lane blocks plus a 3-element tail.
        let a: Vec<f32> = (0..19).map(|i| (i as f32) * 0.37 - 2.0).collect();
        let b: Vec<f32> = (0..19).map(|i| (i as f32) * -0.21 + 1.5).collect();
        assert!((l2_sq(&a, &b) - scalar::l2_sq(&a, &b)).abs() < 1e-3);
        assert!((dot(&a, &b) - scalar::dot(&a, &b)).abs() < 1e-3);
        assert!((cosine_distance(&a, &b) - scalar::cosine_distance(&a, &b)).abs() < 1e-5);
    }

    #[test]
    fn prenorm_cosine_matches_plain() {
        let a = [0.3f32, -0.7, 0.2, 0.9, -0.1];
        let b = [1.1f32, 0.4, -0.9, 0.0, 0.5];
        let plain = Metric::Cosine.distance(&a, &b);
        let pre = Metric::Cosine.distance_prenorm(&a, &b, norm(&a), norm(&b));
        assert!((plain - pre).abs() < 1e-6);
        // Zero-norm hint reproduces the zero-vector convention.
        assert_eq!(Metric::Cosine.distance_prenorm(&a, &b, 0.0, 1.0), 1.0);
        // L2/Dot ignore the hints entirely.
        assert_eq!(
            Metric::L2.distance_prenorm(&a, &b, 0.0, 0.0),
            Metric::L2.distance(&a, &b)
        );
    }

    #[test]
    fn score_block_fills_distances() {
        let rows: Vec<f32> = vec![0.0, 0.0, 3.0, 4.0, 1.0, 0.0];
        let mut out = [0f32; 3];
        score_block(Metric::L2, &[0.0, 0.0], &rows, 2, None, 0.0, &mut out);
        assert_eq!(out, [0.0, 25.0, 1.0]);
        // Cosine with cached norms matches the plain kernel.
        let norms: Vec<f32> = rows.chunks_exact(2).map(norm).collect();
        let q = [1.0f32, 1.0];
        let mut pre = [0f32; 3];
        score_block(
            Metric::Cosine,
            &q,
            &rows,
            2,
            Some(&norms),
            norm(&q),
            &mut pre,
        );
        for (i, row) in rows.chunks_exact(2).enumerate() {
            assert!((pre[i] - cosine_distance(&q, row)).abs() < 1e-6);
        }
    }
}
