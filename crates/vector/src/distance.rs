//! Distance kernels.

/// Distance/similarity metric. All metrics are exposed as *distances*
/// (smaller = closer); similarities are negated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Squared Euclidean distance (monotone in L2; cheaper — no sqrt).
    L2,
    /// Cosine distance: `1 - cos(a, b)`.
    Cosine,
    /// Negative inner product (for maximum-inner-product search).
    Dot,
}

impl Metric {
    /// Distance between two equal-length vectors.
    #[inline]
    pub fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Metric::L2 => l2_sq(a, b),
            Metric::Cosine => cosine_distance(a, b),
            Metric::Dot => -dot(a, b),
        }
    }
}

/// Squared Euclidean distance.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Inner product.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine distance `1 - cos`; zero vectors are maximally distant.
#[inline]
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - dot(a, b) / (na * nb)
}

/// Normalize a vector in place to unit length (no-op for zero vectors).
pub fn normalize(v: &mut [f32]) {
    let n = norm(v);
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_basics() {
        assert_eq!(l2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(l2_sq(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn cosine_range() {
        assert!((cosine_distance(&[1.0, 0.0], &[1.0, 0.0])).abs() < 1e-6);
        assert!((cosine_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-6);
        assert!((cosine_distance(&[1.0, 0.0], &[-1.0, 0.0]) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector() {
        assert_eq!(cosine_distance(&[0.0, 0.0], &[1.0, 0.0]), 1.0);
    }

    #[test]
    fn cosine_scale_invariant() {
        let a = [0.3, -0.7, 0.2];
        let b = [1.1, 0.4, -0.9];
        let scaled: Vec<f32> = a.iter().map(|x| x * 42.0).collect();
        assert!((cosine_distance(&a, &b) - cosine_distance(&scaled, &b)).abs() < 1e-5);
    }

    #[test]
    fn dot_metric_is_negated() {
        // Larger inner product => smaller "distance".
        let q = [1.0, 1.0];
        let close = [2.0, 2.0];
        let far = [0.1, 0.1];
        assert!(Metric::Dot.distance(&q, &close) < Metric::Dot.distance(&q, &far));
    }

    #[test]
    fn normalize_unit_length() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }
}
