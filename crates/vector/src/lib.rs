//! # backbone-vector
//!
//! Vector similarity search substrate for the hybrid-workload experiments —
//! the "vectors" in the paper's observation that *"solutions are crappy when
//! you combine diverse workloads like vectors, keywords, and relational
//! queries in commercial systems"*.
//!
//! Three interchangeable indexes implement [`VectorIndex`]:
//!
//! - [`exact::ExactIndex`]: brute-force scan (the ground truth),
//! - [`ivf::IvfIndex`]: inverted-file index over k-means partitions,
//! - [`hnsw::HnswIndex`]: hierarchical navigable small world graph.
//!
//! The crate rides the same engine machinery as the relational operators:
//! distance loops are blocked and autovectorizable ([`distance`]), exact and
//! IVF scans fuse scoring into per-worker top-k heaps merged at drain
//! ([`exact::TopK`]), and [`VectorIndex::search_with`] /
//! [`VectorIndex::search_many`] partition work across the shared
//! `backbone_query` worker pool under the typed
//! [`Parallelism`](backbone_query::Parallelism) knob — degrading to the
//! serial path on one core exactly like the relational executor.

pub mod dataset;
pub mod distance;
pub mod exact;
pub mod hnsw;
pub mod ivf;
pub mod recall;

pub use dataset::Dataset;
pub use distance::Metric;
pub use exact::ExactIndex;
pub use hnsw::HnswIndex;
pub use ivf::IvfIndex;

// The vector side shares the relational executor's parallelism vocabulary
// and worker pool instead of inventing its own.
use backbone_query::pool::run_workers;
pub use backbone_query::Parallelism;

/// A query or inserted vector had the wrong dimensionality for the index.
///
/// This is the *typed* boundary check: `Metric::distance` itself only
/// `debug_assert`s (it is the innermost hot loop), so in release builds a
/// wrong-dimension query would silently score garbage. Every entry point
/// that crosses from caller data into kernel space —
/// [`VectorIndex::try_search`], [`Dataset::try_push`], the index `insert`
/// paths — rejects with this error instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimensionMismatch {
    /// The index's dimensionality.
    pub expected: usize,
    /// The offending vector's length.
    pub got: usize,
}

impl std::fmt::Display for DimensionMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "vector dimension mismatch: index has dimension {}, got {}",
            self.expected, self.got
        )
    }
}

impl std::error::Error for DimensionMismatch {}

/// A search hit: the vector's id and its distance to the query (smaller is
/// better for every metric; similarities are negated internally).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Identifier supplied at insert time.
    pub id: u64,
    /// Distance to the query under the index's metric.
    pub distance: f32,
}

/// A k-nearest-neighbour index over fixed-dimension vectors.
pub trait VectorIndex: Send + Sync {
    /// The index's distance metric.
    fn metric(&self) -> Metric;

    /// Vector dimensionality.
    fn dim(&self) -> usize;

    /// Number of indexed vectors.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `k` nearest vectors to `query`, best first.
    fn search(&self, query: &[f32], k: usize) -> Vec<Hit>;

    /// [`VectorIndex::search`] with a typed dimension check at the boundary
    /// — the entry point engine code uses, so a wrong-dimension query is an
    /// error instead of silently scored garbage.
    fn try_search(&self, query: &[f32], k: usize) -> Result<Vec<Hit>, DimensionMismatch> {
        self.check_query(query)?;
        Ok(self.search(query, k))
    }

    /// Validate a query vector's dimensionality against the index.
    fn check_query(&self, query: &[f32]) -> Result<(), DimensionMismatch> {
        if query.len() != self.dim() {
            return Err(DimensionMismatch {
                expected: self.dim(),
                got: query.len(),
            });
        }
        Ok(())
    }

    /// [`VectorIndex::search`] honoring a parallelism hint for *one* query.
    ///
    /// Indexes whose per-query work partitions cleanly (exact scans over
    /// slot ranges, IVF over probed cells) override this with per-worker
    /// top-k heaps merged at drain; graph traversals (HNSW) are inherently
    /// sequential per query and keep the serial default — their parallelism
    /// lives in [`VectorIndex::search_many`].
    fn search_with(&self, query: &[f32], k: usize, parallel: Parallelism) -> Vec<Hit> {
        let _ = parallel;
        self.search(query, k)
    }

    /// Answer a batch of queries, partitioning the *queries* across the
    /// shared worker pool. Results are in query order and identical to
    /// serial execution (each query is answered independently).
    fn search_many(&self, queries: &[Vec<f32>], k: usize, parallel: Parallelism) -> Vec<Vec<Hit>> {
        let workers = parallel.worker_threads().min(queries.len());
        if workers <= 1 {
            return queries.iter().map(|q| self.search(q, k)).collect();
        }
        let per = queries.len().div_ceil(workers);
        let chunks = run_workers(workers, |w| {
            // Both bounds clamp: with per = ceil(n/workers), trailing workers
            // can start past the end (e.g. 7 queries on 5 threads) and must
            // contribute an empty chunk, not panic.
            let lo = (w * per).min(queries.len());
            let hi = ((w + 1) * per).min(queries.len());
            queries[lo..hi]
                .iter()
                .map(|q| self.search(q, k))
                .collect::<Vec<_>>()
        });
        chunks.into_iter().flatten().collect()
    }

    /// Exact distance between `query` and the stored vector with `id`, if
    /// indexed. A co-located engine uses this to complete fusion scores for
    /// candidates surfaced by other modalities — something a remote vector
    /// service cannot offer cheaply.
    fn distance_of(&self, query: &[f32], id: u64) -> Option<f32>;

    /// Like [`VectorIndex::search`] but only ids passing `filter` are
    /// returned (post-filtering; used by the bolt-on baseline in E3).
    fn search_filtered(&self, query: &[f32], k: usize, filter: &dyn Fn(u64) -> bool) -> Vec<Hit> {
        // Default: over-fetch then filter — the classic bolt-on behaviour.
        let mut fetch = k.max(16);
        loop {
            let hits = self.search(query, fetch);
            let kept: Vec<Hit> = hits.iter().copied().filter(|h| filter(h.id)).collect();
            if kept.len() >= k || hits.len() < fetch {
                return kept.into_iter().take(k).collect();
            }
            fetch *= 2;
        }
    }

    /// Pre-filtered search: the predicate is pushed *into* the index, so
    /// distances are only computed for ids passing `filter`. Indexes that
    /// enumerate candidate slots (exact, IVF) override this with a true
    /// masked scan; graph indexes fall back to the over-fetching
    /// [`VectorIndex::search_filtered`].
    fn search_masked(&self, query: &[f32], k: usize, filter: &dyn Fn(u64) -> bool) -> Vec<Hit> {
        self.search_filtered(query, k, filter)
    }
}
