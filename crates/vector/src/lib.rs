//! # backbone-vector
//!
//! Vector similarity search substrate for the hybrid-workload experiments —
//! the "vectors" in the paper's observation that *"solutions are crappy when
//! you combine diverse workloads like vectors, keywords, and relational
//! queries in commercial systems"*.
//!
//! Three interchangeable indexes implement [`VectorIndex`]:
//!
//! - [`exact::ExactIndex`]: brute-force scan (the ground truth),
//! - [`ivf::IvfIndex`]: inverted-file index over k-means partitions,
//! - [`hnsw::HnswIndex`]: hierarchical navigable small world graph.

pub mod dataset;
pub mod distance;
pub mod exact;
pub mod hnsw;
pub mod ivf;
pub mod recall;

pub use dataset::Dataset;
pub use distance::Metric;
pub use exact::ExactIndex;
pub use hnsw::HnswIndex;
pub use ivf::IvfIndex;

/// A search hit: the vector's id and its distance to the query (smaller is
/// better for every metric; similarities are negated internally).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Identifier supplied at insert time.
    pub id: u64,
    /// Distance to the query under the index's metric.
    pub distance: f32,
}

/// A k-nearest-neighbour index over fixed-dimension vectors.
pub trait VectorIndex: Send + Sync {
    /// The index's distance metric.
    fn metric(&self) -> Metric;

    /// Vector dimensionality.
    fn dim(&self) -> usize;

    /// Number of indexed vectors.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `k` nearest vectors to `query`, best first.
    fn search(&self, query: &[f32], k: usize) -> Vec<Hit>;

    /// Exact distance between `query` and the stored vector with `id`, if
    /// indexed. A co-located engine uses this to complete fusion scores for
    /// candidates surfaced by other modalities — something a remote vector
    /// service cannot offer cheaply.
    fn distance_of(&self, query: &[f32], id: u64) -> Option<f32>;

    /// Like [`VectorIndex::search`] but only ids passing `filter` are
    /// returned (post-filtering; used by the bolt-on baseline in E3).
    fn search_filtered(&self, query: &[f32], k: usize, filter: &dyn Fn(u64) -> bool) -> Vec<Hit> {
        // Default: over-fetch then filter — the classic bolt-on behaviour.
        let mut fetch = k.max(16);
        loop {
            let hits = self.search(query, fetch);
            let kept: Vec<Hit> = hits.iter().copied().filter(|h| filter(h.id)).collect();
            if kept.len() >= k || hits.len() < fetch {
                return kept.into_iter().take(k).collect();
            }
            fetch *= 2;
        }
    }
}
