//! Flat vector dataset storage.

/// A set of equal-dimension vectors stored contiguously, with caller-supplied
/// ids. The contiguous layout keeps distance kernels cache-friendly.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    dim: usize,
    data: Vec<f32>,
    ids: Vec<u64>,
    slot_of: std::collections::HashMap<u64, usize>,
}

impl Dataset {
    /// An empty dataset of dimension `dim`.
    pub fn new(dim: usize) -> Dataset {
        assert!(dim > 0, "dimension must be positive");
        Dataset {
            dim,
            data: Vec::new(),
            ids: Vec::new(),
            slot_of: std::collections::HashMap::new(),
        }
    }

    /// Append a vector with an id. Panics on dimension mismatch.
    pub fn push(&mut self, id: u64, vector: &[f32]) {
        assert_eq!(vector.len(), self.dim, "vector dimension mismatch");
        self.data.extend_from_slice(vector);
        self.slot_of.insert(id, self.ids.len());
        self.ids.push(id);
    }

    /// Slot of the vector with the given id, if present.
    pub fn slot(&self, id: u64) -> Option<usize> {
        self.slot_of.get(&id).copied()
    }

    /// Vector by id, if present.
    pub fn vector_by_id(&self, id: u64) -> Option<&[f32]> {
        self.slot(id).map(|s| self.vector(s))
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Vector at slot `i`.
    #[inline]
    pub fn vector(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Id at slot `i`.
    #[inline]
    pub fn id(&self, i: usize) -> u64 {
        self.ids[i]
    }

    /// Iterate `(id, vector)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[f32])> {
        (0..self.len()).map(move |i| (self.id(i), self.vector(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read() {
        let mut d = Dataset::new(3);
        d.push(10, &[1.0, 2.0, 3.0]);
        d.push(20, &[4.0, 5.0, 6.0]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.vector(1), &[4.0, 5.0, 6.0]);
        assert_eq!(d.id(0), 10);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let mut d = Dataset::new(2);
        d.push(1, &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn iter_pairs() {
        let mut d = Dataset::new(1);
        d.push(7, &[0.5]);
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0, 7);
    }
}
