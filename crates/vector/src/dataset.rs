//! Flat vector dataset storage.

use crate::DimensionMismatch;

/// A set of equal-dimension vectors stored contiguously, with caller-supplied
/// ids. The contiguous layout keeps distance kernels cache-friendly, and the
/// per-row Euclidean norms cached at push time let cosine scans skip the
/// `norm(b)` recomputation that would otherwise double their FLOPs.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    dim: usize,
    data: Vec<f32>,
    ids: Vec<u64>,
    /// `norms[i]` = Euclidean norm of the vector at slot `i`, maintained on
    /// every push (cheap: one extra pass over a vector already in cache).
    norms: Vec<f32>,
    slot_of: std::collections::HashMap<u64, usize>,
}

impl Dataset {
    /// An empty dataset of dimension `dim`.
    pub fn new(dim: usize) -> Dataset {
        assert!(dim > 0, "dimension must be positive");
        Dataset {
            dim,
            data: Vec::new(),
            ids: Vec::new(),
            norms: Vec::new(),
            slot_of: std::collections::HashMap::new(),
        }
    }

    /// Append a vector with an id. Panics on dimension mismatch; the typed
    /// alternative is [`Dataset::try_push`].
    pub fn push(&mut self, id: u64, vector: &[f32]) {
        self.try_push(id, vector)
            .expect("vector dimension mismatch");
    }

    /// Append a vector with an id, rejecting wrong-dimension input with a
    /// typed error instead of a panic — the insert-boundary check release
    /// builds keep.
    pub fn try_push(&mut self, id: u64, vector: &[f32]) -> Result<(), DimensionMismatch> {
        if vector.len() != self.dim {
            return Err(DimensionMismatch {
                expected: self.dim,
                got: vector.len(),
            });
        }
        self.data.extend_from_slice(vector);
        self.norms.push(crate::distance::norm(vector));
        self.slot_of.insert(id, self.ids.len());
        self.ids.push(id);
        Ok(())
    }

    /// Slot of the vector with the given id, if present.
    pub fn slot(&self, id: u64) -> Option<usize> {
        self.slot_of.get(&id).copied()
    }

    /// Vector by id, if present.
    pub fn vector_by_id(&self, id: u64) -> Option<&[f32]> {
        self.slot(id).map(|s| self.vector(s))
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Vector at slot `i`.
    #[inline]
    pub fn vector(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Id at slot `i`.
    #[inline]
    pub fn id(&self, i: usize) -> u64 {
        self.ids[i]
    }

    /// Cached Euclidean norm of the vector at slot `i`.
    #[inline]
    pub fn norm_of_slot(&self, i: usize) -> f32 {
        self.norms[i]
    }

    /// The whole contiguous value buffer (`len * dim` floats) — the input
    /// blocked scan kernels consume.
    #[inline]
    pub fn values(&self) -> &[f32] {
        &self.data
    }

    /// All cached per-row norms, slot order.
    #[inline]
    pub fn norms(&self) -> &[f32] {
        &self.norms
    }

    /// Iterate `(id, vector)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[f32])> {
        (0..self.len()).map(move |i| (self.id(i), self.vector(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read() {
        let mut d = Dataset::new(3);
        d.push(10, &[1.0, 2.0, 3.0]);
        d.push(20, &[4.0, 5.0, 6.0]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.vector(1), &[4.0, 5.0, 6.0]);
        assert_eq!(d.id(0), 10);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let mut d = Dataset::new(2);
        d.push(1, &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn try_push_reports_dimensions() {
        let mut d = Dataset::new(2);
        let err = d.try_push(1, &[1.0]).unwrap_err();
        assert_eq!((err.expected, err.got), (2, 1));
        assert!(d.is_empty(), "failed push must not mutate the dataset");
        assert!(d.try_push(1, &[1.0, 2.0]).is_ok());
    }

    #[test]
    fn iter_pairs() {
        let mut d = Dataset::new(1);
        d.push(7, &[0.5]);
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0, 7);
    }

    #[test]
    fn norms_cached_per_slot() {
        let mut d = Dataset::new(2);
        d.push(1, &[3.0, 4.0]);
        d.push(2, &[0.0, 0.0]);
        assert!((d.norm_of_slot(0) - 5.0).abs() < 1e-6);
        assert_eq!(d.norm_of_slot(1), 0.0);
        assert_eq!(d.norms().len(), 2);
        assert_eq!(d.values().len(), 4);
    }
}
