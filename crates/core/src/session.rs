//! Sessions and the hybrid-search request builder.
//!
//! A [`Session`] is a lightweight per-caller handle over a shared
//! [`Database`]: it carries its own [`ExecOptions`] (parallelism, optimizer
//! rules) so two sessions can run the same database with different
//! execution settings, while all data, indexes, durability, and metrics
//! stay shared. Sessions *own* a database handle (an `Arc` clone under the
//! hood) — [`Database::session`] mints them for the cost of one refcount,
//! and they move freely across threads, which is how the network server
//! gives every connection its own session without borrowing from anything.
//!
//! [`SearchRequest`] consolidates the hybrid-search plumbing behind one
//! typed builder (the same consuming-builder style as
//! [`crate::VectorIndexSpec`]): filter, keywords, vector, `k`, and fusion
//! weights compose fluently, and [`SearchRequest::run`] executes either the
//! unified engine or the bolt-on baseline over the identical spec.

use crate::cache::CachedPlan;
use crate::database::Database;
use crate::error::{Error, Result};
use crate::hybrid::{
    bolton_search, unified_search, FusionWeights, HybridHit, HybridSpec, SearchCost,
};
use backbone_query::{ExecOptions, Expr, LogicalPlan, Parallelism};
use backbone_storage::{RecordBatch, Schema, Value};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A per-caller handle over a shared [`Database`]. Owned (no lifetime):
/// hand it to a thread, stash it in a connection struct, drop it whenever.
pub struct Session {
    db: Database,
    opts: ExecOptions,
    /// Statements prepared on this session, keyed by handle. Handles are
    /// per-session — the server maps each connection to one session, which
    /// is what scopes wire-protocol `PREPARE`/`EXECUTE` correctly.
    prepared: Mutex<PreparedStatements>,
}

#[derive(Default)]
struct PreparedStatements {
    next_id: u64,
    by_id: HashMap<u64, Arc<CachedPlan>>,
}

/// Handle and parameter arity of a statement prepared on a [`Session`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreparedInfo {
    /// Pass this to [`Session::execute_prepared`].
    pub id: u64,
    /// How many `$n` parameter slots the statement expects.
    pub params: usize,
}

impl Session {
    /// A session starting from the database's baseline execution options.
    pub(crate) fn new(db: Database) -> Session {
        Session {
            opts: db.exec_options().clone(),
            db,
            prepared: Mutex::new(PreparedStatements::default()),
        }
    }

    /// Set this session's execution parallelism (consuming builder): every
    /// statement on the session runs with it. Accepts the typed
    /// [`Parallelism`] enum or a bare worker count for compatibility
    /// (`0`/`1` mean serial).
    pub fn with_parallelism(mut self, parallelism: impl Into<Parallelism>) -> Session {
        self.opts.parallelism = parallelism.into();
        self
    }

    /// Replace this session's execution options wholesale.
    ///
    /// Metrics-unification rule: if `opts` carries no metrics registry, the
    /// session keeps the database's registry, so operator counters from
    /// every session land in one place ([`Database::metrics`]). If `opts`
    /// *does* carry a registry, the caller's choice wins — that is how a
    /// test or bench isolates one session's counters from the shared pool.
    pub fn with_options(mut self, mut opts: ExecOptions) -> Session {
        if opts.metrics.is_none() {
            opts.metrics = self.opts.metrics.take();
        }
        self.opts = opts;
        self
    }

    /// The session's current execution options.
    pub fn options(&self) -> &ExecOptions {
        &self.opts
    }

    /// The database this session runs against.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Parse and execute SQL under this session's options.
    pub fn sql(&self, query: &str) -> Result<RecordBatch> {
        self.db.sql_with(query, &self.opts)
    }

    /// Prepare a `SELECT` (with optional `$1`-style placeholders) for
    /// repeated execution: parse and optimize once, then
    /// [`Session::execute_prepared`] binds parameters and goes straight to
    /// physical planning. The optimized plan is shared with the plan cache,
    /// so re-preparing a hot statement costs one lookup.
    pub fn prepare(&self, query: &str) -> Result<PreparedInfo> {
        let plan = self.db.prepare_statement(query, &self.opts)?;
        let params = plan.params;
        let mut st = self.prepared.lock();
        st.next_id += 1;
        let id = st.next_id;
        st.by_id.insert(id, plan);
        Ok(PreparedInfo { id, params })
    }

    /// Execute a prepared statement with `params` bound positionally
    /// (`params[0]` fills `$1`). Serves from the result cache when the
    /// session's options allow it.
    pub fn execute_prepared(&self, id: u64, params: &[Value]) -> Result<RecordBatch> {
        let plan = self
            .prepared
            .lock()
            .by_id
            .get(&id)
            .cloned()
            .ok_or_else(|| {
                Error::InvalidInput(format!("unknown prepared statement handle {id}"))
            })?;
        self.db.execute_cached(&plan, params, &self.opts)
    }

    /// Drop a prepared statement, returning whether the handle existed.
    pub fn close_prepared(&self, id: u64) -> bool {
        self.prepared.lock().by_id.remove(&id).is_some()
    }

    /// Start a declarative query against a table.
    pub fn query(&self, table: &str) -> Result<LogicalPlan> {
        self.db.query(table)
    }

    /// Execute a plan under this session's options.
    pub fn execute(&self, plan: LogicalPlan) -> Result<RecordBatch> {
        self.db.execute_with(plan, &self.opts)
    }

    /// EXPLAIN a plan under this session's options.
    pub fn explain(&self, plan: &LogicalPlan) -> Result<String> {
        self.db.explain_with(plan, &self.opts)
    }

    /// EXPLAIN ANALYZE a plan under this session's options (same
    /// `&LogicalPlan` signature as [`Session::explain`]).
    pub fn explain_analyze(&self, plan: &LogicalPlan) -> Result<(String, RecordBatch)> {
        self.db.explain_analyze_with(plan, &self.opts)
    }

    /// Create a table (durable when the database is; see
    /// [`Database::create_table`]).
    pub fn create_table(&self, name: impl Into<String>, schema: Arc<Schema>) -> Result<()> {
        self.db.create_table(name, schema)
    }

    /// Insert rows (durable when the database is; see [`Database::insert`]).
    pub fn insert(&self, table: &str, rows: Vec<Vec<Value>>) -> Result<()> {
        self.db.insert(table, rows)
    }

    /// Take a checkpoint now (see [`Database::checkpoint`]).
    pub fn checkpoint(&self) -> Result<()> {
        self.db.checkpoint()
    }

    /// Force every logged op to stable storage (see [`Database::wal_sync`]).
    pub fn wal_sync(&self) -> Result<()> {
        self.db.wal_sync()
    }

    /// Pin the current snapshot (see [`Database::pin_snapshot`]): queries
    /// run with [`ExecOptions::at_snapshot`] at the guard's epoch read a
    /// stable committed prefix for as long as the guard lives.
    pub fn pin_snapshot(&self) -> backbone_txn::SnapshotGuard {
        self.db.pin_snapshot()
    }

    /// Start building a hybrid search against `table`.
    pub fn search(&self, table: impl Into<String>) -> SearchRequest<'_> {
        SearchRequest::new(&self.db, table.into())
    }
}

/// Which architecture executes a [`SearchRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStrategy {
    /// The unified engine: one pass, filter pushed into both indexes.
    Unified,
    /// The bolt-on baseline: three independent services glued at the
    /// client (the architecture E3 measures against).
    BoltOn,
}

/// A hybrid search in flight: relational filter + keyword query + vector
/// query over one table, fused into a single ranked result.
///
/// ```
/// # use backbone_core::Database;
/// # use backbone_query::{col, lit};
/// # let db = Database::new();
/// # db.create_table("docs", backbone_storage::Schema::new(vec![
/// #     backbone_storage::Field::new("year", backbone_storage::DataType::Int64),
/// #     backbone_storage::Field::new("body", backbone_storage::DataType::Utf8),
/// # ])).unwrap();
/// # db.insert("docs", vec![vec![backbone_storage::Value::Int(2024),
/// #     backbone_storage::Value::str("column stores")]]).unwrap();
/// # db.create_text_index("docs", "body").unwrap();
/// let response = db
///     .search("docs")
///     .filter(col("year").gt(lit(2020i64)))
///     .keyword("column stores")
///     .k(5)
///     .run()
///     .unwrap();
/// assert!(response.hits.len() <= 5);
/// ```
pub struct SearchRequest<'db> {
    db: &'db Database,
    spec: HybridSpec,
    strategy: SearchStrategy,
}

/// The outcome of a [`SearchRequest`]: ranked hits plus the architectural
/// cost accounting ([`SearchCost`]) the E3 experiment compares.
#[derive(Debug, Clone)]
pub struct SearchResponse {
    /// Fused results, best first.
    pub hits: Vec<HybridHit>,
    /// What the search cost (candidates shipped, round trips).
    pub cost: SearchCost,
}

impl<'db> SearchRequest<'db> {
    pub(crate) fn new(db: &'db Database, table: String) -> SearchRequest<'db> {
        SearchRequest {
            db,
            spec: HybridSpec {
                table,
                filter: None,
                keyword: None,
                vector: None,
                k: 10,
                weights: FusionWeights::default(),
            },
            strategy: SearchStrategy::Unified,
        }
    }

    /// Restrict results to rows matching a relational predicate.
    pub fn filter(mut self, predicate: Expr) -> SearchRequest<'db> {
        self.spec.filter = Some(predicate);
        self
    }

    /// Rank by BM25 relevance to a keyword query (requires a text index).
    pub fn keyword(mut self, query: impl Into<String>) -> SearchRequest<'db> {
        self.spec.keyword = Some(query.into());
        self
    }

    /// Rank by similarity to a query embedding (requires a vector index).
    pub fn vector(mut self, embedding: Vec<f32>) -> SearchRequest<'db> {
        self.spec.vector = Some(embedding);
        self
    }

    /// Result size (default 10).
    pub fn k(mut self, k: usize) -> SearchRequest<'db> {
        self.spec.k = k;
        self
    }

    /// Set both fusion weights at once.
    pub fn weights(mut self, weights: FusionWeights) -> SearchRequest<'db> {
        self.spec.weights = weights;
        self
    }

    /// Weight of the vector-similarity component.
    pub fn vector_weight(mut self, weight: f64) -> SearchRequest<'db> {
        self.spec.weights.vector = weight;
        self
    }

    /// Weight of the BM25 text component.
    pub fn text_weight(mut self, weight: f64) -> SearchRequest<'db> {
        self.spec.weights.text = weight;
        self
    }

    /// Execute through the bolt-on (three separate services) baseline
    /// instead of the unified engine.
    pub fn via_bolton(mut self) -> SearchRequest<'db> {
        self.strategy = SearchStrategy::BoltOn;
        self
    }

    /// The spec this builder has accumulated (for logging / tests).
    pub fn spec(&self) -> &HybridSpec {
        &self.spec
    }

    /// Run the search.
    pub fn run(self) -> Result<SearchResponse> {
        let (hits, cost) = match self.strategy {
            SearchStrategy::Unified => unified_search(self.db, &self.spec)?,
            SearchStrategy::BoltOn => bolton_search(self.db, &self.spec)?,
        };
        Ok(SearchResponse { hits, cost })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backbone_query::{col, lit};
    use backbone_storage::{DataType, Field};

    fn seeded_db() -> Database {
        let db = Database::new();
        db.create_table(
            "t",
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("txt", DataType::Utf8),
            ]),
        )
        .unwrap();
        db.insert(
            "t",
            vec![
                vec![Value::Int(1), Value::str("red fox jumps")],
                vec![Value::Int(2), Value::str("blue whale sings")],
                vec![Value::Int(3), Value::str("red panda sleeps")],
            ],
        )
        .unwrap();
        db.create_text_index("t", "txt").unwrap();
        db
    }

    #[test]
    fn session_routes_sql_and_plans() {
        let db = seeded_db();
        let session = db.session();
        let out = session.sql("SELECT id FROM t WHERE id > 1").unwrap();
        assert_eq!(out.num_rows(), 2);
        let plan = session.query("t").unwrap().filter(col("id").eq(lit(3i64)));
        assert_eq!(session.execute(plan).unwrap().num_rows(), 1);
    }

    #[test]
    fn sessions_carry_independent_options() {
        let db = seeded_db();
        let serial = db.session();
        let fixed = db.session().with_parallelism(4);
        let auto = db.session().with_parallelism(Parallelism::Auto);
        assert_eq!(serial.options().parallelism, Parallelism::Serial);
        assert_eq!(fixed.options().parallelism, Parallelism::Fixed(4));
        assert_eq!(auto.options().parallelism, Parallelism::Auto);
        // All still see the same data.
        assert_eq!(
            serial.sql("SELECT id FROM t").unwrap().num_rows(),
            fixed.sql("SELECT id FROM t").unwrap().num_rows(),
        );
        assert_eq!(
            serial.sql("SELECT id FROM t").unwrap().num_rows(),
            auto.sql("SELECT id FROM t").unwrap().num_rows(),
        );
    }

    #[test]
    fn session_writes_hit_the_shared_database() {
        let db = seeded_db();
        let session = db.session();
        session
            .insert("t", vec![vec![Value::Int(4), Value::str("green newt")]])
            .unwrap();
        assert_eq!(db.row_count("t"), Some(4));
    }

    #[test]
    fn search_builder_matches_direct_spec() {
        let db = seeded_db();
        let response = db
            .search("t")
            .filter(col("id").gt(lit(1i64)))
            .keyword("red")
            .k(2)
            .run()
            .unwrap();
        let spec = HybridSpec {
            table: "t".into(),
            filter: Some(col("id").gt(lit(1i64))),
            keyword: Some("red".into()),
            vector: None,
            k: 2,
            weights: FusionWeights::default(),
        };
        let (direct, _) = unified_search(&db, &spec).unwrap();
        assert_eq!(response.hits, direct);
        // Only row 3 ("red panda") passes both filter and keyword.
        assert_eq!(response.hits[0].row, 2);
    }

    #[test]
    fn bolton_strategy_runs_the_baseline() {
        let db = seeded_db();
        let unified = db.search("t").keyword("red").k(3).run().unwrap();
        let bolton = db
            .search("t")
            .keyword("red")
            .k(3)
            .via_bolton()
            .run()
            .unwrap();
        // Same fused ranking, different architecture: the bolt-on pays in
        // round trips.
        assert_eq!(
            unified.hits.iter().map(|h| h.row).collect::<Vec<_>>(),
            bolton.hits.iter().map(|h| h.row).collect::<Vec<_>>(),
        );
        assert!(bolton.cost.round_trips >= unified.cost.round_trips);
    }
}
